//! Layout-vs-schematic style netlist comparison with the Gemini
//! engine, including extraction round-tripping: a transistor netlist is
//! extracted to gates and the result is checked against a reference
//! gate netlist built independently.
//!
//! Run with: `cargo run --example lvs`

use subgemini::Extractor;
use subgemini_gemini::{compare, compare_with_stats, GeminiOptions};
use subgemini_netlist::{instantiate, Netlist};
use subgemini_workloads::{cells, gen};

fn main() {
    // ---- 1. Plain netlist comparison. ----
    let a = gen::ripple_adder(6).netlist;
    let b = gen::ripple_adder(6).netlist;
    let report = compare_with_stats(&a, &b, &GeminiOptions::default());
    println!(
        "adder6 vs adder6: isomorphic={} (passes {}, guesses {})",
        report.outcome.is_isomorphic(),
        report.stats.passes,
        report.stats.guesses
    );
    assert!(report.outcome.is_isomorphic());

    // A one-transistor difference must be caught.
    let mut c = gen::ripple_adder(6).netlist;
    let mos = c.add_mos_types();
    let (x, y) = (c.net("a0"), c.net("s5"));
    let gnd = c.net("gnd");
    c.add_device("sneaky", mos.nmos, &[x, gnd, y]).unwrap();
    let bad = compare(&a, &c);
    println!("tampered copy: isomorphic={}", bad.is_isomorphic());
    assert!(!bad.is_isomorphic());
    println!("  reason: {}", bad.mismatch().unwrap().reason);

    // ---- 2. Extraction round-trip. ----
    // Transistor-level chain of inverters -> extract -> compare against
    // an independently built gate-level reference.
    let chain = gen::inverter_chain(10).netlist;
    let mut extractor = Extractor::new();
    extractor.add_cell(cells::inv());
    let (gates, report) = extractor.extract(&chain).expect("extracts");
    println!(
        "\nextracted {} inverters from {} transistors ({} unabsorbed)",
        report.count_of("inv"),
        chain.device_count(),
        report.unabsorbed_devices
    );

    // Reference gate netlist: 10 composite `inv` devices in a chain.
    let mut reference = Netlist::new("reference");
    // Reuse the extractor's composite type by extracting a 1-cell chain
    // and copying its type table — or simply instantiate the same shape:
    let proto = {
        let one = gen::inverter_chain(1).netlist;
        let mut e = Extractor::new();
        e.add_cell(cells::inv());
        e.extract(&one).expect("extracts").0
    };
    let comp_ty = proto.type_id("inv").expect("composite type exists");
    let comp = proto.device_type(comp_ty).clone();
    let ty = reference.add_type(comp).unwrap();
    let mut prev = reference.net("in");
    for i in 0..10 {
        let next = reference.net(format!("w{i}"));
        reference
            .add_device(format!("g{i}"), ty, &[prev, next])
            .unwrap();
        prev = next;
    }
    // The extracted netlist retains vdd/gnd as (now unused) global nets?
    // No: collapsed interior nets vanish and rails disappear with them,
    // so both sides should be 10 devices / 11 nets.
    let outcome = compare(&gates, &reference);
    println!(
        "extracted-vs-reference: isomorphic={}",
        outcome.is_isomorphic()
    );
    if let Some(m) = outcome.mismatch() {
        println!("  mismatch: {m}");
    }
    assert!(outcome.is_isomorphic());

    // ---- 3. Hierarchical comparison through instantiate. ----
    let mut flat_a = Netlist::new("two_by_hand");
    let (p, q, r) = (flat_a.net("p"), flat_a.net("q"), flat_a.net("r"));
    instantiate(&mut flat_a, &cells::inv(), "u0", &[p, q]).unwrap();
    instantiate(&mut flat_a, &cells::inv(), "u1", &[q, r]).unwrap();
    let flat_b = gen::inverter_chain(2).netlist;
    assert!(compare(&flat_a, &flat_b).is_isomorphic());
    println!("\nhierarchical stamp vs generator: isomorphic=true");
}
