//! Technology independence: the same matcher on analog circuitry.
//!
//! Finds current mirrors, differential pairs and whole opamps inside a
//! mixed-signal front end, with zero analog-specific code anywhere in
//! the matching engine.
//!
//! Run with: `cargo run --example analog_blocks`

use subgemini::Matcher;
use subgemini_workloads::analog;

fn main() {
    let chip = analog::mixed_signal_chip(2024, 3);
    println!(
        "mixed-signal front end: {} devices, {} nets ({} channels)",
        chip.netlist.device_count(),
        chip.netlist.net_count(),
        3
    );

    for pattern in [
        analog::two_stage_opamp(),
        analog::ota5t(),
        analog::pmos_mirror(),
        analog::diff_pair(),
        analog::rc_lowpass(),
        analog::nmos_mirror(),
    ] {
        let outcome = Matcher::new(&pattern, &chip.netlist).find_all();
        println!(
            "{:<18} {:>2} instance(s)   (|CV|={}, phase2 passes={})",
            pattern.name(),
            outcome.count(),
            outcome.phase1.cv_size,
            outcome.phase2.passes
        );
    }

    // The opamps dominate: each contains a mirror and a diff pair, so
    // block-level counts nest exactly.
    let amps = Matcher::new(&analog::two_stage_opamp(), &chip.netlist).find_all();
    let mirrors = Matcher::new(&analog::pmos_mirror(), &chip.netlist).find_all();
    let pairs = Matcher::new(&analog::diff_pair(), &chip.netlist).find_all();
    assert_eq!(amps.count(), 3);
    assert_eq!(mirrors.count(), 3);
    assert_eq!(pairs.count(), 3);
    println!("\nnesting holds: every mirror/diff-pair sits inside an opamp");
}
