//! Gate-level Verilog flow: parse a structural design, match patterns
//! at the gate level, then run the full transistor→Verilog pipeline.
//!
//! Run with: `cargo run --example verilog_flow`

use subgemini::{Extractor, Matcher};
use subgemini_verilog::{parse, write_module, VerilogOptions};
use subgemini_workloads::{cells, gen};

const DESIGN: &str = "\
// 2-bit equality comparator, gate level
module eq2(input a0, a1, b0, b1, output eq);
  wire x0, x1, nx0, nx1;
  xor g0(x0, a0, b0);
  xor g1(x1, a1, b1);
  not g2(nx0, x0);
  not g3(nx1, x1);
  and g4(eq, nx0, nx1);
endmodule
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Parse and inspect a gate-level design. ----
    let src = parse(DESIGN)?;
    let chip = src.elaborate(None, &VerilogOptions::default())?;
    println!(
        "parsed `{}`: {} gates, {} nets",
        chip.name(),
        chip.device_count(),
        chip.net_count()
    );

    // ---- 2. Gate-level pattern matching: XNOR = xor + not. ----
    let pat = parse(
        "module xnor_shape(input a, b, output y);\n\
           wire w;\n\
           xor g1(w, a, b);\n\
           not g2(y, w);\n\
         endmodule\n",
    )?
    .elaborate(None, &VerilogOptions::default())?;
    let found = Matcher::new(&pat, &chip).find_all();
    println!("xnor shapes found: {}", found.count());
    assert_eq!(found.count(), 2);

    // ---- 3. Transistors in, Verilog out. ----
    let transistors = gen::ripple_adder(2).netlist;
    let mut extractor = Extractor::new();
    for cell in cells::library() {
        extractor.add_cell(cell);
    }
    let (gates, report) = extractor.extract(&transistors)?;
    println!(
        "\nextracted {} full adders from {} transistors",
        report.count_of("full_adder"),
        transistors.device_count()
    );
    let verilog = write_module(&gates);
    println!("gate-level Verilog:\n{verilog}");

    // The emitted module stands alone: named connections let the parser
    // synthesize the composite types.
    let back = parse(&verilog)?.elaborate(None, &VerilogOptions::hierarchical())?;
    assert_eq!(back.device_count(), 2);
    println!("reparsed: {} composite gate(s)", back.device_count());
    Ok(())
}
