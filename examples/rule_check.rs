//! Circuit rule checking with a pattern library (paper §I: "review
//! circuits for the use of questionable circuit constructs").
//!
//! Run with: `cargo run --example rule_check`

use subgemini::RuleChecker;
use subgemini_netlist::{Netlist, NetlistError};

/// Rule: NMOS sourcing from Vdd (passes a degraded high level).
fn nmos_pullup() -> Result<Netlist, NetlistError> {
    let mut p = Netlist::new("nmos_pullup");
    let mos = p.add_mos_types();
    let (g, d, vdd) = (p.net("g"), p.net("d"), p.net("vdd"));
    p.mark_port(g);
    p.mark_port(d);
    p.mark_global(vdd);
    p.add_device("m", mos.nmos, &[g, vdd, d])?;
    Ok(p)
}

/// Rule: PMOS pulling to GND (degraded low).
fn pmos_pulldown() -> Result<Netlist, NetlistError> {
    let mut p = Netlist::new("pmos_pulldown");
    let mos = p.add_mos_types();
    let (g, d, gnd) = (p.net("g"), p.net("d"), p.net("gnd"));
    p.mark_port(g);
    p.mark_port(d);
    p.mark_global(gnd);
    p.add_device("m", mos.pmos, &[g, gnd, d])?;
    Ok(p)
}

/// Rule: a transistor whose gate is tied to its own drain *and* whose
/// source sits on a rail — a diode-connected device, questionable in
/// pure digital logic.
fn diode_connected() -> Result<Netlist, NetlistError> {
    let mut p = Netlist::new("diode_connected");
    let mos = p.add_mos_types();
    let (d, gnd) = (p.net("d"), p.net("gnd"));
    p.mark_port(d);
    p.mark_global(gnd);
    p.add_device("m", mos.nmos, &[d, gnd, d])?;
    Ok(p)
}

fn main() -> Result<(), NetlistError> {
    let mut checker = RuleChecker::new();
    checker.add_rule(
        "nmos-pullup",
        "nmos sources from vdd: output high is degraded by Vt",
        nmos_pullup()?,
    );
    checker.add_rule(
        "pmos-pulldown",
        "pmos pulls to gnd: output low is degraded by Vt",
        pmos_pulldown()?,
    );
    checker.add_rule(
        "diode-connected",
        "gate tied to drain with source on a rail",
        diode_connected()?,
    );

    // A circuit with two planted violations among healthy logic.
    let mut chip = Netlist::new("suspect_chip");
    let mos = chip.add_mos_types();
    let (a, b, q1, q2, w) = (
        chip.net("a"),
        chip.net("b"),
        chip.net("q1"),
        chip.net("q2"),
        chip.net("w"),
    );
    let (vdd, gnd) = (chip.net("vdd"), chip.net("gnd"));
    chip.mark_global(vdd);
    chip.mark_global(gnd);
    // Healthy inverter.
    chip.add_device("good_p", mos.pmos, &[a, vdd, w])?;
    chip.add_device("good_n", mos.nmos, &[a, gnd, w])?;
    // Violation 1: NMOS pass-up.
    chip.add_device("bad1", mos.nmos, &[b, vdd, q1])?;
    // Violation 2: diode-connected NMOS.
    chip.add_device("bad2", mos.nmos, &[q2, gnd, q2])?;

    let violations = checker.check(&chip);
    println!(
        "{} rules, {} violations:",
        checker.rule_count(),
        violations.len()
    );
    for v in &violations {
        println!(
            "  [{}] {} -> devices {:?}",
            v.rule, v.description, v.devices
        );
    }
    assert_eq!(violations.len(), 2);
    assert!(violations.iter().any(|v| v.devices == ["bad1"]));
    assert!(violations.iter().any(|v| v.devices == ["bad2"]));
    Ok(())
}
