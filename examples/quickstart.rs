//! Quickstart: build a pattern and a circuit, find all instances.
//!
//! Run with: `cargo run --example quickstart`

use subgemini::{MatchOptions, Matcher};
use subgemini_netlist::{instantiate, Netlist, NetlistError};

fn main() -> Result<(), NetlistError> {
    // ---- 1. Describe the pattern: a CMOS inverter. ----
    // Ports are the external nets; vdd/gnd are special global signals.
    let mut inv = Netlist::new("inv");
    let mos = inv.add_mos_types();
    let (a, y) = (inv.net("a"), inv.net("y"));
    let (vdd, gnd) = (inv.net("vdd"), inv.net("gnd"));
    inv.mark_port(a);
    inv.mark_port(y);
    inv.mark_global(vdd);
    inv.mark_global(gnd);
    inv.add_device("mp", mos.pmos, &[a, vdd, y])?; // (gate, source, drain)
    inv.add_device("mn", mos.nmos, &[a, gnd, y])?;

    // ---- 2. Build a main circuit: an 8-stage inverter ring. ----
    let mut ring = Netlist::new("ring8");
    let nets: Vec<_> = (0..8).map(|i| ring.net(format!("n{i}"))).collect();
    for i in 0..8 {
        instantiate(
            &mut ring,
            &inv,
            &format!("u{i}"),
            &[nets[i], nets[(i + 1) % 8]],
        )?;
    }
    println!("main circuit: {}", ring);

    // ---- 3. Search. ----
    let outcome = Matcher::new(&inv, &ring)
        .options(MatchOptions::default())
        .find_all();

    println!("found {} inverter instances", outcome.count());
    println!(
        "phase I: {} iterations, candidate vector of {} (key partition {})",
        outcome.phase1.iterations, outcome.phase1.cv_size, outcome.phase1.key_partition_size
    );
    println!(
        "phase II: {} candidates, {} false, {} passes, {} guesses, {} backtracks",
        outcome.phase2.candidates_tried,
        outcome.phase2.false_candidates,
        outcome.phase2.passes,
        outcome.phase2.guesses,
        outcome.phase2.backtracks
    );
    for (i, m) in outcome.instances.iter().enumerate() {
        let devs: Vec<&str> = m
            .device_set()
            .iter()
            .map(|&d| ring.device(d).name())
            .collect();
        println!("  instance {i}: {}", devs.join(" + "));
    }
    assert_eq!(outcome.count(), 8);
    Ok(())
}
