//! Reproduces the paper's Table 1: the pass-by-pass Phase II labeling
//! trace on the Fig. 1 example circuit.
//!
//! Labels are 64-bit hashes; like the paper we render them as letters
//! assigned in order of first appearance (`KV` is the key/candidate
//! label, `*` marks safe labels, `[X]` marks matched vertices).
//!
//! Run with: `cargo run --example trace_table1`

use subgemini::{MatchOptions, Matcher};
use subgemini_workloads::paper;

fn main() {
    let s = paper::fig1_pattern();
    let g = paper::fig1_main();
    // `spread_from_port_images` reproduces the paper's exact spreading
    // behavior (Table 1 relabels D1 from the matched external nets K/L).
    let outcome = Matcher::new(&s, &g)
        .options(MatchOptions {
            record_trace: true,
            spread_from_port_images: true,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(outcome.count(), 1, "fig1 has exactly one instance");
    let trace = outcome.trace.expect("trace recorded");

    println!("Table 1 reproduction — Phase II labeling trace (fig. 1 example)");
    println!("(letters by first appearance; * = safe, [X] = matched, KV = key label)\n");
    print!("{}", trace.render(&s, &g));
    println!(
        "\nall {} pattern vertices matched after {} passes (paper: 7 alternating passes)",
        s.device_count() + s.net_count(),
        trace.pass_count()
    );
}
