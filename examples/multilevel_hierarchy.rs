//! Multi-level hierarchy recovery: transistors → gates → macro blocks.
//!
//! The extraction engine is technology-independent, so it can be run
//! *again* on its own gate-level output with gate-level patterns —
//! recovering two levels of hierarchy from a flat transistor netlist
//! (the paper's §I hierarchy-construction application, taken one level
//! further).
//!
//! Run with: `cargo run --example multilevel_hierarchy`

use subgemini::Extractor;
use subgemini_netlist::{Netlist, NetlistStats};
use subgemini_workloads::{cells, gen};

/// Builds the gate-level "AND row" macro pattern: decoder rows are a
/// NAND3 followed by an inverter, as composite gate devices.
fn and_row_pattern(gates: &Netlist) -> Netlist {
    let nand3_ty = gates.type_id("nand3").expect("nand3 composites exist");
    let inv_ty = gates.type_id("inv").expect("inv composites exist");
    let mut pat = Netlist::new("and_row");
    let nand3 = pat.add_type(gates.device_type(nand3_ty).clone()).unwrap();
    let inv = pat.add_type(gates.device_type(inv_ty).clone()).unwrap();
    let (a, b, c, y) = (pat.net("a"), pat.net("b"), pat.net("c"), pat.net("y"));
    let n = pat.net("n");
    for p in [a, b, c, y] {
        pat.mark_port(p);
    }
    pat.add_device("g1", nand3, &[a, b, c, n]).unwrap();
    pat.add_device("g2", inv, &[n, y]).unwrap();
    pat
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Level 0: a 3-to-8 row decoder, flat transistors.
    let decoder = gen::decoder(3);
    println!(
        "level 0 (transistors): {}",
        NetlistStats::of(&decoder.netlist)
    );

    // Level 1: transistor → gate extraction with the standard library.
    let mut tran_extractor = Extractor::new();
    for cell in cells::library() {
        tran_extractor.add_cell(cell);
    }
    let (gates, report) = tran_extractor.extract(&decoder.netlist)?;
    println!("\nlevel 1 (gates): {}", NetlistStats::of(&gates));
    assert_eq!(report.count_of("nand3"), 8);
    assert_eq!(report.count_of("inv"), 11);
    assert_eq!(report.unabsorbed_devices, 0);

    // Level 2: gate → macro extraction with a gate-level pattern.
    let and_row = and_row_pattern(&gates);
    let mut gate_extractor = Extractor::new();
    gate_extractor.add_cell(and_row);
    let (macros, report2) = gate_extractor.extract(&gates)?;
    println!("\nlevel 2 (macros): {}", NetlistStats::of(&macros));
    assert_eq!(report2.count_of("and_row"), 8);
    // Left over: the 3 address inverters.
    assert_eq!(report2.unabsorbed_devices, 3);

    println!(
        "\nrecovered hierarchy: {} transistors -> {} gates -> {} macros + {} loose gates",
        decoder.netlist.device_count(),
        gates.device_count(),
        report2.count_of("and_row"),
        report2.unabsorbed_devices
    );
    Ok(())
}
