//! Technology mapping with general (non-tree) patterns — the paper's
//! §I covering application.
//!
//! Builds a small logic block, enumerates every possible placement of
//! every library cell (overlaps included — something tree-covering
//! mappers cannot do), and compares greedy vs exact covering.
//!
//! Run with: `cargo run --example technology_mapping`

use subgemini::TechMapper;
use subgemini_netlist::{instantiate, Netlist, NetlistError};
use subgemini_workloads::cells;

fn main() -> Result<(), NetlistError> {
    // Subject: a 5-inverter chain plus a NAND — pure transistors.
    let mut subject = Netlist::new("logic_block");
    let mut prev = subject.net("in");
    for i in 0..5 {
        let next = subject.net(format!("w{i}"));
        instantiate(&mut subject, &cells::inv(), &format!("u{i}"), &[prev, next])?;
        prev = next;
    }
    let en = subject.net("en");
    let out = subject.net("out");
    instantiate(&mut subject, &cells::nand2(), "g0", &[prev, en, out])?;
    println!(
        "subject: {} transistors over {} nets",
        subject.device_count(),
        subject.net_count()
    );

    // Library with an area-style cost model. The buffer is cheaper than
    // two separate inverters, so coverings that pair up inverters win.
    let mut mapper = TechMapper::new();
    mapper.add_cell(cells::inv(), 1.0);
    mapper.add_cell(cells::buf(), 1.6);
    mapper.add_cell(cells::nand2(), 2.0);

    let candidates = mapper.candidates(&subject);
    println!(
        "\n{} cover candidates (overlaps included):",
        candidates.len()
    );
    for c in &candidates {
        println!(
            "  {:<6} covering {} devices @ cost {}",
            c.cell,
            c.size(),
            c.cost
        );
    }

    let greedy = mapper.map_greedy(&subject);
    println!(
        "\ngreedy cover: cost {:.1}, complete: {}",
        greedy.total_cost,
        greedy.is_complete()
    );
    for c in &greedy.chosen {
        println!("  {}", c.cell);
    }

    let exact = mapper
        .map_exact(&subject, 1_000_000)
        .expect("subject is coverable");
    println!(
        "exact cover:  cost {:.1} ({} cells)",
        exact.total_cost,
        exact.chosen.len()
    );
    assert!(exact.total_cost <= greedy.total_cost + 1e-9);
    assert!(exact.is_complete());
    // 5 inverters: 2 bufs + 1 inv (4.2) beats 5 invs (5.0); plus nand 2.0.
    assert!((exact.total_cost - 6.2).abs() < 1e-9);
    Ok(())
}
