//! End-to-end SPICE flow: parse a deck, hunt a pattern, write results.
//!
//! Run with: `cargo run --example spice_flow`

use subgemini::Matcher;
use subgemini_spice::{parse, write_netlist, ElaborateOptions, SpiceError};

const DECK: &str = "\
* two-bit toggle pipeline
.global vdd gnd
.subckt inv a y
Mp y a vdd vdd pch W=4u L=0.5u
Mn y a gnd gnd nch W=2u L=0.5u
.ends
.subckt nand2 a b y
Mp1 y a vdd vdd pch
Mp2 y b vdd vdd pch
Mn1 mid a y gnd nch
Mn2 gnd b mid gnd nch
.ends
Xi0 in w0 inv
Xi1 w0 w1 inv
Xg0 w1 in w2 nand2
Xi2 w2 out inv
";

fn main() -> Result<(), SpiceError> {
    // ---- parse + flatten ----
    let doc = parse(DECK)?;
    let chip = doc.elaborate_top("pipeline", &ElaborateOptions::default())?;
    println!("flattened deck: {}", chip);

    // ---- pattern from the same deck ----
    let inv = doc.elaborate_cell("inv", &ElaborateOptions::default())?;
    let nand = doc.elaborate_cell("nand2", &ElaborateOptions::default())?;

    let invs = Matcher::new(&inv, &chip).find_all();
    let nands = Matcher::new(&nand, &chip).find_all();
    println!("inverters found: {}", invs.count());
    println!("nand2 found:     {}", nands.count());
    assert_eq!(invs.count(), 3);
    assert_eq!(nands.count(), 1);

    // ---- write the flattened circuit back out ----
    let text = write_netlist(&chip);
    println!("\nround-tripped SPICE:\n{text}");
    let doc2 = parse(&text)?;
    let chip2 = doc2.elaborate_top("pipeline", &ElaborateOptions::default())?;
    assert_eq!(chip.device_count(), chip2.device_count());
    assert_eq!(chip.net_count(), chip2.net_count());
    Ok(())
}
