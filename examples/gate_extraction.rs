//! Transistor→gate extraction: the paper's flagship application (§I).
//!
//! Builds a transistor-level datapath, runs the library extractor, and
//! prints the before/after netlists plus the extraction report.
//!
//! Run with: `cargo run --example gate_extraction`

use subgemini::Extractor;
use subgemini_netlist::NetlistStats;
use subgemini_workloads::{cells, gen};

fn main() {
    // A 4-bit ripple-carry adder followed by a 4-bit output register —
    // pure transistors, 4×28 + 4×18 = 184 devices.
    let adder = gen::ripple_adder(4);
    let sreg = gen::shift_register(4);
    let mut chip = adder.netlist.clone();
    // Splice the shift register in by re-instantiating its cells.
    for i in 0..4 {
        let d = chip.net(format!("s{i}"));
        let clk = chip.net("clk");
        let q = chip.net(format!("reg_q{i}"));
        subgemini_netlist::instantiate(&mut chip, &cells::dff(), &format!("reg{i}"), &[d, clk, q])
            .expect("register stamps cleanly");
    }
    drop(sreg);
    chip.set_name("alu_slice");

    println!("== before ==");
    println!("{}", NetlistStats::of(&chip));

    let mut extractor = Extractor::new();
    for cell in cells::library() {
        extractor.add_cell(cell);
    }
    let (gates, report) = extractor.extract(&chip).expect("extraction succeeds");

    println!("\n== after ==");
    println!("{}", NetlistStats::of(&gates));
    println!("\nper-cell instance counts (largest cells first):");
    for (cell, n) in &report.per_cell {
        if *n > 0 {
            println!("  {cell:<12} {n}");
        }
    }
    println!(
        "unabsorbed primitive devices: {}",
        report.unabsorbed_devices
    );
    println!("\ngate-level netlist:\n{}", gates);

    assert_eq!(report.count_of("full_adder"), 4);
    assert_eq!(report.count_of("dff"), 4);
    assert_eq!(report.unabsorbed_devices, 0);
}
