* analog bias distribution — mirrors and a two-stage amplifier
.global vdd gnd
.subckt nmirror iin iout
M1 iin iin gnd gnd nmos
M2 iout iin gnd gnd nmos
.ends
.subckt pmirror iin iout
M1 iin iin vdd vdd pmos
M2 iout iin vdd vdd pmos
.ends

* reference branch
Rref vdd nref 10k
Xm0 nref nbias1 nmirror
Xm1 nref nbias2 nmirror

* mirrored loads
Xp0 pbias tail1 pmirror

* five-transistor amplifier, written flat
M1 x inp tail ab nmos
M2 outn inn tail ab nmos
M3 x x vdd vdd pmos
M4 outn x vdd vdd pmos
M5 tail nbias1 gnd gnd nmos
Cload outn gnd 1p
.end
