* deliberately broken deck used by parser error tests
.subckt dangling a b
Mn1 a b
.ends
