* two-stage pipelined datapath slice — hand-written realistic deck
.global vdd gnd
.subckt inv a y
Mp y a vdd vdd pmos W=4u L=0.18u
Mn y a gnd gnd nmos W=2u L=0.18u
.ends

.subckt nand2 a b y
Mp1 y a vdd vdd pmos
Mp2 y b vdd vdd pmos
Mn1 mid a y gnd nmos
Mn2 gnd b mid gnd nmos
.ends

.subckt aoi21 a b c y
Mp1 mu a vdd vdd pmos
Mp2 mu b vdd vdd pmos
Mp3 y c mu vdd pmos
Mn1 md a y gnd nmos
Mn2 gnd b md gnd nmos
Mn3 y c gnd gnd nmos
.ends

.subckt dlatch d clk clkb q
Mtn x clk d gnd nmos
Mtp x clkb d vdd pmos
Mp1 qb x vdd vdd pmos
Mn1 qb x gnd gnd nmos
Mp2 q qb vdd vdd pmos
Mn2 q qb gnd gnd nmos
Mfn x clkb q gnd nmos
Mfp x clk q vdd pmos
.ends

* stage 1: combinational cone
Xg1 in1 in2 n1 nand2
Xg2 n1 in3 n2 nand2
Xa1 n2 in4 in1 n3 aoi21
Xi1 n3 n4 inv

* clock distribution
Xc1 clk clkb inv

* stage boundary latches
Xl1 n4 clk clkb q1 dlatch
Xl2 n2 clk clkb q2 dlatch

* stage 2
Xg3 q1 q2 out_pre nand2
Xi2 out_pre out inv
.end
