// one ALU bit-slice, structural gates only
module alu_slice(input a, b, cin, op, output sum, cout, y);
  wire axb, g1o, g2o, nop;
  // adder core
  xor  x1(axb, a, b);
  xor  x2(sum, axb, cin);
  nand n1(g1o, a, b);
  nand n2(g2o, axb, cin);
  nand n3(cout, g1o, g2o);
  // op mux: y = op ? sum : axb
  not  i1(nop, op);
  nand m1(g3o, sum, op);
  nand m2(g4o, axb, nop);
  nand m3(y, g3o, g4o);
endmodule

module alu2(input a0, a1, b0, b1, c0, op, output s0, s1, y0, y1, cout);
  wire c1;
  alu_slice u0(.a(a0), .b(b0), .cin(c0), .op(op), .sum(s0), .cout(c1), .y(y0));
  alu_slice u1(.a(a1), .b(b1), .cin(c1), .op(op), .sum(s1), .cout(cout), .y(y1));
endmodule
