//! The experiment implementations (DESIGN.md §4, E1–E10).

use std::time::Instant;

use subgemini::{MatchOptions, Matcher};
use subgemini_baseline::{find_all as dfs_find_all, DfsOptions};
use subgemini_netlist::{Netlist, NetlistStats};
use subgemini_workloads::{cells, gen, paper};

/// One row of the canonical results table (E4): a (circuit, cell)
/// matching run with all effort counters.
#[derive(Clone, Debug)]
pub struct MatchRow {
    /// Circuit name.
    pub circuit: String,
    /// Pattern cell name.
    pub cell: String,
    /// Main-circuit device count.
    pub g_devices: usize,
    /// Main-circuit net count.
    pub g_nets: usize,
    /// Pattern device count.
    pub s_devices: usize,
    /// Verified instances found.
    pub instances: usize,
    /// Expected instance count from the generator's ground truth
    /// (`usize::MAX` when unknown).
    pub expected: usize,
    /// Total devices covered by instances (the paper's linearity
    /// x-axis).
    pub matched_devices: usize,
    /// Candidate-vector size (Phase I filter output).
    pub cv: usize,
    /// Candidates rejected by Phase II.
    pub false_candidates: usize,
    /// Phase I relabeling iterations.
    pub p1_iters: usize,
    /// Phase II relabeling passes (all candidates).
    pub p2_passes: usize,
    /// Phase II ambiguity guesses.
    pub guesses: usize,
    /// Phase II backtracks.
    pub backtracks: usize,
    /// Wall time of the complete search, microseconds.
    pub micros: u128,
}

impl MatchRow {
    /// Formats the row for the text table.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.circuit.clone(),
            self.cell.clone(),
            self.g_devices.to_string(),
            self.g_nets.to_string(),
            self.s_devices.to_string(),
            self.instances.to_string(),
            if self.expected == usize::MAX {
                "-".into()
            } else {
                self.expected.to_string()
            },
            self.cv.to_string(),
            self.false_candidates.to_string(),
            self.p1_iters.to_string(),
            self.p2_passes.to_string(),
            self.guesses.to_string(),
            self.backtracks.to_string(),
            self.micros.to_string(),
        ]
    }

    /// Table headers matching [`MatchRow::cells`].
    pub fn headers() -> &'static [&'static str] {
        &[
            "circuit", "cell", "G.dev", "G.net", "S.dev", "found", "expect", "|CV|", "false",
            "P1.it", "P2.pass", "guess", "backtk", "time_us",
        ]
    }
}

/// Runs one (pattern, main) search and collects a [`MatchRow`].
pub fn run_match(
    circuit: &str,
    main: &Netlist,
    cell: &Netlist,
    expected: usize,
    opts: &MatchOptions,
) -> MatchRow {
    let stats = NetlistStats::of(main);
    let start = Instant::now();
    let outcome = Matcher::new(cell, main).options(opts.clone()).find_all();
    let micros = start.elapsed().as_micros();
    MatchRow {
        circuit: circuit.to_string(),
        cell: cell.name().to_string(),
        g_devices: stats.devices,
        g_nets: stats.nets,
        s_devices: cell.device_count(),
        instances: outcome.count(),
        expected,
        matched_devices: outcome.matched_device_total(),
        cv: outcome.phase1.cv_size,
        false_candidates: outcome.phase2.false_candidates,
        p1_iters: outcome.phase1.iterations,
        p2_passes: outcome.phase2.passes,
        guesses: outcome.phase2.guesses,
        backtracks: outcome.phase2.backtracks,
        micros,
    }
}

/// E4: the canonical results table over the workload suite.
///
/// `scale` multiplies the circuit sizes (1 = quick, 4+ = paper-scale).
pub fn results_table(scale: usize) -> Vec<MatchRow> {
    let scale = scale.max(1);
    let opts = MatchOptions::default();
    let mut rows = Vec::new();

    let adder = gen::ripple_adder(16 * scale);
    rows.push(run_match(
        "ripple_adder",
        &adder.netlist,
        &cells::full_adder(),
        adder.structural_count("full_adder"),
        &opts,
    ));
    rows.push(run_match(
        "ripple_adder",
        &adder.netlist,
        &cells::inv(),
        adder.structural_count("inv"),
        &opts,
    ));

    let sreg = gen::shift_register(12 * scale);
    rows.push(run_match(
        "shift_register",
        &sreg.netlist,
        &cells::dff(),
        sreg.structural_count("dff"),
        &opts,
    ));
    rows.push(run_match(
        "shift_register",
        &sreg.netlist,
        &cells::dlatch(),
        sreg.structural_count("dlatch"),
        &opts,
    ));
    rows.push(run_match(
        "shift_register",
        &sreg.netlist,
        &cells::inv(),
        sreg.structural_count("inv"),
        &opts,
    ));

    let mult = gen::array_multiplier(4 * scale);
    rows.push(run_match(
        "multiplier",
        &mult.netlist,
        &cells::full_adder(),
        mult.structural_count("full_adder"),
        &opts,
    ));
    rows.push(run_match(
        "multiplier",
        &mult.netlist,
        &cells::nand2(),
        mult.structural_count("nand2"),
        &opts,
    ));

    let sram = gen::sram_array(8 * scale, 16 * scale);
    rows.push(run_match(
        "sram_array",
        &sram.netlist,
        &cells::sram6t(),
        sram.structural_count("sram6t"),
        &opts,
    ));

    let dec = gen::decoder(3);
    rows.push(run_match(
        "decoder",
        &dec.netlist,
        &cells::nand3(),
        dec.structural_count("nand3"),
        &opts,
    ));

    let soup = gen::random_soup(1993, 60 * scale);
    for cell in [
        cells::nand2(),
        cells::xor2(),
        cells::dff(),
        cells::full_adder(),
    ] {
        let expected = soup.structural_count(cell.name());
        rows.push(run_match(
            "random_soup",
            &soup.netlist,
            &cell,
            expected,
            &opts,
        ));
    }
    rows
}

/// One point of the linearity experiment (E5).
#[derive(Clone, Debug)]
pub struct LinearityRow {
    /// Workload family.
    pub workload: String,
    /// Size parameter (bits / gates).
    pub n: usize,
    /// Main-circuit devices.
    pub g_devices: usize,
    /// Total devices inside matched instances.
    pub matched_devices: usize,
    /// Wall time in microseconds.
    pub micros: u128,
    /// Nanoseconds per matched device — flat ⇔ linear scaling.
    pub ns_per_matched_device: u128,
}

impl LinearityRow {
    /// Formats for tables/CSV.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.workload.clone(),
            self.n.to_string(),
            self.g_devices.to_string(),
            self.matched_devices.to_string(),
            self.micros.to_string(),
            self.ns_per_matched_device.to_string(),
        ]
    }

    /// Table headers.
    pub fn headers() -> &'static [&'static str] {
        &[
            "workload",
            "n",
            "G.dev",
            "matched.dev",
            "time_us",
            "ns_per_dev",
        ]
    }
}

fn linearity_point(workload: &str, n: usize, main: &Netlist, cell: &Netlist) -> LinearityRow {
    let start = Instant::now();
    let outcome = Matcher::new(cell, main).find_all();
    let micros = start.elapsed().as_micros();
    let matched = outcome.matched_device_total().max(1);
    LinearityRow {
        workload: workload.to_string(),
        n,
        g_devices: main.device_count(),
        matched_devices: matched,
        micros,
        ns_per_matched_device: micros.saturating_mul(1000) / matched as u128,
    }
}

/// E5: time vs total matched devices across three workload families.
/// The paper's headline claim is that `ns_per_matched_device` stays
/// roughly flat as `n` grows.
pub fn linearity_series(sizes: &[usize]) -> Vec<LinearityRow> {
    let mut rows = Vec::new();
    for &n in sizes {
        let adder = gen::ripple_adder(n);
        rows.push(linearity_point(
            "adder/full_adder",
            n,
            &adder.netlist,
            &cells::full_adder(),
        ));
    }
    for &n in sizes {
        let sreg = gen::shift_register(n);
        rows.push(linearity_point(
            "shiftreg/dff",
            n,
            &sreg.netlist,
            &cells::dff(),
        ));
    }
    for &n in sizes {
        let soup = gen::random_soup(77, n * 4);
        rows.push(linearity_point(
            "soup/nand2",
            n * 4,
            &soup.netlist,
            &cells::nand2(),
        ));
    }
    rows
}

/// One row of the SubGemini-vs-exhaustive-DFS comparison (E6).
#[derive(Clone, Debug)]
pub struct BaselineRow {
    /// Workload family.
    pub workload: String,
    /// Size parameter.
    pub n: usize,
    /// Instances found (must agree between engines).
    pub instances: usize,
    /// SubGemini wall time, microseconds.
    pub sub_micros: u128,
    /// DFS wall time, microseconds.
    pub dfs_micros: u128,
    /// `true` when the DFS step budget ran out (time is then a lower
    /// bound).
    pub dfs_capped: bool,
}

impl BaselineRow {
    /// Formats for tables.
    pub fn cells(&self) -> Vec<String> {
        let ratio = if self.sub_micros == 0 {
            "-".to_string()
        } else {
            format!("{:.1}", self.dfs_micros as f64 / self.sub_micros as f64)
        };
        vec![
            self.workload.clone(),
            self.n.to_string(),
            self.instances.to_string(),
            self.sub_micros.to_string(),
            format!(
                "{}{}",
                self.dfs_micros,
                if self.dfs_capped { "+" } else { "" }
            ),
            ratio,
        ]
    }

    /// Table headers.
    pub fn headers() -> &'static [&'static str] {
        &[
            "workload",
            "n",
            "found",
            "subgemini_us",
            "dfs_us",
            "dfs/sub",
        ]
    }
}

/// E6: both engines on the same workloads — a sparse one (few
/// instances: DFS's type-anchoring is competitive) and two repetitive
/// fabrics (everything looks alike: SubGemini's global filtering wins
/// by a growing factor). The paper's qualitative claim is the fabric
/// regime; reporting both makes the crossover visible.
pub fn baseline_rows(sizes: &[usize]) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    let mut run = |workload: &str, n: usize, main: &Netlist, cell: &Netlist| {
        let start = Instant::now();
        let sub = Matcher::new(cell, main).find_all();
        let sub_micros = start.elapsed().as_micros();
        let start = Instant::now();
        let dfs = dfs_find_all(
            cell,
            main,
            &DfsOptions {
                max_steps: 200_000_000,
                ..DfsOptions::default()
            },
        );
        let dfs_micros = start.elapsed().as_micros();
        assert_eq!(
            sub.count(),
            dfs.instances.len(),
            "engines disagree on {workload}({n})"
        );
        rows.push(BaselineRow {
            workload: workload.to_string(),
            n,
            instances: sub.count(),
            sub_micros,
            dfs_micros,
            dfs_capped: dfs.budget_exhausted,
        });
    };
    for &n in sizes {
        let soup = gen::random_soup(4242, n);
        run("soup/nand2", n, &soup.netlist, &cells::nand2());
    }
    for &n in sizes {
        let side = (n as f64).sqrt().ceil() as usize * 4;
        let sram = gen::sram_array(side, side);
        run("sram/sram6t", side * side, &sram.netlist, &cells::sram6t());
    }
    for &n in sizes {
        let sreg = gen::shift_register(n);
        run("shiftreg/dff", n, &sreg.netlist, &cells::dff());
    }
    rows
}

/// One row of the Phase I filter-quality experiment (E7).
#[derive(Clone, Debug)]
pub struct FilterRow {
    /// Circuit name.
    pub circuit: String,
    /// Pattern cell.
    pub cell: String,
    /// Candidate-vector size.
    pub cv: usize,
    /// True instances.
    pub instances: usize,
    /// Candidates per instance (1.0 = perfect filter).
    pub cands_per_instance: f64,
}

impl FilterRow {
    /// Formats for tables.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.circuit.clone(),
            self.cell.clone(),
            self.cv.to_string(),
            self.instances.to_string(),
            format!("{:.2}", self.cands_per_instance),
        ]
    }

    /// Table headers.
    pub fn headers() -> &'static [&'static str] {
        &["circuit", "cell", "|CV|", "instances", "CV/inst"]
    }
}

/// E7: how tight the Phase I filter is across workloads.
pub fn filter_rows(scale: usize) -> Vec<FilterRow> {
    let scale = scale.max(1);
    let mut rows = Vec::new();
    let mut push = |circuit: &str, main: &Netlist, cell: &Netlist| {
        let outcome = Matcher::new(cell, main).find_all();
        let inst = outcome.count();
        rows.push(FilterRow {
            circuit: circuit.to_string(),
            cell: cell.name().to_string(),
            cv: outcome.phase1.cv_size,
            instances: inst,
            cands_per_instance: if inst == 0 {
                outcome.phase1.cv_size as f64
            } else {
                outcome.phase1.cv_size as f64 / inst as f64
            },
        });
    };
    let adder = gen::ripple_adder(16 * scale);
    push("ripple_adder", &adder.netlist, &cells::full_adder());
    let sreg = gen::shift_register(12 * scale);
    push("shift_register", &sreg.netlist, &cells::dff());
    let sram = gen::sram_array(8 * scale, 8 * scale);
    push("sram_array", &sram.netlist, &cells::sram6t());
    let soup = gen::random_soup(5, 50 * scale);
    push("random_soup", &soup.netlist, &cells::nand2());
    push("random_soup", &soup.netlist, &cells::xor2());
    push("random_soup", &soup.netlist, &cells::dff());
    // Adversarial pressure: fields of near-miss mutants contain zero
    // true instances; every surviving candidate is a false positive the
    // filter could not reject.
    for cell in [cells::nand2(), cells::dff(), cells::full_adder()] {
        let field = gen::near_miss_field(&cell, 20 * scale, 99);
        push("near_miss_field", &field.netlist, &cell);
    }
    rows
}

/// One row of the special-nets ablation (E8).
#[derive(Clone, Debug)]
pub struct SpecialNetsRow {
    /// Circuit name.
    pub circuit: String,
    /// Pattern cell.
    pub cell: String,
    /// Whether special nets were honored.
    pub respected: bool,
    /// Instances found.
    pub instances: usize,
    /// Candidate-vector size.
    pub cv: usize,
    /// Wall time, microseconds.
    pub micros: u128,
}

impl SpecialNetsRow {
    /// Formats for tables.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.circuit.clone(),
            self.cell.clone(),
            if self.respected { "yes" } else { "no" }.into(),
            self.instances.to_string(),
            self.cv.to_string(),
            self.micros.to_string(),
        ]
    }

    /// Table headers.
    pub fn headers() -> &'static [&'static str] {
        &["circuit", "cell", "specials", "found", "|CV|", "time_us"]
    }
}

/// E8 (+E3): instances and runtime with and without special-net
/// treatment, including the Fig. 7 inverter-in-NAND demonstration.
pub fn special_nets_rows(scale: usize) -> Vec<SpecialNetsRow> {
    let scale = scale.max(1);
    let mut rows = Vec::new();
    let mut push = |circuit: &str, main: &Netlist, cell: &Netlist, respect: bool| {
        let opts = if respect {
            MatchOptions::default()
        } else {
            MatchOptions::ignore_globals()
        };
        let start = Instant::now();
        let outcome = Matcher::new(cell, main).options(opts).find_all();
        rows.push(SpecialNetsRow {
            circuit: circuit.to_string(),
            cell: cell.name().to_string(),
            respected: respect,
            instances: outcome.count(),
            cv: outcome.phase1.cv_size,
            micros: start.elapsed().as_micros(),
        });
    };
    let nand = paper::fig7_nand();
    let inv = paper::fig7_inverter();
    push("fig7_nand", &nand, &inv, true);
    push("fig7_nand", &nand, &inv, false);
    let soup = gen::random_soup(99, 40 * scale);
    push("random_soup", &soup.netlist, &cells::inv(), true);
    push("random_soup", &soup.netlist, &cells::inv(), false);
    push("random_soup", &soup.netlist, &cells::dff(), true);
    push("random_soup", &soup.netlist, &cells::dff(), false);
    rows
}

/// Result of the Fig. 5 experiment (E2).
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Instances found (1).
    pub instances: usize,
    /// Guesses made (≥1: the symmetric pair must be guessed).
    pub guesses: usize,
    /// Backtracks (0: either guess is right).
    pub backtracks: usize,
}

/// E2: the symmetric-ambiguity statistics of Fig. 5.
pub fn fig5_row() -> Fig5Row {
    let (p, m) = paper::fig5_pair();
    let outcome = Matcher::new(&p, &m).find_all();
    Fig5Row {
        instances: outcome.count(),
        guesses: outcome.phase2.guesses,
        backtracks: outcome.phase2.backtracks,
    }
}

/// One row of the extraction experiment (E9).
#[derive(Clone, Debug)]
pub struct ExtractRow {
    /// Circuit name.
    pub circuit: String,
    /// Input transistor count.
    pub transistors: usize,
    /// Output composite (gate) count.
    pub gates: usize,
    /// Primitive devices left unabsorbed.
    pub unabsorbed: usize,
    /// Wall time, microseconds.
    pub micros: u128,
}

impl ExtractRow {
    /// Formats for tables.
    pub fn cells(&self) -> Vec<String> {
        vec![
            self.circuit.clone(),
            self.transistors.to_string(),
            self.gates.to_string(),
            self.unabsorbed.to_string(),
            self.micros.to_string(),
        ]
    }

    /// Table headers.
    pub fn headers() -> &'static [&'static str] {
        &["circuit", "transistors", "gates", "unabsorbed", "time_us"]
    }
}

/// E9: full-library gate extraction over the workload suite.
pub fn extraction_rows(scale: usize) -> Vec<ExtractRow> {
    let scale = scale.max(1);
    let mut rows = Vec::new();
    let mut run = |circuit: &str, main: &Netlist| {
        let mut extractor = subgemini::Extractor::new();
        for cell in cells::library() {
            extractor.add_cell(cell);
        }
        let start = Instant::now();
        let (gates, report) = extractor.extract(main).expect("extraction rebuild");
        rows.push(ExtractRow {
            circuit: circuit.to_string(),
            transistors: main.device_count(),
            gates: report.instances.len(),
            unabsorbed: report.unabsorbed_devices,
            micros: start.elapsed().as_micros(),
        });
        let _ = gates;
    };
    let adder = gen::ripple_adder(8 * scale);
    run("ripple_adder", &adder.netlist);
    let soup = gen::random_soup(2024, 30 * scale);
    run("random_soup", &soup.netlist);
    let sram = gen::sram_array(4 * scale, 8 * scale);
    run("sram_array", &sram.netlist);
    rows
}

/// One row of the library-survey experiment (E11): shared vs
/// per-pattern Phase I.
#[derive(Clone, Debug)]
pub struct SurveyRow {
    /// Main circuit.
    pub circuit: String,
    /// Cells surveyed.
    pub cells: usize,
    /// Wall time with the shared G-label trace, microseconds.
    pub shared_micros: u128,
    /// Wall time running Phase I per pattern, microseconds.
    pub individual_micros: u128,
}

impl SurveyRow {
    /// Formats for tables.
    pub fn cells_row(&self) -> Vec<String> {
        let ratio = if self.shared_micros == 0 {
            "-".into()
        } else {
            format!(
                "{:.1}",
                self.individual_micros as f64 / self.shared_micros as f64
            )
        };
        vec![
            self.circuit.clone(),
            self.cells.to_string(),
            self.shared_micros.to_string(),
            self.individual_micros.to_string(),
            ratio,
        ]
    }

    /// Table headers.
    pub fn headers() -> &'static [&'static str] {
        &["circuit", "cells", "shared_us", "individual_us", "speedup"]
    }
}

/// E11: Phase I library survey with the shared main-graph label trace
/// (this reproduction's optimization; results are asserted identical).
pub fn survey_rows(scale: usize) -> Vec<SurveyRow> {
    let scale = scale.max(1);
    let library = cells::library();
    let refs: Vec<&Netlist> = library.iter().collect();
    let mut rows = Vec::new();
    let mut run = |circuit: &str, main: &Netlist| {
        let start = Instant::now();
        let shared = subgemini::candidates::generate_many(&refs, main);
        let shared_micros = start.elapsed().as_micros();
        let start = Instant::now();
        let individual: Vec<_> = refs
            .iter()
            .map(|p| subgemini::candidates::generate(p, main))
            .collect();
        let individual_micros = start.elapsed().as_micros();
        for (a, b) in shared.iter().zip(&individual) {
            assert_eq!(a.candidates, b.candidates, "survey result diverged");
        }
        rows.push(SurveyRow {
            circuit: circuit.to_string(),
            cells: refs.len(),
            shared_micros,
            individual_micros,
        });
    };
    let soup = gen::random_soup(1993, 120 * scale);
    run("random_soup", &soup.netlist);
    let adder = gen::ripple_adder(32 * scale);
    run("ripple_adder", &adder.netlist);
    let sram = gen::sram_array(16 * scale, 16 * scale);
    run("sram_array", &sram.netlist);
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_table_matches_ground_truth() {
        for row in results_table(1) {
            assert_eq!(
                row.instances, row.expected,
                "{}:{} found {} expected {}",
                row.circuit, row.cell, row.instances, row.expected
            );
        }
    }

    #[test]
    fn linearity_rows_have_positive_matches() {
        for row in linearity_series(&[2, 4]) {
            assert!(row.matched_devices > 0, "{row:?}");
        }
    }

    #[test]
    fn baseline_rows_agree_between_engines() {
        // The assert inside baseline_rows is the real check.
        let rows = baseline_rows(&[20]);
        assert_eq!(rows.len(), 3); // soup + sram + shiftreg
    }

    #[test]
    fn filter_is_tight_on_structured_circuits() {
        for row in filter_rows(1) {
            if row.instances > 0 && row.circuit != "random_soup" && row.circuit != "near_miss_field"
            {
                assert!(
                    row.cands_per_instance <= 2.0,
                    "filter unexpectedly loose: {row:?}"
                );
            }
            if row.circuit == "near_miss_field" {
                assert_eq!(row.instances, 0, "mutants must never match: {row:?}");
            }
        }
    }

    #[test]
    fn fig5_has_guess_but_no_backtrack() {
        let r = fig5_row();
        assert_eq!(r.instances, 1);
        assert!(r.guesses >= 1);
        assert_eq!(r.backtracks, 0);
    }

    #[test]
    fn special_nets_change_fig7_count() {
        let rows = special_nets_rows(1);
        let fig7: Vec<_> = rows.iter().filter(|r| r.circuit == "fig7_nand").collect();
        assert_eq!(fig7.len(), 2);
        let with = fig7.iter().find(|r| r.respected).unwrap();
        let without = fig7.iter().find(|r| !r.respected).unwrap();
        assert_eq!(with.instances, 0);
        assert_eq!(without.instances, 1);
    }

    #[test]
    fn survey_rows_assert_equality_internally() {
        let rows = survey_rows(1);
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn extraction_covers_structured_circuits() {
        for row in extraction_rows(1) {
            if row.circuit != "random_soup" {
                assert_eq!(row.unabsorbed, 0, "{row:?}");
            }
            assert!(row.gates > 0);
        }
    }
}
