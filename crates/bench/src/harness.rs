//! Minimal self-contained benchmark harness.
//!
//! Exposes the small slice of the Criterion API the benches in
//! `benches/` use (`Criterion`, `BenchmarkGroup`, `Bencher`,
//! `BenchmarkId`, `Throughput`, plus the `criterion_group!` /
//! `criterion_main!` macros) so the experiment files read identically
//! to their statistics-grade counterparts while depending on nothing
//! outside the standard library.
//!
//! Measurement model: each benchmark id is calibrated with a single
//! timed iteration, then sampled `SAMPLES` times with an iteration
//! count sized so one sample takes roughly `TARGET_SAMPLE_TIME`; the
//! reported figure is the median nanoseconds per iteration. Set
//! `SUBG_BENCH_FAST=1` to run one sample of one iteration per id
//! (useful as a smoke test).

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

pub use crate::{criterion_group, criterion_main};

const SAMPLES: usize = 7;
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(10);
const MAX_ITERS: u64 = 10_000;

fn fast_mode() -> bool {
    std::env::var_os("SUBG_BENCH_FAST").is_some_and(|v| v != "0")
}

/// Top-level driver handed to each registered benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive an elements/second figure.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Accepted for Criterion compatibility; sampling here is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for Criterion compatibility; sampling here is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_one(&name, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a bare function name.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, name);
        run_one(&name, self.throughput, &mut f);
        self
    }

    /// Ends the group (no-op; provided for source compatibility).
    pub fn finish(self) {}
}

/// Timer handle passed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, discarding (but not optimizing out)
    /// each result.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `<function>/<parameter>` form.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Work per iteration, for derived rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let median_ns = measure_median_ns(f);
    let rate = throughput.map(|t| {
        let (n, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let per_sec = if median_ns == 0 {
            f64::INFINITY
        } else {
            n as f64 * 1e9 / median_ns as f64
        };
        format!("  {per_sec:.0} {unit}")
    });
    println!(
        "bench {name:<48} {:>12} ns/iter{}",
        median_ns,
        rate.unwrap_or_default()
    );
}

/// Calibrates then samples a benchmark body; returns median ns/iter.
pub fn measure_median_ns(f: &mut dyn FnMut(&mut Bencher)) -> u64 {
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b); // warmup + calibration
    if fast_mode() {
        return b.elapsed.as_nanos() as u64;
    }
    let per = b.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET_SAMPLE_TIME.as_nanos() / per.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as u64 / iters.max(1));
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Registers benchmark functions under a group name, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `fn main` running the registered groups, mirroring
/// Criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("dfs", 40).0, "dfs/40");
        assert_eq!(BenchmarkId::from_parameter(16).0, "16");
    }

    #[test]
    fn measure_reports_positive_time() {
        std::env::set_var("SUBG_BENCH_FAST", "1");
        let ns =
            measure_median_ns(&mut |b| b.iter(|| std::hint::black_box((0..100u64).sum::<u64>())));
        let _ = ns; // zero is possible on coarse clocks; just must not panic
    }
}
