//! Experiment harness for the SubGemini reproduction.
//!
//! Every table and figure of the paper's evaluation maps to a function
//! here (see DESIGN.md §4 for the experiment index). The `paper_tables`
//! binary renders them as text tables / CSV; the benches in `benches/`
//! measure the same workloads under the internal timing harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod table;

pub use experiments::*;
