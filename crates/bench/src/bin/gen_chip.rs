//! `gen_chip` — materialize a generated hierarchical chip on disk.
//!
//! CI smoke helper: writes the flat transistor netlist, its multi-level
//! cell library, and the exact planted ground truth, so a shell step
//! can drive `subg hierarchize` end to end and diff found against
//! planted per level (EXPERIMENTS.md E18).
//!
//! Usage:
//!
//! ```text
//! gen_chip --out DIR [--seed N] [--levels N] [--devices N]
//! ```
//!
//! Emits `DIR/flat.sp`, `DIR/cells.sp` and `DIR/expected.json`:
//!
//! ```text
//! {"seed": 7, "levels": 3, "cells": {"inv": 12, ...}}
//! ```
//!
//! `cells` maps every library cell to the instance count a full
//! bottom-up extraction must find (top-level plants plus nested
//! occurrences), keyed the same way as the `hierarchize` JSON report.

use subgemini::metrics::json::Value;
use subgemini_netlist::Netlist;
use subgemini_workloads::gen;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_dir: Option<String> = None;
    let mut seed: u64 = 7;
    let mut levels: usize = 3;
    let mut devices: usize = 2_000;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut need = |name: &str| {
            it.next()
                .cloned()
                .unwrap_or_else(|| die(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--out" => out_dir = Some(need("--out")),
            "--seed" => seed = parse(&need("--seed"), "--seed"),
            "--levels" => levels = parse(&need("--levels"), "--levels"),
            "--devices" => devices = parse(&need("--devices"), "--devices"),
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    let Some(dir) = out_dir else {
        die("usage: gen_chip --out DIR [--seed N] [--levels N] [--devices N]")
    };

    let chip = gen::hierarchical_chip(seed, levels, devices);
    std::fs::create_dir_all(&dir).unwrap_or_else(|e| die(&format!("{dir}: {e}")));
    write(
        &format!("{dir}/flat.sp"),
        &subgemini_spice::write_netlist(&chip.generated.netlist),
    );
    // An empty top yields just the `.subckt` definitions: the library
    // deck `subg hierarchize --library` re-elaborates hierarchically.
    write(
        &format!("{dir}/cells.sp"),
        &subgemini_spice::write_hierarchical(&Netlist::new("cells"), &chip.library),
    );
    let cells: Vec<(String, Value)> = chip
        .expected
        .iter()
        .map(|(cell, &count)| (cell.clone(), Value::int(count as u64)))
        .collect();
    let expected = Value::Obj(vec![
        ("seed".into(), Value::int(seed)),
        ("levels".into(), Value::int(chip.level_cells.len() as u64)),
        ("devices".into(), {
            Value::int(chip.generated.netlist.device_count() as u64)
        }),
        ("cells".into(), Value::Obj(cells)),
    ]);
    write(&format!("{dir}/expected.json"), &expected.pretty());
    eprintln!(
        "gen_chip: seed {seed}, {} level(s), {} device(s) -> {dir}/",
        chip.level_cells.len(),
        chip.generated.netlist.device_count()
    );
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("{flag}: bad value `{s}`")))
}

fn write(path: &str, text: &str) {
    std::fs::write(path, text).unwrap_or_else(|e| die(&format!("{path}: {e}")));
}

fn die(msg: &str) -> ! {
    eprintln!("gen_chip: {msg}");
    std::process::exit(2)
}
