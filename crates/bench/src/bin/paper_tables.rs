//! Regenerates every table and figure of the SubGemini paper's
//! evaluation as text tables / CSV series.
//!
//! Usage:
//!
//! ```text
//! paper_tables [--scale N] [--results] [--linearity] [--baseline]
//!              [--filter] [--special] [--fig5] [--extract] [--all]
//! ```
//!
//! With no selection flags, `--all` is assumed. `--scale` multiplies
//! workload sizes (default 2; use 4+ for paper-scale circuits).

use subgemini_bench::table;
use subgemini_bench::{
    baseline_rows, extraction_rows, fig5_row, filter_rows, linearity_series, results_table,
    special_nets_rows, survey_rows, BaselineRow, ExtractRow, FilterRow, LinearityRow, MatchRow,
    SpecialNetsRow, SurveyRow,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 2usize;
    let mut selected: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale takes a positive integer");
            }
            "--results" | "--linearity" | "--baseline" | "--filter" | "--special" | "--fig5"
            | "--extract" | "--survey" => selected.push(Box::leak(a.clone().into_boxed_str())),
            "--all" => selected.clear(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let all = selected.is_empty();
    let want = |flag: &str| all || selected.contains(&flag);

    if want("--results") {
        println!("== E4: results table (per circuit × cell) ==");
        let rows = results_table(scale);
        let cells: Vec<Vec<String>> = rows.iter().map(MatchRow::cells).collect();
        println!("{}", table::render(MatchRow::headers(), &cells));
    }
    if want("--linearity") {
        println!("== E5: runtime vs total matched devices (CSV series) ==");
        let sizes: Vec<usize> = [4, 8, 16, 32, 64]
            .iter()
            .map(|&n| n * scale.max(1))
            .collect();
        let rows = linearity_series(&sizes);
        let cells: Vec<Vec<String>> = rows.iter().map(LinearityRow::cells).collect();
        println!("{}", table::csv(LinearityRow::headers(), &cells));
        // Flatness summary per workload family.
        println!("linearity check: ns/matched-device should stay roughly flat per family");
        for family in ["adder/full_adder", "shiftreg/dff", "soup/nand2"] {
            let per: Vec<u128> = rows
                .iter()
                .filter(|r| r.workload == family)
                .map(|r| r.ns_per_matched_device)
                .collect();
            if let (Some(min), Some(max)) = (per.iter().min(), per.iter().max()) {
                println!(
                    "  {family}: min {min} ns/dev, max {max} ns/dev, spread x{:.1}",
                    *max as f64 / (*min).max(1) as f64
                );
            }
        }
        println!();
    }
    if want("--baseline") {
        println!("== E6: SubGemini vs exhaustive DFS ==");
        let sizes: Vec<usize> = [10, 20, 40, 80].iter().map(|&n| n * scale.max(1)).collect();
        let rows = baseline_rows(&sizes);
        let cells: Vec<Vec<String>> = rows.iter().map(BaselineRow::cells).collect();
        println!("{}", table::render(BaselineRow::headers(), &cells));
    }
    if want("--filter") {
        println!("== E7: Phase I candidate-filter quality ==");
        let rows = filter_rows(scale);
        let cells: Vec<Vec<String>> = rows.iter().map(FilterRow::cells).collect();
        println!("{}", table::render(FilterRow::headers(), &cells));
    }
    if want("--special") {
        println!("== E3/E8: special-net (Vdd/GND) treatment ==");
        let rows = special_nets_rows(scale);
        let cells: Vec<Vec<String>> = rows.iter().map(SpecialNetsRow::cells).collect();
        println!("{}", table::render(SpecialNetsRow::headers(), &cells));
    }
    if want("--fig5") {
        println!("== E2: Fig. 5 symmetric ambiguity ==");
        let r = fig5_row();
        println!(
            "instances {}  guesses {}  backtracks {}  (paper: guess required, no backtracking)\n",
            r.instances, r.guesses, r.backtracks
        );
    }
    if want("--survey") {
        println!("== E11: Phase I library survey (shared G-label trace) ==");
        let rows = survey_rows(scale);
        let cells: Vec<Vec<String>> = rows.iter().map(SurveyRow::cells_row).collect();
        println!("{}", table::render(SurveyRow::headers(), &cells));
    }
    if want("--extract") {
        println!("== E9: transistor→gate extraction ==");
        let rows = extraction_rows(scale);
        let cells: Vec<Vec<String>> = rows.iter().map(ExtractRow::cells).collect();
        println!("{}", table::render(ExtractRow::headers(), &cells));
    }
}
