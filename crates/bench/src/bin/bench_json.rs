//! Machine-readable phase-timing benchmark: runs the linearity sweep
//! and the library survey with metrics collection on, then writes a
//! single JSON artifact (`BENCH_phase_timings.json` by default) whose
//! schema is documented in EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! bench_json [--scale N] [--threads N] [--out FILE] [--check BASELINE] [--budget-curve]
//! ```
//!
//! `--scale` multiplies the sweep sizes (default 1), `--threads`
//! selects the Phase II worker count (default 1: serial, deterministic
//! busy times), `--out -` writes the report to stdout.
//! `--budget-curve` appends the E13 truncation-vs-budget sweep
//! (EXPERIMENTS.md) — opt-in, so the committed baseline carries no
//! budget section.
//!
//! `--check BASELINE` compares the fresh linearity sweep against a
//! committed report: the sum of `compile_ns + phase1_refine_ns +
//! phase1_select_ns` across the sweep must not exceed 2x the
//! baseline's, else the process exits 1 (the CI regression smoke).
//! Unless `--out` is also given, a check run writes nothing.

use std::collections::BTreeMap;

use subgemini::metrics::json::Value;
use subgemini::metrics::{MetricsReport, REPORT_SCHEMA_VERSION};
use subgemini::{MatchOptions, Matcher};
use subgemini_netlist::Netlist;
use subgemini_workloads::{cells, gen};

fn metrics_value(m: &MetricsReport) -> Value {
    Value::Obj(vec![
        ("total_ns".into(), Value::int(m.total_ns)),
        ("compile_ns".into(), Value::int(m.compile_ns)),
        ("phase1_refine_ns".into(), Value::int(m.phase1_refine_ns)),
        ("phase1_select_ns".into(), Value::int(m.phase1_select_ns)),
        ("phase2_verify_ns".into(), Value::int(m.phase2_verify_ns)),
        (
            "phase2_max_candidate_ns".into(),
            Value::int(m.phase2_max_candidate_ns),
        ),
        ("phase2_wall_ns".into(), Value::int(m.phase2_wall_ns)),
        ("threads_used".into(), Value::int(m.threads_used as u64)),
        (
            "worker_utilization".into(),
            Value::Num(m.worker_utilization()),
        ),
        // Additive since schema v1: log2-bucket latency/depth quantiles.
        ("verify_ns_hist".into(), m.verify_ns_hist.to_json()),
        (
            "backtrack_depth_hist".into(),
            m.backtrack_depth_hist.to_json(),
        ),
    ])
}

fn run_one(pattern: &Netlist, main: &Netlist, threads: usize) -> (u64, u64, MetricsReport) {
    let outcome = Matcher::new(pattern, main)
        .options(MatchOptions {
            collect_metrics: true,
            threads,
            ..MatchOptions::default()
        })
        .find_all();
    let found = outcome.count() as u64;
    let cv = outcome.phase1.cv_size as u64;
    let metrics = outcome.metrics.expect("collect_metrics was set");
    (found, cv, metrics)
}

/// Runtime vs circuit size on ripple adders (the paper's Fig. 5
/// linearity claim): matched work should grow linearly with the number
/// of planted full adders.
fn linearity(scale: usize, threads: usize) -> Value {
    let pattern = cells::full_adder();
    let mut rows = Vec::new();
    for &bits in &[4usize, 8, 16, 32] {
        let bits = bits * scale.max(1);
        let g = gen::ripple_adder(bits);
        let (found, cv, m) = run_one(&pattern, &g.netlist, threads);
        rows.push(Value::Obj(vec![
            ("bits".into(), Value::int(bits as u64)),
            (
                "main_devices".into(),
                Value::int(g.netlist.device_count() as u64),
            ),
            (
                "planted".into(),
                Value::int(g.planted_count("full_adder") as u64),
            ),
            ("found".into(), Value::int(found)),
            ("cv_size".into(), Value::int(cv)),
            ("metrics".into(), metrics_value(&m)),
        ]));
    }
    Value::Arr(rows)
}

/// Every library cell against one mixed circuit: per-pattern timing
/// split plus candidate-filter quality (|CV| vs instances found).
fn survey(scale: usize, threads: usize) -> Value {
    let g = gen::ripple_adder(8 * scale.max(1));
    let mut rows = Vec::new();
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for cell in cells::library() {
        let (found, cv, m) = run_one(&cell, &g.netlist, threads);
        *totals.entry("total_ns").or_insert(0) += m.total_ns;
        *totals.entry("phase2_verify_ns").or_insert(0) += m.phase2_verify_ns;
        rows.push(Value::Obj(vec![
            ("cell".into(), Value::Str(cell.name().to_string())),
            (
                "pattern_devices".into(),
                Value::int(cell.device_count() as u64),
            ),
            ("cv_size".into(), Value::int(cv)),
            ("found".into(), Value::int(found)),
            ("metrics".into(), metrics_value(&m)),
        ]));
    }
    Value::Obj(vec![
        (
            "main_devices".into(),
            Value::int(g.netlist.device_count() as u64),
        ),
        (
            "aggregate".into(),
            Value::Obj(
                totals
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), Value::int(v)))
                    .collect(),
            ),
        ),
        ("cells".into(), Value::Arr(rows)),
    ])
}

/// Truncation-vs-budget curve (EXPERIMENTS.md E13): one stress
/// workload (DFF in a shift register) swept across effort budgets from
/// 1% to 100% of the full-run cost, recording how many instances
/// survive each cut. Opt-in via `--budget-curve`: the section is
/// deliberately absent from the committed baseline.
fn budget_curve(scale: usize, threads: usize) -> Value {
    use subgemini::{Completeness, WorkBudget};
    let pattern = cells::dff();
    let g = gen::shift_register(8 * scale.max(1));
    let full = Matcher::new(&pattern, &g.netlist)
        .options(MatchOptions {
            threads,
            ..MatchOptions::default()
        })
        .find_all();
    let full_effort = (full.phase1.iterations
        + full.phase2.candidates_tried
        + full.phase2.passes
        + full.phase2.guesses
        + full.phase2.backtracks) as u64;
    let mut rows = Vec::new();
    for pct in [1u64, 5, 10, 25, 50, 75, 100] {
        let budget = (full_effort * pct / 100).max(1);
        let o = Matcher::new(&pattern, &g.netlist)
            .options(MatchOptions {
                threads,
                budget: Some(WorkBudget::effort(budget)),
                collect_metrics: true,
                ..MatchOptions::default()
            })
            .find_all();
        let (truncated, tried, skipped) = match &o.completeness {
            Completeness::Complete => (false, o.phase2.candidates_tried as u64, 0),
            Completeness::Truncated {
                candidates_tried,
                candidates_skipped,
                ..
            } => (true, *candidates_tried as u64, *candidates_skipped as u64),
        };
        let m = o.metrics.as_ref().expect("collect_metrics was set");
        rows.push(Value::Obj(vec![
            ("budget_pct".into(), Value::int(pct)),
            ("effort_limit".into(), Value::int(budget)),
            ("effort_spent".into(), Value::int(m.effort_spent)),
            ("found".into(), Value::int(o.count() as u64)),
            ("truncated".into(), Value::Bool(truncated)),
            ("candidates_tried".into(), Value::int(tried)),
            ("candidates_skipped".into(), Value::int(skipped)),
        ]));
    }
    Value::Obj(vec![
        (
            "main_devices".into(),
            Value::int(g.netlist.device_count() as u64),
        ),
        ("full_found".into(), Value::int(full.count() as u64)),
        ("full_effort".into(), Value::int(full_effort)),
        ("rows".into(), Value::Arr(rows)),
    ])
}

/// Warm-start economics and fingerprint prune ratio (EXPERIMENTS.md
/// E14). Cold vs warm full-adder search over a ripple adder: the warm
/// run decodes a `.sgc` artifact (in memory) instead of compiling the
/// main circuit, and reports `artifact.load_ns` / `artifact.warm_hits`.
/// The `prune` row runs a decoy field (true instances among near-miss
/// mutants) with pruning forced on and records how many Phase I
/// candidates the k-hop fingerprints reject before Phase II.
fn warm_start(scale: usize, threads: usize) -> Value {
    use subgemini::{PrunePolicy, WarmMain};
    use subgemini_netlist::Artifact;
    let pattern = cells::full_adder();
    let g = gen::ripple_adder(16 * scale.max(1));
    let artifact = Artifact::build(&g.netlist);
    let bytes = artifact.encode();
    let t0 = std::time::Instant::now();
    let decoded = Artifact::decode(&bytes).expect("fresh artifact decodes");
    let load_ns = t0.elapsed().as_nanos() as u64;

    let (cold_found, _, cold) = run_one(&pattern, &g.netlist, threads);
    let warm_outcome = Matcher::new(&pattern, &g.netlist)
        .options(MatchOptions {
            collect_metrics: true,
            threads,
            warm_main: Some(WarmMain::from_artifact(decoded, load_ns)),
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(
        warm_outcome.count() as u64,
        cold_found,
        "warm start must not change results"
    );
    let warm = warm_outcome.metrics.expect("collect_metrics was set");

    // The prune row uses a shallow pattern on purpose: `inv` is where
    // Phase I refinement stops at one iteration (every net is a port or
    // a rail), so the index's degree-free rail features carry real
    // pruning power the candidate vector lacks.
    let prune_pattern = cells::inv();
    let mut decoys = gen::near_miss_field(&prune_pattern, 24 * scale.max(1), 0x5347_e140);
    for i in 0..(8 * scale.max(1)) {
        let bindings: Vec<_> = (0..prune_pattern.ports().len())
            .map(|p| decoys.netlist.net(format!("t{i}p{p}")))
            .collect();
        decoys.plant(&prune_pattern, &format!("pl{i}"), &bindings);
    }
    let pruned_outcome = Matcher::new(&prune_pattern, &decoys.netlist)
        .options(MatchOptions {
            collect_metrics: true,
            threads,
            prune: PrunePolicy::Always,
            ..MatchOptions::default()
        })
        .find_all();
    let pm = pruned_outcome
        .metrics
        .as_ref()
        .expect("collect_metrics was set");
    Value::Obj(vec![
        (
            "main_devices".into(),
            Value::int(g.netlist.device_count() as u64),
        ),
        ("artifact_bytes".into(), Value::int(bytes.len() as u64)),
        ("found".into(), Value::int(cold_found)),
        ("cold_compile_ns".into(), Value::int(cold.compile_ns)),
        ("cold_total_ns".into(), Value::int(cold.total_ns)),
        ("warm_compile_ns".into(), Value::int(warm.compile_ns)),
        ("warm_total_ns".into(), Value::int(warm.total_ns)),
        (
            "artifact_load_ns".into(),
            Value::int(warm.counters.get("artifact.load_ns")),
        ),
        (
            "artifact_warm_hits".into(),
            Value::int(warm.counters.get("artifact.warm_hits")),
        ),
        (
            "prune".into(),
            Value::Obj(vec![
                (
                    "main_devices".into(),
                    Value::int(decoys.netlist.device_count() as u64),
                ),
                (
                    "planted".into(),
                    Value::int(decoys.planted_count("inv") as u64),
                ),
                ("found".into(), Value::int(pruned_outcome.count() as u64)),
                (
                    "cv_size".into(),
                    Value::int(pruned_outcome.phase1.cv_size as u64),
                ),
                (
                    "pruned_candidates".into(),
                    Value::int(pm.counters.get("index.pruned_candidates")),
                ),
                (
                    "admitted_candidates".into(),
                    Value::int(pm.counters.get("index.admitted_candidates")),
                ),
                (
                    "index_build_ns".into(),
                    Value::int(pm.counters.get("index.build_ns")),
                ),
            ]),
        ),
    ])
}

/// Daemon-shaped request economics (EXPERIMENTS.md E15): per-request
/// wall time for engine find requests against a registered (warm,
/// shared compiled snapshot + index) circuit vs inline (cold,
/// compile-per-request) submission of the same netlist — the
/// compile-once/query-many split `subg serve` exposes over HTTP,
/// measured at the session layer so socket noise stays out of the
/// numbers. Results are asserted identical before timings are
/// reported.
fn serve_section(scale: usize, threads: usize) -> Value {
    use subgemini_engine::{CircuitSource, Engine, FindRequest, PatternSource, RequestOptions};
    const REQUESTS: usize = 8;
    let pattern = cells::full_adder();
    let g = gen::ripple_adder(16 * scale.max(1));
    let engine = Engine::new();
    let t0 = std::time::Instant::now();
    let info = engine.register_circuit("bench", g.netlist.clone());
    let register_ns = t0.elapsed().as_nanos() as u64;
    let options = || RequestOptions {
        threads,
        ..RequestOptions::default()
    };
    let timed = |circuit: CircuitSource<'_>| -> (u64, Vec<u64>) {
        let mut found = 0u64;
        let mut wall = Vec::with_capacity(REQUESTS);
        for _ in 0..REQUESTS {
            let t0 = std::time::Instant::now();
            let resp = engine
                .find(&FindRequest {
                    circuit,
                    pattern: PatternSource::Inline(&pattern),
                    options: options(),
                })
                .expect("bench circuit resolves");
            wall.push(t0.elapsed().as_nanos() as u64);
            found = resp.outcome.count() as u64;
        }
        wall.sort_unstable();
        (found, wall)
    };
    let (warm_found, warm_wall) = timed(CircuitSource::Registered("bench"));
    let (cold_found, cold_wall) = timed(CircuitSource::Inline(&g.netlist));
    assert_eq!(
        warm_found, cold_found,
        "registry warm start must not change results"
    );
    Value::Obj(vec![
        (
            "main_devices".into(),
            Value::int(g.netlist.device_count() as u64),
        ),
        (
            "artifact_bytes".into(),
            Value::int(info.artifact_bytes as u64),
        ),
        ("requests".into(), Value::int(REQUESTS as u64)),
        ("found".into(), Value::int(warm_found)),
        ("register_ns".into(), Value::int(register_ns)),
        ("cold_min_ns".into(), Value::int(cold_wall[0])),
        ("cold_p50_ns".into(), Value::int(cold_wall[REQUESTS / 2])),
        ("warm_min_ns".into(), Value::int(warm_wall[0])),
        ("warm_p50_ns".into(), Value::int(warm_wall[REQUESTS / 2])),
    ])
}

/// Telemetry economics (EXPERIMENTS.md E16): what observability costs.
/// Three numbers matter — the per-request fold overhead (telemetry on
/// vs off over the same registered circuit; must be noise), the time to
/// render a populated Prometheus exposition, and the cost of
/// serializing one request's event journal for the capture ring.
fn observability(scale: usize, threads: usize) -> Value {
    use subgemini::telemetry::prometheus::TextWriter;
    use subgemini_engine::{CircuitSource, Engine, FindRequest, PatternSource, RequestOptions};
    const REQUESTS: usize = 16;
    let pattern = cells::full_adder();
    let g = gen::ripple_adder(16 * scale.max(1));
    let timed = |telemetry_on: bool| -> (u64, Vec<u64>) {
        let engine = Engine::new();
        engine.telemetry().set_enabled(telemetry_on);
        engine.register_circuit("bench", g.netlist.clone());
        let mut found = 0u64;
        let mut wall = Vec::with_capacity(REQUESTS);
        for _ in 0..REQUESTS {
            let t0 = std::time::Instant::now();
            let resp = engine
                .find(&FindRequest {
                    circuit: CircuitSource::Registered("bench"),
                    pattern: PatternSource::Inline(&pattern),
                    options: RequestOptions {
                        threads,
                        ..RequestOptions::default()
                    },
                })
                .expect("bench circuit resolves");
            wall.push(t0.elapsed().as_nanos() as u64);
            found = resp.outcome.count() as u64;
        }
        wall.sort_unstable();
        (found, wall)
    };
    let (on_found, on_wall) = timed(true);
    let (off_found, off_wall) = timed(false);
    assert_eq!(on_found, off_found, "telemetry must not change results");

    // Exposition render over a populated engine: REQUESTS folds worth
    // of rollups, rendered the way `GET /metrics?format=prometheus`
    // does (snapshot + text walk), isolated from socket noise.
    let engine = Engine::new();
    engine.register_circuit("bench", g.netlist.clone());
    for _ in 0..REQUESTS {
        engine
            .find(&FindRequest {
                circuit: CircuitSource::Registered("bench"),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions {
                    threads,
                    ..RequestOptions::default()
                },
            })
            .expect("bench circuit resolves");
    }
    let t0 = std::time::Instant::now();
    let snap = engine.telemetry().snapshot();
    let snapshot_ns = t0.elapsed().as_nanos() as u64;
    let t0 = std::time::Instant::now();
    let mut w = TextWriter::new();
    for (endpoint, r) in &snap.endpoints {
        let labels = [("endpoint", endpoint.as_str())];
        w.counter("subg_requests_total", "requests", &labels, r.requests);
        w.histogram("subg_request_wall_ns", "wall", &labels, &r.wall_ns);
        w.histogram("subg_request_effort", "effort", &labels, &r.effort);
    }
    let exposition = w.finish();
    let exposition_ns = t0.elapsed().as_nanos() as u64;

    // Capture-ring journal serialization for one traced request.
    let resp = engine
        .find(&FindRequest {
            circuit: CircuitSource::Registered("bench"),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions {
                threads,
                trace_events: true,
                ..RequestOptions::default()
            },
        })
        .expect("bench circuit resolves");
    let journal = resp.outcome.events.as_ref().expect("trace_events was set");
    let t0 = std::time::Instant::now();
    let ndjson = subgemini::events::journal_to_ndjson(journal);
    let journal_ns = t0.elapsed().as_nanos() as u64;

    Value::Obj(vec![
        (
            "main_devices".into(),
            Value::int(g.netlist.device_count() as u64),
        ),
        ("requests".into(), Value::int(REQUESTS as u64)),
        ("found".into(), Value::int(on_found)),
        ("on_min_ns".into(), Value::int(on_wall[0])),
        ("on_p50_ns".into(), Value::int(on_wall[REQUESTS / 2])),
        ("off_min_ns".into(), Value::int(off_wall[0])),
        ("off_p50_ns".into(), Value::int(off_wall[REQUESTS / 2])),
        ("snapshot_ns".into(), Value::int(snapshot_ns)),
        ("exposition_ns".into(), Value::int(exposition_ns)),
        (
            "exposition_bytes".into(),
            Value::int(exposition.len() as u64),
        ),
        ("journal_ndjson_ns".into(), Value::int(journal_ns)),
        (
            "journal_ndjson_bytes".into(),
            Value::int(ndjson.len() as u64),
        ),
    ])
}

/// Sharded-dispatch walls (EXPERIMENTS.md E17): full-adder search over
/// a 10^5-device-tier tiled chip, unsharded vs 2/4/8 shards at the
/// same thread count. Every run must find exactly the planted
/// instances (the differential battery pins byte-identity; this pins
/// the ground truth at benchmark scale and records what the shard
/// plan, halo overlap, and cross-shard merge cost).
fn sharded(scale: usize, threads: usize) -> Value {
    use subgemini::ShardPolicy;
    let pattern = cells::full_adder();
    let chip = gen::tiled_chip(17, 100_000 * scale.max(1));
    let planted = chip.planted_count("full_adder") as u64;
    let mut rows = Vec::new();
    for shards in [0u32, 2, 4, 8] {
        let policy = match shards {
            0 => ShardPolicy::Off,
            n => ShardPolicy::Count(n),
        };
        let outcome = Matcher::new(&pattern, &chip.netlist)
            .options(MatchOptions {
                threads,
                shards: policy,
                collect_metrics: true,
                ..MatchOptions::default()
            })
            .find_all();
        assert_eq!(
            outcome.count() as u64,
            planted,
            "sharded run must find exactly the planted instances"
        );
        let m = outcome.metrics.expect("collect_metrics was set");
        rows.push(Value::Obj(vec![
            ("requested_shards".into(), Value::int(shards as u64)),
            ("shards".into(), Value::int(m.counters.get("shard.count"))),
            ("total_ns".into(), Value::int(m.total_ns)),
            ("phase2_wall_ns".into(), Value::int(m.phase2_wall_ns)),
            (
                "halo_devices".into(),
                Value::int(m.counters.get("shard.halo_devices")),
            ),
            (
                "dedup_dropped".into(),
                Value::int(m.counters.get("shard.dedup_dropped")),
            ),
            (
                "plan_ns".into(),
                Value::int(m.counters.get("shard.plan_ns")),
            ),
            (
                "merge_ns".into(),
                Value::int(m.counters.get("shard.merge_ns")),
            ),
        ]));
    }
    Value::Obj(vec![
        (
            "main_devices".into(),
            Value::int(chip.netlist.device_count() as u64),
        ),
        ("planted".into(), Value::int(planted)),
        ("rows".into(), Value::Arr(rows)),
    ])
}

/// Hierarchy reconstruction economics (EXPERIMENTS.md E18): the
/// fixpoint driver over a generated 3-level chip. Ground truth is
/// planted per level, so every count is asserted — the section records
/// what bottom-up reconstruction costs, not whether it works.
fn hierarchize_section(scale: usize, threads: usize) -> Value {
    let chip = gen::hierarchical_chip(18, 3, 2_000 * scale.max(1));
    let mut options = MatchOptions::extraction();
    options.threads = threads;
    let t0 = std::time::Instant::now();
    let outcome = subgemini::hier::hierarchize(&chip.generated.netlist, &chip.library, &options)
        .expect("hierarchize runs");
    let wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(outcome.report.unabsorbed_devices, 0, "full absorption");
    for (cell, &want) in &chip.expected {
        assert_eq!(
            outcome.report.count_of(cell),
            want,
            "planted count for {cell}"
        );
    }
    let levels = outcome
        .report
        .levels
        .iter()
        .map(|l| {
            Value::Obj(vec![
                ("level".into(), Value::int(l.level as u64)),
                (
                    "cells".into(),
                    Value::Arr(
                        l.per_cell
                            .iter()
                            .map(|(c, n)| {
                                Value::Obj(vec![
                                    ("cell".into(), Value::Str(c.clone())),
                                    ("found".into(), Value::int(*n as u64)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    Value::Obj(vec![
        (
            "main_devices".into(),
            Value::int(chip.generated.netlist.device_count() as u64),
        ),
        ("sweeps".into(), Value::int(outcome.report.sweeps as u64)),
        ("wall_ns".into(), Value::int(wall_ns)),
        ("levels".into(), Value::Arr(levels)),
    ])
}

/// Sum of `compile_ns + phase1_refine_ns + phase1_select_ns` across a
/// report's linearity rows. A missing `compile_ns` (pre-CSR baselines)
/// counts as zero.
fn linearity_front_ns(report: &Value) -> u64 {
    let rows = report
        .get("linearity")
        .and_then(Value::as_arr)
        .unwrap_or(&[]);
    rows.iter()
        .filter_map(|row| row.get("metrics"))
        .map(|m| {
            ["compile_ns", "phase1_refine_ns", "phase1_select_ns"]
                .iter()
                .map(|k| m.get(k).and_then(Value::as_u64).unwrap_or(0))
                .sum::<u64>()
        })
        .sum()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 1usize;
    let mut threads = 1usize;
    let mut out_path = "BENCH_phase_timings.json".to_string();
    let mut out_given = false;
    let mut check_path: Option<String> = None;
    let mut with_budget_curve = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut take = |what: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match a.as_str() {
            "--scale" => scale = take("--scale").parse().expect("--scale takes a count"),
            "--threads" => threads = take("--threads").parse().expect("--threads takes a count"),
            "--out" => {
                out_path = take("--out").clone();
                out_given = true;
            }
            "--check" => check_path = Some(take("--check").clone()),
            "--budget-curve" => with_budget_curve = true,
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    eprintln!("bench_json: linearity sweep (scale {scale}, threads {threads})...");
    let lin = linearity(scale, threads);
    eprintln!("bench_json: library survey...");
    let sur = survey(scale, threads);
    eprintln!("bench_json: warm start + prune ratio...");
    let warm = warm_start(scale, threads);
    eprintln!("bench_json: serve registry economics...");
    let serve = serve_section(scale, threads);
    eprintln!("bench_json: observability overhead...");
    let obs = observability(scale, threads);
    eprintln!("bench_json: sharded dispatch walls...");
    let shard = sharded(scale, threads);
    eprintln!("bench_json: hierarchy reconstruction...");
    let hier = hierarchize_section(scale, threads);
    let mut fields = vec![
        ("schema_version".into(), Value::int(REPORT_SCHEMA_VERSION)),
        (
            "generated_by".into(),
            Value::Str(format!("bench_json --scale {scale} --threads {threads}")),
        ),
        ("linearity".into(), lin),
        ("survey".into(), sur),
        // Additive since schema v1: warm-start and prune-ratio section.
        ("warm_start".into(), warm),
        // Additive since schema v1: cold vs registry-warm per-request
        // wall time at the engine session layer (the `subg serve`
        // economics).
        ("serve".into(), serve),
        // Additive since schema v1: telemetry fold / exposition /
        // capture-serialization overhead (EXPERIMENTS.md E16).
        ("observability".into(), obs),
        // Additive since schema v1: unsharded vs 2/4/8-shard walls on
        // the 10^5-device tiled-chip tier (EXPERIMENTS.md E17).
        ("sharded".into(), shard),
        // Additive since schema v1: per-level hierarchy reconstruction
        // over a planted 3-level chip (EXPERIMENTS.md E18).
        ("hierarchize".into(), hier),
    ];
    if with_budget_curve {
        eprintln!("bench_json: budget curve...");
        fields.push(("budget_curve".into(), budget_curve(scale, threads)));
    }
    let report = Value::Obj(fields);
    let text = report.pretty();
    if check_path.is_none() || out_given {
        if out_path == "-" {
            print!("{text}");
        } else {
            std::fs::write(&out_path, text).unwrap_or_else(|e| panic!("{out_path}: {e}"));
            eprintln!("bench_json: wrote {out_path}");
        }
    }
    if let Some(baseline_path) = check_path {
        let baseline_text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("{baseline_path}: {e}"));
        let baseline = subgemini::metrics::json::parse(&baseline_text)
            .unwrap_or_else(|e| panic!("{baseline_path}: {e}"));
        let was = linearity_front_ns(&baseline);
        let now = linearity_front_ns(&report);
        eprintln!("bench_json: check compile+phase1 on linearity: {now} ns vs baseline {was} ns");
        if was > 0 && now > was.saturating_mul(2) {
            eprintln!("bench_json: REGRESSION: more than 2x the committed baseline");
            std::process::exit(1);
        }
        eprintln!("bench_json: check ok (within 2x)");
    }
}
