//! Minimal fixed-width text-table rendering for the experiment
//! reports.

/// Renders `rows` under `headers` as an aligned text table.
///
/// # Examples
///
/// ```
/// let t = subgemini_bench::table::render(
///     &["name", "n"],
///     &[vec!["adder".into(), "8".into()]],
/// );
/// assert!(t.contains("adder"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut width: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            width[i] = width[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let line = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{cell:>w$}", w = width[i]));
        }
        out.push('\n');
    };
    line(
        &mut out,
        &headers.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    );
    let rule: String = width
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("--");
    out.push_str(&rule);
    out.push('\n');
    for row in rows {
        line(&mut out, row);
    }
    out
}

/// Renders rows as CSV (no quoting; experiment cells never contain
/// commas).
pub fn csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = headers.join(",");
    out.push('\n');
    for row in rows {
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = render(
            &["a", "long_header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["333333".into(), "4".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines equal width for the first column block.
        assert!(lines[0].contains("long_header"));
    }

    #[test]
    fn csv_joins_with_commas() {
        let c = csv(&["x", "y"], &[vec!["1".into(), "2".into()]]);
        assert_eq!(c, "x,y\n1,2\n");
    }
}
