//! Substrate benches: the Gemini comparator and the SPICE pipeline,
//! whose costs underlie every application experiment.

use std::hint::black_box;
use subgemini_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgemini_gemini::compare;
use subgemini_spice::{parse, write_netlist, ElaborateOptions};
use subgemini_workloads::gen;

fn gemini_compare(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemini/compare_adders");
    for bits in [8usize, 32, 128] {
        let a = gen::ripple_adder(bits).netlist;
        let b = gen::ripple_adder(bits).netlist;
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |bch, _| {
            bch.iter(|| {
                let out = compare(black_box(&a), black_box(&b));
                assert!(out.is_isomorphic());
                black_box(out)
            })
        });
    }
    group.finish();
}

fn spice_pipeline(c: &mut Criterion) {
    let nl = gen::random_soup(3, 200).netlist;
    let text = write_netlist(&nl);
    let mut group = c.benchmark_group("spice");
    group.bench_function("write_soup200", |b| {
        b.iter(|| black_box(write_netlist(black_box(&nl))))
    });
    group.bench_function("parse_soup200", |b| {
        b.iter(|| black_box(parse(black_box(&text)).expect("parses")))
    });
    let doc = parse(&text).expect("parses");
    group.bench_function("elaborate_soup200", |b| {
        b.iter(|| {
            black_box(
                doc.elaborate_top("soup", &ElaborateOptions::default())
                    .expect("elaborates"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, gemini_compare, spice_pipeline);
criterion_main!(benches);
