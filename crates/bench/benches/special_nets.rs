//! E3/E8: the cost and effect of treating Vdd/GND as special signals.

use std::hint::black_box;
use subgemini::{MatchOptions, Matcher};
use subgemini_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgemini_workloads::{cells, gen};

fn bench(c: &mut Criterion) {
    let soup = gen::random_soup(99, 80);
    let inv = cells::inv();
    let dff = cells::dff();
    let mut group = c.benchmark_group("special_nets");
    for (cell_name, cell) in [("inv", &inv), ("dff", &dff)] {
        group.bench_with_input(BenchmarkId::new("respected", cell_name), &(), |b, ()| {
            b.iter(|| {
                black_box(
                    Matcher::new(cell, &soup.netlist)
                        .options(MatchOptions::default())
                        .find_all(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("ignored", cell_name), &(), |b, ()| {
            b.iter(|| {
                black_box(
                    Matcher::new(cell, &soup.netlist)
                        .options(MatchOptions::ignore_globals())
                        .find_all(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
