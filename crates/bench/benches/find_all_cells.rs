//! E4: the results-table workloads under Criterion — one benchmark per
//! (circuit, cell) pair.

use std::hint::black_box;
use subgemini::Matcher;
use subgemini_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgemini_workloads::{cells, gen};

fn bench(c: &mut Criterion) {
    let adder = gen::ripple_adder(32);
    let sreg = gen::shift_register(24);
    let sram = gen::sram_array(8, 16);
    let soup = gen::random_soup(1993, 120);
    let pairs: Vec<(
        &str,
        &subgemini_netlist::Netlist,
        subgemini_netlist::Netlist,
    )> = vec![
        ("adder32", &adder.netlist, cells::full_adder()),
        ("adder32", &adder.netlist, cells::inv()),
        ("shiftreg24", &sreg.netlist, cells::dff()),
        ("sram8x16", &sram.netlist, cells::sram6t()),
        ("soup120", &soup.netlist, cells::nand2()),
        ("soup120", &soup.netlist, cells::dff()),
    ];
    let mut group = c.benchmark_group("find_all");
    for (circ, main, cell) in pairs {
        group.bench_with_input(
            BenchmarkId::new(circ, cell.name()),
            &(main, &cell),
            |b, (main, cell)| b.iter(|| black_box(Matcher::new(cell, main).find_all())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
