//! E9/E10 application benches: rule checking, technology mapping, and
//! the paper's special-case micro-benchmarks (Fig. 5 guess, Fig. 7
//! special nets).

use std::hint::black_box;
use subgemini::{MatchOptions, Matcher, RuleChecker, TechMapper};
use subgemini_bench::harness::{criterion_group, criterion_main, Criterion};
use subgemini_netlist::Netlist;
use subgemini_workloads::{cells, gen, paper};

fn fig_micro(c: &mut Criterion) {
    let (p5, m5) = paper::fig5_pair();
    c.bench_function("fig5/guess_no_backtrack", |b| {
        b.iter(|| {
            let o = Matcher::new(black_box(&p5), black_box(&m5)).find_all();
            assert_eq!(o.count(), 1);
            black_box(o)
        })
    });
    let inv = paper::fig7_inverter();
    let nand = paper::fig7_nand();
    c.bench_function("fig7/specials_respected", |b| {
        b.iter(|| black_box(Matcher::new(&inv, &nand).find_all()))
    });
    c.bench_function("fig7/specials_ignored", |b| {
        b.iter(|| {
            black_box(
                Matcher::new(&inv, &nand)
                    .options(MatchOptions::ignore_globals())
                    .find_all(),
            )
        })
    });
}

fn rules(c: &mut Criterion) {
    let soup = gen::random_soup(123, 80);
    let mut checker = RuleChecker::new();
    let mut bad = Netlist::new("nmos_pullup");
    let mos = bad.add_mos_types();
    let (g, d, vdd) = (bad.net("g"), bad.net("d"), bad.net("vdd"));
    bad.mark_port(g);
    bad.mark_port(d);
    bad.mark_global(vdd);
    bad.add_device("m", mos.nmos, &[g, vdd, d]).unwrap();
    checker.add_rule("nmos-pullup", "degraded high", bad);
    c.bench_function("rules/soup80_one_rule", |b| {
        b.iter(|| black_box(checker.check(black_box(&soup.netlist))))
    });
}

fn techmap(c: &mut Criterion) {
    let chain = gen::inverter_chain(24).netlist;
    let mut mapper = TechMapper::new();
    mapper.add_cell(cells::inv(), 1.0);
    mapper.add_cell(cells::buf(), 1.6);
    c.bench_function("techmap/greedy_chain24", |b| {
        b.iter(|| black_box(mapper.map_greedy(black_box(&chain))))
    });
    c.bench_function("techmap/exact_chain24", |b| {
        b.iter(|| black_box(mapper.map_exact(black_box(&chain), 1_000_000)))
    });
}

fn symmetry(c: &mut Criterion) {
    let nand3 = cells::nand3();
    c.bench_function("symmetry/nand3_port_classes", |b| {
        b.iter(|| black_box(subgemini::port_symmetry_classes(black_box(&nand3))))
    });
}

criterion_group!(benches, fig_micro, rules, techmap, symmetry);
criterion_main!(benches);
