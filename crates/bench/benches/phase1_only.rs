//! E7: Phase I in isolation — the cost and quality of the candidate
//! filter.

use std::hint::black_box;
use subgemini::candidates;
use subgemini_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgemini_workloads::{cells, gen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1");
    let adder = gen::ripple_adder(32);
    let soup = gen::random_soup(5, 100);
    let cases = vec![
        ("adder32_full_adder", &adder.netlist, cells::full_adder()),
        ("soup100_nand2", &soup.netlist, cells::nand2()),
        ("soup100_dff", &soup.netlist, cells::dff()),
    ];
    for (name, main, cell) in cases {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| black_box(candidates::generate(&cell, black_box(main))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
