//! E6: SubGemini against the exhaustive DFS matcher on the same
//! workload — who wins and by what factor.

use std::hint::black_box;
use subgemini::Matcher;
use subgemini_baseline::{find_all as dfs_find_all, DfsOptions};
use subgemini_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgemini_workloads::{cells, gen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("vs_baseline/soup_nand2");
    for gates in [20usize, 40, 80] {
        let soup = gen::random_soup(4242, gates);
        let cell = cells::nand2();
        group.bench_with_input(BenchmarkId::new("subgemini", gates), &gates, |b, _| {
            b.iter(|| black_box(Matcher::new(&cell, &soup.netlist).find_all()))
        });
        group.bench_with_input(BenchmarkId::new("dfs", gates), &gates, |b, _| {
            b.iter(|| black_box(dfs_find_all(&cell, &soup.netlist, &DfsOptions::default())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
