//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! * `port_spreading` — Phase II with and without spreading from
//!   matched port images (the shared-clock scaling fix).
//! * `key_policy` — Phase I key selection: the paper's smallest
//!   partition vs first-valid vs the adversarial largest partition.

use std::hint::black_box;
use subgemini::{KeyPolicy, MatchOptions, Matcher};
use subgemini_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgemini_workloads::{cells, gen};

fn port_spreading(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/port_spreading");
    let dff = cells::dff();
    for bits in [8usize, 16, 32] {
        let sreg = gen::shift_register(bits);
        for (label, spread) in [("suppressed", false), ("paper_literal", true)] {
            group.bench_with_input(BenchmarkId::new(label, bits), &spread, |b, &spread| {
                b.iter(|| {
                    let o = Matcher::new(&dff, black_box(&sreg.netlist))
                        .options(MatchOptions {
                            spread_from_port_images: spread,
                            ..MatchOptions::default()
                        })
                        .find_all();
                    assert_eq!(o.count(), bits);
                    black_box(o)
                })
            });
        }
    }
    group.finish();
}

fn key_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/key_policy");
    let soup = gen::random_soup(1993, 120);
    let nand = cells::nand2();
    for (label, policy) in [
        ("smallest", KeyPolicy::SmallestPartition),
        ("first_valid", KeyPolicy::FirstValid),
        ("largest", KeyPolicy::LargestPartition),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &policy, |b, &policy| {
            b.iter(|| {
                black_box(
                    Matcher::new(&nand, black_box(&soup.netlist))
                        .options(MatchOptions {
                            key_policy: policy,
                            ..MatchOptions::default()
                        })
                        .find_all(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, port_spreading, key_policy);
criterion_main!(benches);
