//! Multi-pattern Phase I sharing: surveying a whole cell library
//! against one chip, with and without the shared main-graph label
//! trace.

use std::hint::black_box;
use subgemini::candidates;
use subgemini_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgemini_netlist::Netlist;
use subgemini_workloads::{cells, gen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("phase1_library_survey");
    for gates in [60usize, 240] {
        let soup = gen::random_soup(1993, gates);
        let library = cells::library();
        let refs: Vec<&Netlist> = library.iter().collect();
        group.bench_with_input(BenchmarkId::new("shared", gates), &(), |b, ()| {
            b.iter(|| black_box(candidates::generate_many(black_box(&refs), &soup.netlist)))
        });
        group.bench_with_input(BenchmarkId::new("individual", gates), &(), |b, ()| {
            b.iter(|| {
                let cvs: Vec<_> = refs
                    .iter()
                    .map(|p| candidates::generate(p, &soup.netlist))
                    .collect();
                black_box(cvs)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
