//! E9: full-library transistor→gate extraction throughput.

use std::hint::black_box;
use subgemini::Extractor;
use subgemini_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgemini_workloads::{cells, gen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("extract");
    group.sample_size(10);
    let adder = gen::ripple_adder(8);
    let soup = gen::random_soup(2024, 40);
    for (name, main) in [("adder8", &adder.netlist), ("soup40", &soup.netlist)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &(), |b, ()| {
            b.iter(|| {
                let mut extractor = Extractor::new();
                for cell in cells::library() {
                    extractor.add_cell(cell);
                }
                black_box(extractor.extract(black_box(main)).expect("extracts"))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
