//! Phase II scheduler face-off on a skew-heavy workload: a symmetric
//! blob of superposed pattern copies (guess storms, ~80x the mean
//! verification cost) clustered at the head of the candidate vector,
//! followed by a long tail of cheap instances. Static chunking strands
//! every heavy candidate in one worker's chunk; work stealing drains
//! the tail around it.
//!
//! Besides timing, this bench is a correctness gate: it asserts that
//! both schedulers at every thread count return byte-identical
//! instances and completeness, that stealing actually happens at 8
//! threads, and — when the host has at least 2 cores — that the
//! stealing scheduler beats static chunks by the acceptance margin.

use std::hint::black_box;

use subgemini::{MatchOptions, Matcher, Phase2Scheduler};
use subgemini_bench::harness::{
    criterion_group, criterion_main, measure_median_ns, BenchmarkId, Criterion,
};
use subgemini_netlist::Netlist;
use subgemini_workloads::{cells, gen};

const TRAPS: usize = 10;
const EASY: usize = 128;
const THREADS: usize = 8;

fn workload() -> (Netlist, Netlist) {
    let cell = cells::nand_k(6);
    let g = gen::skewed_trap_field(&cell, TRAPS, EASY);
    (cell, g.netlist)
}

fn opts(threads: usize, scheduler: Phase2Scheduler) -> MatchOptions {
    MatchOptions {
        threads,
        scheduler,
        ..MatchOptions::default()
    }
}

fn run(pattern: &Netlist, main: &Netlist, o: MatchOptions) -> subgemini::MatchOutcome {
    Matcher::new(pattern, main).options(o).find_all()
}

/// The results half of the acceptance bar: identical answers
/// everywhere, and real stealing on the skewed field.
fn preflight(pattern: &Netlist, main: &Netlist) {
    let reference = run(pattern, main, opts(1, Phase2Scheduler::WorkStealing));
    assert!(reference.completeness.is_complete());
    assert_eq!(
        reference.count(),
        TRAPS + EASY,
        "ground truth: every planted instance is found"
    );
    for scheduler in [Phase2Scheduler::WorkStealing, Phase2Scheduler::StaticChunks] {
        for threads in [1, 2, THREADS] {
            let o = run(pattern, main, opts(threads, scheduler));
            assert_eq!(
                reference.instances, o.instances,
                "{scheduler:?} threads {threads}: instances diverge"
            );
            assert_eq!(reference.completeness, o.completeness);
        }
    }
    let observed = run(
        pattern,
        main,
        MatchOptions {
            collect_metrics: true,
            ..opts(THREADS, Phase2Scheduler::WorkStealing)
        },
    );
    let m = observed.metrics.as_ref().expect("metrics requested");
    assert!(
        m.counters.get("scheduler.steals") > 0,
        "skewed workload at {THREADS} threads must provoke steals"
    );
    println!(
        "scheduler_skew preflight: {} instances, cv {}, steals {}",
        observed.count(),
        observed.phase1.cv_size,
        m.counters.get("scheduler.steals"),
    );
}

/// The wall-clock half: stealing <= 0.8x static at 8 threads. Only
/// meaningful on a multi-core host — a single hardware thread runs the
/// workers sequentially and both schedulers degenerate to the same
/// serial sweep — and only with real sampling, not the one-shot
/// `SUBG_BENCH_FAST` smoke.
fn ratio_gate(pattern: &Netlist, main: &Netlist) {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let fast = std::env::var_os("SUBG_BENCH_FAST").is_some_and(|v| v != "0");
    let steal_ns = measure_median_ns(&mut |b| {
        b.iter(|| {
            black_box(run(
                pattern,
                main,
                opts(THREADS, Phase2Scheduler::WorkStealing),
            ))
        })
    });
    let static_ns = measure_median_ns(&mut |b| {
        b.iter(|| {
            black_box(run(
                pattern,
                main,
                opts(THREADS, Phase2Scheduler::StaticChunks),
            ))
        })
    });
    let ratio = steal_ns as f64 / static_ns.max(1) as f64;
    println!(
        "scheduler_skew ratio: steal {steal_ns} ns vs static {static_ns} ns \
         = {ratio:.3} ({cores} cores)"
    );
    if cores >= 2 && !fast {
        assert!(
            ratio <= 0.8,
            "work stealing must be <= 0.8x static chunking on the skewed \
             workload at {THREADS} threads ({cores} cores): got {ratio:.3}"
        );
    }
}

fn bench(c: &mut Criterion) {
    let (pattern, main) = workload();
    preflight(&pattern, &main);
    let mut group = c.benchmark_group("scheduler_skew");
    for (name, threads, scheduler) in [
        ("serial", 1, Phase2Scheduler::WorkStealing),
        ("static", THREADS, Phase2Scheduler::StaticChunks),
        ("steal", THREADS, Phase2Scheduler::WorkStealing),
    ] {
        group.bench_with_input(BenchmarkId::new(name, threads), &(), |b, ()| {
            b.iter(|| black_box(run(&pattern, &main, opts(threads, scheduler))))
        });
    }
    group.finish();
    ratio_gate(&pattern, &main);
}

criterion_group!(benches, bench);
criterion_main!(benches);
