//! E5: the headline linearity claim — search time vs total devices in
//! matched subcircuits. Criterion's throughput view makes the claim
//! directly visible: elements/second should stay roughly constant as
//! the circuit grows.

use std::hint::black_box;
use subgemini::Matcher;
use subgemini_bench::harness::{
    criterion_group, criterion_main, BenchmarkId, Criterion, Throughput,
};
use subgemini_workloads::{cells, gen};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearity/adder_full_adder");
    for bits in [4usize, 8, 16, 32, 64] {
        let adder = gen::ripple_adder(bits);
        let fa = cells::full_adder();
        let matched = bits * fa.device_count();
        group.throughput(Throughput::Elements(matched as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| {
                let o = Matcher::new(&fa, black_box(&adder.netlist)).find_all();
                assert_eq!(o.count(), bits);
                black_box(o)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("linearity/shiftreg_dff");
    for bits in [4usize, 8, 16, 32] {
        let sreg = gen::shift_register(bits);
        let dff = cells::dff();
        group.throughput(Throughput::Elements((bits * dff.device_count()) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(bits), &bits, |b, _| {
            b.iter(|| black_box(Matcher::new(&dff, black_box(&sreg.netlist)).find_all()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
