//! E1: the paper's running example (Fig. 1 / Table 1) end to end.

use std::hint::black_box;
use subgemini::Matcher;
use subgemini_bench::harness::{criterion_group, criterion_main, Criterion};
use subgemini_workloads::paper;

fn bench(c: &mut Criterion) {
    let s = paper::fig1_pattern();
    let g = paper::fig1_main();
    c.bench_function("fig1/find_all", |b| {
        b.iter(|| {
            let outcome = Matcher::new(black_box(&s), black_box(&g)).find_all();
            assert_eq!(outcome.count(), 1);
            black_box(outcome)
        })
    });
    c.bench_function("fig1/phase1_only", |b| {
        b.iter(|| {
            black_box(subgemini::candidates::generate(
                black_box(&s),
                black_box(&g),
            ))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
