//! Robustness: the Verilog parser must never panic on arbitrary input.

use proptest::prelude::*;
use subgemini_verilog::VerilogOptions;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn parser_never_panics_on_garbage(input in "[ -~\n]{0,400}") {
        let _ = subgemini_verilog::parse(&input);
    }

    #[test]
    fn parser_never_panics_on_tokens(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "module", "endmodule", "input", "output", "inout", "wire",
                "supply0", "supply1", "nand", "not", "inv", "u1", "a", "b",
                "(", ")", ";", ",", ".", "top",
            ]),
            0..80,
        ),
    ) {
        let text = words.join(" ");
        if let Ok(src) = subgemini_verilog::parse(&text) {
            let _ = src.elaborate(None, &VerilogOptions::default());
            for m in &src.modules {
                let _ = src.elaborate(Some(&m.name), &VerilogOptions::hierarchical());
            }
        }
    }

    #[test]
    fn minimal_valid_modules_elaborate(
        a in "[a-z][a-z0-9]{0,6}",
        y in "[a-z][a-z0-9]{0,6}",
    ) {
        prop_assume!(a != y);
        let text = format!("module t(input {a}, output {y});\nnot g({y}, {a});\nendmodule\n");
        let src = subgemini_verilog::parse(&text).unwrap();
        let nl = src.elaborate(None, &VerilogOptions::default()).unwrap();
        prop_assert_eq!(nl.device_count(), 1);
    }
}
