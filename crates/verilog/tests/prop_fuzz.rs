//! Robustness: the Verilog parser must never panic on arbitrary input.
//! Inputs come from a seeded internal PRNG so every run fuzzes the same
//! reproducible corpus.

use subgemini_netlist::rng::Rng64;
use subgemini_verilog::VerilogOptions;

#[test]
fn parser_never_panics_on_garbage() {
    for case in 0..256u64 {
        let mut rng = Rng64::new(0xe1_1ce0 + case);
        let len = rng.range(0, 401);
        let input = rng.printable(len);
        let _ = subgemini_verilog::parse(&input);
    }
}

#[test]
fn parser_never_panics_on_tokens() {
    const TOKENS: &[&str] = &[
        "module",
        "endmodule",
        "input",
        "output",
        "inout",
        "wire",
        "supply0",
        "supply1",
        "nand",
        "not",
        "inv",
        "u1",
        "a",
        "b",
        "(",
        ")",
        ";",
        ",",
        ".",
        "top",
    ];
    for case in 0..256u64 {
        let mut rng = Rng64::new(0xe1_2ce0 + case);
        let n = rng.range(0, 80);
        let words: Vec<&str> = (0..n).map(|_| TOKENS[rng.index(TOKENS.len())]).collect();
        let text = words.join(" ");
        if let Ok(src) = subgemini_verilog::parse(&text) {
            let _ = src.elaborate(None, &VerilogOptions::default());
            for m in &src.modules {
                let _ = src.elaborate(Some(&m.name), &VerilogOptions::hierarchical());
            }
        }
    }
}

#[test]
fn minimal_valid_modules_elaborate() {
    for case in 0..256u64 {
        let mut rng = Rng64::new(0xe1_3ce0 + case);
        let a = rng.ident(7);
        let y = rng.ident(7);
        if a == y {
            continue;
        }
        let text = format!("module t(input {a}, output {y});\nnot g({y}, {a});\nendmodule\n");
        let src = subgemini_verilog::parse(&text).unwrap();
        let nl = src.elaborate(None, &VerilogOptions::default()).unwrap();
        assert_eq!(nl.device_count(), 1, "case {case}: {text}");
    }
}
