//! Elaboration: turning parsed Verilog into [`Netlist`]s.

use std::collections::{HashMap, HashSet};

use subgemini_netlist::{instantiate, DeviceType, NetId, Netlist, TerminalSpec};

use crate::ast::{is_primitive, Conns, Instance, Module, Source};
use crate::error::VerilogError;

/// Elaboration options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerilogOptions {
    /// Flatten module instances recursively (default) or keep them as
    /// composite devices.
    pub flatten: bool,
    /// Net names treated as global even without `supply0`/`supply1`
    /// declarations.
    pub implicit_globals: Vec<String>,
}

impl Default for VerilogOptions {
    fn default() -> Self {
        Self {
            flatten: true,
            implicit_globals: ["vdd", "vss", "gnd", "vcc"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

impl VerilogOptions {
    /// Hierarchical (non-flattening) elaboration.
    pub fn hierarchical() -> Self {
        Self {
            flatten: false,
            ..Self::default()
        }
    }
}

/// The device type for a gate primitive of the given input arity:
/// output terminal `y` in its own class, inputs `i1…iN` in a shared
/// class (primitive gate inputs are interchangeable).
pub fn primitive_type(gate: &str, inputs: usize) -> DeviceType {
    let name = match gate {
        "not" | "buf" => format!("${gate}"),
        _ => format!("${gate}{inputs}"),
    };
    let mut terms = vec![TerminalSpec::new("y", "y")];
    for i in 1..=inputs {
        terms.push(TerminalSpec::new(format!("i{i}"), "i"));
    }
    DeviceType::new(name, terms)
}

struct Elaborator<'a> {
    src: &'a Source,
    opts: &'a VerilogOptions,
    cells: HashMap<String, Netlist>,
    visiting: Vec<String>,
}

impl<'a> Elaborator<'a> {
    fn new(src: &'a Source, opts: &'a VerilogOptions) -> Self {
        Self {
            src,
            opts,
            cells: HashMap::new(),
            visiting: Vec::new(),
        }
    }

    fn build(&mut self, m: &Module) -> Result<Netlist, VerilogError> {
        let mut nl = Netlist::new(m.name.clone());
        let globals: HashSet<&str> = m
            .supply0
            .iter()
            .chain(m.supply1.iter())
            .map(String::as_str)
            .chain(self.opts.implicit_globals.iter().map(String::as_str))
            .collect();
        let net = |nl: &mut Netlist, name: &str| -> NetId {
            let id = nl.net(name);
            if globals.contains(name) {
                nl.mark_global(id);
            }
            id
        };
        for p in &m.ports {
            let id = net(&mut nl, p);
            nl.mark_port(id);
        }
        for w in &m.wires {
            net(&mut nl, w);
        }
        for s in m.supply0.iter().chain(m.supply1.iter()) {
            net(&mut nl, s);
        }
        for inst in &m.instances {
            self.add_instance(&mut nl, m, inst, &globals)?;
        }
        // Wires may be declared but unused; match the SPICE pipeline's
        // normalization and drop them.
        Ok(nl.compact())
    }

    fn add_instance(
        &mut self,
        nl: &mut Netlist,
        parent: &Module,
        inst: &Instance,
        globals: &HashSet<&str>,
    ) -> Result<(), VerilogError> {
        let resolve = |nl: &mut Netlist, name: &str| -> NetId {
            let id = nl.net(name);
            if globals.contains(name) {
                nl.mark_global(id);
            }
            id
        };
        if is_primitive(&inst.module) {
            let Conns::Positional(nets) = &inst.conns else {
                return Err(VerilogError::Parse {
                    line: inst.line,
                    detail: format!(
                        "gate primitive `{}` requires positional connections",
                        inst.module
                    ),
                });
            };
            let min = if matches!(inst.module.as_str(), "not" | "buf") {
                2
            } else {
                3
            };
            if nets.len() < min {
                return Err(VerilogError::PortCountMismatch {
                    instance: inst.name.clone(),
                    expected: min,
                    got: nets.len(),
                });
            }
            if matches!(inst.module.as_str(), "not" | "buf") && nets.len() != 2 {
                return Err(VerilogError::PortCountMismatch {
                    instance: inst.name.clone(),
                    expected: 2,
                    got: nets.len(),
                });
            }
            let ty = nl.add_type(primitive_type(&inst.module, nets.len() - 1))?;
            let pins: Vec<NetId> = nets.iter().map(|n| resolve(nl, n)).collect();
            nl.add_device(inst.name.clone(), ty, &pins)?;
            return Ok(());
        }
        let Some(def) = self.src.module(&inst.module) else {
            // Unknown module: with *named* connections we can still
            // synthesize a composite device type from the port names —
            // this lets a single gate-level module (as written by
            // [`write_module`](crate::write_module)) stand alone
            // without leaf definitions.
            if let Conns::Named(pairs) = &inst.conns {
                let terms: Vec<TerminalSpec> = pairs
                    .iter()
                    .map(|(p, _)| TerminalSpec::new(p.clone(), p.clone()))
                    .collect();
                let ty = nl.add_type(DeviceType::try_new(inst.module.clone(), terms).map_err(
                    |detail| VerilogError::Parse {
                        line: inst.line,
                        detail,
                    },
                )?)?;
                let pins: Vec<NetId> = pairs.iter().map(|(_, n)| resolve(nl, n)).collect();
                nl.add_device(inst.name.clone(), ty, &pins)?;
                return Ok(());
            }
            return Err(VerilogError::UnknownModule {
                name: inst.module.clone(),
            });
        };
        // Order the connection nets by the module's port order.
        let ordered: Vec<String> = match &inst.conns {
            Conns::Positional(nets) => {
                if nets.len() != def.ports.len() {
                    return Err(VerilogError::PortCountMismatch {
                        instance: inst.name.clone(),
                        expected: def.ports.len(),
                        got: nets.len(),
                    });
                }
                nets.clone()
            }
            Conns::Named(pairs) => {
                let map: HashMap<&str, &str> = pairs
                    .iter()
                    .map(|(p, n)| (p.as_str(), n.as_str()))
                    .collect();
                for (p, _) in pairs {
                    if !def.ports.contains(p) {
                        return Err(VerilogError::UnknownPort {
                            instance: inst.name.clone(),
                            port: p.clone(),
                        });
                    }
                }
                if map.len() != def.ports.len() {
                    return Err(VerilogError::PortCountMismatch {
                        instance: inst.name.clone(),
                        expected: def.ports.len(),
                        got: map.len(),
                    });
                }
                def.ports
                    .iter()
                    .map(|p| map[p.as_str()].to_string())
                    .collect()
            }
        };
        if self.opts.flatten {
            let cell = self.cell(&inst.module)?.clone();
            let bindings: Vec<NetId> = ordered.iter().map(|n| resolve(nl, n)).collect();
            instantiate(nl, &cell, &inst.name, &bindings)?;
        } else {
            let terms: Vec<TerminalSpec> = def
                .ports
                .iter()
                .map(|p| TerminalSpec::new(p.clone(), p.clone()))
                .collect();
            let ty = nl.add_type(DeviceType::try_new(def.name.clone(), terms).map_err(
                |detail| VerilogError::Parse {
                    line: inst.line,
                    detail,
                },
            )?)?;
            let pins: Vec<NetId> = ordered.iter().map(|n| resolve(nl, n)).collect();
            nl.add_device(inst.name.clone(), ty, &pins)?;
        }
        let _ = parent;
        Ok(())
    }

    fn cell(&mut self, name: &str) -> Result<&Netlist, VerilogError> {
        if self.cells.contains_key(name) {
            return Ok(&self.cells[name]);
        }
        if self.visiting.iter().any(|v| v == name) {
            return Err(VerilogError::RecursiveModule {
                name: name.to_string(),
            });
        }
        let Some(def) = self.src.module(name) else {
            return Err(VerilogError::UnknownModule {
                name: name.to_string(),
            });
        };
        self.visiting.push(name.to_string());
        let built = self.build(&def.clone())?;
        self.visiting.pop();
        self.cells.insert(name.to_string(), built);
        Ok(&self.cells[name])
    }
}

impl Source {
    /// Elaborates the named module (or the inferred top when `name` is
    /// `None`) into a flat or hierarchical netlist.
    ///
    /// # Errors
    ///
    /// Unknown/recursive modules, port mismatches, netlist errors.
    ///
    /// # Examples
    ///
    /// ```
    /// use subgemini_verilog::{parse, VerilogOptions};
    ///
    /// let src = parse(
    ///     "module top(input a, output y);\n\
    ///        wire w;\n\
    ///        nand g1(w, a, a);\n\
    ///        not g2(y, w);\n\
    ///      endmodule\n",
    /// )?;
    /// let nl = src.elaborate(None, &VerilogOptions::default())?;
    /// assert_eq!(nl.device_count(), 2);
    /// # Ok::<(), subgemini_verilog::VerilogError>(())
    /// ```
    pub fn elaborate(
        &self,
        name: Option<&str>,
        opts: &VerilogOptions,
    ) -> Result<Netlist, VerilogError> {
        let module = match name {
            Some(n) => self.module(n).ok_or_else(|| VerilogError::UnknownTop {
                name: n.to_string(),
            })?,
            None => self.infer_top().ok_or_else(|| VerilogError::UnknownTop {
                name: "<inferred top>".to_string(),
            })?,
        };
        let mut el = Elaborator::new(self, opts);
        el.build(module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const SRC: &str = "\
module inv(input a, output y);
  supply1 vdd;
  supply0 gnd;
  not g(y, a);
endmodule
module top(input a, b, output y);
  wire w1, w2;
  nand g1(w1, a, b);
  inv u1(.a(w1), .y(w2));
  inv u2(w2, y);
endmodule
";

    #[test]
    fn flatten_resolves_hierarchy_and_primitives() {
        let src = parse(SRC).unwrap();
        let nl = src.elaborate(None, &VerilogOptions::default()).unwrap();
        assert_eq!(nl.name(), "top");
        assert_eq!(nl.device_count(), 3); // nand + 2 flattened not-gates
        assert!(nl.find_device("u1.g").is_some());
        let stats = subgemini_netlist::NetlistStats::of(&nl);
        assert_eq!(stats.devices_by_type["$nand2"], 1);
        assert_eq!(stats.devices_by_type["$not"], 2);
        nl.validate().unwrap();
    }

    #[test]
    fn hierarchical_keeps_composites() {
        let src = parse(SRC).unwrap();
        let nl = src
            .elaborate(Some("top"), &VerilogOptions::hierarchical())
            .unwrap();
        assert_eq!(nl.device_count(), 3); // nand primitive + 2 inv composites
        let u1 = nl.find_device("u1").unwrap();
        assert_eq!(nl.device_type_of(u1).name(), "inv");
    }

    #[test]
    fn primitive_inputs_share_a_class() {
        let ty = primitive_type("nand", 3);
        assert_eq!(ty.name(), "$nand3");
        assert_eq!(ty.terminal_count(), 4);
        assert!(!ty.same_class(0, 1));
        assert!(ty.same_class(1, 2) && ty.same_class(2, 3));
    }

    #[test]
    fn named_connection_errors() {
        let src = parse(
            "module inv(input a, output y);\nnot g(y, a);\nendmodule\n\
             module top(input x, output z);\ninv u(.bogus(x), .y(z));\nendmodule\n",
        )
        .unwrap();
        let err = src
            .elaborate(Some("top"), &VerilogOptions::default())
            .unwrap_err();
        assert!(matches!(err, VerilogError::UnknownPort { .. }));
    }

    #[test]
    fn positional_count_checked() {
        let src = parse(
            "module inv(input a, output y);\nnot g(y, a);\nendmodule\n\
             module top(input x);\ninv u(x);\nendmodule\n",
        )
        .unwrap();
        let err = src
            .elaborate(Some("top"), &VerilogOptions::default())
            .unwrap_err();
        assert!(matches!(err, VerilogError::PortCountMismatch { .. }));
    }

    #[test]
    fn recursion_detected() {
        let src = parse(
            "module a(input x);\nb u(x);\nendmodule\nmodule b(input x);\na u(x);\nendmodule\n\
             module top(input x);\na u(x);\nendmodule\n",
        )
        .unwrap();
        let err = src
            .elaborate(Some("top"), &VerilogOptions::default())
            .unwrap_err();
        assert!(matches!(err, VerilogError::RecursiveModule { .. }));
    }

    #[test]
    fn supplies_become_globals() {
        let src = parse(SRC).unwrap();
        let inv = src
            .elaborate(Some("inv"), &VerilogOptions::default())
            .unwrap();
        // not-gate doesn't touch the rails, so compact() drops them; but
        // an instance netlist that *uses* them keeps the global flag.
        assert!(inv.find_net("vdd").is_none());
        let src2 =
            parse("module m(input a, output y);\nsupply0 gnd;\nnand g(y, a, gnd);\nendmodule\n")
                .unwrap();
        let m = src2.elaborate(None, &VerilogOptions::default()).unwrap();
        let gnd = m.find_net("gnd").unwrap();
        assert!(m.net_ref(gnd).is_global());
    }
}
