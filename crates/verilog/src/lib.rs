//! Structural (gate-level) Verilog subset for the SubGemini
//! reproduction.
//!
//! After extraction converts transistors to gates, the natural
//! interchange format is structural Verilog. This crate parses and
//! writes the structural subset:
//!
//! * `module … endmodule` with ANSI or non-ANSI port declarations,
//! * `wire`, `supply0`, `supply1` (supplies become global nets),
//! * gate primitives `not buf and nand or nor xor xnor` (variable
//!   arity, output first — inputs land in one terminal equivalence
//!   class, so input permutations are matching-invariant),
//! * module instances with named or positional connections,
//! * `//`, `/* */` comments and backtick directives.
//!
//! Behavioral constructs (`assign`, `always`, vectors, delays) are
//! rejected with precise errors — this is a netlist format, not a
//! simulator.
//!
//! # Examples
//!
//! ```
//! use subgemini_verilog::{parse, VerilogOptions};
//!
//! let src = parse(
//!     "module majority(input a, b, c, output y);\n\
//!        wire w1, w2, w3;\n\
//!        nand g1(w1, a, b);\n\
//!        nand g2(w2, b, c);\n\
//!        nand g3(w3, a, c);\n\
//!        nand g4(y, w1, w2, w3);\n\
//!      endmodule\n",
//! )?;
//! let nl = src.elaborate(None, &VerilogOptions::default())?;
//! assert_eq!(nl.device_count(), 4);
//! # Ok::<(), subgemini_verilog::VerilogError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod elaborate;
mod error;
mod lex;
mod parse;
mod write;

pub use ast::{Conns, Dir, Instance, Module, Source, GATE_PRIMITIVES};
pub use elaborate::{primitive_type, VerilogOptions};
pub use error::VerilogError;
pub use parse::parse;
pub use write::{write_design, write_module};
