//! Error type for structural Verilog parsing and elaboration.

use std::error::Error;
use std::fmt;

use subgemini_netlist::NetlistError;

/// Errors produced while parsing or elaborating a Verilog source.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VerilogError {
    /// A syntax problem, with its 1-based source line.
    Parse {
        /// Source line number.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// A construct outside the supported structural subset (vectors,
    /// `assign`, behavioral blocks, …).
    Unsupported {
        /// Source line number.
        line: usize,
        /// The offending construct.
        construct: String,
    },
    /// An instance references a module that was never defined and is
    /// not a gate primitive.
    UnknownModule {
        /// The missing module name.
        name: String,
    },
    /// Module definitions form a cycle.
    RecursiveModule {
        /// A module on the detected cycle.
        name: String,
    },
    /// The requested module does not exist.
    UnknownTop {
        /// The requested name.
        name: String,
    },
    /// An instance connects a port the module does not declare.
    UnknownPort {
        /// Instance name.
        instance: String,
        /// The port name used.
        port: String,
    },
    /// An instance supplies the wrong number of positional connections.
    PortCountMismatch {
        /// Instance name.
        instance: String,
        /// Ports declared by the module.
        expected: usize,
        /// Connections supplied.
        got: usize,
    },
    /// An underlying netlist construction error.
    Netlist(NetlistError),
}

impl fmt::Display for VerilogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerilogError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            VerilogError::Unsupported { line, construct } => write!(
                f,
                "unsupported construct at line {line}: {construct} (structural subset only)"
            ),
            VerilogError::UnknownModule { name } => {
                write!(f, "instance references unknown module `{name}`")
            }
            VerilogError::RecursiveModule { name } => {
                write!(f, "module `{name}` instantiates itself (directly or indirectly)")
            }
            VerilogError::UnknownTop { name } => {
                write!(f, "no module named `{name}` in this source")
            }
            VerilogError::UnknownPort { instance, port } => {
                write!(f, "instance `{instance}` connects unknown port `{port}`")
            }
            VerilogError::PortCountMismatch {
                instance,
                expected,
                got,
            } => write!(
                f,
                "instance `{instance}` supplies {got} connections but the module has {expected} ports"
            ),
            VerilogError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for VerilogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerilogError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for VerilogError {
    fn from(e: NetlistError) -> Self {
        VerilogError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_context() {
        let e = VerilogError::Unsupported {
            line: 4,
            construct: "assign".into(),
        };
        assert!(e.to_string().contains("line 4"));
        assert!(e.to_string().contains("assign"));
        let e = VerilogError::PortCountMismatch {
            instance: "g1".into(),
            expected: 3,
            got: 2,
        };
        assert!(e.to_string().contains("g1"));
    }

    #[test]
    fn netlist_errors_chain() {
        let e = VerilogError::from(NetlistError::UnknownNet { name: "w".into() });
        assert!(e.source().is_some());
    }
}
