//! Recursive-descent parser for the structural subset.

use crate::ast::{Conns, Dir, Instance, Module, Source};
use crate::error::VerilogError;
use crate::lex::{lex, Tok, Token};

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    anon: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn line(&self) -> usize {
        self.peek()
            .map_or_else(|| self.toks.last().map_or(1, |t| t.line), |t| t.line)
    }

    fn err(&self, detail: impl Into<String>) -> VerilogError {
        VerilogError::Parse {
            line: self.line(),
            detail: detail.into(),
        }
    }

    fn next_ident(&mut self, what: &str) -> Result<String, VerilogError> {
        match self.toks.get(self.pos).cloned() {
            Some(Token {
                tok: Tok::Ident(s), ..
            }) => {
                self.pos += 1;
                Ok(s)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn eat_sym(&mut self, c: char) -> Result<(), VerilogError> {
        match self.peek() {
            Some(Token {
                tok: Tok::Sym(s), ..
            }) if *s == c => {
                self.pos += 1;
                Ok(())
            }
            _ => Err(self.err(format!("expected `{c}`"))),
        }
    }

    fn try_sym(&mut self, c: char) -> bool {
        if matches!(self.peek(), Some(Token { tok: Tok::Sym(s), .. }) if *s == c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn ident_list(&mut self) -> Result<Vec<String>, VerilogError> {
        let mut names = vec![self.next_ident("identifier")?];
        while self.try_sym(',') {
            names.push(self.next_ident("identifier")?);
        }
        Ok(names)
    }

    fn parse_module(&mut self) -> Result<Module, VerilogError> {
        let mut m = Module {
            name: self.next_ident("module name")?,
            ..Module::default()
        };
        // Header port list (ANSI or plain).
        if self.try_sym('(') && !self.try_sym(')') {
            {
                loop {
                    let first = self.next_ident("port")?;
                    match first.as_str() {
                        "input" | "output" | "inout" => {
                            let dir = match first.as_str() {
                                "input" => Dir::Input,
                                "output" => Dir::Output,
                                _ => Dir::Inout,
                            };
                            // `wire` qualifier allowed: `input wire a`.
                            let mut name = self.next_ident("port name")?;
                            if name == "wire" {
                                name = self.next_ident("port name")?;
                            }
                            m.ports.push(name);
                            m.dirs.push(dir);
                            // Continuation names keep the direction.
                            while self.try_sym(',') {
                                // A following direction keyword starts a
                                // new group; plain idents continue this
                                // one.
                                if let Some(Token {
                                    tok: Tok::Ident(s), ..
                                }) = self.peek()
                                {
                                    if matches!(s.as_str(), "input" | "output" | "inout") {
                                        self.pos -= 0; // fallthrough to outer loop
                                        break;
                                    }
                                }
                                if matches!(
                                    self.peek(),
                                    Some(Token {
                                        tok: Tok::Sym(')'),
                                        ..
                                    })
                                ) {
                                    break;
                                }
                                let name = self.next_ident("port name")?;
                                m.ports.push(name);
                                m.dirs.push(dir);
                            }
                            if matches!(
                                self.peek(),
                                Some(Token {
                                    tok: Tok::Sym(')'),
                                    ..
                                })
                            ) {
                                self.pos += 1;
                                break;
                            }
                            // Otherwise the loop continues with the next
                            // direction keyword (already positioned).
                            continue;
                        }
                        _ => {
                            // Plain (non-ANSI) port list; directions come
                            // from body declarations.
                            m.ports.push(first);
                            m.dirs.push(Dir::Inout);
                            while self.try_sym(',') {
                                m.ports.push(self.next_ident("port")?);
                                m.dirs.push(Dir::Inout);
                            }
                            self.eat_sym(')')?;
                            break;
                        }
                    }
                }
            }
        }
        self.eat_sym(';')?;
        // Body.
        loop {
            let line = self.line();
            let word = self.next_ident("statement or `endmodule`")?;
            match word.as_str() {
                "endmodule" => break,
                "wire" => {
                    m.wires.extend(self.ident_list()?);
                    self.eat_sym(';')?;
                }
                "supply0" => {
                    m.supply0.extend(self.ident_list()?);
                    self.eat_sym(';')?;
                }
                "supply1" => {
                    m.supply1.extend(self.ident_list()?);
                    self.eat_sym(';')?;
                }
                "input" | "output" | "inout" => {
                    // Non-ANSI direction declaration: update dirs.
                    let dir = match word.as_str() {
                        "input" => Dir::Input,
                        "output" => Dir::Output,
                        _ => Dir::Inout,
                    };
                    for name in self.ident_list()? {
                        if let Some(pos) = m.ports.iter().position(|p| *p == name) {
                            m.dirs[pos] = dir;
                        } else {
                            return Err(VerilogError::Parse {
                                line,
                                detail: format!("`{name}` declared {word} but not a port"),
                            });
                        }
                    }
                    self.eat_sym(';')?;
                }
                "assign" | "always" | "initial" | "reg" | "parameter" | "specify" | "generate"
                | "function" | "task" => {
                    return Err(VerilogError::Unsupported {
                        line,
                        construct: word,
                    });
                }
                module => {
                    // Instance: MODULE [NAME] ( conns ) ;
                    let name = if matches!(
                        self.peek(),
                        Some(Token {
                            tok: Tok::Sym('('),
                            ..
                        })
                    ) {
                        self.anon += 1;
                        format!("_g{}", self.anon)
                    } else {
                        self.next_ident("instance name")?
                    };
                    self.eat_sym('(')?;
                    let conns = self.parse_conns()?;
                    self.eat_sym(';')?;
                    m.instances.push(Instance {
                        module: module.to_string(),
                        name,
                        conns,
                        line,
                    });
                }
            }
        }
        Ok(m)
    }

    fn parse_conns(&mut self) -> Result<Conns, VerilogError> {
        if self.try_sym(')') {
            return Ok(Conns::Positional(Vec::new()));
        }
        if matches!(
            self.peek(),
            Some(Token {
                tok: Tok::Sym('.'),
                ..
            })
        ) {
            let mut named = Vec::new();
            loop {
                self.eat_sym('.')?;
                let port = self.next_ident("port name")?;
                self.eat_sym('(')?;
                let net = self.next_ident("net name")?;
                self.eat_sym(')')?;
                named.push((port, net));
                if !self.try_sym(',') {
                    break;
                }
            }
            self.eat_sym(')')?;
            Ok(Conns::Named(named))
        } else {
            let nets = self.ident_list()?;
            self.eat_sym(')')?;
            Ok(Conns::Positional(nets))
        }
    }
}

/// Parses structural Verilog source text.
///
/// # Errors
///
/// Syntax errors and unsupported constructs, with source lines.
///
/// # Examples
///
/// ```
/// let src = subgemini_verilog::parse(
///     "module top(input a, b, output y);\n\
///        wire w;\n\
///        nand g1(w, a, b);\n\
///        not  g2(y, w);\n\
///      endmodule\n",
/// )?;
/// assert_eq!(src.modules.len(), 1);
/// assert_eq!(src.modules[0].instances.len(), 2);
/// # Ok::<(), subgemini_verilog::VerilogError>(())
/// ```
pub fn parse(text: &str) -> Result<Source, VerilogError> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks,
        pos: 0,
        anon: 0,
    };
    let mut src = Source::default();
    while let Some(t) = p.peek() {
        match &t.tok {
            Tok::Ident(s) if s == "module" => {
                p.pos += 1;
                src.modules.push(p.parse_module()?);
            }
            _ => {
                return Err(p.err("expected `module`"));
            }
        }
    }
    Ok(src)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ansi_header_with_mixed_directions() {
        let src = parse("module m(input a, b, output wire y, inout z);\nendmodule\n").unwrap();
        let m = &src.modules[0];
        assert_eq!(m.ports, vec!["a", "b", "y", "z"]);
        assert_eq!(
            m.dirs,
            vec![Dir::Input, Dir::Input, Dir::Output, Dir::Inout]
        );
    }

    #[test]
    fn non_ansi_ports_pick_up_directions() {
        let src = parse("module m(a, y);\ninput a;\noutput y;\nwire w;\nendmodule\n").unwrap();
        let m = &src.modules[0];
        assert_eq!(m.dirs, vec![Dir::Input, Dir::Output]);
        assert_eq!(m.wires, vec!["w"]);
    }

    #[test]
    fn named_and_positional_instances() {
        let src = parse(
            "module top(input a, output y);\nwire w;\n\
             inv u1(.a(a), .y(w));\n\
             inv u2(w, y);\n\
             nand (y, a, w);\nendmodule\n",
        )
        .unwrap();
        let m = &src.modules[0];
        assert_eq!(m.instances.len(), 3);
        assert!(matches!(m.instances[0].conns, Conns::Named(_)));
        assert!(matches!(m.instances[1].conns, Conns::Positional(_)));
        assert_eq!(m.instances[2].name, "_g1"); // anonymous primitive
    }

    #[test]
    fn supplies_are_recorded() {
        let src = parse("module m(a);\nsupply1 vdd;\nsupply0 gnd, vss;\nendmodule\n").unwrap();
        let m = &src.modules[0];
        assert_eq!(m.supply1, vec!["vdd"]);
        assert_eq!(m.supply0, vec!["gnd", "vss"]);
    }

    #[test]
    fn behavioral_constructs_rejected() {
        let err = parse("module m(a);\nassign a = a;\nendmodule\n").unwrap_err();
        assert!(matches!(err, VerilogError::Unsupported { line: 2, .. }));
    }

    #[test]
    fn stray_text_rejected() {
        assert!(parse("wire w;\n").is_err());
    }

    #[test]
    fn undeclared_direction_target_rejected() {
        let err = parse("module m(a);\ninput b;\nendmodule\n").unwrap_err();
        assert!(matches!(err, VerilogError::Parse { .. }));
    }
}
