//! Writing netlists back out as structural Verilog.

use std::fmt::Write as _;

use subgemini_netlist::Netlist;

/// Renders `netlist` as one Verilog module.
///
/// * Ports come from the netlist's port list (direction is not tracked
///   by the graph model, so they are emitted as `inout`).
/// * Global nets become `supply0`/`supply1` declarations (`vdd`/`vcc`
///   names go to `supply1`, everything else to `supply0`).
/// * Devices whose type name starts with `$` are emitted as gate
///   primitives with positional pins; all other devices become named
///   module instances with `.port(net)` connections.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::Netlist;
/// use subgemini_verilog::{parse, write_module, VerilogOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let src = parse(
///     "module top(input a, output y);\nwire w;\nnand g1(w, a, a);\nnot g2(y, w);\nendmodule\n",
/// )?;
/// let nl = src.elaborate(None, &VerilogOptions::default())?;
/// let text = write_module(&nl);
/// let back = parse(&text)?.elaborate(None, &VerilogOptions::default())?;
/// assert_eq!(back.device_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn write_module(netlist: &Netlist) -> String {
    let mut out = String::new();
    let ports: Vec<&str> = netlist
        .ports()
        .iter()
        .map(|&p| netlist.net_ref(p).name())
        .collect();
    let _ = writeln!(out, "module {}({});", netlist.name(), ports.join(", "));
    if !ports.is_empty() {
        let _ = writeln!(out, "  inout {};", ports.join(", "));
    }
    let mut supply1: Vec<&str> = Vec::new();
    let mut supply0: Vec<&str> = Vec::new();
    let mut wires: Vec<&str> = Vec::new();
    for n in netlist.net_ids() {
        let net = netlist.net_ref(n);
        if net.is_port() {
            continue;
        }
        if net.is_global() {
            if net.name().starts_with("vdd") || net.name().starts_with("vcc") {
                supply1.push(net.name());
            } else {
                supply0.push(net.name());
            }
        } else {
            wires.push(net.name());
        }
    }
    if !supply1.is_empty() {
        let _ = writeln!(out, "  supply1 {};", supply1.join(", "));
    }
    if !supply0.is_empty() {
        let _ = writeln!(out, "  supply0 {};", supply0.join(", "));
    }
    if !wires.is_empty() {
        let _ = writeln!(out, "  wire {};", wires.join(", "));
    }
    for d in netlist.device_ids() {
        let dev = netlist.device(d);
        let ty = netlist.device_type_of(d);
        let net = |i: usize| netlist.net_ref(dev.pin(i)).name();
        if let Some(prim) = ty.name().strip_prefix('$') {
            let gate = prim.trim_end_matches(|c: char| c.is_ascii_digit());
            let pins: Vec<&str> = (0..ty.terminal_count()).map(net).collect();
            let _ = writeln!(
                out,
                "  {gate} {}({});",
                sanitize(dev.name()),
                pins.join(", ")
            );
        } else {
            let conns: Vec<String> = (0..ty.terminal_count())
                .map(|i| format!(".{}({})", ty.terminal(i).name(), net(i)))
                .collect();
            let _ = writeln!(
                out,
                "  {} {}({});",
                ty.name(),
                sanitize(dev.name()),
                conns.join(", ")
            );
        }
    }
    out.push_str("endmodule\n");
    out
}

/// Renders a hierarchical design: cell modules first, then the top.
pub fn write_design(top: &Netlist, cells: &[Netlist]) -> String {
    let mut out = String::new();
    for cell in cells {
        out.push_str(&write_module(cell));
        out.push('\n');
    }
    out.push_str(&write_module(top));
    out
}

/// Verilog identifiers cannot contain `.` or `#`; instance names coming
/// from flattening (`u1.mp`) or extraction (`inv#3`) are mapped to `_`.
fn sanitize(name: &str) -> String {
    name.replace(['.', '#'], "_")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::VerilogOptions;
    use crate::parse::parse;

    #[test]
    fn roundtrip_preserves_structure() {
        let src = parse(
            "module top(input a, b, output y);\nwire w;\nsupply0 gnd;\n\
             nand g1(w, a, b);\nxor g2(y, w, gnd);\nendmodule\n",
        )
        .unwrap();
        let nl = src.elaborate(None, &VerilogOptions::default()).unwrap();
        let text = write_module(&nl);
        let back = parse(&text)
            .unwrap()
            .elaborate(None, &VerilogOptions::default())
            .unwrap();
        assert_eq!(nl.device_count(), back.device_count());
        assert_eq!(nl.net_count(), back.net_count());
        let s1 = subgemini_netlist::NetlistStats::of(&nl);
        let s2 = subgemini_netlist::NetlistStats::of(&back);
        assert_eq!(s1.devices_by_type, s2.devices_by_type);
        assert_eq!(s1.globals, s2.globals);
    }

    #[test]
    fn composite_devices_become_instances() {
        let src = parse(
            "module inv(input a, output y);\nnot g(y, a);\nendmodule\n\
             module top(input x, output z);\ninv u1(.a(x), .y(z));\nendmodule\n",
        )
        .unwrap();
        let hier = src
            .elaborate(Some("top"), &VerilogOptions::hierarchical())
            .unwrap();
        let text = write_module(&hier);
        assert!(text.contains("inv u1(.a(x), .y(z));"), "{text}");
    }

    #[test]
    fn design_writer_emits_cells_then_top() {
        let src = parse(
            "module inv(input a, output y);\nnot g(y, a);\nendmodule\n\
             module top(input x, output z);\ninv u1(x, z);\nendmodule\n",
        )
        .unwrap();
        let inv = src
            .elaborate(Some("inv"), &VerilogOptions::default())
            .unwrap();
        let top = src
            .elaborate(Some("top"), &VerilogOptions::hierarchical())
            .unwrap();
        let design = write_design(&top, &[inv]);
        let back = parse(&design).unwrap();
        assert_eq!(back.modules.len(), 2);
        let flat = back
            .elaborate(Some("top"), &VerilogOptions::default())
            .unwrap();
        assert_eq!(flat.device_count(), 1);
    }

    #[test]
    fn sanitize_dots_and_hashes() {
        assert_eq!(sanitize("u1.mp"), "u1_mp");
        assert_eq!(sanitize("inv#3"), "inv_3");
    }
}
