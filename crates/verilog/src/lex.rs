//! Tokenizer for the structural Verilog subset.

use crate::error::VerilogError;

/// A lexical token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Single punctuation character: `( ) ; , . =`.
    Sym(char),
}

/// A token with its source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: usize,
}

/// Tokenizes `src`, skipping whitespace, `//` and `/* */` comments, and
/// compiler directives (backtick to end of line).
///
/// # Errors
///
/// Rejects characters outside the structural subset (notably `[`, which
/// would start a vector range).
pub fn lex(src: &str) -> Result<Vec<Token>, VerilogError> {
    let mut out = Vec::new();
    let mut line = 1usize;
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if bytes.get(i + 1) == Some(&'/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < bytes.len() && !(bytes[i] == '*' && bytes[i + 1] == '/') {
                    if bytes[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                i = (i + 2).min(bytes.len());
            }
            '`' => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' | ')' | ';' | ',' | '.' | '=' => {
                out.push(Token {
                    tok: Tok::Sym(c),
                    line,
                });
                i += 1;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '\\' => {
                let mut s = String::new();
                if c == '\\' {
                    // Escaped identifier: up to whitespace.
                    i += 1;
                    while i < bytes.len() && !bytes[i].is_whitespace() {
                        s.push(bytes[i]);
                        i += 1;
                    }
                } else {
                    while i < bytes.len()
                        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == '_' || bytes[i] == '$')
                    {
                        s.push(bytes[i]);
                        i += 1;
                    }
                }
                out.push(Token {
                    tok: Tok::Ident(s),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                return Err(VerilogError::Unsupported {
                    line,
                    construct: format!("numeric literal starting with `{c}`"),
                });
            }
            '[' | ']' => {
                return Err(VerilogError::Unsupported {
                    line,
                    construct: "vector range `[...]` (scalar nets only)".into(),
                });
            }
            '#' => {
                return Err(VerilogError::Unsupported {
                    line,
                    construct: "delay/parameter `#`".into(),
                });
            }
            other => {
                return Err(VerilogError::Parse {
                    line,
                    detail: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .unwrap()
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                Tok::Sym(_) => None,
            })
            .collect()
    }

    #[test]
    fn basic_tokens_and_lines() {
        let toks = lex("module m(a);\nendmodule\n").unwrap();
        assert_eq!(toks[0].tok, Tok::Ident("module".into()));
        assert_eq!(toks[2].tok, Tok::Sym('('));
        let last = toks.last().unwrap();
        assert_eq!(last.tok, Tok::Ident("endmodule".into()));
        assert_eq!(last.line, 2);
    }

    #[test]
    fn comments_and_directives_skipped() {
        let ids = idents("// c\n/* multi\nline */ `timescale 1ns/1ps\nwire w;\n");
        assert_eq!(ids, vec!["wire", "w"]);
    }

    #[test]
    fn escaped_identifiers() {
        let ids = idents("wire \\weird$name ;\n");
        assert_eq!(ids, vec!["wire", "weird$name"]);
    }

    #[test]
    fn vectors_rejected() {
        let err = lex("wire [3:0] bus;\n").unwrap_err();
        assert!(matches!(err, VerilogError::Unsupported { .. }));
    }

    #[test]
    fn delays_rejected() {
        assert!(lex("not #1 g(y, a);").is_err());
    }
}
