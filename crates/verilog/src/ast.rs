//! AST for the structural Verilog subset.

/// Port/net direction (kept for writer fidelity; matching itself is
/// direction-blind, like the paper's undirected graphs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// `input`.
    Input,
    /// `output`.
    Output,
    /// `inout`.
    Inout,
}

/// How an instance's connections were written.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Conns {
    /// `inst (n1, n2, …)` — by port position.
    Positional(Vec<String>),
    /// `inst (.port(net), …)` — by port name.
    Named(Vec<(String, String)>),
}

/// One instantiation inside a module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Module or gate-primitive name (`nand`, `not`, user module…).
    pub module: String,
    /// Instance name (auto-generated for anonymous primitives).
    pub name: String,
    /// Connections.
    pub conns: Conns,
    /// Source line.
    pub line: usize,
}

/// A module definition.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Module {
    /// The module name.
    pub name: String,
    /// Port names in declaration order.
    pub ports: Vec<String>,
    /// Direction of each port (same order as `ports`).
    pub dirs: Vec<Dir>,
    /// Internal wires.
    pub wires: Vec<String>,
    /// `supply0` nets (ground rails).
    pub supply0: Vec<String>,
    /// `supply1` nets (power rails).
    pub supply1: Vec<String>,
    /// Instances in source order.
    pub instances: Vec<Instance>,
}

/// A parsed source file: modules in definition order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Source {
    /// All module definitions.
    pub modules: Vec<Module>,
}

impl Source {
    /// Looks up a module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// The top module: the unique module never instantiated by another
    /// (`None` when ambiguous or when the source is empty).
    pub fn infer_top(&self) -> Option<&Module> {
        let mut instantiated: Vec<&str> = Vec::new();
        for m in &self.modules {
            for i in &m.instances {
                instantiated.push(&i.module);
            }
        }
        let mut tops = self
            .modules
            .iter()
            .filter(|m| !instantiated.contains(&m.name.as_str()));
        match (tops.next(), tops.next()) {
            (Some(t), None) => Some(t),
            _ => None,
        }
    }
}

/// Gate primitives of the subset, with their canonical device-type
/// naming: `$not`, `$buf`, `$and2`, `$nand3`, … (output first, inputs
/// interchangeable).
pub const GATE_PRIMITIVES: &[&str] = &["not", "buf", "and", "nand", "or", "nor", "xor", "xnor"];

/// Is `name` one of the gate primitives?
pub fn is_primitive(name: &str) -> bool {
    GATE_PRIMITIVES.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infer_top_prefers_uninstantiated_module() {
        let mut src = Source::default();
        src.modules.push(Module {
            name: "leaf".into(),
            ..Module::default()
        });
        src.modules.push(Module {
            name: "top".into(),
            instances: vec![Instance {
                module: "leaf".into(),
                name: "u1".into(),
                conns: Conns::Positional(vec![]),
                line: 1,
            }],
            ..Module::default()
        });
        assert_eq!(src.infer_top().unwrap().name, "top");
    }

    #[test]
    fn ambiguous_top_is_none() {
        let mut src = Source::default();
        for n in ["a", "b"] {
            src.modules.push(Module {
                name: n.into(),
                ..Module::default()
            });
        }
        assert!(src.infer_top().is_none());
    }

    #[test]
    fn primitive_set() {
        assert!(is_primitive("nand"));
        assert!(!is_primitive("nand2"));
        assert!(!is_primitive("dff"));
    }
}
