//! Netlist source loading: file- and text-based parsing plus main/cell
//! elaboration, shared by every engine front end. Files (or source
//! names) ending in `.v` or `.sv` load through the structural Verilog
//! parser; everything else is treated as SPICE (file loads resolve
//! `.include`).

use subgemini_netlist::Netlist;
use subgemini_spice::{parse as sparse, parse_file, ElaborateOptions, SpiceDoc};
use subgemini_verilog::{parse as vparse, Source, VerilogOptions};

/// Which parser a source goes through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// A SPICE deck.
    Spice,
    /// A structural Verilog source.
    Verilog,
}

impl SourceKind {
    /// Dispatch on file extension: `.v`/`.sv` is Verilog, everything
    /// else SPICE.
    pub fn from_path(path: &str) -> SourceKind {
        if path.ends_with(".v") || path.ends_with(".sv") {
            SourceKind::Verilog
        } else {
            SourceKind::Spice
        }
    }

    /// Parses a format name (`spice` / `verilog`), as used by daemon
    /// request bodies.
    pub fn from_name(name: &str) -> Option<SourceKind> {
        match name {
            "spice" => Some(SourceKind::Spice),
            "verilog" => Some(SourceKind::Verilog),
            _ => None,
        }
    }
}

/// A loaded deck in either supported format.
#[derive(Debug)]
pub enum Doc {
    /// A SPICE deck.
    Spice(SpiceDoc),
    /// A structural Verilog source.
    Verilog(Source),
}

/// Reads and parses a netlist file, dispatching on extension.
///
/// # Errors
///
/// I/O and parse errors as strings, with the path in the message.
pub fn load_doc(path: &str) -> Result<Doc, String> {
    match SourceKind::from_path(path) {
        SourceKind::Verilog => {
            let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            Ok(Doc::Verilog(
                vparse(&text).map_err(|e| format!("{path}: {e}"))?,
            ))
        }
        SourceKind::Spice => Ok(Doc::Spice(parse_file(path).map_err(|e| e.to_string())?)),
    }
}

/// Parses netlist text that did not come from a file (daemon request
/// bodies). `label` names the source in error messages. Text parses do
/// not resolve SPICE `.include` cards — a daemon must not read the
/// server's filesystem on behalf of a client.
///
/// # Errors
///
/// Parse errors as strings, prefixed with `label`.
pub fn parse_text(text: &str, kind: SourceKind, label: &str) -> Result<Doc, String> {
    match kind {
        SourceKind::Spice => Ok(Doc::Spice(
            sparse(text).map_err(|e| format!("{label}: {e}"))?,
        )),
        SourceKind::Verilog => Ok(Doc::Verilog(
            vparse(text).map_err(|e| format!("{label}: {e}"))?,
        )),
    }
}

impl Doc {
    /// Cell (subckt/module) names defined by the deck.
    pub fn cell_names(&self) -> Vec<String> {
        match self {
            Doc::Spice(d) => d.subckts.iter().map(|s| s.name.clone()).collect(),
            Doc::Verilog(s) => s.modules.iter().map(|m| m.name.clone()).collect(),
        }
    }
}

/// Elaborates the main circuit of a deck: the top level (SPICE cards /
/// the inferred top module), falling back to a sole cell definition.
/// `top_name` names the elaborated top; `label` names the source in
/// error messages.
///
/// # Errors
///
/// Propagates elaboration problems, or reports an ambiguous deck.
pub fn main_from_doc(doc: &Doc, top_name: &str, label: &str) -> Result<Netlist, String> {
    match doc {
        Doc::Spice(doc) => {
            let opts = ElaborateOptions::default();
            if !doc.top.is_empty() {
                return doc
                    .elaborate_top(top_name, &opts)
                    .map_err(|e| format!("{label}: {e}"));
            }
            match doc.subckts.len() {
                1 => doc
                    .elaborate_cell(&doc.subckts[0].name.clone(), &opts)
                    .map_err(|e| format!("{label}: {e}")),
                0 => Err(format!("{label}: deck is empty")),
                n => Err(format!(
                    "{label}: no top-level cards and {n} subcircuits; pass --pattern/--cell to pick one"
                )),
            }
        }
        Doc::Verilog(src) => src
            .elaborate(None, &VerilogOptions::default())
            .map_err(|e| format!("{label}: {e}")),
    }
}

/// Elaborates the main circuit of a netlist file.
///
/// # Errors
///
/// See [`main_from_doc`]; messages carry the path.
pub fn load_main(path: &str) -> Result<Netlist, String> {
    main_from_doc(&load_doc(path)?, main_name(path), path)
}

/// Elaborates a named cell from a deck (for patterns and rules).
/// `label` names the source in error messages.
///
/// # Errors
///
/// Propagates unknown-cell and elaboration problems.
pub fn load_cell(doc: &Doc, name: &str, label: &str) -> Result<Netlist, String> {
    match doc {
        Doc::Spice(d) => d
            .elaborate_cell(name, &ElaborateOptions::default())
            .map_err(|e| format!("{label}: {e}")),
        Doc::Verilog(s) => s
            .elaborate(Some(name), &VerilogOptions::default())
            .map_err(|e| format!("{label}: {e}")),
    }
}

/// Elaborates a named cell keeping one level of structure: `X`
/// instances of other cells stay composite devices instead of being
/// inlined. Hierarchy reconstruction needs this — a flat elaboration
/// erases the reference depth the level grouping is built from.
///
/// # Errors
///
/// Propagates unknown-cell and elaboration problems.
pub fn load_cell_hierarchical(doc: &Doc, name: &str, label: &str) -> Result<Netlist, String> {
    match doc {
        Doc::Spice(d) => d
            .elaborate_cell(name, &ElaborateOptions::hierarchical())
            .map_err(|e| format!("{label}: {e}")),
        Doc::Verilog(s) => s
            .elaborate(Some(name), &VerilogOptions::hierarchical())
            .map_err(|e| format!("{label}: {e}")),
    }
}

/// The default circuit name for a path: the file stem, without SPICE
/// extensions.
pub fn main_name(path: &str) -> &str {
    path.rsplit('/')
        .next()
        .unwrap_or(path)
        .trim_end_matches(".sp")
        .trim_end_matches(".cir")
        .trim_end_matches(".spice")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_name_strips_path_and_extension() {
        assert_eq!(main_name("/tmp/chip.sp"), "chip");
        assert_eq!(main_name("adder.spice"), "adder");
        assert_eq!(main_name("plain"), "plain");
    }

    #[test]
    fn load_doc_reports_missing_file() {
        let err = load_doc("/nonexistent/x.sp").unwrap_err();
        assert!(err.contains("/nonexistent/x.sp"));
        let err = load_doc("/nonexistent/x.v").unwrap_err();
        assert!(err.contains("/nonexistent/x.v"));
    }

    #[test]
    fn extension_dispatch() {
        assert_eq!(SourceKind::from_path("a.v"), SourceKind::Verilog);
        assert_eq!(SourceKind::from_path("b.sv"), SourceKind::Verilog);
        assert_eq!(SourceKind::from_path("c.sp"), SourceKind::Spice);
        assert_eq!(SourceKind::from_name("spice"), Some(SourceKind::Spice));
        assert_eq!(SourceKind::from_name("verilog"), Some(SourceKind::Verilog));
        assert_eq!(SourceKind::from_name("edif"), None);
    }

    #[test]
    fn parse_text_elaborates_like_a_file() {
        let deck = ".subckt inv a y\nmp y a vdd vdd pmos\nmn y a gnd gnd nmos\n.ends\n";
        let doc = parse_text(deck, SourceKind::Spice, "body").unwrap();
        assert_eq!(doc.cell_names(), vec!["inv".to_string()]);
        let cell = load_cell(&doc, "inv", "body").unwrap();
        assert_eq!(cell.device_count(), 2);
        let err = load_cell(&doc, "nope", "body").unwrap_err();
        assert!(err.contains("body"), "{err}");
    }

    #[test]
    fn parse_text_labels_errors() {
        let err = parse_text(".subckt broken", SourceKind::Spice, "upload").unwrap_err();
        assert!(err.contains("upload"), "{err}");
    }

    #[test]
    fn main_from_doc_reports_ambiguity() {
        let deck = ".subckt a x\nm1 x x x x nmos\n.ends\n.subckt b y\nm1 y y y y nmos\n.ends\n";
        let doc = parse_text(deck, SourceKind::Spice, "body").unwrap();
        let err = main_from_doc(&doc, "top", "body").unwrap_err();
        assert!(err.contains("2 subcircuits"), "{err}");
    }
}
