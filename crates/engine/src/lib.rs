//! SubGemini engine: the session layer between front ends and the
//! matching core.
//!
//! After PR 6 every front end (the `subg` CLI, benches, tests)
//! hand-rolled the same request pipeline: parse a netlist, compile it
//! (or adopt a warm `.sgc` artifact), assemble [`MatchOptions`], run
//! `find`/`survey`/`explain`, and render a report. This crate extracts
//! that pipeline once:
//!
//! * [`Engine`] — a registry of named, `Arc`-shared compiled circuits
//!   (each held as a [`WarmMain`]: CSR snapshot + fingerprint index)
//!   and named pattern libraries. Registration compiles once; every
//!   subsequent request against that name shares the allocation, so a
//!   daemon amortizes compilation across heavy traffic exactly like
//!   [`subgemini::find_all_many`] amortizes it across a library sweep.
//! * Typed requests ([`FindRequest`], [`SurveyRequest`],
//!   [`ExplainRequest`]) — every request carries its *own*
//!   [`RequestOptions`]: work budget/deadline, prune mode,
//!   thread/scheduler choice, cancellation token, and event-journal
//!   capture. Nothing is process-global; two concurrent requests with
//!   different QoS coexist on one registry entry.
//! * [`RequestOptions::lower`] — the one place that turns request
//!   options into core [`MatchOptions`], including the artifact-load /
//!   digest-check / warm-main wiring the CLI used to repeat per
//!   subcommand.
//!
//! The sharing contract (see DESIGN.md §3g): registry entries are
//! immutable snapshots behind `Arc`. A request resolves its entry once
//! and keeps the `Arc` for its whole run; re-registering a name swaps
//! the map pointer and never mutates the old entry, so in-flight
//! requests finish against the snapshot they started with. Because the
//! matching core is deterministic (serial candidate-vector-ordered
//! merge), N concurrent requests over one shared entry return results
//! byte-identical to N serial CLI runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod source;

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;

use subgemini::hier::{Hierarchizer, HierarchyReport};
use subgemini::{
    find_all, find_all_many, CancelToken, ExplainReport, MatchOptions, MatchOutcome,
    Phase2Scheduler, PrunePolicy, RequestSample, ShardPolicy, Telemetry, TelemetrySnapshot,
    WarmMain, WorkBudget,
};
use subgemini_netlist::{structural_digest, Artifact, Netlist};

/// Why the engine refused a request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The request named a circuit the registry does not hold.
    UnknownCircuit(String),
    /// The request named a library the registry does not hold.
    UnknownLibrary(String),
    /// The request named a cell its library does not define.
    UnknownCell {
        /// The library that was searched.
        library: String,
        /// The missing cell.
        cell: String,
    },
    /// Anything else: source parse problems, artifact problems, bad
    /// option combinations. The message is front-end-ready.
    Invalid(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownCircuit(n) => write!(f, "unknown circuit `{n}`"),
            EngineError::UnknownLibrary(n) => write!(f, "unknown library `{n}`"),
            EngineError::UnknownCell { library, cell } => {
                write!(f, "library `{library}` has no cell `{cell}`")
            }
            EngineError::Invalid(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<String> for EngineError {
    fn from(m: String) -> Self {
        EngineError::Invalid(m)
    }
}

/// Per-request knobs, lowered onto core [`MatchOptions`] by
/// [`RequestOptions::lower`]. Defaults mirror `MatchOptions::default()`
/// for every field carried here, so an all-default request behaves
/// exactly like a bare CLI invocation.
#[derive(Clone, Debug)]
pub struct RequestOptions {
    /// Honor global (special) nets (default `true`).
    pub respect_globals: bool,
    /// Stop after this many verified instances (0 = unlimited).
    pub max_instances: usize,
    /// Phase II worker threads (`1` serial, `0` = machine auto).
    pub threads: usize,
    /// Phase II candidate scheduler.
    pub scheduler: Phase2Scheduler,
    /// Sharded Phase II dispatch policy (DESIGN.md §3i). Off by
    /// default; `Auto` sizes shards from the main circuit's device
    /// count, `Count(n)` forces `n` shards.
    pub shards: ShardPolicy,
    /// Collect phase timers and effort counters on the outcome.
    pub collect_metrics: bool,
    /// Record the structured event journal on the outcome.
    pub trace_events: bool,
    /// Work budget (effort cap and/or wall-clock deadline). An
    /// unlimited budget is treated as `None`, so plain requests stay
    /// governor-free.
    pub budget: Option<WorkBudget>,
    /// Fingerprint-prune policy.
    pub prune: PrunePolicy,
    /// Cooperative cancellation flag for this request.
    pub cancel: Option<CancelToken>,
    /// Path to a `.sgc` artifact to warm-start from (the CLI
    /// `--artifact` flag). Takes precedence over a registry entry's
    /// shared handle; the artifact must match the main circuit's
    /// structural digest.
    pub artifact: Option<String>,
    /// Request id to run under. `None` (default) lets the engine mint
    /// the next id from its counter; a caller-supplied id is used
    /// verbatim (transports that assign ids upstream). The id is
    /// threaded through [`RequestOptions::lower`] into the outcome,
    /// report JSON, and logs — pure correlation metadata, never read by
    /// the search.
    pub request_id: Option<u64>,
}

impl Default for RequestOptions {
    fn default() -> Self {
        Self {
            respect_globals: true,
            max_instances: 0,
            threads: 1,
            scheduler: Phase2Scheduler::default(),
            shards: ShardPolicy::default(),
            collect_metrics: false,
            trace_events: false,
            budget: None,
            prune: PrunePolicy::default(),
            cancel: None,
            artifact: None,
            request_id: None,
        }
    }
}

impl RequestOptions {
    /// Lowers request options onto core [`MatchOptions`], resolving the
    /// warm-start source. This is the single copy of the
    /// artifact-load / digest-check / warm-main wiring that `find`,
    /// `explain`, and `survey` each used to hand-roll:
    ///
    /// * an explicit [`artifact`](RequestOptions::artifact) path is
    ///   loaded and digest-checked against `main` — a mismatch is a
    ///   hard error (the caller named the file), never a silent cold
    ///   fallback;
    /// * otherwise a registry entry's shared [`WarmMain`] is adopted,
    ///   but only under global-respecting matching (a de-globaled run
    ///   needs a different compilation and stays cold — byte-identical
    ///   to an inline request).
    ///
    /// # Errors
    ///
    /// Artifact problems (unreadable, digest mismatch, combined with
    /// `respect_globals = false`) as [`EngineError::Invalid`].
    pub fn lower(
        &self,
        main: &Netlist,
        registry_warm: Option<&WarmMain>,
    ) -> Result<MatchOptions, EngineError> {
        let mut opts = MatchOptions {
            respect_globals: self.respect_globals,
            max_instances: self.max_instances,
            threads: self.threads,
            scheduler: self.scheduler,
            shards: self.shards,
            collect_metrics: self.collect_metrics,
            trace_events: self.trace_events,
            prune: self.prune,
            ..MatchOptions::default()
        };
        opts.budget = self.budget.clone().filter(|b| !b.is_unlimited());
        opts.cancel = self.cancel.clone();
        opts.request_id = self.request_id;
        if let Some(path) = self.artifact.as_deref() {
            if !self.respect_globals {
                return Err(EngineError::Invalid(
                    "--artifact requires global-respecting matching; drop --ignore-globals".into(),
                ));
            }
            let t0 = Instant::now();
            let artifact = Artifact::load(std::path::Path::new(path))
                .map_err(|e| EngineError::Invalid(e.to_string()))?;
            let load_ns = t0.elapsed().as_nanos() as u64;
            if artifact.source_digest != structural_digest(main) {
                return Err(EngineError::Invalid(format!(
                    "{path}: artifact was compiled from a different circuit; re-run `subg compile`"
                )));
            }
            opts.warm_main = Some(WarmMain::from_artifact(artifact, load_ns));
        } else if let Some(warm) = registry_warm {
            if self.respect_globals {
                opts.warm_main = Some(warm.clone());
            }
        }
        Ok(opts)
    }
}

/// The main circuit a request runs against.
#[derive(Clone, Copy, Debug)]
pub enum CircuitSource<'a> {
    /// A named registry entry (shared compiled snapshot + index).
    Registered(&'a str),
    /// A caller-provided netlist, compiled for this request only (the
    /// CLI one-shot path — deliberately *not* registered, so cold runs
    /// stay cold and byte-identical to pre-engine releases).
    Inline(&'a Netlist),
}

/// The pattern a find/explain request searches for.
#[derive(Clone, Copy, Debug)]
pub enum PatternSource<'a> {
    /// A caller-provided pattern netlist.
    Inline(&'a Netlist),
    /// A cell from a registered pattern library.
    Library {
        /// The registered library name.
        library: &'a str,
        /// The cell within it.
        cell: &'a str,
    },
}

/// The cell library a survey sweeps.
#[derive(Clone, Copy, Debug)]
pub enum LibrarySource<'a> {
    /// A named registered library.
    Registered(&'a str),
    /// Caller-provided cells.
    Inline(&'a [Netlist]),
}

/// A find request: locate all instances of one pattern in one circuit.
#[derive(Debug)]
pub struct FindRequest<'a> {
    /// The main circuit.
    pub circuit: CircuitSource<'a>,
    /// The pattern.
    pub pattern: PatternSource<'a>,
    /// Per-request options.
    pub options: RequestOptions,
}

/// A survey request: count instances of every library cell in one run,
/// sharing the compiled main and the Phase I relabeling across cells.
#[derive(Debug)]
pub struct SurveyRequest<'a> {
    /// The main circuit.
    pub circuit: CircuitSource<'a>,
    /// The cell library.
    pub library: LibrarySource<'a>,
    /// Per-request options.
    pub options: RequestOptions,
}

/// A hierarchize request: rebuild the design hierarchy of one flat
/// circuit by running extraction bottom-up, level by level, to a
/// fixpoint (paper §I; `subgemini::hier`). The request options lower
/// through the same [`RequestOptions::lower`] path as every other
/// request; budget, deadline, prune, and shard settings apply to each
/// round's searches independently (the budget is declarative, so every
/// round starts it fresh).
#[derive(Debug)]
pub struct HierarchizeRequest<'a> {
    /// The flat main circuit.
    pub circuit: CircuitSource<'a>,
    /// The cell library to rebuild the hierarchy from; upper cells may
    /// reference lower ones by composite device-type name.
    pub library: LibrarySource<'a>,
    /// Per-request options.
    pub options: RequestOptions,
}

/// An explain request: a find with the event journal forced on, plus a
/// rendered [`ExplainReport`].
#[derive(Debug)]
pub struct ExplainRequest<'a> {
    /// The main circuit.
    pub circuit: CircuitSource<'a>,
    /// The pattern.
    pub pattern: PatternSource<'a>,
    /// Per-request options (`trace_events` is forced on).
    pub options: RequestOptions,
}

/// Response to a find request.
#[derive(Clone, Debug)]
pub struct FindResponse {
    /// Name of the main circuit searched.
    pub circuit: String,
    /// Name of the pattern searched for.
    pub pattern: String,
    /// The full match outcome (instances, stats, completeness,
    /// optional metrics/journal).
    pub outcome: MatchOutcome,
    /// Sorted main-circuit device names per instance, in instance
    /// order — the rendering-ready form of
    /// [`SubMatch::device_set`](subgemini::SubMatch::device_set).
    pub instance_devices: Vec<Vec<String>>,
    /// The request id this search ran under (minted by the engine
    /// unless the caller supplied one).
    pub request_id: u64,
    /// End-to-end wall time of the search call, in nanoseconds.
    pub wall_ns: u64,
    /// Deterministic effort spent (Phase I iterations + Phase II
    /// candidates/passes/guesses/backtracks) — always available, even
    /// when metrics were not requested.
    pub effort_spent: u64,
}

/// One survey row: a cell and its outcome.
#[derive(Clone, Debug)]
pub struct SurveyRow {
    /// The cell name.
    pub cell: String,
    /// The cell's match outcome.
    pub outcome: MatchOutcome,
}

/// Response to a survey request.
#[derive(Clone, Debug)]
pub struct SurveyResponse {
    /// Name of the main circuit surveyed.
    pub circuit: String,
    /// One row per library cell, in library order.
    pub rows: Vec<SurveyRow>,
    /// The request id the sweep ran under (one id for all rows).
    pub request_id: u64,
    /// End-to-end wall time of the whole sweep, in nanoseconds.
    pub wall_ns: u64,
    /// Deterministic effort spent, summed over the rows.
    pub effort_spent: u64,
}

/// Response to a hierarchize request.
#[derive(Clone, Debug)]
pub struct HierarchizeResponse {
    /// Name of the flat circuit hierarchized.
    pub circuit: String,
    /// Per-level tallies, containment tree, residue, sweep count.
    pub report: HierarchyReport,
    /// The hierarchical SPICE deck (`.subckt` per used cell + the
    /// collapsed top), ready to write to disk or return over HTTP.
    pub deck: String,
    /// Rounds run (level-passes summed over sweeps), including the
    /// final all-quiet sweep that proves the fixpoint.
    pub rounds: usize,
    /// The request id the run executed under (one id for all rounds).
    pub request_id: u64,
    /// End-to-end wall time of the whole fixpoint run, in nanoseconds.
    pub wall_ns: u64,
}

/// Response to an explain request.
#[derive(Clone, Debug)]
pub struct ExplainResponse {
    /// Name of the main circuit searched.
    pub circuit: String,
    /// Name of the pattern searched for.
    pub pattern: String,
    /// The full match outcome (journal included).
    pub outcome: MatchOutcome,
    /// The report distilled from the journal.
    pub report: ExplainReport,
    /// The request id this search ran under.
    pub request_id: u64,
    /// End-to-end wall time of the search call, in nanoseconds.
    pub wall_ns: u64,
    /// Deterministic effort spent.
    pub effort_spent: u64,
}

/// Result of compiling/registering a circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileInfo {
    /// The registered name.
    pub name: String,
    /// Device count of the compiled snapshot.
    pub devices: usize,
    /// Net count of the compiled snapshot.
    pub nets: usize,
    /// Structural digest of the source netlist.
    pub digest: u64,
    /// Encoded `.sgc` artifact size in bytes.
    pub artifact_bytes: usize,
}

/// Result of registering a pattern library.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LibraryInfo {
    /// The registered name.
    pub name: String,
    /// Cell names, in library order.
    pub cells: Vec<String>,
}

/// A compiled-and-encoded artifact, for front ends that persist `.sgc`
/// files (the CLI `compile` subcommand).
#[derive(Clone, Debug)]
pub struct EncodedArtifact {
    /// The encoded `.sgc` bytes.
    pub bytes: Vec<u8>,
    /// Device count of the compiled snapshot.
    pub devices: usize,
    /// Net count of the compiled snapshot.
    pub nets: usize,
    /// Structural digest of the source netlist.
    pub digest: u64,
}

/// Compiles a netlist into an encoded `.sgc` artifact (CSR snapshot +
/// fingerprint index) without touching any registry.
pub fn compile_netlist(main: &Netlist) -> EncodedArtifact {
    let artifact = Artifact::build(main);
    let bytes = artifact.encode();
    EncodedArtifact {
        devices: artifact.circuit.device_count(),
        nets: artifact.circuit.net_count(),
        digest: artifact.source_digest,
        bytes,
    }
}

/// A registered circuit: the source netlist plus its shared compiled
/// snapshot and fingerprint index, all immutable behind `Arc`.
struct CircuitEntry {
    netlist: Arc<Netlist>,
    warm: WarmMain,
    devices: usize,
    nets: usize,
    digest: u64,
    artifact_bytes: usize,
}

/// Registry description of one circuit, as reported by
/// [`Engine::status`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitInfo {
    /// The registered name.
    pub name: String,
    /// Device count.
    pub devices: usize,
    /// Net count.
    pub nets: usize,
    /// Structural digest.
    pub digest: u64,
    /// Encoded artifact size in bytes.
    pub artifact_bytes: usize,
}

/// A point-in-time snapshot of the engine: registry contents and
/// request counters (the `/metrics` surface of the daemon).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EngineStatus {
    /// Registered circuits, sorted by name.
    pub circuits: Vec<CircuitInfo>,
    /// Registered libraries as `(name, cell count)`, sorted by name.
    pub libraries: Vec<(String, usize)>,
    /// Cumulative request counters, in a fixed order.
    pub requests: Vec<(&'static str, u64)>,
    /// Cross-request telemetry rollups (per-endpoint and per-circuit
    /// latency/effort/backtrack histograms, truncation and reject
    /// tallies). Empty while telemetry is disabled.
    pub telemetry: TelemetrySnapshot,
}

#[derive(Default)]
struct EngineCounters {
    compile: AtomicU64,
    library: AtomicU64,
    find: AtomicU64,
    survey: AtomicU64,
    explain: AtomicU64,
    hierarchize: AtomicU64,
    truncated: AtomicU64,
}

/// The session engine: named registries of compiled circuits and
/// pattern libraries plus the request pipeline over them. Cheap to
/// construct; front ends that never register anything (the CLI
/// one-shot path) pay nothing for the registry.
///
/// All methods take `&self` and are safe to call from many threads;
/// see the module docs for the sharing contract.
///
/// Every search request gets a request id (engine-minted, starting at
/// 1, unless the caller set [`RequestOptions::request_id`]) and — while
/// [`Engine::telemetry`] is enabled (the default) — is folded into the
/// cross-request rollups once its outcome is complete. The fold is
/// zero-perturbation: it reads the finished outcome only, after the
/// deterministic serial merge, and metrics the caller did not request
/// are stripped again before the response (DESIGN.md §3h).
pub struct Engine {
    circuits: RwLock<HashMap<String, Arc<CircuitEntry>>>,
    libraries: RwLock<HashMap<String, Arc<Vec<Netlist>>>>,
    counters: EngineCounters,
    telemetry: Telemetry,
    next_request_id: AtomicU64,
}

impl Default for Engine {
    fn default() -> Self {
        Self {
            circuits: RwLock::new(HashMap::new()),
            libraries: RwLock::new(HashMap::new()),
            counters: EngineCounters::default(),
            telemetry: Telemetry::new(true),
            next_request_id: AtomicU64::new(1),
        }
    }
}

/// A request envelope, for transports that dispatch uniformly (the
/// daemon). Front ends with static knowledge of the request kind (the
/// CLI) call the corresponding [`Engine`] method directly — both paths
/// are the same pipeline.
#[derive(Debug)]
pub enum Request<'a> {
    /// Compile and register a circuit under a name.
    Compile {
        /// Registry name.
        name: String,
        /// The circuit to compile.
        netlist: Box<Netlist>,
    },
    /// Register a pattern library under a name.
    RegisterLibrary {
        /// Registry name.
        name: String,
        /// The library cells, in order.
        cells: Vec<Netlist>,
    },
    /// Locate all instances of a pattern.
    Find(FindRequest<'a>),
    /// Sweep a library over a circuit.
    Survey(SurveyRequest<'a>),
    /// Find with the event journal on, plus a distilled report.
    Explain(ExplainRequest<'a>),
    /// Rebuild a flat circuit's hierarchy bottom-up to a fixpoint.
    Hierarchize(HierarchizeRequest<'a>),
    /// Registry contents and request counters.
    Status,
}

/// The response for each [`Request`] variant.
#[derive(Debug)]
pub enum Response {
    /// For [`Request::Compile`].
    Compiled(CompileInfo),
    /// For [`Request::RegisterLibrary`].
    LibraryRegistered(LibraryInfo),
    /// For [`Request::Find`].
    Found(Box<FindResponse>),
    /// For [`Request::Survey`].
    Surveyed(SurveyResponse),
    /// For [`Request::Explain`].
    Explained(Box<ExplainResponse>),
    /// For [`Request::Hierarchize`].
    Hierarchized(Box<HierarchizeResponse>),
    /// For [`Request::Status`].
    Status(EngineStatus),
}

enum ResolvedCircuit<'a> {
    Entry(Arc<CircuitEntry>),
    Inline(&'a Netlist),
}

impl ResolvedCircuit<'_> {
    fn netlist(&self) -> &Netlist {
        match self {
            ResolvedCircuit::Entry(e) => &e.netlist,
            ResolvedCircuit::Inline(n) => n,
        }
    }

    fn warm(&self) -> Option<&WarmMain> {
        match self {
            ResolvedCircuit::Entry(e) => Some(&e.warm),
            ResolvedCircuit::Inline(_) => None,
        }
    }
}

enum ResolvedPattern<'a> {
    Borrowed(&'a Netlist),
    Owned(Box<Netlist>),
}

impl ResolvedPattern<'_> {
    fn get(&self) -> &Netlist {
        match self {
            ResolvedPattern::Borrowed(n) => n,
            ResolvedPattern::Owned(n) => n,
        }
    }
}

enum ResolvedLibrary<'a> {
    Shared(Arc<Vec<Netlist>>),
    Inline(&'a [Netlist]),
}

impl ResolvedLibrary<'_> {
    fn cells(&self) -> &[Netlist] {
        match self {
            ResolvedLibrary::Shared(v) => v,
            ResolvedLibrary::Inline(s) => s,
        }
    }
}

fn registered_name<'a>(src: &CircuitSource<'a>) -> Option<&'a str> {
    match *src {
        CircuitSource::Registered(name) => Some(name),
        CircuitSource::Inline(_) => None,
    }
}

fn instance_device_names(main: &Netlist, outcome: &MatchOutcome) -> Vec<Vec<String>> {
    outcome
        .instances
        .iter()
        .map(|m| {
            m.device_set()
                .iter()
                .map(|&d| main.device(d).name().to_string())
                .collect()
        })
        .collect()
}

impl Engine {
    /// An empty engine: no circuits, no libraries, zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Compiles `netlist` (CSR snapshot + fingerprint index, same
    /// build as a `.sgc` artifact) and registers it under `name`,
    /// replacing any previous entry. In-flight requests against a
    /// replaced entry finish on the old snapshot.
    pub fn register_circuit(&self, name: &str, netlist: Netlist) -> CompileInfo {
        self.counters.compile.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        let artifact = Artifact::build(&netlist);
        let artifact_bytes = artifact.encode().len();
        let devices = artifact.circuit.device_count();
        let nets = artifact.circuit.net_count();
        let digest = artifact.source_digest;
        let build_ns = t0.elapsed().as_nanos() as u64;
        let (compiled, index, source_digest) = artifact.into_shared();
        let warm = WarmMain::new(compiled, index, source_digest, build_ns);
        let entry = Arc::new(CircuitEntry {
            netlist: Arc::new(netlist),
            warm,
            devices,
            nets,
            digest,
            artifact_bytes,
        });
        self.circuits
            .write()
            .expect("circuit registry poisoned")
            .insert(name.to_string(), entry);
        CompileInfo {
            name: name.to_string(),
            devices,
            nets,
            digest,
            artifact_bytes,
        }
    }

    /// Registers a pattern library under `name`, replacing any
    /// previous entry.
    pub fn register_library(&self, name: &str, cells: Vec<Netlist>) -> LibraryInfo {
        self.counters.library.fetch_add(1, Ordering::Relaxed);
        let info = LibraryInfo {
            name: name.to_string(),
            cells: cells.iter().map(|c| c.name().to_string()).collect(),
        };
        self.libraries
            .write()
            .expect("library registry poisoned")
            .insert(name.to_string(), Arc::new(cells));
        info
    }

    fn resolve_circuit<'a>(
        &self,
        src: &CircuitSource<'a>,
    ) -> Result<ResolvedCircuit<'a>, EngineError> {
        match *src {
            CircuitSource::Registered(name) => self
                .circuits
                .read()
                .expect("circuit registry poisoned")
                .get(name)
                .cloned()
                .map(ResolvedCircuit::Entry)
                .ok_or_else(|| EngineError::UnknownCircuit(name.to_string())),
            CircuitSource::Inline(n) => Ok(ResolvedCircuit::Inline(n)),
        }
    }

    fn resolve_pattern<'a>(
        &self,
        src: &PatternSource<'a>,
    ) -> Result<ResolvedPattern<'a>, EngineError> {
        match *src {
            PatternSource::Inline(n) => Ok(ResolvedPattern::Borrowed(n)),
            PatternSource::Library { library, cell } => {
                let cells = self
                    .libraries
                    .read()
                    .expect("library registry poisoned")
                    .get(library)
                    .cloned()
                    .ok_or_else(|| EngineError::UnknownLibrary(library.to_string()))?;
                cells
                    .iter()
                    .find(|c| c.name() == cell)
                    .cloned()
                    .map(|c| ResolvedPattern::Owned(Box::new(c)))
                    .ok_or_else(|| EngineError::UnknownCell {
                        library: library.to_string(),
                        cell: cell.to_string(),
                    })
            }
        }
    }

    fn resolve_library<'a>(
        &self,
        src: &LibrarySource<'a>,
    ) -> Result<ResolvedLibrary<'a>, EngineError> {
        match *src {
            LibrarySource::Registered(name) => self
                .libraries
                .read()
                .expect("library registry poisoned")
                .get(name)
                .cloned()
                .map(ResolvedLibrary::Shared)
                .ok_or_else(|| EngineError::UnknownLibrary(name.to_string())),
            LibrarySource::Inline(cells) => Ok(ResolvedLibrary::Inline(cells)),
        }
    }

    fn note_completeness(&self, outcome: &MatchOutcome) {
        if outcome.completeness.is_truncated() {
            self.counters.truncated.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The cross-request telemetry registry: toggle it with
    /// [`Telemetry::set_enabled`], read it with
    /// [`Telemetry::snapshot`] (also included in [`Engine::status`]).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Mints the next request id (monotone from 1, engine-local).
    pub fn mint_request_id(&self) -> u64 {
        self.next_request_id.fetch_add(1, Ordering::Relaxed)
    }

    /// Lowers request options for one search: assigns the request id,
    /// and — when telemetry is enabled — forces metrics collection so
    /// the fold sees prune/reject counters. Returns the lowered
    /// options, the id, and whether the caller itself asked for
    /// metrics (if not, the response strips them again, so the visible
    /// outcome is identical either way).
    fn lowered(
        &self,
        options: &RequestOptions,
        main: &Netlist,
        warm: Option<&WarmMain>,
    ) -> Result<(MatchOptions, u64, bool), EngineError> {
        let request_id = options.request_id.unwrap_or_else(|| self.mint_request_id());
        let mut request_opts = options.clone();
        request_opts.request_id = Some(request_id);
        let mut opts = request_opts.lower(main, warm)?;
        let metrics_requested = opts.collect_metrics;
        if self.telemetry.enabled() {
            opts.collect_metrics = true;
        }
        Ok((opts, request_id, metrics_requested))
    }

    /// Runs a find request.
    ///
    /// # Errors
    ///
    /// Unknown registry names and option/artifact problems.
    ///
    /// # Panics
    ///
    /// Panics if the pattern contains an isolated net (same contract as
    /// [`subgemini::Matcher::find_all`]).
    pub fn find(&self, req: &FindRequest<'_>) -> Result<FindResponse, EngineError> {
        self.counters.find.fetch_add(1, Ordering::Relaxed);
        let circuit = self.resolve_circuit(&req.circuit)?;
        let main = circuit.netlist();
        let pattern = self.resolve_pattern(&req.pattern)?;
        let pattern = pattern.get();
        let (opts, request_id, metrics_requested) =
            self.lowered(&req.options, main, circuit.warm())?;
        let t0 = Instant::now();
        let mut outcome = find_all(pattern, main, &opts);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        self.note_completeness(&outcome);
        let sample = RequestSample::from_outcome(&outcome, wall_ns);
        self.telemetry
            .fold("find", registered_name(&req.circuit), &sample);
        if !metrics_requested {
            outcome.metrics = None;
        }
        let instance_devices = instance_device_names(main, &outcome);
        Ok(FindResponse {
            circuit: main.name().to_string(),
            pattern: pattern.name().to_string(),
            outcome,
            instance_devices,
            request_id,
            wall_ns,
            effort_spent: sample.effort,
        })
    }

    /// Runs a survey request: every library cell against one circuit,
    /// compiling and Phase-I-relabeling the main exactly once.
    ///
    /// # Errors
    ///
    /// Unknown registry names and option/artifact problems.
    ///
    /// # Panics
    ///
    /// Panics if a cell contains an isolated net (same contract as
    /// [`subgemini::find_all_many`]).
    pub fn survey(&self, req: &SurveyRequest<'_>) -> Result<SurveyResponse, EngineError> {
        self.counters.survey.fetch_add(1, Ordering::Relaxed);
        let circuit = self.resolve_circuit(&req.circuit)?;
        let main = circuit.netlist();
        let library = self.resolve_library(&req.library)?;
        let cells = library.cells();
        let refs: Vec<&Netlist> = cells.iter().collect();
        let (opts, request_id, metrics_requested) =
            self.lowered(&req.options, main, circuit.warm())?;
        let t0 = Instant::now();
        let mut outcomes = find_all_many(&refs, main, &opts);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        for outcome in &outcomes {
            self.note_completeness(outcome);
        }
        let sample = RequestSample::from_outcomes(outcomes.iter(), wall_ns);
        self.telemetry
            .fold("survey", registered_name(&req.circuit), &sample);
        if !metrics_requested {
            for outcome in &mut outcomes {
                outcome.metrics = None;
            }
        }
        let rows = cells
            .iter()
            .zip(outcomes)
            .map(|(cell, outcome)| SurveyRow {
                cell: cell.name().to_string(),
                outcome,
            })
            .collect();
        Ok(SurveyResponse {
            circuit: main.name().to_string(),
            rows,
            request_id,
            wall_ns,
            effort_spent: sample.effort,
        })
    }

    /// Runs an explain request: a find with `trace_events` forced on,
    /// plus the [`ExplainReport`] distilled from the merged journal.
    ///
    /// # Errors
    ///
    /// Unknown registry names and option/artifact problems.
    ///
    /// # Panics
    ///
    /// Panics if the pattern contains an isolated net (same contract as
    /// [`subgemini::Matcher::find_all`]).
    pub fn explain(&self, req: &ExplainRequest<'_>) -> Result<ExplainResponse, EngineError> {
        self.counters.explain.fetch_add(1, Ordering::Relaxed);
        let circuit = self.resolve_circuit(&req.circuit)?;
        let main = circuit.netlist();
        let pattern = self.resolve_pattern(&req.pattern)?;
        let pattern = pattern.get();
        let mut request_opts = req.options.clone();
        request_opts.trace_events = true;
        let (opts, request_id, metrics_requested) =
            self.lowered(&request_opts, main, circuit.warm())?;
        let t0 = Instant::now();
        let mut outcome = find_all(pattern, main, &opts);
        let wall_ns = t0.elapsed().as_nanos() as u64;
        self.note_completeness(&outcome);
        let sample = RequestSample::from_outcome(&outcome, wall_ns);
        self.telemetry
            .fold("explain", registered_name(&req.circuit), &sample);
        if !metrics_requested {
            outcome.metrics = None;
        }
        let report = ExplainReport::from_outcome(&outcome);
        Ok(ExplainResponse {
            circuit: main.name().to_string(),
            pattern: pattern.name().to_string(),
            outcome,
            report,
            request_id,
            wall_ns,
            effort_spent: sample.effort,
        })
    }

    /// Runs a hierarchize request: groups the library into levels,
    /// then runs extraction bottom-up, level by level, to a fixpoint
    /// (see `subgemini::hier`), and renders the collapsed top plus the
    /// used cells as a hierarchical SPICE deck.
    ///
    /// One telemetry [`RequestSample`] is folded per *round* (one
    /// level-pass of one sweep) under endpoint `"hierarchize"`, so the
    /// rollups expose the per-round latency distribution of the
    /// fixpoint loop rather than one opaque total; a round whose
    /// searches stopped early under the budget/deadline/cancel
    /// settings folds with truncation reason `round_truncated` and
    /// bumps the `truncated` counter. The lowered budget is
    /// declarative (effort cap / relative deadline), so every round —
    /// and every cell search within it — starts it afresh.
    ///
    /// # Errors
    ///
    /// Unknown registry names, option/artifact problems, and library
    /// problems (duplicate cells, reference cycles, port-arity
    /// mismatches, no fixpoint) as [`EngineError::Invalid`].
    pub fn hierarchize(
        &self,
        req: &HierarchizeRequest<'_>,
    ) -> Result<HierarchizeResponse, EngineError> {
        self.counters.hierarchize.fetch_add(1, Ordering::Relaxed);
        let circuit = self.resolve_circuit(&req.circuit)?;
        let main = circuit.netlist();
        let library = self.resolve_library(&req.library)?;
        let (opts, request_id, _metrics_requested) =
            self.lowered(&req.options, main, circuit.warm())?;
        let mut hierarchizer =
            Hierarchizer::new(library.cells()).map_err(|e| EngineError::Invalid(e.to_string()))?;
        hierarchizer.set_options(opts);
        let circuit_name = registered_name(&req.circuit);
        let t0 = Instant::now();
        let mut rounds = 0usize;
        let mut round_start = t0;
        let outcome = hierarchizer
            .run_observed(main, |round| {
                rounds += 1;
                let now = Instant::now();
                let round_wall = now.duration_since(round_start).as_nanos() as u64;
                round_start = now;
                if round.truncated_cells > 0 {
                    self.counters.truncated.fetch_add(1, Ordering::Relaxed);
                }
                let sample = RequestSample {
                    wall_ns: round_wall,
                    truncation: (round.truncated_cells > 0).then(|| "round_truncated".to_string()),
                    ..RequestSample::default()
                };
                self.telemetry.fold("hierarchize", circuit_name, &sample);
            })
            .map_err(|e| EngineError::Invalid(e.to_string()))?;
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let deck = subgemini_spice::write_hierarchical(&outcome.top, &outcome.used_cells());
        Ok(HierarchizeResponse {
            circuit: main.name().to_string(),
            report: outcome.report,
            deck,
            rounds,
            request_id,
            wall_ns,
        })
    }

    /// Registry contents and request counters.
    pub fn status(&self) -> EngineStatus {
        let mut circuits: Vec<CircuitInfo> = self
            .circuits
            .read()
            .expect("circuit registry poisoned")
            .iter()
            .map(|(name, e)| CircuitInfo {
                name: name.clone(),
                devices: e.devices,
                nets: e.nets,
                digest: e.digest,
                artifact_bytes: e.artifact_bytes,
            })
            .collect();
        circuits.sort_by(|a, b| a.name.cmp(&b.name));
        let mut libraries: Vec<(String, usize)> = self
            .libraries
            .read()
            .expect("library registry poisoned")
            .iter()
            .map(|(name, cells)| (name.clone(), cells.len()))
            .collect();
        libraries.sort();
        let c = &self.counters;
        let requests = vec![
            ("compile", c.compile.load(Ordering::Relaxed)),
            ("library", c.library.load(Ordering::Relaxed)),
            ("find", c.find.load(Ordering::Relaxed)),
            ("survey", c.survey.load(Ordering::Relaxed)),
            ("explain", c.explain.load(Ordering::Relaxed)),
            ("hierarchize", c.hierarchize.load(Ordering::Relaxed)),
            ("truncated", c.truncated.load(Ordering::Relaxed)),
        ];
        EngineStatus {
            circuits,
            libraries,
            requests,
            telemetry: self.telemetry.snapshot(),
        }
    }

    /// Uniform dispatch over the [`Request`] envelope.
    ///
    /// # Errors
    ///
    /// See the per-kind methods.
    pub fn handle(&self, req: Request<'_>) -> Result<Response, EngineError> {
        match req {
            Request::Compile { name, netlist } => {
                Ok(Response::Compiled(self.register_circuit(&name, *netlist)))
            }
            Request::RegisterLibrary { name, cells } => Ok(Response::LibraryRegistered(
                self.register_library(&name, cells),
            )),
            Request::Find(r) => self.find(&r).map(Box::new).map(Response::Found),
            Request::Survey(r) => self.survey(&r).map(Response::Surveyed),
            Request::Explain(r) => self.explain(&r).map(Box::new).map(Response::Explained),
            Request::Hierarchize(r) => self
                .hierarchize(&r)
                .map(Box::new)
                .map(Response::Hierarchized),
            Request::Status => Ok(Response::Status(self.status())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgemini_workloads::{cells, gen};

    fn engine_with_chip() -> (Engine, Netlist, Netlist) {
        let engine = Engine::new();
        let main = gen::ripple_adder(4).netlist;
        let pattern = cells::full_adder();
        engine.register_circuit("chip", main.clone());
        (engine, main, pattern)
    }

    #[test]
    fn registered_and_inline_requests_agree() {
        let (engine, main, pattern) = engine_with_chip();
        let warm = engine
            .find(&FindRequest {
                circuit: CircuitSource::Registered("chip"),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions::default(),
            })
            .unwrap();
        let cold = engine
            .find(&FindRequest {
                circuit: CircuitSource::Inline(&main),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions::default(),
            })
            .unwrap();
        assert_eq!(warm.outcome.instances, cold.outcome.instances);
        assert_eq!(warm.outcome.phase1, cold.outcome.phase1);
        assert_eq!(warm.instance_devices, cold.instance_devices);
        assert!(warm.outcome.count() > 0);
        assert_eq!(warm.circuit, main.name());
        assert_eq!(warm.pattern, "full_adder");
    }

    #[test]
    fn unknown_names_are_typed_errors() {
        let (engine, _main, pattern) = engine_with_chip();
        let err = engine
            .find(&FindRequest {
                circuit: CircuitSource::Registered("nope"),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions::default(),
            })
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownCircuit("nope".into()));
        let err = engine
            .find(&FindRequest {
                circuit: CircuitSource::Registered("chip"),
                pattern: PatternSource::Library {
                    library: "lib",
                    cell: "inv",
                },
                options: RequestOptions::default(),
            })
            .unwrap_err();
        assert_eq!(err, EngineError::UnknownLibrary("lib".into()));
        engine.register_library("lib", vec![cells::inv()]);
        let err = engine
            .find(&FindRequest {
                circuit: CircuitSource::Registered("chip"),
                pattern: PatternSource::Library {
                    library: "lib",
                    cell: "nand9",
                },
                options: RequestOptions::default(),
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::UnknownCell { .. }));
        assert!(err.to_string().contains("nand9"));
    }

    #[test]
    fn survey_shares_one_compile_across_cells() {
        let (engine, _main, _) = engine_with_chip();
        engine.register_library("lib", cells::library());
        let resp = engine
            .survey(&SurveyRequest {
                circuit: CircuitSource::Registered("chip"),
                library: LibrarySource::Registered("lib"),
                options: RequestOptions::default(),
            })
            .unwrap();
        assert_eq!(resp.rows.len(), cells::library().len());
        let fa = resp
            .rows
            .iter()
            .find(|r| r.cell == "full_adder")
            .expect("library has full_adder");
        assert_eq!(fa.outcome.count(), 4);
    }

    #[test]
    fn explain_forces_journal_and_reports() {
        let (engine, _main, pattern) = engine_with_chip();
        let resp = engine
            .explain(&ExplainRequest {
                circuit: CircuitSource::Registered("chip"),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions::default(),
            })
            .unwrap();
        assert!(resp.outcome.events.is_some(), "explain implies a journal");
        assert!(!resp.report.render().is_empty());
    }

    #[test]
    fn lower_rejects_artifact_with_ignored_globals() {
        let main = gen::ripple_adder(2).netlist;
        let opts = RequestOptions {
            respect_globals: false,
            artifact: Some("whatever.sgc".into()),
            ..RequestOptions::default()
        };
        let err = opts.lower(&main, None).unwrap_err();
        assert!(err.to_string().contains("--ignore-globals"), "{err}");
    }

    #[test]
    fn lower_skips_registry_warm_when_globals_ignored() {
        let (engine, main, pattern) = engine_with_chip();
        let resp = engine
            .find(&FindRequest {
                circuit: CircuitSource::Registered("chip"),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions {
                    respect_globals: false,
                    ..RequestOptions::default()
                },
            })
            .unwrap();
        let cold = engine
            .find(&FindRequest {
                circuit: CircuitSource::Inline(&main),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions {
                    respect_globals: false,
                    ..RequestOptions::default()
                },
            })
            .unwrap();
        assert_eq!(resp.outcome.instances, cold.outcome.instances);
        assert_eq!(resp.outcome.phase2, cold.outcome.phase2);
    }

    #[test]
    fn lower_drops_unlimited_budget() {
        let main = gen::ripple_adder(2).netlist;
        let opts = RequestOptions {
            budget: Some(WorkBudget::default()),
            ..RequestOptions::default()
        };
        assert_eq!(opts.lower(&main, None).unwrap().budget, None);
    }

    #[test]
    fn status_reports_registry_and_counters() {
        let (engine, _main, pattern) = engine_with_chip();
        engine.register_library("lib", cells::library());
        let _ = engine.find(&FindRequest {
            circuit: CircuitSource::Registered("chip"),
            pattern: PatternSource::Inline(&pattern),
            options: RequestOptions {
                budget: Some(WorkBudget::effort(1)),
                ..RequestOptions::default()
            },
        });
        let status = engine.status();
        assert_eq!(status.circuits.len(), 1);
        assert_eq!(status.circuits[0].name, "chip");
        assert!(status.circuits[0].devices > 0);
        assert_eq!(
            status.libraries,
            vec![("lib".to_string(), cells::library().len())]
        );
        let get = |k: &str| {
            status
                .requests
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("compile"), 1);
        assert_eq!(get("find"), 1);
        assert_eq!(get("truncated"), 1, "1-effort find must truncate");
    }

    #[test]
    fn envelope_dispatch_matches_direct_calls() {
        let engine = Engine::new();
        let main = gen::ripple_adder(3).netlist;
        let pattern = cells::full_adder();
        let resp = engine
            .handle(Request::Compile {
                name: "chip".into(),
                netlist: Box::new(main),
            })
            .unwrap();
        let Response::Compiled(info) = resp else {
            panic!("compile answers Compiled");
        };
        assert_eq!(info.name, "chip");
        assert!(info.artifact_bytes > 0);
        let resp = engine
            .handle(Request::Find(FindRequest {
                circuit: CircuitSource::Registered("chip"),
                pattern: PatternSource::Inline(&pattern),
                options: RequestOptions::default(),
            }))
            .unwrap();
        let Response::Found(found) = resp else {
            panic!("find answers Found");
        };
        assert_eq!(found.outcome.count(), 3);
        let Response::Status(status) = engine.handle(Request::Status).unwrap() else {
            panic!("status answers Status");
        };
        assert_eq!(status.circuits.len(), 1);
    }

    #[test]
    fn hierarchize_runs_bottom_up_to_fixpoint() {
        let engine = Engine::new();
        let chip = gen::hierarchical_chip(3, 3, 200);
        engine.register_circuit("flatchip", chip.generated.netlist.clone());
        let resp = engine
            .hierarchize(&HierarchizeRequest {
                circuit: CircuitSource::Registered("flatchip"),
                library: LibrarySource::Inline(&chip.library),
                options: RequestOptions::default(),
            })
            .unwrap();
        assert_eq!(resp.circuit, "hierarchical_chip");
        assert_eq!(resp.report.unabsorbed_devices, 0);
        for (cell, &want) in &chip.expected {
            assert_eq!(resp.report.count_of(cell), want, "{cell}");
        }
        assert!(resp.deck.contains(".subckt pipeline_stage"));
        // Rounds = levels × sweeps (the last sweep proves quiescence).
        assert_eq!(resp.rounds, 3 * resp.report.sweeps);
        let status = engine.status();
        let get = |k: &str| {
            status
                .requests
                .iter()
                .find(|(n, _)| *n == k)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("hierarchize"), 1);
        // One telemetry sample folded per round, against the registered
        // circuit name.
        let (_, rollup) = status
            .telemetry
            .endpoints
            .iter()
            .find(|(name, _)| name == "hierarchize")
            .expect("hierarchize endpoint rollup");
        assert_eq!(rollup.requests, resp.rounds as u64);
        assert!(status
            .telemetry
            .circuits
            .iter()
            .any(|(name, _)| name == "flatchip"));
    }

    #[test]
    fn hierarchize_rejects_cyclic_library() {
        let engine = Engine::new();
        let chip = gen::hierarchical_chip(4, 2, 60);
        engine.register_circuit("flatchip", chip.generated.netlist.clone());
        // A cell whose only device is its own composite type: a
        // self-reference cycle the level grouping must reject.
        let mut looped = Netlist::new("looped");
        let a = looped.net("a");
        let y = looped.net("y");
        looped.mark_port(a);
        looped.mark_port(y);
        let ty = looped
            .add_type(subgemini_netlist::DeviceType::new(
                "looped",
                vec![
                    subgemini_netlist::TerminalSpec::new("a", "a"),
                    subgemini_netlist::TerminalSpec::new("y", "y"),
                ],
            ))
            .unwrap();
        looped.add_device("d", ty, &[a, y]).unwrap();
        let err = engine
            .hierarchize(&HierarchizeRequest {
                circuit: CircuitSource::Registered("flatchip"),
                library: LibrarySource::Inline(std::slice::from_ref(&looped)),
                options: RequestOptions::default(),
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::Invalid(_)));
        assert!(err.to_string().contains("cycle"), "{err}");
    }

    #[test]
    fn compile_netlist_round_trips_through_artifact() {
        let main = gen::ripple_adder(2).netlist;
        let enc = compile_netlist(&main);
        assert_eq!(enc.devices, main.device_count());
        assert_eq!(enc.digest, structural_digest(&main));
        let decoded = Artifact::decode(&enc.bytes).expect("fresh artifact decodes");
        assert_eq!(decoded.source_digest, enc.digest);
    }
}
