//! A transistor-level CMOS standard-cell library.
//!
//! Every cell is a [`Netlist`] with ordered ports, `vdd`/`gnd` marked
//! global, and conventional topologies (series/parallel stacks,
//! transmission gates, mirror adder). These are the patterns the
//! benchmark circuits plant and the matcher hunts.

use subgemini_netlist::{MosTypes, NetId, Netlist};

/// Builder-ish helper holding the netlist plus the rail nets.
struct CellBuilder {
    nl: Netlist,
    mos: MosTypes,
    vdd: NetId,
    gnd: NetId,
    seq: usize,
}

impl CellBuilder {
    fn new(name: &str) -> Self {
        let mut nl = Netlist::new(name);
        let mos = nl.add_mos_types();
        let vdd = nl.net("vdd");
        let gnd = nl.net("gnd");
        nl.mark_global(vdd);
        nl.mark_global(gnd);
        Self {
            nl,
            mos,
            vdd,
            gnd,
            seq: 0,
        }
    }

    fn port(&mut self, name: &str) -> NetId {
        let id = self.nl.net(name);
        self.nl.mark_port(id);
        id
    }

    fn net(&mut self, name: &str) -> NetId {
        self.nl.net(name)
    }

    fn nmos(&mut self, g: NetId, s: NetId, d: NetId) {
        self.seq += 1;
        let name = format!("mn{}", self.seq);
        self.nl
            .add_device(name, self.mos.nmos, &[g, s, d])
            .expect("cell device names are unique");
    }

    fn pmos(&mut self, g: NetId, s: NetId, d: NetId) {
        self.seq += 1;
        let name = format!("mp{}", self.seq);
        self.nl
            .add_device(name, self.mos.pmos, &[g, s, d])
            .expect("cell device names are unique");
    }

    /// Static CMOS inverter between `a` and `y`.
    fn inv(&mut self, a: NetId, y: NetId) {
        let (vdd, gnd) = (self.vdd, self.gnd);
        self.pmos(a, vdd, y);
        self.nmos(a, gnd, y);
    }

    /// Transmission gate between `x` and `y` with control `c` (NMOS
    /// gate) and `cb` (PMOS gate).
    fn tgate(&mut self, x: NetId, y: NetId, c: NetId, cb: NetId) {
        self.nmos(c, x, y);
        self.pmos(cb, x, y);
    }

    fn finish(self) -> Netlist {
        self.nl
    }
}

/// CMOS inverter (2T). Ports: `a y`.
pub fn inv() -> Netlist {
    let mut c = CellBuilder::new("inv");
    let (a, y) = (c.port("a"), c.port("y"));
    c.inv(a, y);
    c.finish()
}

/// Two-stage buffer (4T). Ports: `a y`.
pub fn buf() -> Netlist {
    let mut c = CellBuilder::new("buf");
    let (a, y) = (c.port("a"), c.port("y"));
    let mid = c.net("mid");
    c.inv(a, mid);
    c.inv(mid, y);
    c.finish()
}

/// 2-input NAND (4T). Ports: `a b y`.
pub fn nand2() -> Netlist {
    let mut c = CellBuilder::new("nand2");
    let (a, b, y) = (c.port("a"), c.port("b"), c.port("y"));
    let mid = c.net("mid");
    let (vdd, gnd) = (c.vdd, c.gnd);
    c.pmos(a, vdd, y);
    c.pmos(b, vdd, y);
    c.nmos(a, y, mid);
    c.nmos(b, mid, gnd);
    c.finish()
}

/// 3-input NAND (6T). Ports: `a b c y`.
pub fn nand3() -> Netlist {
    let mut c = CellBuilder::new("nand3");
    let (a, b, cc, y) = (c.port("a"), c.port("b"), c.port("c"), c.port("y"));
    let (m1, m2) = (c.net("m1"), c.net("m2"));
    let (vdd, gnd) = (c.vdd, c.gnd);
    c.pmos(a, vdd, y);
    c.pmos(b, vdd, y);
    c.pmos(cc, vdd, y);
    c.nmos(a, y, m1);
    c.nmos(b, m1, m2);
    c.nmos(cc, m2, gnd);
    c.finish()
}

/// 2-input NOR (4T). Ports: `a b y`.
pub fn nor2() -> Netlist {
    let mut c = CellBuilder::new("nor2");
    let (a, b, y) = (c.port("a"), c.port("b"), c.port("y"));
    let mid = c.net("mid");
    let (vdd, gnd) = (c.vdd, c.gnd);
    c.pmos(a, vdd, mid);
    c.pmos(b, mid, y);
    c.nmos(a, gnd, y);
    c.nmos(b, gnd, y);
    c.finish()
}

/// 3-input NOR (6T). Ports: `a b c y`.
pub fn nor3() -> Netlist {
    let mut c = CellBuilder::new("nor3");
    let (a, b, cc, y) = (c.port("a"), c.port("b"), c.port("c"), c.port("y"));
    let (m1, m2) = (c.net("m1"), c.net("m2"));
    let (vdd, gnd) = (c.vdd, c.gnd);
    c.pmos(a, vdd, m1);
    c.pmos(b, m1, m2);
    c.pmos(cc, m2, y);
    c.nmos(a, gnd, y);
    c.nmos(b, gnd, y);
    c.nmos(cc, gnd, y);
    c.finish()
}

/// AND-OR-INVERT 21: `y = !((a & b) | c)` (6T). Ports: `a b c y`.
pub fn aoi21() -> Netlist {
    let mut cell = CellBuilder::new("aoi21");
    let (a, b, c, y) = (
        cell.port("a"),
        cell.port("b"),
        cell.port("c"),
        cell.port("y"),
    );
    let (mu, md) = (cell.net("mu"), cell.net("md"));
    let (vdd, gnd) = (cell.vdd, cell.gnd);
    // Pull-up: (a||b in parallel is wrong for AOI — duals:) series c
    // with parallel(a, b)? y pulls up when !c && !(a&b) -> (pa || pb)
    // series pc.
    cell.pmos(a, vdd, mu);
    cell.pmos(b, vdd, mu);
    cell.pmos(c, mu, y);
    // Pull-down: (a&b) || c.
    cell.nmos(a, y, md);
    cell.nmos(b, md, gnd);
    cell.nmos(c, gnd, y);
    cell.finish()
}

/// OR-AND-INVERT 21: `y = !((a | b) & c)` (6T). Ports: `a b c y`.
pub fn oai21() -> Netlist {
    let mut cell = CellBuilder::new("oai21");
    let (a, b, c, y) = (
        cell.port("a"),
        cell.port("b"),
        cell.port("c"),
        cell.port("y"),
    );
    let (mu, md) = (cell.net("mu"), cell.net("md"));
    let (vdd, gnd) = (cell.vdd, cell.gnd);
    // Pull-up: (pa series pb)? y high when !(a|b) || !c -> (pa,pb series) || pc.
    cell.pmos(a, vdd, mu);
    cell.pmos(b, mu, y);
    cell.pmos(c, vdd, y);
    // Pull-down: (a||b) series c.
    cell.nmos(a, y, md);
    cell.nmos(b, y, md);
    cell.nmos(c, md, gnd);
    cell.finish()
}

/// Transmission-gate 2:1 MUX (6T). Ports: `a b s y`.
pub fn mux2() -> Netlist {
    let mut c = CellBuilder::new("mux2");
    let (a, b, s, y) = (c.port("a"), c.port("b"), c.port("s"), c.port("y"));
    let sb = c.net("sb");
    c.inv(s, sb);
    // s=0 selects a, s=1 selects b.
    c.tgate(a, y, sb, s);
    c.tgate(b, y, s, sb);
    c.finish()
}

/// Transmission-gate XOR (8T). Ports: `a b y`.
pub fn xor2() -> Netlist {
    let mut c = CellBuilder::new("xor2");
    let (a, b, y) = (c.port("a"), c.port("b"), c.port("y"));
    let (ab, bb) = (c.net("ab"), c.net("bb"));
    c.inv(a, ab);
    c.inv(b, bb);
    // y = b when a=0 (via tg1), y = !b when a=1 (via tg2).
    c.tgate(b, y, ab, a);
    c.tgate(bb, y, a, ab);
    c.finish()
}

/// Level-sensitive D latch (8T). Ports: `d clk clkb q`.
pub fn dlatch() -> Netlist {
    let mut c = CellBuilder::new("dlatch");
    let (d, clk, clkb, q) = (c.port("d"), c.port("clk"), c.port("clkb"), c.port("q"));
    let (x, qb) = (c.net("x"), c.net("qb"));
    c.tgate(d, x, clk, clkb); // open when clk=1
    c.inv(x, qb);
    c.inv(qb, q);
    c.tgate(q, x, clkb, clk); // feedback when clk=0
    c.finish()
}

/// Master-slave D flip-flop (18T). Ports: `d clk q`.
pub fn dff() -> Netlist {
    let mut c = CellBuilder::new("dff");
    let (d, clk, q) = (c.port("d"), c.port("clk"), c.port("q"));
    let clkb = c.net("clkb");
    c.inv(clk, clkb);
    // Master (transparent clk=0).
    let (mx, mqb, mq) = (c.net("mx"), c.net("mqb"), c.net("mq"));
    c.tgate(d, mx, clkb, clk);
    c.inv(mx, mqb);
    c.inv(mqb, mq);
    c.tgate(mq, mx, clk, clkb);
    // Slave (transparent clk=1).
    let (sx, sqb) = (c.net("sx"), c.net("sqb"));
    c.tgate(mq, sx, clk, clkb);
    c.inv(sx, sqb);
    c.inv(sqb, q);
    c.tgate(q, sx, clkb, clk);
    c.finish()
}

/// Mirror full adder (28T). Ports: `a b cin sum cout`.
pub fn full_adder() -> Netlist {
    let mut c = CellBuilder::new("full_adder");
    let (a, b, cin) = (c.port("a"), c.port("b"), c.port("cin"));
    let (sum, cout) = (c.port("sum"), c.port("cout"));
    let (vdd, gnd) = (c.vdd, c.gnd);
    let cb = c.net("cb"); // carry-bar
                          // --- carry stage: cb = !(a·b + cin·(a+b)), 10T ---
    let nx = c.net("nx");
    c.pmos(a, vdd, nx);
    c.pmos(b, vdd, nx);
    c.pmos(cin, nx, cb);
    let ny = c.net("ny");
    c.pmos(a, vdd, ny);
    c.pmos(b, ny, cb);
    let nu = c.net("nu");
    c.nmos(a, gnd, nu);
    c.nmos(b, gnd, nu);
    c.nmos(cin, nu, cb);
    let nv = c.net("nv");
    c.nmos(a, gnd, nv);
    c.nmos(b, nv, cb);
    // cout inverter
    c.inv(cb, cout);
    // --- sum stage: sb = !((a+b+cin)·cb + a·b·cin), 14T ---
    let sb = c.net("sb");
    let m1 = c.net("m1");
    c.pmos(a, vdd, m1);
    c.pmos(b, vdd, m1);
    c.pmos(cin, vdd, m1);
    c.pmos(cb, m1, sb);
    let m2 = c.net("m2");
    let m3 = c.net("m3");
    c.pmos(a, vdd, m2);
    c.pmos(b, m2, m3);
    c.pmos(cin, m3, sb);
    let m4 = c.net("m4");
    c.nmos(a, gnd, m4);
    c.nmos(b, gnd, m4);
    c.nmos(cin, gnd, m4);
    c.nmos(cb, m4, sb);
    let m5 = c.net("m5");
    let m6 = c.net("m6");
    c.nmos(a, gnd, m5);
    c.nmos(b, m5, m6);
    c.nmos(cin, m6, sb);
    // sum inverter
    c.inv(sb, sum);
    c.finish()
}

/// Six-transistor SRAM bit cell. Ports: `bl blb wl`.
pub fn sram6t() -> Netlist {
    let mut c = CellBuilder::new("sram6t");
    let (bl, blb, wl) = (c.port("bl"), c.port("blb"), c.port("wl"));
    let (q, qb) = (c.net("q"), c.net("qb"));
    c.inv(q, qb);
    c.inv(qb, q);
    c.nmos(wl, bl, q); // access transistors
    c.nmos(wl, blb, qb);
    c.finish()
}

/// Generic `k`-input NAND (2k transistors): parallel pull-ups, series
/// pull-down. `nand_k(2)` is topologically identical to [`nand2`] but
/// named `nandk2`, so the two can coexist in one netlist's type table.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn nand_k(k: usize) -> Netlist {
    assert!(k > 0, "a NAND needs at least one input");
    let mut c = CellBuilder::new(&format!("nandk{k}"));
    let inputs: Vec<NetId> = (0..k).map(|i| c.port(&format!("i{i}"))).collect();
    let y = c.port("y");
    let (vdd, gnd) = (c.vdd, c.gnd);
    for &a in &inputs {
        c.pmos(a, vdd, y);
    }
    let mut prev = y;
    for (n, &a) in inputs.iter().enumerate() {
        let next = if n + 1 == k {
            gnd
        } else {
            c.net(&format!("m{n}"))
        };
        c.nmos(a, prev, next);
        prev = next;
    }
    c.finish()
}

/// Generic `k`-input NOR (2k transistors): series pull-ups, parallel
/// pull-down.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn nor_k(k: usize) -> Netlist {
    assert!(k > 0, "a NOR needs at least one input");
    let mut c = CellBuilder::new(&format!("nork{k}"));
    let inputs: Vec<NetId> = (0..k).map(|i| c.port(&format!("i{i}"))).collect();
    let y = c.port("y");
    let (vdd, gnd) = (c.vdd, c.gnd);
    let mut prev = vdd;
    for (n, &a) in inputs.iter().enumerate() {
        let next = if n + 1 == k {
            y
        } else {
            c.net(&format!("m{n}"))
        };
        c.pmos(a, prev, next);
        prev = next;
    }
    for &a in &inputs {
        c.nmos(a, gnd, y);
    }
    c.finish()
}

/// The whole library, largest cells first (the extraction order of
/// §IV.A).
pub fn library() -> Vec<Netlist> {
    let mut cells = vec![
        inv(),
        buf(),
        nand2(),
        nand3(),
        nor2(),
        nor3(),
        aoi21(),
        oai21(),
        mux2(),
        xor2(),
        dlatch(),
        dff(),
        full_adder(),
        sram6t(),
    ];
    cells.sort_by(|a, b| {
        b.device_count()
            .cmp(&a.device_count())
            .then_with(|| a.name().cmp(b.name()))
    });
    cells
}

/// Looks up a library cell by name.
pub fn by_name(name: &str) -> Option<Netlist> {
    library().into_iter().find(|c| c.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_counts_match_topologies() {
        let expect = [
            ("inv", 2),
            ("buf", 4),
            ("nand2", 4),
            ("nand3", 6),
            ("nor2", 4),
            ("nor3", 6),
            ("aoi21", 6),
            ("oai21", 6),
            ("mux2", 6),
            ("xor2", 8),
            ("dlatch", 8),
            ("dff", 18),
            ("full_adder", 28),
            ("sram6t", 6),
        ];
        for (name, n) in expect {
            let cell = by_name(name).unwrap_or_else(|| panic!("{name} in library"));
            assert_eq!(cell.device_count(), n, "{name}");
            cell.validate().unwrap();
            assert!(!cell.ports().is_empty(), "{name} has ports");
        }
    }

    #[test]
    fn generic_k_gates() {
        for k in 1..=6 {
            let nand = nand_k(k);
            assert_eq!(nand.device_count(), 2 * k, "nand_k({k})");
            nand.validate().unwrap();
            let nor = nor_k(k);
            assert_eq!(nor.device_count(), 2 * k, "nor_k({k})");
            nor.validate().unwrap();
        }
        // nand_k(2) is isomorphic in shape to nand2 (different type
        // names are irrelevant; both use nmos/pmos).
        let a = nand_k(2);
        let b = nand2();
        assert_eq!(a.device_count(), b.device_count());
    }

    #[test]
    fn library_is_sorted_largest_first() {
        let lib = library();
        for w in lib.windows(2) {
            assert!(w[0].device_count() >= w[1].device_count());
        }
        assert_eq!(lib[0].name(), "full_adder");
    }

    #[test]
    fn every_cell_has_global_rails() {
        for cell in library() {
            // All cells use at least one rail.
            assert!(
                cell.global_nets().count() >= 1,
                "{} lacks rails",
                cell.name()
            );
        }
    }

    #[test]
    fn nets_are_all_connected() {
        for cell in library() {
            for n in cell.net_ids() {
                assert!(
                    cell.net_ref(n).degree() > 0,
                    "{} has isolated net {}",
                    cell.name(),
                    cell.net_ref(n).name()
                );
            }
        }
    }

    #[test]
    fn distinct_cells_are_not_isomorphic() {
        // nand2 vs nor2: same device histogram, different wiring.
        assert!(!subgemini_gemini_stub::isomorphic(&nand2(), &nor2()));
    }

    /// Tiny local stand-in so the workloads crate does not depend on the
    /// gemini crate just for one test: structural fingerprint compare.
    mod subgemini_gemini_stub {
        use subgemini_netlist::{Netlist, NetlistStats};

        pub fn isomorphic(a: &Netlist, b: &Netlist) -> bool {
            // Coarse but sufficient here: degree histograms diverge for
            // nand2 (y has degree 3) vs nor2 (y has degree 3 too)...
            // compare sorted (degree, pin-class multiset) signatures.
            signature(a) == signature(b)
        }

        fn signature(nl: &Netlist) -> (Vec<(String, Vec<usize>)>, NetlistStats) {
            let mut devs: Vec<(String, Vec<usize>)> = nl
                .device_ids()
                .map(|d| {
                    let ty = nl.device_type_of(d).name().to_string();
                    let mut degs: Vec<usize> = nl
                        .device(d)
                        .pins()
                        .iter()
                        .map(|&n| nl.net_ref(n).degree())
                        .collect();
                    degs.sort_unstable();
                    (ty, degs)
                })
                .collect();
            devs.sort();
            (devs, NetlistStats::of(nl))
        }
    }

    #[test]
    fn full_adder_has_expected_structure() {
        let fa = full_adder();
        // 14 PMOS + 14 NMOS.
        let stats = subgemini_netlist::NetlistStats::of(&fa);
        assert_eq!(stats.devices_by_type["pmos"], 14);
        assert_eq!(stats.devices_by_type["nmos"], 14);
        assert_eq!(fa.ports().len(), 5);
    }
}
