//! Deterministic circuit generators with planted ground truth.
//!
//! Each generator returns a [`Generated`] bundle: the flat
//! transistor-level netlist plus the exact number of instances planted
//! per library cell. All randomness is seeded
//! ([`Rng64`](subgemini_netlist::rng::Rng64)), so a given call is
//! bit-reproducible.
//!
//! Note on ground truth: the counts record *planted* cells. Larger
//! cells structurally contain smaller ones (a `dff` contains four
//! inverters; a `full_adder` contains two), so a matcher hunting `inv`
//! legitimately reports more than `planted["inv"]`. Helpers like
//! [`Generated::structural_count`] account for containment of the
//! standard library cells.

use std::collections::BTreeMap;

use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{instantiate, NetId, Netlist};

use crate::cells;

/// A generated circuit plus its planted ground truth.
#[derive(Clone, Debug)]
pub struct Generated {
    /// The flat transistor netlist.
    pub netlist: Netlist,
    /// Planted instance counts by cell name.
    pub planted: BTreeMap<String, usize>,
}

impl Generated {
    /// Creates an empty bundle named `name`.
    pub fn new(name: &str) -> Self {
        Self {
            netlist: Netlist::new(name),
            planted: BTreeMap::new(),
        }
    }

    /// Stamps `cell` into the netlist and records it in the ground
    /// truth.
    ///
    /// # Panics
    ///
    /// Panics if `bindings` does not match the cell's port count or the
    /// instance prefix collides.
    pub fn plant(&mut self, cell: &Netlist, prefix: &str, bindings: &[NetId]) {
        instantiate(&mut self.netlist, cell, prefix, bindings)
            .expect("generator bindings match cell ports");
        *self.planted.entry(cell.name().to_string()).or_insert(0) += 1;
    }

    /// Planted count for `cell` (0 if none).
    pub fn planted_count(&self, cell: &str) -> usize {
        self.planted.get(cell).copied().unwrap_or(0)
    }

    /// Splits a child seed off `master` for the given `stream`.
    ///
    /// Every seeded generator used to call `Rng64::new(seed)` directly,
    /// so composing two generators with one master seed (as
    /// [`tiled_chip`] does per tile) replayed the *same* SplitMix
    /// stream in both — correlated "random" choices, identical tiles.
    /// Deriving per-call-site child seeds through a second SplitMix64
    /// avalanche over the `(master, stream)` pair gives each composed
    /// call its own stream while staying bit-reproducible.
    pub fn child_seed(master: u64, stream: u64) -> u64 {
        let mut z = master ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(stream.wrapping_add(1));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Number of structural instances of `cell` expected in the
    /// netlist, accounting for containment inside the other planted
    /// library cells (e.g. each planted `dff` contributes 4 `inv`
    /// instances and each `full_adder` 2).
    pub fn structural_count(&self, cell: &str) -> usize {
        let mut n = self.planted_count(cell);
        match cell {
            "inv" => {
                // dff: clock inverter + two per internal latch.
                n += 5 * self.planted_count("dff");
                n += 2 * self.planted_count("dlatch");
                n += 2 * self.planted_count("full_adder");
                n += 2 * self.planted_count("buf");
                n += 2 * self.planted_count("xor2");
                n += 2 * self.planted_count("sram6t");
                n += self.planted_count("mux2");
            }
            // Each dff is two back-to-back latches (clock phases
            // swapped, which the dlatch pattern's ports absorb).
            "dlatch" => n += 2 * self.planted_count("dff"),
            // Chained inverter pairs with a degree-2 midpoint.
            "buf" => {
                n += 2 * self.planted_count("dff");
                n += self.planted_count("dlatch");
            }
            // An XOR is a mux selecting between b and b̄: the inverter
            // plus two transmission gates line up exactly (the dff's
            // latch pairs do not — their clkb node has degree 6, not
            // the pattern's 4).
            "mux2" => n += self.planted_count("xor2"),
            _ => {}
        }
        n
    }
}

/// Stream tags for [`Generated::child_seed`]: one per seeded
/// generator, so equal caller seeds passed to *different* generators
/// never alias the same RNG stream.
pub mod streams {
    /// [`super::random_soup`]'s stream.
    pub const RANDOM_SOUP: u64 = 1;
    /// [`super::near_miss_field`]'s stream.
    pub const NEAR_MISS: u64 = 2;
    /// [`crate::analog::mixed_signal_chip`]'s stream.
    pub const MIXED_SIGNAL: u64 = 3;
    /// [`super::tiled_chip`]'s per-tile master stream.
    pub const TILED_CHIP: u64 = 4;
    /// [`super::hierarchical_chip`]'s stream.
    pub const HIERARCHICAL_CHIP: u64 = 5;
}

/// A chain of `n` inverters: `in -> w0 -> … -> w(n-1)`.
pub fn inverter_chain(n: usize) -> Generated {
    let inv = cells::inv();
    let mut g = Generated::new("inv_chain");
    let mut prev = g.netlist.net("in");
    for i in 0..n {
        let next = g.netlist.net(format!("w{i}"));
        let bindings = [prev, next];
        g.plant(&inv, &format!("u{i}"), &bindings);
        prev = next;
    }
    g
}

/// An `n`-bit ripple-carry adder built from mirror full adders.
pub fn ripple_adder(bits: usize) -> Generated {
    let fa = cells::full_adder();
    let mut g = Generated::new("ripple_adder");
    let mut carry = g.netlist.net("cin");
    for i in 0..bits {
        let a = g.netlist.net(format!("a{i}"));
        let b = g.netlist.net(format!("b{i}"));
        let s = g.netlist.net(format!("s{i}"));
        let cout = g.netlist.net(format!("c{i}"));
        let bindings = [a, b, carry, s, cout];
        g.plant(&fa, &format!("fa{i}"), &bindings);
        carry = cout;
    }
    g
}

/// An `n`-bit shift register of master-slave D flip-flops sharing one
/// clock.
pub fn shift_register(bits: usize) -> Generated {
    let dff = cells::dff();
    let mut g = Generated::new("shift_register");
    let clk = g.netlist.net("clk");
    let mut prev = g.netlist.net("si");
    for i in 0..bits {
        let q = g.netlist.net(format!("q{i}"));
        let bindings = [prev, clk, q];
        g.plant(&dff, &format!("ff{i}"), &bindings);
        prev = q;
    }
    g
}

/// An `n × n` array multiplier: NAND+INV partial products feeding a
/// carry-save array of full adders.
pub fn array_multiplier(n: usize) -> Generated {
    let nand = cells::nand2();
    let inv = cells::inv();
    let fa = cells::full_adder();
    let mut g = Generated::new("array_multiplier");
    // Partial products pp[i][j] = a[i] AND b[j].
    let mut pp = vec![vec![NetId::new(0); n]; n];
    for (i, row) in pp.iter_mut().enumerate() {
        for (j, slot) in row.iter_mut().enumerate() {
            let a = g.netlist.net(format!("a{i}"));
            let b = g.netlist.net(format!("b{j}"));
            let nn = g.netlist.net(format!("pp_n{i}_{j}"));
            let p = g.netlist.net(format!("pp{i}_{j}"));
            let bindings = [a, b, nn];
            g.plant(&nand, &format!("and_n{i}_{j}"), &bindings);
            let bindings = [nn, p];
            g.plant(&inv, &format!("and_i{i}_{j}"), &bindings);
            *slot = p;
        }
    }
    // Carry-save reduction rows (structural, not arithmetic-perfect:
    // the goal is a realistic datapath fabric of FAs).
    for i in 1..n {
        for j in 0..n.saturating_sub(1) {
            let a = pp[i - 1][j + 1];
            let b = pp[i][j];
            let cin = g.netlist.net(format!("carry{i}_{j}"));
            let s = g.netlist.net(format!("sum{i}_{j}"));
            let cout = g.netlist.net(format!("carry{i}_{}", j + 1));
            let bindings = [a, b, cin, s, cout];
            g.plant(&fa, &format!("fa{i}_{j}"), &bindings);
            pp[i][j] = s;
        }
    }
    g
}

/// A `rows × cols` SRAM array with shared word/bit lines.
pub fn sram_array(rows: usize, cols: usize) -> Generated {
    let cell = cells::sram6t();
    let mut g = Generated::new("sram_array");
    for r in 0..rows {
        let wl = g.netlist.net(format!("wl{r}"));
        for c in 0..cols {
            let bl = g.netlist.net(format!("bl{c}"));
            let blb = g.netlist.net(format!("blb{c}"));
            let bindings = [bl, blb, wl];
            g.plant(&cell, &format!("bit{r}_{c}"), &bindings);
        }
    }
    g
}

/// An `n`-to-2ⁿ address decoder: per-input true/complement inverters
/// feeding one NAND+INV AND-gate per output row (the classic row
/// decoder structure).
pub fn decoder(address_bits: usize) -> Generated {
    let inv = cells::inv();
    let nandk = match address_bits {
        0 | 1 => cells::inv(), // degenerate; callers use >= 2
        2 => cells::nand2(),
        _ => cells::nand3(),
    };
    let bits = address_bits.clamp(2, 3);
    let rows = 1usize << bits;
    let mut g = Generated::new("decoder");
    // True/complement rails.
    let mut t = Vec::new();
    let mut f = Vec::new();
    for i in 0..bits {
        let a = g.netlist.net(format!("a{i}"));
        let ab = g.netlist.net(format!("ab{i}"));
        let bindings = [a, ab];
        g.plant(&inv, &format!("ibar{i}"), &bindings);
        t.push(a);
        f.push(ab);
    }
    for r in 0..rows {
        let sel: Vec<NetId> = (0..bits)
            .map(|i| if (r >> i) & 1 == 1 { t[i] } else { f[i] })
            .collect();
        let n = g.netlist.net(format!("n{r}"));
        let y = g.netlist.net(format!("row{r}"));
        let mut bindings = sel.clone();
        bindings.push(n);
        g.plant(&nandk, &format!("and_n{r}"), &bindings);
        let bindings = [n, y];
        g.plant(&inv, &format!("and_i{r}"), &bindings);
    }
    g
}

/// An `n`-bit ripple counter: each stage is a DFF whose input is its
/// own inverted output (via an XOR with the enable line), clocked by
/// the previous stage's output — a structure mixing sequential and
/// combinational cells with feedback.
pub fn ripple_counter(bits: usize) -> Generated {
    let dff = cells::dff();
    let xor = cells::xor2();
    let mut g = Generated::new("ripple_counter");
    let enable = g.netlist.net("en");
    let mut clk = g.netlist.net("clk");
    for i in 0..bits {
        let q = g.netlist.net(format!("q{i}"));
        let d = g.netlist.net(format!("d{i}"));
        let bindings = [q, enable, d];
        g.plant(&xor, &format!("tx{i}"), &bindings);
        let bindings = [d, clk, q];
        g.plant(&dff, &format!("ff{i}"), &bindings);
        clk = q; // ripple: next stage clocks off this output
    }
    g
}

/// A seeded random standard-cell soup: `gates` cells drawn uniformly
/// from the library, inputs wired to a shared pool, each output driving
/// a fresh net (which guarantees no accidental cross-cell instances of
/// the library cells, keeping the ground truth exact).
pub fn random_soup(seed: u64, gates: usize) -> Generated {
    let lib = cells::library();
    let mut rng = Rng64::new(Generated::child_seed(seed, streams::RANDOM_SOUP));
    let mut g = Generated::new("random_soup");
    // Input pool: primary inputs plus previously generated outputs.
    let mut pool: Vec<NetId> = (0..8.max(gates / 4))
        .map(|i| g.netlist.net(format!("pi{i}")))
        .collect();
    for i in 0..gates {
        let cell = lib[rng.index(lib.len())].clone();
        let nports = cell.ports().len();
        // Heuristic: the last 1-2 ports of each cell are outputs (y /
        // sum,cout / q); wire them to fresh nets.
        let outputs = match cell.name() {
            "full_adder" => 2,
            "sram6t" => 0, // bl/blb/wl are all shared
            _ => 1,
        };
        let mut bindings: Vec<NetId> = Vec::with_capacity(nports);
        for p in 0..nports {
            if p >= nports - outputs {
                let fresh = g.netlist.net(format!("o{i}_{p}"));
                bindings.push(fresh);
            } else {
                // Distinct inputs per instance: a planted cell whose two
                // ports share a net would not be an (injective) instance
                // of its own pattern, which would falsify the ground
                // truth.
                let pick = loop {
                    let cand = pool[rng.index(pool.len())];
                    if !bindings.contains(&cand) {
                        break cand;
                    }
                };
                bindings.push(pick);
            }
        }
        g.plant(&cell, &format!("u{i}"), &bindings);
        pool.extend(bindings.iter().skip(nports - outputs).copied());
    }
    // Drop pool nets the wiring never used (SPICE cannot express
    // degree-0 nets, and matchers reject them in patterns).
    g.netlist = g.netlist.compact();
    g
}

/// A broken variant of `cell`: one device pin that touched an internal
/// net is rerouted to a fresh external net (destroying the induced-net
/// structure), or — for cells without internal nets — one device's type
/// is flipped between `nmos`/`pmos`. The mutant is *almost* the cell:
/// ideal pressure for the Phase I filter, and guaranteed to contain no
/// true instance of the original.
///
/// `variant` seeds which pin/device is hit, so different variants break
/// different places.
pub fn mutate_cell(cell: &Netlist, variant: u64) -> Netlist {
    let mut out = Netlist::new(format!("{}_mut{variant}", cell.name()));
    for ty in cell.device_types() {
        out.add_type(ty.clone()).expect("types are valid");
    }
    // Candidate mutation points: (device, pin) pairs on internal nets.
    let mut points: Vec<(usize, usize)> = Vec::new();
    for d in cell.device_ids() {
        for (pin, &n) in cell.device(d).pins().iter().enumerate() {
            let net = cell.net_ref(n);
            if !net.is_port() && !net.is_global() && net.degree() >= 2 {
                points.push((d.index(), pin));
            }
        }
    }
    let reroute = if points.is_empty() {
        None
    } else {
        Some(points[(variant as usize) % points.len()])
    };
    let flip = (variant as usize) % cell.device_count().max(1);
    for d in cell.device_ids() {
        let dev = cell.device(d);
        let mut ty = dev.type_id();
        let mut pins: Vec<NetId> = dev
            .pins()
            .iter()
            .map(|&n| {
                let net = cell.net_ref(n);
                let id = out.net(net.name());
                if net.is_global() {
                    out.mark_global(id);
                }
                id
            })
            .collect();
        match reroute {
            Some((dd, pin)) if dd == d.index() => {
                let fresh = out.net("mutant_tap");
                pins[pin] = fresh;
            }
            None if d.index() == flip => {
                let name = cell.device_type_of(d).name();
                let flipped = match name {
                    "nmos" => Some("pmos"),
                    "pmos" => Some("nmos"),
                    _ => None,
                };
                if let Some(f) = flipped {
                    ty = out
                        .add_type(subgemini_netlist::DeviceType::mos(f))
                        .expect("mos types are valid");
                }
            }
            _ => {}
        }
        out.add_device(dev.name().to_string(), ty, &pins)
            .expect("copying preserves validity");
    }
    for &p in cell.ports() {
        let id = out.net(cell.net_ref(p).name());
        out.mark_port(id);
    }
    out.compact()
}

/// A field of `n` near-miss mutants of `cell`, wired like
/// [`random_soup`] (shared input pool, fresh outputs). Contains zero
/// true instances of `cell` by construction — the adversarial workload
/// for filter-quality experiments.
pub fn near_miss_field(cell: &Netlist, n: usize, seed: u64) -> Generated {
    let mut rng = Rng64::new(Generated::child_seed(seed, streams::NEAR_MISS));
    let mut g = Generated::new("near_miss_field");
    let nports = cell.ports().len();
    let mut pool: Vec<NetId> = (0..(4 + nports))
        .map(|i| g.netlist.net(format!("pi{i}")))
        .collect();
    for i in 0..n {
        let mutant = mutate_cell(cell, rng.next_u64());
        let mports = mutant.ports().len();
        let mut bindings: Vec<NetId> = Vec::with_capacity(mports);
        for p in 0..mports {
            if p + 1 == mports {
                let fresh = g.netlist.net(format!("o{i}"));
                bindings.push(fresh);
            } else {
                let pick = loop {
                    let cand = pool[rng.index(pool.len())];
                    if !bindings.contains(&cand) {
                        break cand;
                    }
                };
                bindings.push(pick);
            }
        }
        instantiate(&mut g.netlist, &mutant, &format!("u{i}"), &bindings)
            .expect("mutant bindings match ports");
        pool.push(bindings[mports - 1]);
    }
    g.netlist = g.netlist.compact();
    g
}

/// A skewed scheduler workload: `traps` copies of `cell` superposed on
/// one shared set of port nets (a symmetric blob — every verification
/// inside it must individuate its copy out of `traps` interchangeable
/// ones, a guess-storm that costs orders of magnitude more Phase II
/// effort per candidate than a clean instance), followed by `easy`
/// true instances on disjoint fresh nets (each a fast verify). The
/// blob is planted first, so its heavy candidates cluster at the head
/// of the candidate vector: under static chunking the first worker
/// serializes behind the whole blob while the rest idle; a
/// work-stealing scheduler lets every worker drain the easy tail
/// meanwhile. Fully deterministic (no randomness). Ground truth:
/// `traps + easy` true instances (blob copies share nets, not
/// devices).
pub fn skewed_trap_field(cell: &Netlist, traps: usize, easy: usize) -> Generated {
    let mut g = Generated::new("skewed_trap_field");
    let nports = cell.ports().len();
    let blob_nets: Vec<NetId> = (0..nports)
        .map(|p| g.netlist.net(format!("b{p}")))
        .collect();
    for j in 0..traps {
        g.plant(cell, &format!("x{j}"), &blob_nets);
    }
    for i in 0..easy {
        let bindings: Vec<NetId> = (0..nports)
            .map(|p| g.netlist.net(format!("e{i}p{p}")))
            .collect();
        g.plant(cell, &format!("t{i}"), &bindings);
    }
    g
}

/// A chip-scale tiled workload: row-major tiles of mixed standard-cell
/// and analog blocks, grown until the device count reaches
/// `target_devices` (usable from 10^5 up to 10^7 devices). Tiles cycle
/// through four kinds — an SRAM block (12×8 `sram6t`), a pipelined
/// datapath (8 `full_adder` + `dff` stages), a 4-channel mixed-signal
/// front end (`two_stage_opamp` + `rc_lowpass` + digital glue), and a
/// seeded glue-logic soup — so shard cuts by compiled device order land
/// inside every block style. Each tile draws its own RNG stream via
/// [`Generated::child_seed`] (master stream [`streams::TILED_CHIP`],
/// then per-tile index), so tiles with the same master seed are not
/// clones and the generator composes with other seeded generators
/// without stream reuse. All outputs drive fresh per-tile nets, keeping
/// the planted counts exact ground truth, same as [`random_soup`].
pub fn tiled_chip(seed: u64, target_devices: usize) -> Generated {
    let fa = cells::full_adder();
    let dff = cells::dff();
    let inv = cells::inv();
    let nand = cells::nand2();
    let sram = cells::sram6t();
    let opamp = crate::analog::two_stage_opamp();
    let filt = crate::analog::rc_lowpass();
    let mut g = Generated::new("tiled_chip");
    let master = Generated::child_seed(seed, streams::TILED_CHIP);
    const ROW_TILES: usize = 8;
    let mut t = 0usize;
    while g.netlist.device_count() < target_devices {
        let (row, col) = (t / ROW_TILES, t % ROW_TILES);
        let mut rng = Rng64::new(Generated::child_seed(master, t as u64));
        let p = format!("r{row}c{col}");
        match t % 4 {
            0 => {
                // SRAM block: shared word/bit lines inside the tile.
                for r in 0..12 {
                    let wl = g.netlist.net(format!("{p}_wl{r}"));
                    for c in 0..8 {
                        let bl = g.netlist.net(format!("{p}_bl{c}"));
                        let blb = g.netlist.net(format!("{p}_blb{c}"));
                        g.plant(&sram, &format!("{p}_bit{r}_{c}"), &[bl, blb, wl]);
                    }
                }
            }
            1 => {
                // Datapath: ripple-carry adder stages into pipeline regs.
                let clk = g.netlist.net(format!("{p}_clk"));
                let mut carry = g.netlist.net(format!("{p}_cin"));
                for i in 0..8 {
                    let a = g.netlist.net(format!("{p}_a{i}"));
                    let b = g.netlist.net(format!("{p}_b{i}"));
                    let s = g.netlist.net(format!("{p}_s{i}"));
                    let cout = g.netlist.net(format!("{p}_c{i}"));
                    g.plant(&fa, &format!("{p}_fa{i}"), &[a, b, carry, s, cout]);
                    let q = g.netlist.net(format!("{p}_q{i}"));
                    g.plant(&dff, &format!("{p}_ff{i}"), &[s, clk, q]);
                    carry = cout;
                }
            }
            2 => {
                // Mixed-signal front end, wired like mixed_signal_chip.
                let bias = g.netlist.net(format!("{p}_bias"));
                let den = g.netlist.net(format!("{p}_en"));
                for ch in 0..4 {
                    let inp = g.netlist.net(format!("{p}_ain{ch}"));
                    let fb = g.netlist.net(format!("{p}_fb{ch}"));
                    let aout = g.netlist.net(format!("{p}_aout{ch}"));
                    let filtered = g.netlist.net(format!("{p}_filt{ch}"));
                    g.plant(&opamp, &format!("{p}_amp{ch}"), &[inp, fb, aout, bias]);
                    g.plant(&filt, &format!("{p}_lp{ch}"), &[aout, filtered]);
                    let d1 = g.netlist.net(format!("{p}_d1_{ch}"));
                    let dout = g.netlist.net(format!("{p}_dout{ch}"));
                    g.plant(&inv, &format!("{p}_cmp{ch}"), &[filtered, d1]);
                    g.plant(&nand, &format!("{p}_gate{ch}"), &[d1, den, dout]);
                    if rng.ratio(1, 2) {
                        let spare = g.netlist.net(format!("{p}_spare{ch}"));
                        g.plant(&inv, &format!("{p}_sp{ch}"), &[dout, spare]);
                    }
                }
            }
            _ => {
                // Glue-logic soup: inv/nand2 with fresh outputs.
                let mut pool: Vec<NetId> = (0..8)
                    .map(|i| g.netlist.net(format!("{p}_pi{i}")))
                    .collect();
                for i in 0..48 {
                    let out = g.netlist.net(format!("{p}_o{i}"));
                    if rng.ratio(1, 3) {
                        let a = pool[rng.index(pool.len())];
                        g.plant(&inv, &format!("{p}_u{i}"), &[a, out]);
                    } else {
                        let a = pool[rng.index(pool.len())];
                        let b = loop {
                            let cand = pool[rng.index(pool.len())];
                            if cand != a {
                                break cand;
                            }
                        };
                        g.plant(&nand, &format!("{p}_u{i}"), &[a, b, out]);
                    }
                    pool.push(out);
                }
            }
        }
        t += 1;
    }
    g
}

/// A flattened multi-level design plus its exact per-level ground
/// truth, produced by [`hierarchical_chip`].
#[derive(Clone, Debug)]
pub struct HierarchicalChip {
    /// The flat transistor netlist and the *top-level* planted block
    /// counts (a planted `pipeline_stage` counts once here, not as its
    /// constituent gates).
    pub generated: Generated,
    /// The hierarchical cell library — lower cells referenced through
    /// naive composite device types, the same shape a parsed SPICE
    /// `X`-card hierarchy produces — suitable for `subgemini::hier`.
    pub library: Vec<Netlist>,
    /// Exact instance counts a full bottom-up extraction finds per
    /// cell: top-level plants plus every nested occurrence (each
    /// `pipeline_stage` contributes 2 `xor_nand`, each `xor_nand` 4
    /// `nand2`, and so on).
    pub expected: BTreeMap<String, usize>,
    /// Cell names grouped by hierarchy level; index 0 is level 1
    /// (transistor-level cells).
    pub level_cells: Vec<Vec<String>>,
}

impl HierarchicalChip {
    /// Expected extracted-instance count for `cell` (0 if absent).
    pub fn expected_count(&self, cell: &str) -> usize {
        self.expected.get(cell).copied().unwrap_or(0)
    }
}

/// Nested cell instances inside each multi-level cell definition: the
/// direct children only (the recursion in [`hierarchical_chip`]'s
/// expected-count propagation walks the rest).
fn hier_contributions(cell: &str) -> &'static [(&'static str, usize)] {
    match cell {
        "xor_nand" => &[("nand2", 4)],
        "mux_nand" => &[("inv", 1), ("nand2", 3)],
        "pipeline_stage" => &[("xor_nand", 2), ("mux_nand", 1), ("nor2", 1)],
        _ => &[],
    }
}

/// A naive composite device type for `cell`: one terminal per port,
/// each terminal's symmetry class set to the port's own name. This is
/// exactly what SPICE `X`-card parsing mints for a subcircuit call —
/// the hierarchizer normalizes these to canonical composite types
/// before matching.
fn naive_composite(cell: &Netlist) -> subgemini_netlist::DeviceType {
    use subgemini_netlist::TerminalSpec;
    let terms = cell
        .ports()
        .iter()
        .map(|&p| {
            let n = cell.net_ref(p).name();
            TerminalSpec::new(n, n)
        })
        .collect();
    subgemini_netlist::DeviceType::new(cell.name(), terms)
}

/// Level-2 XOR built from four NAND2 references. Ports: `a b y`.
fn ref_xor_nand() -> Netlist {
    let mut c = Netlist::new("xor_nand");
    let nand = c
        .add_type(naive_composite(&cells::nand2()))
        .expect("fresh type");
    let (a, b, y) = (c.net("a"), c.net("b"), c.net("y"));
    c.mark_port(a);
    c.mark_port(b);
    c.mark_port(y);
    let (n1, n2, n3) = (c.net("n1"), c.net("n2"), c.net("n3"));
    c.add_device("g1", nand, &[a, b, n1]).expect("unique names");
    c.add_device("g2", nand, &[a, n1, n2])
        .expect("unique names");
    c.add_device("g3", nand, &[b, n1, n3])
        .expect("unique names");
    c.add_device("g4", nand, &[n2, n3, y])
        .expect("unique names");
    c
}

/// Level-2 2:1 mux from an inverter and three NAND2s. Ports:
/// `a b s y` (selects `a` when `s` is low).
fn ref_mux_nand() -> Netlist {
    let mut c = Netlist::new("mux_nand");
    let inv = c
        .add_type(naive_composite(&cells::inv()))
        .expect("fresh type");
    let nand = c
        .add_type(naive_composite(&cells::nand2()))
        .expect("fresh type");
    let (a, b, s, y) = (c.net("a"), c.net("b"), c.net("s"), c.net("y"));
    for p in [a, b, s, y] {
        c.mark_port(p);
    }
    let (sb, n1, n2) = (c.net("sb"), c.net("n1"), c.net("n2"));
    c.add_device("i1", inv, &[s, sb]).expect("unique names");
    c.add_device("g1", nand, &[a, sb, n1])
        .expect("unique names");
    c.add_device("g2", nand, &[b, s, n2]).expect("unique names");
    c.add_device("g3", nand, &[n1, n2, y])
        .expect("unique names");
    c
}

/// Level-3 datapath block: two XORs (a half sum chain), a bypass mux,
/// and an enable NOR. Ports: `a b cin sel en y`.
fn ref_pipeline_stage() -> Netlist {
    let mut c = Netlist::new("pipeline_stage");
    let xor = c
        .add_type(naive_composite(&ref_xor_nand()))
        .expect("fresh type");
    let mux = c
        .add_type(naive_composite(&ref_mux_nand()))
        .expect("fresh type");
    let nor = c
        .add_type(naive_composite(&cells::nor2()))
        .expect("fresh type");
    let (a, b, cin, sel, en, y) = (
        c.net("a"),
        c.net("b"),
        c.net("cin"),
        c.net("sel"),
        c.net("en"),
        c.net("y"),
    );
    for p in [a, b, cin, sel, en, y] {
        c.mark_port(p);
    }
    let (s1, s2, m) = (c.net("s1"), c.net("s2"), c.net("m"));
    c.add_device("x1", xor, &[a, b, s1]).expect("unique names");
    c.add_device("x2", xor, &[s1, cin, s2])
        .expect("unique names");
    c.add_device("m1", mux, &[s1, s2, sel, m])
        .expect("unique names");
    c.add_device("n1", nor, &[m, en, y]).expect("unique names");
    c
}

/// The hierarchical cell library for [`hierarchical_chip`] designs,
/// trimmed to `levels` (clamped to 1..=3): level 1 is flat CMOS
/// (`inv`/`nand2`/`nor2`), level 2 adds `xor_nand`/`mux_nand` built
/// over NAND2/inv references, level 3 adds `pipeline_stage` over the
/// level-2 blocks. Upper cells reference lower ones through naive
/// composite types ([`naive_composite`]'s shape), matching what a
/// parsed hierarchical SPICE deck provides.
pub fn hierarchical_library(levels: usize) -> Vec<Netlist> {
    let levels = levels.clamp(1, 3);
    let mut lib = vec![cells::inv(), cells::nand2(), cells::nor2()];
    if levels >= 2 {
        lib.push(ref_xor_nand());
        lib.push(ref_mux_nand());
    }
    if levels >= 3 {
        lib.push(ref_pipeline_stage());
    }
    lib
}

/// Flat (transistor-level) elaboration of `cell` from the
/// [`hierarchical_library`], used for planting: upper-level reference
/// cells are expanded by stamping lower flat cells through
/// [`instantiate`], so the chip netlist never contains a composite
/// device.
fn flat_hier_cell(name: &str) -> Netlist {
    match name {
        "inv" => cells::inv(),
        "nand2" => cells::nand2(),
        "nor2" => cells::nor2(),
        _ => {
            let reference = match name {
                "xor_nand" => ref_xor_nand(),
                "mux_nand" => ref_mux_nand(),
                "pipeline_stage" => ref_pipeline_stage(),
                other => unreachable!("unknown hierarchical cell {other}"),
            };
            let mut flat = Netlist::new(name);
            // Recreate the reference cell's nets (ports in order), then
            // stamp each composite reference as a flat sub-elaboration.
            let mut ids: BTreeMap<String, NetId> = BTreeMap::new();
            for &p in reference.ports() {
                let n = reference.net_ref(p).name().to_string();
                let id = flat.net(n.clone());
                flat.mark_port(id);
                ids.insert(n, id);
            }
            for d in reference.device_ids() {
                let dev = reference.device(d);
                let child = flat_hier_cell(reference.device_type(dev.type_id()).name());
                let bindings: Vec<NetId> = dev
                    .pins()
                    .iter()
                    .map(|&pin| {
                        let n = reference.net_ref(pin).name().to_string();
                        *ids.entry(n.clone()).or_insert_with(|| flat.net(n))
                    })
                    .collect();
                instantiate(&mut flat, &child, dev.name(), &bindings)
                    .expect("reference arity matches child ports");
            }
            flat
        }
    }
}

/// A flattened multi-level design — transistors → gates → datapath
/// blocks — with exact planted ground truth per level, grown until the
/// transistor count reaches `target_devices` (and at least one of each
/// palette cell exists). `levels` (clamped 1..=3) bounds the tallest
/// planted block. Every block input draws from a shared primary-input
/// pool and every output drives a fresh net that is *never* consumed
/// downstream, so no accidental cell instance can form across block
/// boundaries: the extraction counts in
/// [`HierarchicalChip::expected`] are exact, not statistical.
pub fn hierarchical_chip(seed: u64, levels: usize, target_devices: usize) -> HierarchicalChip {
    let levels = levels.clamp(1, 3);
    let mut palette = vec!["inv", "nand2", "nor2"];
    if levels >= 2 {
        palette.extend(["xor_nand", "mux_nand"]);
    }
    if levels >= 3 {
        palette.push("pipeline_stage");
    }
    let flats: Vec<Netlist> = palette.iter().map(|n| flat_hier_cell(n)).collect();
    let mut rng = Rng64::new(Generated::child_seed(seed, streams::HIERARCHICAL_CHIP));
    let mut g = Generated::new("hierarchical_chip");
    // Inputs only: unlike random_soup, outputs never join the pool, so
    // blocks never chain and the planted counts stay exact.
    let pool: Vec<NetId> = (0..8.max(target_devices / 64))
        .map(|i| g.netlist.net(format!("pi{i}")))
        .collect();
    let mut i = 0usize;
    while g.netlist.device_count() < target_devices || i < flats.len() {
        // First pass covers the palette once so every cell appears even
        // in tiny chips; after that the pick is seeded-random.
        let cell = if i < flats.len() {
            &flats[i]
        } else {
            &flats[rng.index(flats.len())]
        };
        let nports = cell.ports().len();
        let mut bindings: Vec<NetId> = Vec::with_capacity(nports);
        for p in 0..nports {
            if p == nports - 1 {
                bindings.push(g.netlist.net(format!("o{i}")));
            } else {
                let pick = loop {
                    let cand = pool[rng.index(pool.len())];
                    if !bindings.contains(&cand) {
                        break cand;
                    }
                };
                bindings.push(pick);
            }
        }
        g.plant(cell, &format!("u{i}"), &bindings);
        i += 1;
    }
    g.netlist = g.netlist.compact();
    // Propagate top-level plants down the containment tree, highest
    // level first, so nested blocks contribute transitively.
    let mut expected = g.planted.clone();
    for name in ["pipeline_stage", "mux_nand", "xor_nand"] {
        let n = expected.get(name).copied().unwrap_or(0);
        if n == 0 {
            continue;
        }
        for &(child, k) in hier_contributions(name) {
            *expected.entry(child.to_string()).or_insert(0) += n * k;
        }
    }
    let mut level_cells = vec![vec![
        "inv".to_string(),
        "nand2".to_string(),
        "nor2".to_string(),
    ]];
    if levels >= 2 {
        level_cells.push(vec!["xor_nand".to_string(), "mux_nand".to_string()]);
    }
    if levels >= 3 {
        level_cells.push(vec!["pipeline_stage".to_string()]);
    }
    HierarchicalChip {
        generated: g,
        library: hierarchical_library(levels),
        expected,
        level_cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skewed_trap_field_plants_blob_and_easy_instances() {
        let g = skewed_trap_field(&cells::nand2(), 2, 5);
        assert_eq!(g.planted_count("nand2"), 7, "blob copies are instances too");
        g.netlist.validate().unwrap();
        // Blob copies share port nets but not devices.
        assert_eq!(g.netlist.device_count(), 7 * cells::nand2().device_count());
    }

    #[test]
    fn inverter_chain_counts() {
        let g = inverter_chain(10);
        assert_eq!(g.planted_count("inv"), 10);
        assert_eq!(g.netlist.device_count(), 20);
        g.netlist.validate().unwrap();
    }

    #[test]
    fn ripple_adder_counts() {
        let g = ripple_adder(8);
        assert_eq!(g.planted_count("full_adder"), 8);
        assert_eq!(g.netlist.device_count(), 8 * 28);
        // Carries chain: c0..c6 are internal fan-through nets.
        assert!(g.netlist.find_net("c3").is_some());
        g.netlist.validate().unwrap();
    }

    #[test]
    fn shift_register_shares_clock() {
        let g = shift_register(5);
        assert_eq!(g.planted_count("dff"), 5);
        let clk = g.netlist.find_net("clk").unwrap();
        // Each dff touches clk at 3 points (clkb inverter gate + 2 tgate
        // gates... exactly: inv gate, master tgate n-side? count > 5).
        assert!(g.netlist.net_ref(clk).degree() >= 5);
        g.netlist.validate().unwrap();
    }

    #[test]
    fn multiplier_counts() {
        let g = array_multiplier(4);
        assert_eq!(g.planted_count("nand2"), 16);
        assert_eq!(g.planted_count("inv"), 16);
        assert_eq!(g.planted_count("full_adder"), 3 * 3);
        g.netlist.validate().unwrap();
    }

    #[test]
    fn ripple_counter_counts() {
        let g = ripple_counter(4);
        assert_eq!(g.planted_count("dff"), 4);
        assert_eq!(g.planted_count("xor2"), 4);
        assert_eq!(g.netlist.device_count(), 4 * (18 + 8));
        g.netlist.validate().unwrap();
    }

    #[test]
    fn decoder_counts() {
        let g = decoder(3);
        assert_eq!(g.planted_count("nand3"), 8);
        assert_eq!(g.planted_count("inv"), 3 + 8);
        g.netlist.validate().unwrap();
        let row0 = g.netlist.find_net("row0").unwrap();
        assert_eq!(g.netlist.net_ref(row0).degree(), 2); // inv pull-up + pull-down
    }

    #[test]
    fn sram_array_counts() {
        let g = sram_array(4, 8);
        assert_eq!(g.planted_count("sram6t"), 32);
        assert_eq!(g.netlist.device_count(), 32 * 6);
        let wl0 = g.netlist.find_net("wl0").unwrap();
        assert_eq!(g.netlist.net_ref(wl0).degree(), 16); // 2 access per cell
        g.netlist.validate().unwrap();
    }

    #[test]
    fn random_soup_is_deterministic() {
        let a = random_soup(42, 30);
        let b = random_soup(42, 30);
        assert_eq!(a.netlist.device_count(), b.netlist.device_count());
        assert_eq!(a.planted, b.planted);
        let c = random_soup(43, 30);
        // Overwhelmingly likely to differ.
        assert!(a.planted != c.planted || a.netlist.net_count() != c.netlist.net_count());
        a.netlist.validate().unwrap();
    }

    #[test]
    fn hierarchical_chip_is_deterministic_with_exact_expectations() {
        let a = hierarchical_chip(11, 3, 400);
        let b = hierarchical_chip(11, 3, 400);
        assert_eq!(a.generated.planted, b.generated.planted);
        assert_eq!(a.expected, b.expected);
        assert_eq!(
            a.generated.netlist.device_count(),
            b.generated.netlist.device_count()
        );
        a.generated.netlist.validate().unwrap();
        assert!(a.generated.netlist.device_count() >= 400);
        // Every palette cell appears at least once.
        for cell in [
            "inv",
            "nand2",
            "nor2",
            "xor_nand",
            "mux_nand",
            "pipeline_stage",
        ] {
            assert!(a.generated.planted_count(cell) >= 1, "{cell} missing");
        }
        let c = hierarchical_chip(12, 3, 400);
        assert!(a.generated.planted != c.generated.planted || a.expected != c.expected);
    }

    #[test]
    fn hierarchical_chip_expected_counts_include_containment() {
        let chip = hierarchical_chip(5, 3, 300);
        let p = |c: &str| chip.generated.planted_count(c);
        let pipe = p("pipeline_stage");
        let xor = p("xor_nand") + 2 * pipe;
        let mux = p("mux_nand") + pipe;
        assert_eq!(chip.expected_count("pipeline_stage"), pipe);
        assert_eq!(chip.expected_count("xor_nand"), xor);
        assert_eq!(chip.expected_count("mux_nand"), mux);
        assert_eq!(chip.expected_count("nor2"), p("nor2") + pipe);
        assert_eq!(chip.expected_count("nand2"), p("nand2") + 4 * xor + 3 * mux);
        assert_eq!(chip.expected_count("inv"), p("inv") + mux);
        // The flat device count is fully explained by the plants.
        let flat_sizes: BTreeMap<&str, usize> = [
            ("inv", 2),
            ("nand2", 4),
            ("nor2", 4),
            ("xor_nand", 16),
            ("mux_nand", 14),
            ("pipeline_stage", 50),
        ]
        .into_iter()
        .collect();
        let total: usize = chip
            .generated
            .planted
            .iter()
            .map(|(cell, n)| flat_sizes[cell.as_str()] * n)
            .sum();
        assert_eq!(chip.generated.netlist.device_count(), total);
    }

    #[test]
    fn hierarchical_library_levels_and_references() {
        assert_eq!(hierarchical_library(1).len(), 3);
        assert_eq!(hierarchical_library(2).len(), 5);
        let lib = hierarchical_library(3);
        assert_eq!(lib.len(), 6);
        let pipe = lib.iter().find(|c| c.name() == "pipeline_stage").unwrap();
        let ty_names: Vec<&str> = pipe.device_types().iter().map(|t| t.name()).collect();
        assert!(ty_names.contains(&"xor_nand"));
        assert!(ty_names.contains(&"mux_nand"));
        assert!(ty_names.contains(&"nor2"));
        // Level-2 cells reference level-1 by type name with port arity.
        let xor = lib.iter().find(|c| c.name() == "xor_nand").unwrap();
        let nand_ty = xor
            .device_types()
            .iter()
            .find(|t| t.name() == "nand2")
            .unwrap();
        assert_eq!(nand_ty.terminal_count(), 3);
        for cell in &lib {
            cell.validate().unwrap();
        }
        // Levels clamp: 0 and 9 behave as 1 and 3.
        assert_eq!(hierarchical_library(0).len(), 3);
        assert_eq!(hierarchical_library(9).len(), 6);
    }

    #[test]
    fn soup_plants_sum_to_gate_count() {
        let g = random_soup(7, 50);
        let total: usize = g.planted.values().sum();
        assert_eq!(total, 50);
    }

    #[test]
    fn mutants_are_not_instances() {
        use crate::cells;
        for cell in [
            cells::nand2(),
            cells::dff(),
            cells::full_adder(),
            cells::inv(),
        ] {
            for v in 0..4u64 {
                let m = mutate_cell(&cell, v);
                m.validate().unwrap();
                // The mutant differs from the cell structurally.
                assert!(
                    !subgemini_gemini_free::isomorphic_stub(&cell, &m),
                    "{} variant {v}",
                    cell.name()
                );
            }
        }
    }

    /// Local structural check (device-count + per-type pin/degree
    /// signature) sufficient for the mutation tests without a gemini
    /// dependency.
    mod subgemini_gemini_free {
        use subgemini_netlist::Netlist;

        pub fn isomorphic_stub(a: &Netlist, b: &Netlist) -> bool {
            signature(a) == signature(b)
        }

        fn signature(nl: &Netlist) -> Vec<(String, Vec<usize>)> {
            let mut v: Vec<(String, Vec<usize>)> = nl
                .device_ids()
                .map(|d| {
                    let mut degs: Vec<usize> = nl
                        .device(d)
                        .pins()
                        .iter()
                        .map(|&n| nl.net_ref(n).degree())
                        .collect();
                    degs.sort_unstable();
                    (nl.device_type_of(d).name().to_string(), degs)
                })
                .collect();
            v.sort();
            v
        }
    }

    #[test]
    fn near_miss_field_is_deterministic_and_clean() {
        use crate::cells;
        let a = near_miss_field(&cells::nand2(), 10, 7);
        let b = near_miss_field(&cells::nand2(), 10, 7);
        assert_eq!(a.netlist.device_count(), b.netlist.device_count());
        a.netlist.validate().unwrap();
        assert!(a.netlist.device_count() >= 10 * 3);
    }

    #[test]
    fn child_seeds_do_not_collide_across_streams() {
        // Regression for the stream-reuse bug: generators used to seed
        // `Rng64::new(seed)` directly, so `random_soup(s, …)` and
        // `mixed_signal_chip(s, …)` replayed one identical stream. The
        // split-off child seeds must be pairwise distinct across
        // masters and streams.
        let mut seen = std::collections::HashSet::new();
        for master in [0u64, 1, 42, 0x5eed, u64::MAX] {
            for stream in 0..64u64 {
                assert!(
                    seen.insert(Generated::child_seed(master, stream)),
                    "collision at master={master} stream={stream}"
                );
            }
        }
        // The documented per-generator streams are distinct.
        let tags = [
            streams::RANDOM_SOUP,
            streams::NEAR_MISS,
            streams::MIXED_SIGNAL,
            streams::TILED_CHIP,
        ];
        for (i, &a) in tags.iter().enumerate() {
            for &b in &tags[i + 1..] {
                assert_ne!(a, b);
                assert_ne!(Generated::child_seed(7, a), Generated::child_seed(7, b));
            }
        }
    }

    #[test]
    fn composed_generators_draw_distinct_streams() {
        // Same master seed, different generators: the RNG-dependent
        // shapes must differ (before the child-seed split both drew the
        // same SplitMix values in the same order).
        let ms = crate::analog::mixed_signal_chip(7, 16);
        // The mixed-signal spare-inverter coin flips are the observable
        // stream: a stream alias with random_soup(7, …) would reproduce
        // its draw sequence bit-for-bit; distinct child seeds make the
        // flips an independent sequence (pinned here: some but not all
        // of the 16 channels grow a spare).
        let spares = ms.planted_count("inv") - 16;
        assert!(spares > 0 && spares < 16, "spares={spares}");
        // And the same master seed still yields a deterministic chip.
        let again = crate::analog::mixed_signal_chip(7, 16);
        assert_eq!(ms.planted, again.planted);
    }

    #[test]
    fn tiled_chip_is_deterministic_with_exact_ground_truth() {
        let a = tiled_chip(11, 5_000);
        let b = tiled_chip(11, 5_000);
        assert_eq!(a.planted, b.planted);
        assert_eq!(a.netlist.device_count(), b.netlist.device_count());
        assert!(a.netlist.device_count() >= 5_000);
        // Tiles are bounded (~600 devices max), so the overshoot is too.
        assert!(a.netlist.device_count() < 5_000 + 1_000);
        a.netlist.validate().unwrap();
        // All four tile kinds are present with known planted counts.
        for cell in [
            "sram6t",
            "full_adder",
            "dff",
            "two_stage_opamp",
            "rc_lowpass",
        ] {
            assert!(a.planted_count(cell) > 0, "{cell}");
        }
        let c = tiled_chip(12, 5_000);
        assert_ne!(
            (a.netlist.device_count(), a.netlist.net_count()),
            (c.netlist.device_count(), c.netlist.net_count()),
            "different masters must differ"
        );
    }

    #[test]
    fn tiled_chip_tiles_are_not_clones() {
        // Two mixed-signal tiles (t=2 and t=6) draw different child
        // streams, so their spare-inverter patterns differ for at least
        // one of these master seeds.
        let mut differed = false;
        for seed in 0..4u64 {
            let g = tiled_chip(seed, 4_000);
            let spare_a = g.netlist.find_net("r0c2_spare0").is_some() as u8
                + g.netlist.find_net("r0c2_spare1").is_some() as u8
                + g.netlist.find_net("r0c2_spare2").is_some() as u8
                + g.netlist.find_net("r0c2_spare3").is_some() as u8;
            let spare_b = g.netlist.find_net("r0c6_spare0").is_some() as u8
                + g.netlist.find_net("r0c6_spare1").is_some() as u8
                + g.netlist.find_net("r0c6_spare2").is_some() as u8
                + g.netlist.find_net("r0c6_spare3").is_some() as u8;
            differed |= spare_a != spare_b;
        }
        assert!(differed, "per-tile child seeds must decorrelate tiles");
    }

    #[test]
    fn structural_counts_add_containment() {
        let mut g = shift_register(3);
        assert_eq!(g.structural_count("inv"), 15); // 5 per dff
        g.planted.insert("inv".into(), 2);
        assert_eq!(g.structural_count("inv"), 17);
        assert_eq!(g.structural_count("dff"), 3);
        assert_eq!(g.structural_count("dlatch"), 6);
        assert_eq!(g.structural_count("buf"), 6);
    }
}
