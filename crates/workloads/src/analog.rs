//! Analog cell library and generators.
//!
//! The paper's core selling point is technology independence: nothing
//! in the algorithm knows about digital CMOS, so analog building
//! blocks (current mirrors, differential pairs, OTAs) are found the
//! same way gates are. This module provides transistor/passive-level
//! analog cells and a mixed-signal generator — including the classic
//! "pattern inside a bigger pattern" situations (a 5T OTA *contains* a
//! current mirror and a differential pair).

use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{DeviceType, Netlist};

use crate::gen::Generated;

fn mos_netlist(name: &str) -> Netlist {
    let mut nl = Netlist::new(name);
    nl.add_mos_types();
    nl
}

/// NMOS current mirror (2T): `iin` is diode-connected, `iout` mirrors.
/// Ports: `iin iout`.
pub fn nmos_mirror() -> Netlist {
    let mut nl = mos_netlist("nmos_mirror");
    let nmos = nl.type_id("nmos").expect("registered");
    let (iin, iout) = (nl.net("iin"), nl.net("iout"));
    let gnd = nl.net("gnd");
    nl.mark_port(iin);
    nl.mark_port(iout);
    nl.mark_global(gnd);
    nl.add_device("m1", nmos, &[iin, gnd, iin]).unwrap(); // diode-connected
    nl.add_device("m2", nmos, &[iin, gnd, iout]).unwrap();
    nl
}

/// PMOS current mirror (2T). Ports: `iin iout`.
pub fn pmos_mirror() -> Netlist {
    let mut nl = mos_netlist("pmos_mirror");
    let pmos = nl.type_id("pmos").expect("registered");
    let (iin, iout) = (nl.net("iin"), nl.net("iout"));
    let vdd = nl.net("vdd");
    nl.mark_port(iin);
    nl.mark_port(iout);
    nl.mark_global(vdd);
    nl.add_device("m1", pmos, &[iin, vdd, iin]).unwrap();
    nl.add_device("m2", pmos, &[iin, vdd, iout]).unwrap();
    nl
}

/// Cascode NMOS mirror (4T). Ports: `iin iout`.
pub fn cascode_mirror() -> Netlist {
    let mut nl = mos_netlist("cascode_mirror");
    let nmos = nl.type_id("nmos").expect("registered");
    let (iin, iout) = (nl.net("iin"), nl.net("iout"));
    let (x, y) = (nl.net("x"), nl.net("y"));
    let gnd = nl.net("gnd");
    nl.mark_port(iin);
    nl.mark_port(iout);
    nl.mark_global(gnd);
    nl.add_device("m1", nmos, &[x, gnd, x]).unwrap();
    nl.add_device("m2", nmos, &[x, gnd, y]).unwrap();
    nl.add_device("m3", nmos, &[iin, x, iin]).unwrap();
    nl.add_device("m4", nmos, &[iin, y, iout]).unwrap();
    nl
}

/// NMOS differential pair (2T, no tail device). Ports:
/// `inp inn outp outn tail`.
pub fn diff_pair() -> Netlist {
    let mut nl = mos_netlist("diff_pair");
    let nmos = nl.type_id("nmos").expect("registered");
    let (inp, inn) = (nl.net("inp"), nl.net("inn"));
    let (outp, outn) = (nl.net("outp"), nl.net("outn"));
    let tail = nl.net("tail");
    for p in [inp, inn, outp, outn, tail] {
        nl.mark_port(p);
    }
    nl.add_device("m1", nmos, &[inp, tail, outn]).unwrap();
    nl.add_device("m2", nmos, &[inn, tail, outp]).unwrap();
    nl
}

/// Five-transistor OTA: NMOS diff pair, PMOS mirror load, NMOS tail
/// source. Ports: `inp inn out bias`.
pub fn ota5t() -> Netlist {
    let mut nl = mos_netlist("ota5t");
    let nmos = nl.type_id("nmos").expect("registered");
    let pmos = nl.type_id("pmos").expect("registered");
    let (inp, inn, out, bias) = (nl.net("inp"), nl.net("inn"), nl.net("out"), nl.net("bias"));
    let (x, tail) = (nl.net("x"), nl.net("tail"));
    let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
    for p in [inp, inn, out, bias] {
        nl.mark_port(p);
    }
    nl.mark_global(vdd);
    nl.mark_global(gnd);
    nl.add_device("m1", nmos, &[inp, tail, x]).unwrap();
    nl.add_device("m2", nmos, &[inn, tail, out]).unwrap();
    nl.add_device("m3", pmos, &[x, vdd, x]).unwrap(); // mirror diode
    nl.add_device("m4", pmos, &[x, vdd, out]).unwrap();
    nl.add_device("m5", nmos, &[bias, gnd, tail]).unwrap(); // tail
    nl
}

/// Two-stage Miller opamp (8 devices: 7 MOS + compensation cap).
/// Ports: `inp inn out bias`.
pub fn two_stage_opamp() -> Netlist {
    let mut nl = mos_netlist("two_stage_opamp");
    let nmos = nl.type_id("nmos").expect("registered");
    let pmos = nl.type_id("pmos").expect("registered");
    let cap = nl.add_type(DeviceType::two_terminal("cap")).unwrap();
    let (inp, inn, out, bias) = (nl.net("inp"), nl.net("inn"), nl.net("out"), nl.net("bias"));
    let (x, y, tail) = (nl.net("x"), nl.net("y"), nl.net("tail"));
    let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
    for p in [inp, inn, out, bias] {
        nl.mark_port(p);
    }
    nl.mark_global(vdd);
    nl.mark_global(gnd);
    // First stage: diff pair + mirror load + tail.
    nl.add_device("m1", nmos, &[inp, tail, x]).unwrap();
    nl.add_device("m2", nmos, &[inn, tail, y]).unwrap();
    nl.add_device("m3", pmos, &[x, vdd, x]).unwrap();
    nl.add_device("m4", pmos, &[x, vdd, y]).unwrap();
    nl.add_device("m5", nmos, &[bias, gnd, tail]).unwrap();
    // Second stage: common-source PMOS with NMOS current-source load.
    nl.add_device("m6", pmos, &[y, vdd, out]).unwrap();
    nl.add_device("m7", nmos, &[bias, gnd, out]).unwrap();
    // Miller compensation.
    nl.add_device("cc", cap, &[y, out]).unwrap();
    nl
}

/// Darlington pair (2 NPN BJTs). Ports: `b c e`.
pub fn darlington() -> Netlist {
    let mut nl = Netlist::new("darlington");
    let npn = nl.add_type(DeviceType::bjt("npn")).unwrap();
    let (b, c, e) = (nl.net("b"), nl.net("c"), nl.net("e"));
    let mid = nl.net("mid");
    nl.mark_port(b);
    nl.mark_port(c);
    nl.mark_port(e);
    nl.add_device("q1", npn, &[c, b, mid]).unwrap();
    nl.add_device("q2", npn, &[c, mid, e]).unwrap();
    nl
}

/// First-order RC low-pass. Ports: `in out`.
pub fn rc_lowpass() -> Netlist {
    let mut nl = Netlist::new("rc_lowpass");
    let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
    let cap = nl.add_type(DeviceType::two_terminal("cap")).unwrap();
    let (i, o) = (nl.net("in"), nl.net("out"));
    let gnd = nl.net("gnd");
    nl.mark_port(i);
    nl.mark_port(o);
    nl.mark_global(gnd);
    nl.add_device("r1", res, &[i, o]).unwrap();
    nl.add_device("c1", cap, &[o, gnd]).unwrap();
    nl
}

/// The analog cell library, largest first.
pub fn analog_library() -> Vec<Netlist> {
    let mut cells = vec![
        nmos_mirror(),
        pmos_mirror(),
        cascode_mirror(),
        diff_pair(),
        ota5t(),
        two_stage_opamp(),
        darlington(),
        rc_lowpass(),
    ];
    cells.sort_by(|a, b| {
        b.device_count()
            .cmp(&a.device_count())
            .then_with(|| a.name().cmp(b.name()))
    });
    cells
}

/// A seeded mixed-signal block: `channels` analog front-end channels
/// (opamp + RC filter) plus digital glue from the standard library.
pub fn mixed_signal_chip(seed: u64, channels: usize) -> Generated {
    // Child-seeded stream: `mixed_signal_chip(s, …)` composed next to
    // `random_soup(s, …)` (one master seed, as tiled_chip does) used to
    // replay the identical SplitMix stream in both generators.
    let mut rng = Rng64::new(Generated::child_seed(
        seed,
        crate::gen::streams::MIXED_SIGNAL,
    ));
    let mut g = Generated::new("mixed_signal");
    let opamp = two_stage_opamp();
    let filt = rc_lowpass();
    let inv = crate::cells::inv();
    let nand = crate::cells::nand2();
    let bias = g.netlist.net("bias");
    for ch in 0..channels {
        let inp = g.netlist.net(format!("ain{ch}"));
        let fb = g.netlist.net(format!("fb{ch}"));
        let aout = g.netlist.net(format!("aout{ch}"));
        let filtered = g.netlist.net(format!("filt{ch}"));
        g.plant(&opamp, &format!("amp{ch}"), &[inp, fb, aout, bias]);
        g.plant(&filt, &format!("lp{ch}"), &[aout, filtered]);
        // Comparator-ish digital side: inverter chain + enable gate.
        let d1 = g.netlist.net(format!("d1_{ch}"));
        let den = g.netlist.net("enable");
        let dout = g.netlist.net(format!("dout{ch}"));
        g.plant(&inv, &format!("cmp{ch}"), &[filtered, d1]);
        g.plant(&nand, &format!("gate{ch}"), &[d1, den, dout]);
        // A little wiring noise so channels are not perfectly identical.
        if rng.ratio(1, 2) {
            let spare = g.netlist.net(format!("spare{ch}"));
            g.plant(&inv, &format!("sp{ch}"), &[dout, spare]);
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analog_cells_are_wellformed() {
        for cell in analog_library() {
            cell.validate().unwrap();
            assert!(!cell.ports().is_empty(), "{}", cell.name());
            for n in cell.net_ids() {
                assert!(cell.net_ref(n).degree() > 0, "{}", cell.name());
            }
        }
    }

    #[test]
    fn library_sizes() {
        let expect = [
            ("nmos_mirror", 2),
            ("pmos_mirror", 2),
            ("cascode_mirror", 4),
            ("diff_pair", 2),
            ("ota5t", 5),
            ("two_stage_opamp", 8),
            ("darlington", 2),
            ("rc_lowpass", 2),
        ];
        let lib = analog_library();
        for (name, n) in expect {
            let cell = lib
                .iter()
                .find(|c| c.name() == name)
                .unwrap_or_else(|| panic!("{name}"));
            assert_eq!(cell.device_count(), n, "{name}");
        }
    }

    #[test]
    fn mixed_signal_is_deterministic() {
        let a = mixed_signal_chip(9, 4);
        let b = mixed_signal_chip(9, 4);
        assert_eq!(a.planted, b.planted);
        assert_eq!(a.netlist.device_count(), b.netlist.device_count());
        a.netlist.validate().unwrap();
        assert_eq!(a.planted_count("two_stage_opamp"), 4);
        assert_eq!(a.planted_count("rc_lowpass"), 4);
    }
}
