//! The exact circuits of the paper's figures.
//!
//! * **Fig. 1/2/4 + Table 1** — the running example: a 4-transistor
//!   subcircuit and a 7-transistor main circuit containing one
//!   instance. Reconstructed vertex-for-vertex from the relabeling
//!   formulas of Table 1 (device/net names match the paper: `d1…d4`,
//!   `n1…n6` in the pattern; `d5…d11`, `n7…n15` in the main graph).
//!   Phase I on this pair selects key vertex `n4` and candidate vector
//!   `{n13, n14}`, exactly as reported in §IV.
//! * **Fig. 5** — the symmetric parallel-transistor pair that forces a
//!   Phase II guess but no backtracking.
//! * **Fig. 7** — the CMOS inverter that is wrongly found inside a NAND
//!   unless `Vdd`/`GND` are treated as special.

use subgemini_netlist::Netlist;

use crate::cells;

/// The subcircuit `S` of Fig. 1 (left): devices `d1…d4`, nets `n1…n6`.
///
/// `n4` is the single internal net (the paper's "net labeled 2"); every
/// other net is external.
pub fn fig1_pattern() -> Netlist {
    let mut s = Netlist::new("fig1_sub");
    let mos = s.add_mos_types();
    let n: Vec<_> = (1..=6).map(|i| s.net(format!("n{i}"))).collect();
    let net = |i: usize| n[i - 1];
    for &i in &[1usize, 2, 3, 5, 6] {
        s.mark_port(net(i));
    }
    // (gate, source, drain)
    s.add_device("d1", mos.pmos, &[net(5), net(1), net(2)])
        .unwrap();
    s.add_device("d2", mos.pmos, &[net(3), net(1), net(2)])
        .unwrap();
    s.add_device("d3", mos.nmos, &[net(3), net(2), net(4)])
        .unwrap();
    s.add_device("d4", mos.nmos, &[net(5), net(4), net(6)])
        .unwrap();
    s
}

/// The main circuit `G` of Fig. 1 (right): devices `d5…d11`, nets
/// `n7…n15`, containing exactly one instance of [`fig1_pattern`]
/// (devices `d6, d7, d9, d11`).
pub fn fig1_main() -> Netlist {
    let mut g = Netlist::new("fig1_main");
    let mos = g.add_mos_types();
    let nets: Vec<_> = (7..=15).map(|i| g.net(format!("n{i}"))).collect();
    let net = |i: usize| nets[i - 7];
    g.add_device("d5", mos.pmos, &[net(11), net(8), net(12)])
        .unwrap();
    g.add_device("d6", mos.pmos, &[net(9), net(7), net(10)])
        .unwrap();
    g.add_device("d7", mos.pmos, &[net(8), net(7), net(10)])
        .unwrap();
    g.add_device("d8", mos.nmos, &[net(12), net(9), net(13)])
        .unwrap();
    g.add_device("d9", mos.nmos, &[net(8), net(10), net(14)])
        .unwrap();
    g.add_device("d10", mos.nmos, &[net(11), net(10), net(13)])
        .unwrap();
    g.add_device("d11", mos.nmos, &[net(9), net(14), net(15)])
        .unwrap();
    g
}

/// The expected image of each [`fig1_pattern`] vertex inside
/// [`fig1_main`], as `(pattern name, main name)` pairs.
pub fn fig1_expected_mapping() -> Vec<(&'static str, &'static str)> {
    vec![
        ("d1", "d6"),
        ("d2", "d7"),
        ("d3", "d9"),
        ("d4", "d11"),
        ("n1", "n7"),
        ("n2", "n10"),
        ("n3", "n8"),
        ("n4", "n14"),
        ("n5", "n9"),
        ("n6", "n15"),
    ]
}

/// Fig. 5: two parallel transistors between the same nets — the
/// ambiguity example. Returned as `(pattern, main)`; matching requires
/// one guess and zero backtracks.
pub fn fig5_pair() -> (Netlist, Netlist) {
    let build = |name: &str| {
        let mut nl = Netlist::new(name);
        let mos = nl.add_mos_types();
        let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
        nl.mark_port(g);
        nl.mark_port(s);
        nl.mark_port(d);
        nl.add_device("a", mos.nmos, &[g, s, d]).unwrap();
        nl.add_device("b", mos.nmos, &[g, s, d]).unwrap();
        nl
    };
    (build("fig5_pattern"), build("fig5_main"))
}

/// Fig. 7: the inverter pattern (left).
pub fn fig7_inverter() -> Netlist {
    cells::inv()
}

/// Fig. 7: the NAND main circuit (right).
pub fn fig7_nand() -> Netlist {
    cells::nand2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_shapes_match_paper() {
        let s = fig1_pattern();
        let g = fig1_main();
        assert_eq!(s.device_count(), 4);
        assert_eq!(s.net_count(), 6);
        assert_eq!(g.device_count(), 7);
        assert_eq!(g.net_count(), 9);
        s.validate().unwrap();
        g.validate().unwrap();
        // n4 is internal with degree 2 (the paper's "net labeled 2").
        let n4 = s.find_net("n4").unwrap();
        assert!(!s.net_ref(n4).is_port());
        assert_eq!(s.net_ref(n4).degree(), 2);
        // Candidate-vector shape: n13 and n14 are the only degree-2
        // main nets flanked by two nmos source/drain pins.
        for name in ["n13", "n14"] {
            let n = g.find_net(name).unwrap();
            assert_eq!(g.net_ref(n).degree(), 2, "{name}");
        }
    }

    #[test]
    fn fig1_image_nets_have_expected_degrees() {
        let g = fig1_main();
        let deg = |name: &str| g.net_ref(g.find_net(name).unwrap()).degree();
        // External images may have extra connections (paper Fig. 2).
        assert_eq!(deg("n7"), 2);
        assert_eq!(deg("n8"), 3);
        assert_eq!(deg("n9"), 3);
        assert_eq!(deg("n10"), 4);
        assert_eq!(deg("n14"), 2);
        assert_eq!(deg("n15"), 1);
    }

    #[test]
    fn fig5_is_symmetric() {
        let (p, m) = fig5_pair();
        assert_eq!(p.device_count(), 2);
        assert_eq!(m.device_count(), 2);
    }

    #[test]
    fn fig7_cells_are_library_cells() {
        assert_eq!(fig7_inverter().device_count(), 2);
        assert_eq!(fig7_nand().device_count(), 4);
    }
}
