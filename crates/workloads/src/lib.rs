//! Workloads for the SubGemini reproduction: a transistor-level CMOS
//! cell library, deterministic circuit generators with planted ground
//! truth, and the exact circuits of the paper's figures.
//!
//! The 1993 evaluation used proprietary chip netlists; these generators
//! are the documented substitution (see DESIGN.md §2): seeded,
//! reproducible CMOS circuits of the same family — datapaths
//! ([`gen::ripple_adder`], [`gen::array_multiplier`]), sequential logic
//! ([`gen::shift_register`]), memory ([`gen::sram_array`]) and random
//! standard-cell logic ([`gen::random_soup`]) — each knowing exactly
//! what was planted where.
//!
//! # Examples
//!
//! ```
//! use subgemini_workloads::{cells, gen};
//!
//! let adder = gen::ripple_adder(4);
//! assert_eq!(adder.planted_count("full_adder"), 4);
//! assert_eq!(adder.netlist.device_count(), 4 * cells::full_adder().device_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analog;
pub mod cells;
pub mod gen;
pub mod paper;

pub use gen::Generated;
