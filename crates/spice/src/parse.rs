//! Line-oriented parser for the supported SPICE subset.
//!
//! Supported syntax:
//!
//! * element cards `M`, `R`, `C`, `L`, `D`, `Q`, `X` (names and nets are
//!   case-insensitive; everything is lowercased),
//! * `.subckt NAME port…` / `.ends`, `.global net…`, `.end`,
//! * `*` comment lines, `;`/`$` trailing comments, `+` continuations,
//! * `k=v` parameter tokens and trailing numeric values are skipped.

use std::collections::HashMap;

use crate::card::{Card, SubcktDef};
use crate::error::SpiceError;

/// A parsed SPICE deck: top-level cards, subcircuit definitions, and
/// global net declarations.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpiceDoc {
    /// Title line, if the deck began with a non-card line.
    pub title: Option<String>,
    /// Cards outside any `.subckt`.
    pub top: Vec<Card>,
    /// Subcircuit definitions in file order.
    pub subckts: Vec<SubcktDef>,
    /// Nets declared `.global`.
    pub globals: Vec<String>,
}

impl SpiceDoc {
    /// Looks up a subcircuit definition by (case-insensitive) name.
    pub fn subckt(&self, name: &str) -> Option<&SubcktDef> {
        let name = name.to_ascii_lowercase();
        self.subckts.iter().find(|s| s.name == name)
    }

    /// Map from subcircuit name to definition.
    pub(crate) fn subckt_index(&self) -> HashMap<&str, &SubcktDef> {
        self.subckts.iter().map(|s| (s.name.as_str(), s)).collect()
    }
}

/// Splits physical lines into logical lines, honoring `*` comments and
/// `+` continuations; yields `(first_line_number, joined_text)`.
fn logical_lines(text: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = match raw.find([';', '$']) {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('*') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('+') {
            if let Some(last) = out.last_mut() {
                last.1.push(' ');
                last.1.push_str(rest.trim());
                continue;
            }
        }
        out.push((lineno, trimmed.to_string()));
    }
    out
}

/// True for tokens we ignore: `k=v` parameters and bare numeric values
/// (`10k`, `2.5u`, `1e-9`).
fn is_param_or_value(tok: &str) -> bool {
    if tok.contains('=') {
        return true;
    }
    tok.chars()
        .next()
        .is_some_and(|c| c.is_ascii_digit() || c == '.' || c == '-' || c == '+')
}

fn parse_err(line: usize, detail: impl Into<String>) -> SpiceError {
    SpiceError::Parse {
        line,
        detail: detail.into(),
    }
}

fn parse_card(line: usize, toks: &[String]) -> Result<Card, SpiceError> {
    let name = toks[0].clone();
    let kind = name.chars().next().expect("token is non-empty");
    // Nets/model tokens: everything after the name that is not a
    // parameter or trailing value.
    let args: Vec<&String> = toks[1..].iter().take_while(|t| !t.contains('=')).collect();
    match kind {
        'm' => {
            // M d g s [b] model — bulk present when ≥5 structural args.
            let need = |i: usize| -> Result<String, SpiceError> {
                args.get(i)
                    .map(|s| (*s).clone())
                    .ok_or_else(|| parse_err(line, format!("MOS card `{name}` is too short")))
            };
            let (drain, gate, source) = (need(0)?, need(1)?, need(2)?);
            let model = match args.len() {
                0..=3 => return Err(parse_err(line, format!("MOS card `{name}` lacks a model"))),
                4 => need(3)?,
                _ => need(4)?, // 4-terminal form: skip the bulk node
            };
            Ok(Card::Mos {
                name,
                drain,
                gate,
                source,
                model,
            })
        }
        'r' | 'c' | 'l' => {
            if args.len() < 2 {
                return Err(parse_err(line, format!("card `{name}` needs two nets")));
            }
            let kind = match kind {
                'r' => "res",
                'c' => "cap",
                _ => "ind",
            };
            Ok(Card::TwoTerminal {
                name,
                kind,
                a: args[0].clone(),
                b: args[1].clone(),
            })
        }
        'd' => {
            if args.len() < 2 {
                return Err(parse_err(line, format!("diode `{name}` needs two nets")));
            }
            let model = args
                .get(2)
                .filter(|t| !is_param_or_value(t))
                .map(|s| (*s).clone())
                .unwrap_or_default();
            Ok(Card::Diode {
                name,
                p: args[0].clone(),
                n: args[1].clone(),
                model,
            })
        }
        'q' => {
            if args.len() < 4 {
                return Err(parse_err(
                    line,
                    format!("BJT `{name}` needs c b e and a model"),
                ));
            }
            // Optional substrate node: model is the last non-value token.
            let model = args[args.len() - 1].clone();
            Ok(Card::Bjt {
                name,
                c: args[0].clone(),
                b: args[1].clone(),
                e: args[2].clone(),
                model,
            })
        }
        'x' => {
            if args.len() < 2 {
                return Err(parse_err(
                    line,
                    format!("instance `{name}` needs nets and a subcircuit name"),
                ));
            }
            let subckt = args[args.len() - 1].clone();
            let nets = args[..args.len() - 1]
                .iter()
                .map(|s| (*s).clone())
                .collect();
            Ok(Card::Instance { name, nets, subckt })
        }
        other => Err(parse_err(line, format!("unsupported element `{other}`"))),
    }
}

/// Parses a SPICE deck from text.
///
/// # Errors
///
/// Returns a [`SpiceError`] describing the first syntactic problem, with
/// its source line.
///
/// # Examples
///
/// ```
/// let doc = subgemini_spice::parse(
///     "* tiny deck\n\
///      .global vdd gnd\n\
///      .subckt inv a y\n\
///      Mp y a vdd vdd pch W=2u\n\
///      Mn y a gnd gnd nch\n\
///      .ends\n\
///      Xu1 in out inv\n",
/// )?;
/// assert_eq!(doc.subckts.len(), 1);
/// assert_eq!(doc.top.len(), 1);
/// assert_eq!(doc.globals, vec!["vdd", "gnd"]);
/// # Ok::<(), subgemini_spice::SpiceError>(())
/// ```
pub fn parse(text: &str) -> Result<SpiceDoc, SpiceError> {
    let mut doc = SpiceDoc::default();
    let mut current: Option<SubcktDef> = None;
    let lines = logical_lines(text);
    for (idx, (lineno, line)) in lines.iter().enumerate() {
        let toks: Vec<String> = line
            .split_whitespace()
            .map(|t| t.to_ascii_lowercase())
            .collect();
        let head = toks[0].as_str();
        if head.starts_with('.') {
            match head {
                ".subckt" => {
                    if current.is_some() {
                        return Err(parse_err(*lineno, "nested .subckt is not supported"));
                    }
                    if toks.len() < 2 {
                        return Err(parse_err(*lineno, ".subckt needs a name"));
                    }
                    current = Some(SubcktDef {
                        name: toks[1].clone(),
                        ports: toks[2..]
                            .iter()
                            .filter(|t| !t.contains('='))
                            .cloned()
                            .collect(),
                        cards: Vec::new(),
                    });
                }
                ".ends" => match current.take() {
                    Some(def) => doc.subckts.push(def),
                    None => return Err(SpiceError::UnmatchedEnds { line: *lineno }),
                },
                ".global" => doc.globals.extend(toks[1..].iter().cloned()),
                ".end" => break,
                ".include" | ".inc" | ".lib" => {
                    return Err(parse_err(
                        *lineno,
                        "includes must be resolved first; use parse_file for on-disk decks",
                    ));
                }
                _ => {} // .model, .param, .option, analyses: ignored
            }
            continue;
        }
        // A first logical line that does not parse as a card is the
        // traditional SPICE title line.
        let card = match parse_card(*lineno, &toks) {
            Ok(card) => card,
            Err(_) if idx == 0 && *lineno == 1 => {
                doc.title = Some(line.clone());
                continue;
            }
            Err(e) => return Err(e),
        };
        match &mut current {
            Some(def) => def.cards.push(card),
            None => doc.top.push(card),
        }
    }
    if let Some(def) = current {
        return Err(SpiceError::UnclosedSubckt { name: def.name });
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_continuations_and_title() {
        let doc = parse(
            "my amazing chip\n\
             * a comment\n\
             Mn1 out in\n\
             + gnd gnd nch W=2u ; trailing\n",
        )
        .unwrap();
        assert_eq!(doc.title.as_deref(), Some("my amazing chip"));
        assert_eq!(doc.top.len(), 1);
        match &doc.top[0] {
            Card::Mos {
                drain,
                gate,
                source,
                model,
                ..
            } => {
                assert_eq!(drain, "out");
                assert_eq!(gate, "in");
                assert_eq!(source, "gnd");
                assert_eq!(model, "nch");
            }
            other => panic!("unexpected card {other:?}"),
        }
    }

    #[test]
    fn mos_with_bulk_node() {
        let doc = parse("Mp1 y a vdd vdd pch\n").unwrap();
        match &doc.top[0] {
            Card::Mos { model, source, .. } => {
                assert_eq!(model, "pch");
                assert_eq!(source, "vdd");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rc_cards_skip_values() {
        let doc = parse("R1 a b 10k\nC2 b 0 1p\n").unwrap();
        assert_eq!(doc.top.len(), 2);
        assert!(matches!(&doc.top[0], Card::TwoTerminal { kind: "res", .. }));
        assert!(matches!(&doc.top[1], Card::TwoTerminal { kind: "cap", .. }));
    }

    #[test]
    fn subckt_blocks_collect_cards() {
        let doc =
            parse(".subckt inv a y\nMp y a vdd vdd p\nMn y a gnd gnd n\n.ends\nXi1 x z inv\n")
                .unwrap();
        assert_eq!(doc.subckts.len(), 1);
        let inv = doc.subckt("INV").unwrap();
        assert_eq!(inv.ports, vec!["a", "y"]);
        assert_eq!(inv.cards.len(), 2);
        match &doc.top[0] {
            Card::Instance { nets, subckt, .. } => {
                assert_eq!(nets, &["x", "z"]);
                assert_eq!(subckt, "inv");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn diode_and_bjt() {
        let doc = parse("D1 anode cathode dfast\nQ3 c b e npn\n").unwrap();
        assert!(matches!(&doc.top[0], Card::Diode { model, .. } if model == "dfast"));
        assert!(matches!(&doc.top[1], Card::Bjt { model, .. } if model == "npn"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("* ok\nMbad a b\n").unwrap_err();
        match err {
            SpiceError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unclosed_subckt_detected() {
        let err = parse(".subckt inv a y\nMn y a gnd gnd n\n").unwrap_err();
        assert!(matches!(err, SpiceError::UnclosedSubckt { name } if name == "inv"));
    }

    #[test]
    fn unmatched_ends_detected() {
        let err = parse("Mn y a gnd gnd n\n.ends\n").unwrap_err();
        assert!(matches!(err, SpiceError::UnmatchedEnds { line: 2 }));
    }

    #[test]
    fn dot_end_stops_parsing() {
        let doc = parse("R1 a b 1\n.end\nR2 c d 2\n").unwrap();
        assert_eq!(doc.top.len(), 1);
    }

    #[test]
    fn unknown_element_rejected() {
        let err = parse("Zap a b c\n* not a title because of second line rule\n");
        // First line is treated as title; an element on line 2 that is
        // unknown must error.
        assert!(err.is_ok());
        let err = parse("R1 a b\nZap a b c\n").unwrap_err();
        assert!(matches!(err, SpiceError::Parse { line: 2, .. }));
    }
}
