//! Parsed card (statement) model for the supported SPICE subset.

/// One parsed element card.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Card {
    /// `Mname d g s [b] model ...` — MOS transistor. The optional bulk
    /// node is parsed and discarded (the circuit model uses 3-terminal
    /// MOS devices; see DESIGN.md).
    Mos {
        /// Instance name (including the `M` prefix).
        name: String,
        /// Drain net.
        drain: String,
        /// Gate net.
        gate: String,
        /// Source net.
        source: String,
        /// Model name; decides `nmos` vs `pmos`.
        model: String,
    },
    /// `Rname a b ...` / `Cname a b ...` / `Lname a b ...` — symmetric
    /// two-terminal element.
    TwoTerminal {
        /// Instance name.
        name: String,
        /// Device type name (`res`, `cap`, `ind`).
        kind: &'static str,
        /// First net.
        a: String,
        /// Second net.
        b: String,
    },
    /// `Dname p n ...` — diode (polarized two-terminal).
    Diode {
        /// Instance name.
        name: String,
        /// Anode net.
        p: String,
        /// Cathode net.
        n: String,
        /// Model name (becomes part of the device type: `diode:<model>`;
        /// empty model yields plain `diode`).
        model: String,
    },
    /// `Qname c b e [s] model` — bipolar transistor.
    Bjt {
        /// Instance name.
        name: String,
        /// Collector net.
        c: String,
        /// Base net.
        b: String,
        /// Emitter net.
        e: String,
        /// Model name; decides the type (`npn`/`pnp` by leading letter).
        model: String,
    },
    /// `Xname n1 n2 ... subckt` — subcircuit instance.
    Instance {
        /// Instance name (including the `X` prefix).
        name: String,
        /// Connection nets, in the subcircuit's port order.
        nets: Vec<String>,
        /// Referenced subcircuit name.
        subckt: String,
    },
}

impl Card {
    /// The instance name of the card.
    pub fn name(&self) -> &str {
        match self {
            Card::Mos { name, .. }
            | Card::TwoTerminal { name, .. }
            | Card::Diode { name, .. }
            | Card::Bjt { name, .. }
            | Card::Instance { name, .. } => name,
        }
    }
}

/// A `.subckt` definition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubcktDef {
    /// The subcircuit name (lowercased).
    pub name: String,
    /// Port nets in declaration order.
    pub ports: Vec<String>,
    /// Body cards.
    pub cards: Vec<Card>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_name_accessor_covers_all_variants() {
        let cards = [
            Card::Mos {
                name: "m1".into(),
                drain: "d".into(),
                gate: "g".into(),
                source: "s".into(),
                model: "nch".into(),
            },
            Card::TwoTerminal {
                name: "r1".into(),
                kind: "res",
                a: "a".into(),
                b: "b".into(),
            },
            Card::Diode {
                name: "d1".into(),
                p: "p".into(),
                n: "n".into(),
                model: String::new(),
            },
            Card::Bjt {
                name: "q1".into(),
                c: "c".into(),
                b: "b".into(),
                e: "e".into(),
                model: "npn".into(),
            },
            Card::Instance {
                name: "x1".into(),
                nets: vec!["a".into()],
                subckt: "inv".into(),
            },
        ];
        let names: Vec<&str> = cards.iter().map(Card::name).collect();
        assert_eq!(names, vec!["m1", "r1", "d1", "q1", "x1"]);
    }
}
