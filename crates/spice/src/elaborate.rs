//! Elaboration: turning a parsed [`SpiceDoc`] into [`Netlist`]s.

use std::collections::{HashMap, HashSet};

use subgemini_netlist::{instantiate, DeviceType, Netlist, TerminalSpec};

use crate::card::{Card, SubcktDef};
use crate::error::SpiceError;
use crate::parse::SpiceDoc;

/// Elaboration options.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ElaborateOptions {
    /// If `true` (default), `X` instances are flattened recursively down
    /// to primitive devices. If `false`, each `X` instance becomes a
    /// composite device whose type is the subcircuit name and whose
    /// terminals are its ports (each port its own equivalence class).
    pub flatten: bool,
    /// Additional net names treated as global even without `.global`
    /// (defaults: `vdd`, `vss`, `gnd`, `vcc`, `0`).
    pub implicit_globals: Vec<String>,
}

impl Default for ElaborateOptions {
    fn default() -> Self {
        Self {
            flatten: true,
            implicit_globals: ["vdd", "vss", "gnd", "vcc", "0"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        }
    }
}

impl ElaborateOptions {
    /// Hierarchical (non-flattening) elaboration.
    pub fn hierarchical() -> Self {
        Self {
            flatten: false,
            ..Self::default()
        }
    }
}

struct Elaborator<'a> {
    subckts: HashMap<&'a str, &'a SubcktDef>,
    opts: &'a ElaborateOptions,
    globals: HashSet<String>,
    /// Memoized fully-elaborated cell netlists (flatten mode).
    cells: HashMap<String, Netlist>,
    /// Cycle-detection stack.
    visiting: Vec<String>,
}

impl<'a> Elaborator<'a> {
    fn new(doc: &'a SpiceDoc, opts: &'a ElaborateOptions) -> Self {
        let mut globals: HashSet<String> =
            doc.globals.iter().map(|s| s.to_ascii_lowercase()).collect();
        globals.extend(opts.implicit_globals.iter().map(|s| s.to_ascii_lowercase()));
        Self {
            subckts: doc.subckt_index(),
            opts,
            globals,
            cells: HashMap::new(),
            visiting: Vec::new(),
        }
    }

    fn is_global(&self, net: &str) -> bool {
        self.globals.contains(net)
    }

    fn mos_type_name(model: &str) -> &'static str {
        if model.starts_with('p') {
            "pmos"
        } else {
            "nmos"
        }
    }

    fn bjt_type_name(model: &str) -> &'static str {
        if model.starts_with('p') {
            "pnp"
        } else {
            "npn"
        }
    }

    fn add_card(&mut self, nl: &mut Netlist, card: &Card) -> Result<(), SpiceError> {
        match card {
            Card::Mos {
                name,
                drain,
                gate,
                source,
                model,
            } => {
                let ty = nl.add_type(DeviceType::mos(Self::mos_type_name(model)))?;
                let pins = [
                    self.net(nl, gate),
                    self.net(nl, source),
                    self.net(nl, drain),
                ];
                nl.add_device(name.clone(), ty, &pins)?;
            }
            Card::TwoTerminal { name, kind, a, b } => {
                let ty = nl.add_type(DeviceType::two_terminal(*kind))?;
                let pins = [self.net(nl, a), self.net(nl, b)];
                nl.add_device(name.clone(), ty, &pins)?;
            }
            Card::Diode { name, p, n, model } => {
                let tyname = if model.is_empty() {
                    "diode".to_string()
                } else {
                    format!("diode:{model}")
                };
                let ty = nl.add_type(DeviceType::polarized(tyname))?;
                let pins = [self.net(nl, p), self.net(nl, n)];
                nl.add_device(name.clone(), ty, &pins)?;
            }
            Card::Bjt {
                name,
                c,
                b,
                e,
                model,
                ..
            } => {
                let ty = nl.add_type(DeviceType::bjt(Self::bjt_type_name(model)))?;
                let pins = [self.net(nl, c), self.net(nl, b), self.net(nl, e)];
                nl.add_device(name.clone(), ty, &pins)?;
            }
            Card::Instance { name, nets, subckt } => {
                if self.opts.flatten {
                    let cell = self.cell(subckt)?.clone();
                    let bindings: Vec<_> = nets.iter().map(|n| self.net(nl, n)).collect();
                    instantiate(nl, &cell, name, &bindings)?;
                } else {
                    let def = *self.subckts.get(subckt.as_str()).ok_or_else(|| {
                        SpiceError::UnknownSubckt {
                            name: subckt.clone(),
                        }
                    })?;
                    let terms = def
                        .ports
                        .iter()
                        .map(|p| TerminalSpec::new(p.clone(), p.clone()))
                        .collect();
                    let ty = nl.add_type(
                        DeviceType::try_new(def.name.clone(), terms)
                            .map_err(|detail| SpiceError::Parse { line: 0, detail })?,
                    )?;
                    if nets.len() != def.ports.len() {
                        return Err(SpiceError::Parse {
                            line: 0,
                            detail: format!(
                                "instance `{name}` has {} nets, subckt `{}` has {} ports",
                                nets.len(),
                                def.name,
                                def.ports.len()
                            ),
                        });
                    }
                    let pins: Vec<_> = nets.iter().map(|n| self.net(nl, n)).collect();
                    nl.add_device(name.clone(), ty, &pins)?;
                }
            }
        }
        Ok(())
    }

    fn net(&self, nl: &mut Netlist, name: &str) -> subgemini_netlist::NetId {
        let id = nl.net(name);
        if self.is_global(name) {
            nl.mark_global(id);
        }
        id
    }

    /// Fully elaborates a subcircuit into a cell netlist (ports marked,
    /// memoized).
    fn cell(&mut self, name: &str) -> Result<&Netlist, SpiceError> {
        let name = name.to_ascii_lowercase();
        if self.cells.contains_key(&name) {
            return Ok(&self.cells[&name]);
        }
        if self.visiting.contains(&name) {
            return Err(SpiceError::RecursiveSubckt { name });
        }
        let def = *self
            .subckts
            .get(name.as_str())
            .ok_or_else(|| SpiceError::UnknownSubckt { name: name.clone() })?;
        self.visiting.push(name.clone());
        let mut nl = Netlist::new(def.name.clone());
        for p in &def.ports {
            let id = self.net(&mut nl, p);
            nl.mark_port(id);
        }
        for card in &def.cards {
            self.add_card(&mut nl, card)?;
        }
        self.visiting.pop();
        self.cells.insert(name.clone(), nl);
        Ok(&self.cells[&name])
    }
}

impl SpiceDoc {
    /// Elaborates the top-level cards into a netlist named `name`.
    ///
    /// # Errors
    ///
    /// Fails on unknown/recursive subcircuits or netlist construction
    /// problems.
    ///
    /// # Examples
    ///
    /// ```
    /// let doc = subgemini_spice::parse(
    ///     ".subckt inv a y\nMp y a vdd vdd p\nMn y a gnd gnd n\n.ends\n\
    ///      Xu1 in mid inv\nXu2 mid out inv\n",
    /// )?;
    /// let nl = doc.elaborate_top("buf", &Default::default())?;
    /// assert_eq!(nl.device_count(), 4);
    /// # Ok::<(), subgemini_spice::SpiceError>(())
    /// ```
    pub fn elaborate_top(
        &self,
        name: &str,
        opts: &ElaborateOptions,
    ) -> Result<Netlist, SpiceError> {
        let mut el = Elaborator::new(self, opts);
        let mut nl = Netlist::new(name);
        for card in &self.top {
            el.add_card(&mut nl, card)?;
        }
        Ok(nl)
    }

    /// Elaborates the subcircuit `name` into a standalone cell netlist
    /// with its ports marked — the natural way to obtain a SubGemini
    /// *pattern*.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownCell`] if no such subcircuit exists,
    /// otherwise as [`SpiceDoc::elaborate_top`].
    pub fn elaborate_cell(
        &self,
        name: &str,
        opts: &ElaborateOptions,
    ) -> Result<Netlist, SpiceError> {
        if self.subckt(name).is_none() {
            return Err(SpiceError::UnknownCell {
                name: name.to_string(),
            });
        }
        let mut el = Elaborator::new(self, opts);
        el.cell(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse;

    const DECK: &str = "\
.global vdd gnd
.subckt inv a y
Mp y a vdd vdd pch
Mn y a gnd gnd nch
.ends
.subckt buf a y
Xi1 a m inv
Xi2 m y inv
.ends
Xu1 in out buf
R1 out 0 10k
";

    #[test]
    fn flatten_recurses_through_hierarchy() {
        let doc = parse(DECK).unwrap();
        let nl = doc
            .elaborate_top("chip", &ElaborateOptions::default())
            .unwrap();
        assert_eq!(nl.device_count(), 5); // 4 MOS + 1 R
        assert!(nl.find_device("xu1.xi1.mp").is_some());
        assert!(nl.find_net("xu1.m").is_some());
        let vdd = nl.find_net("vdd").unwrap();
        assert!(nl.net_ref(vdd).is_global());
        assert_eq!(nl.net_ref(vdd).degree(), 2);
        nl.validate().unwrap();
    }

    #[test]
    fn hierarchical_mode_keeps_composites() {
        let doc = parse(DECK).unwrap();
        let nl = doc
            .elaborate_top("chip", &ElaborateOptions::hierarchical())
            .unwrap();
        assert_eq!(nl.device_count(), 2); // Xu1 composite + R1
        let x = nl.find_device("xu1").unwrap();
        assert_eq!(nl.device_type_of(x).name(), "buf");
        assert_eq!(nl.device_type_of(x).terminal_count(), 2);
    }

    #[test]
    fn elaborate_cell_marks_ports() {
        let doc = parse(DECK).unwrap();
        let inv = doc
            .elaborate_cell("inv", &ElaborateOptions::default())
            .unwrap();
        assert_eq!(inv.device_count(), 2);
        assert_eq!(inv.ports().len(), 2);
        assert_eq!(inv.net_ref(inv.ports()[0]).name(), "a");
        // Globals inside the cell are marked.
        assert!(inv.net_ref(inv.find_net("vdd").unwrap()).is_global());
    }

    #[test]
    fn unknown_subckt_reported() {
        let doc = parse("Xu1 a b nosuch\n").unwrap();
        let err = doc
            .elaborate_top("chip", &ElaborateOptions::default())
            .unwrap_err();
        assert!(matches!(err, SpiceError::UnknownSubckt { name } if name == "nosuch"));
    }

    #[test]
    fn recursive_subckt_reported() {
        let doc = parse(".subckt a x\nXq x a\n.ends\nXu1 n a\n").unwrap();
        let err = doc
            .elaborate_top("chip", &ElaborateOptions::default())
            .unwrap_err();
        assert!(matches!(err, SpiceError::RecursiveSubckt { .. }));
    }

    #[test]
    fn unknown_cell_reported() {
        let doc = parse(DECK).unwrap();
        let err = doc
            .elaborate_cell("nand9", &ElaborateOptions::default())
            .unwrap_err();
        assert!(matches!(err, SpiceError::UnknownCell { .. }));
    }

    #[test]
    fn net_zero_is_global_by_default() {
        let doc = parse("R1 a 0 1k\n").unwrap();
        let nl = doc
            .elaborate_top("t", &ElaborateOptions::default())
            .unwrap();
        let zero = nl.find_net("0").unwrap();
        assert!(nl.net_ref(zero).is_global());
    }
}
