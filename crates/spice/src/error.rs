//! Error type for SPICE parsing and elaboration.

use std::error::Error;
use std::fmt;

use subgemini_netlist::NetlistError;

/// Errors produced while parsing or elaborating a SPICE deck.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SpiceError {
    /// A card (line) could not be parsed.
    Parse {
        /// 1-based source line number.
        line: usize,
        /// Human-readable description.
        detail: String,
    },
    /// `.subckt` without a matching `.ends`.
    UnclosedSubckt {
        /// The subcircuit name.
        name: String,
    },
    /// `.ends` without a matching `.subckt`.
    UnmatchedEnds {
        /// 1-based source line number.
        line: usize,
    },
    /// An `X` card references a subcircuit that was never defined.
    UnknownSubckt {
        /// The missing subcircuit name.
        name: String,
    },
    /// Subcircuit definitions form a cycle.
    RecursiveSubckt {
        /// The subcircuit on the cycle that was detected.
        name: String,
    },
    /// The requested top-level cell does not exist.
    UnknownCell {
        /// The requested name.
        name: String,
    },
    /// An underlying netlist construction error.
    Netlist(NetlistError),
}

impl fmt::Display for SpiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiceError::Parse { line, detail } => {
                write!(f, "parse error at line {line}: {detail}")
            }
            SpiceError::UnclosedSubckt { name } => {
                write!(f, "subcircuit `{name}` is missing its .ends")
            }
            SpiceError::UnmatchedEnds { line } => {
                write!(f, ".ends without .subckt at line {line}")
            }
            SpiceError::UnknownSubckt { name } => {
                write!(f, "instance references unknown subcircuit `{name}`")
            }
            SpiceError::RecursiveSubckt { name } => {
                write!(
                    f,
                    "subcircuit `{name}` instantiates itself (directly or indirectly)"
                )
            }
            SpiceError::UnknownCell { name } => {
                write!(f, "no subcircuit named `{name}` in this deck")
            }
            SpiceError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl Error for SpiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpiceError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetlistError> for SpiceError {
    fn from(e: NetlistError) -> Self {
        SpiceError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_numbers() {
        let e = SpiceError::Parse {
            line: 12,
            detail: "bad card".into(),
        };
        assert!(e.to_string().contains("line 12"));
    }

    #[test]
    fn netlist_errors_chain_as_source() {
        let e = SpiceError::from(NetlistError::UnknownNet { name: "x".into() });
        assert!(e.source().is_some());
    }
}
