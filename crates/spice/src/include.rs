//! Filesystem front end: parsing decks with `.include` resolution.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use crate::error::SpiceError;
use crate::parse::{parse, SpiceDoc};

/// Reads a deck from disk, textually splicing `.include "file"` /
/// `.inc` / `.lib` directives (paths resolve relative to the including
/// file), then parses the result.
///
/// # Errors
///
/// * I/O failures are reported as [`SpiceError::Parse`] with the path
///   in the message.
/// * Circular includes are detected and rejected.
/// * Everything [`parse`] rejects.
///
/// # Examples
///
/// ```no_run
/// let doc = subgemini_spice::parse_file("designs/chip.sp")?;
/// println!("{} subcircuits", doc.subckts.len());
/// # Ok::<(), subgemini_spice::SpiceError>(())
/// ```
pub fn parse_file(path: impl AsRef<Path>) -> Result<SpiceDoc, SpiceError> {
    let mut visiting = HashSet::new();
    let text = splice(path.as_ref(), &mut visiting)?;
    parse(&text)
}

fn io_err(path: &Path, e: impl std::fmt::Display) -> SpiceError {
    SpiceError::Parse {
        line: 0,
        detail: format!("{}: {e}", path.display()),
    }
}

fn splice(path: &Path, visiting: &mut HashSet<PathBuf>) -> Result<String, SpiceError> {
    let canonical = path.canonicalize().map_err(|e| io_err(path, e))?;
    if !visiting.insert(canonical.clone()) {
        return Err(SpiceError::Parse {
            line: 0,
            detail: format!("circular include of {}", path.display()),
        });
    }
    let text = std::fs::read_to_string(&canonical).map_err(|e| io_err(path, e))?;
    let base = canonical
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    let mut out = String::with_capacity(text.len());
    for (i, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        let lower = trimmed.to_ascii_lowercase();
        let is_include = lower.starts_with(".include")
            || lower.starts_with(".inc ")
            || lower.starts_with(".lib ");
        if is_include {
            let arg = trimmed
                .split_whitespace()
                .nth(1)
                .ok_or_else(|| SpiceError::Parse {
                    line: i + 1,
                    detail: format!("{}: .include needs a path", path.display()),
                })?
                .trim_matches(['"', '\'']);
            let child = base.join(arg);
            out.push_str(&splice(&child, visiting)?);
            out.push('\n');
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    visiting.remove(&canonical);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spice_inc_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn includes_are_spliced_relative_to_includer() {
        let dir = scratch("basic");
        fs::create_dir_all(dir.join("lib")).unwrap();
        fs::write(
            dir.join("lib/cells.sp"),
            ".subckt inv a y\nmp y a vdd vdd pmos\nmn y a gnd gnd nmos\n.ends\n",
        )
        .unwrap();
        fs::write(
            dir.join("top.sp"),
            "* top\n.include \"lib/cells.sp\"\nXu1 in out inv\n",
        )
        .unwrap();
        let doc = parse_file(dir.join("top.sp")).unwrap();
        assert_eq!(doc.subckts.len(), 1);
        assert_eq!(doc.top.len(), 1);
    }

    #[test]
    fn nested_includes_work() {
        let dir = scratch("nested");
        fs::write(dir.join("c.sp"), "R3 a b 1\n").unwrap();
        fs::write(dir.join("b.sp"), "R2 a b 1\n.include c.sp\n").unwrap();
        fs::write(dir.join("a.sp"), "R1 a b 1\n.include b.sp\n").unwrap();
        let doc = parse_file(dir.join("a.sp")).unwrap();
        assert_eq!(doc.top.len(), 3);
    }

    #[test]
    fn circular_include_detected() {
        let dir = scratch("circular");
        fs::write(dir.join("x.sp"), ".include y.sp\n").unwrap();
        fs::write(dir.join("y.sp"), ".include x.sp\n").unwrap();
        let err = parse_file(dir.join("x.sp")).unwrap_err();
        assert!(err.to_string().contains("circular"), "{err}");
    }

    #[test]
    fn missing_file_reported_with_path() {
        let dir = scratch("missing");
        fs::write(dir.join("top.sp"), ".include nope.sp\n").unwrap();
        let err = parse_file(dir.join("top.sp")).unwrap_err();
        assert!(err.to_string().contains("nope.sp"), "{err}");
    }

    #[test]
    fn diamond_includes_are_allowed() {
        // a includes b and c; both include d. Not circular.
        let dir = scratch("diamond");
        fs::write(dir.join("d.sp"), "R9 x y 1\n").unwrap();
        fs::write(dir.join("b.sp"), ".include d.sp\n").unwrap();
        fs::write(dir.join("c.sp"), ".include d.sp\n").unwrap();
        fs::write(dir.join("a.sp"), ".include b.sp\n.include c.sp\n").unwrap();
        let doc = parse_file(dir.join("a.sp"));
        // R9 appears twice -> duplicate device name error from
        // elaboration would come later; parsing itself must succeed.
        assert!(doc.is_ok(), "{doc:?}");
    }

    #[test]
    fn inline_parse_rejects_unresolved_includes() {
        let err = parse(".include foo.sp\n").unwrap_err();
        assert!(err.to_string().contains("parse_file"), "{err}");
    }
}
