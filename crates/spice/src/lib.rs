//! SPICE-subset parser and writer for the SubGemini reproduction.
//!
//! The paper's workloads are flat CMOS transistor netlists; this crate
//! provides the interchange format. It supports the element cards `M R C
//! L D Q X`, subcircuit definitions (`.subckt`/`.ends`), `.global`,
//! comments and `+` continuations, and two elaboration modes:
//!
//! * **flatten** (default): `X` instances are expanded recursively to
//!   primitive devices — the input form for transistor-level matching;
//! * **hierarchical**: `X` instances become composite devices — the form
//!   produced by gate extraction.
//!
//! # Examples
//!
//! ```
//! use subgemini_spice::{parse, ElaborateOptions};
//!
//! let doc = parse(
//!     ".global vdd gnd\n\
//!      .subckt inv a y\n\
//!      Mp y a vdd vdd pch\n\
//!      Mn y a gnd gnd nch\n\
//!      .ends\n\
//!      Xu1 in mid inv\n\
//!      Xu2 mid out inv\n",
//! )?;
//! let chip = doc.elaborate_top("chip", &ElaborateOptions::default())?;
//! assert_eq!(chip.device_count(), 4);
//! let pattern = doc.elaborate_cell("inv", &ElaborateOptions::default())?;
//! assert_eq!(pattern.ports().len(), 2);
//! # Ok::<(), subgemini_spice::SpiceError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod card;
mod elaborate;
mod error;
mod include;
mod parse;
mod write;

pub use card::{Card, SubcktDef};
pub use elaborate::ElaborateOptions;
pub use error::SpiceError;
pub use include::parse_file;
pub use parse::{parse, SpiceDoc};
pub use write::{write_hierarchical, write_netlist};
