//! Writing a [`Netlist`] back out as SPICE text.

use std::fmt::Write as _;

use subgemini_netlist::{DeviceId, Netlist};

/// Renders `netlist` as a SPICE deck.
///
/// * Global nets become a `.global` line.
/// * If the netlist has ports it is wrapped in `.subckt <name> <ports…>`
///   / `.ends`; otherwise devices are emitted at top level.
/// * Primitive types map back to their element cards (`nmos`/`pmos` →
///   `M`, `res` → `R`, `cap` → `C`, `ind` → `L`, `diode[:model]` → `D`,
///   `npn`/`pnp` → `Q`); any other type is emitted as an `X` instance of
///   a same-named subcircuit (whose definition must be provided
///   elsewhere for the deck to re-elaborate).
/// * Device names are prefixed with the element letter when they do not
///   already start with it, so the output always re-parses; structural
///   identity is preserved, instance names may gain a prefix.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("inv");
/// let mos = nl.add_mos_types();
/// let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
/// nl.mark_port(a);
/// nl.mark_port(y);
/// nl.mark_global(vdd);
/// nl.mark_global(gnd);
/// nl.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// let text = subgemini_spice::write_netlist(&nl);
/// assert!(text.contains(".subckt inv a y"));
/// let doc = subgemini_spice::parse(&text)?;
/// let back = doc.elaborate_cell("inv", &Default::default())?;
/// assert_eq!(back.device_count(), 2);
/// # Ok(())
/// # }
/// ```
pub fn write_netlist(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "* {} — written by subgemini-spice", netlist.name());
    let globals: Vec<&str> = netlist
        .global_nets()
        .map(|n| netlist.net_ref(n).name())
        .collect();
    if !globals.is_empty() {
        let _ = writeln!(out, ".global {}", globals.join(" "));
    }
    let has_ports = !netlist.ports().is_empty();
    if has_ports {
        let ports: Vec<&str> = netlist
            .ports()
            .iter()
            .map(|&n| netlist.net_ref(n).name())
            .collect();
        let _ = writeln!(out, ".subckt {} {}", netlist.name(), ports.join(" "));
    }
    for d in netlist.device_ids() {
        let _ = writeln!(out, "{}", device_card(netlist, d));
    }
    if has_ports {
        let _ = writeln!(out, ".ends");
    }
    out
}

/// Renders a hierarchical deck: one `.subckt` definition per cell
/// followed by the top-level netlist (whose composite devices become
/// `X` instances of those subcircuits).
///
/// This is the output format of the paper's hierarchy-construction
/// application: a flat transistor netlist goes in, extraction finds the
/// cells, and this writer emits the recovered hierarchy. Re-parsing and
/// flattening the result yields a netlist isomorphic to the original.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut inv = Netlist::new("inv");
/// let mos = inv.add_mos_types();
/// let (a, y, gnd) = (inv.net("a"), inv.net("y"), inv.net("gnd"));
/// inv.mark_port(a);
/// inv.mark_port(y);
/// inv.mark_global(gnd);
/// inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// let top = Netlist::new("chip");
/// let deck = subgemini_spice::write_hierarchical(&top, &[inv]);
/// assert!(deck.contains(".subckt inv a y"));
/// # Ok(())
/// # }
/// ```
pub fn write_hierarchical(top: &Netlist, cells: &[Netlist]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "* {} — hierarchical deck written by subgemini-spice",
        top.name()
    );
    let mut globals: Vec<&str> = top.global_nets().map(|n| top.net_ref(n).name()).collect();
    for cell in cells {
        for n in cell.global_nets() {
            let name = cell.net_ref(n).name();
            if !globals.contains(&name) {
                globals.push(name);
            }
        }
    }
    if !globals.is_empty() {
        let _ = writeln!(out, ".global {}", globals.join(" "));
    }
    for cell in cells {
        let body = write_netlist(cell);
        // Strip the cell's own banner/global lines; keep from .subckt on.
        if let Some(pos) = body.find(".subckt") {
            out.push_str(&body[pos..]);
        } else {
            // A cell without ports cannot be instantiated; emit it as a
            // comment so the deck stays parseable.
            let _ = writeln!(out, "* cell `{}` has no ports; skipped", cell.name());
        }
    }
    for d in top.device_ids() {
        let _ = writeln!(out, "{}", device_card(top, d));
    }
    out
}

fn prefixed(letter: char, name: &str) -> String {
    if name.starts_with(letter) {
        name.to_string()
    } else {
        format!("{letter}{name}")
    }
}

fn device_card(netlist: &Netlist, d: DeviceId) -> String {
    let dev = netlist.device(d);
    let ty = netlist.device_type_of(d);
    let net = |i: usize| netlist.net_ref(dev.pin(i)).name();
    match ty.name() {
        "nmos" | "pmos" => {
            // Terminal order in the model is (g, s, d); SPICE M cards are
            // `M d g s [b] model`.
            format!(
                "{} {} {} {} {}",
                prefixed('m', dev.name()),
                net(2),
                net(0),
                net(1),
                ty.name()
            )
        }
        "res" => format!("{} {} {} 1", prefixed('r', dev.name()), net(0), net(1)),
        "cap" => format!("{} {} {} 1", prefixed('c', dev.name()), net(0), net(1)),
        "ind" => format!("{} {} {} 1", prefixed('l', dev.name()), net(0), net(1)),
        "npn" | "pnp" => format!(
            "{} {} {} {} {}",
            prefixed('q', dev.name()),
            net(0),
            net(1),
            net(2),
            ty.name()
        ),
        other if other == "diode" || other.starts_with("diode:") => {
            let model = other.strip_prefix("diode:").unwrap_or("");
            format!(
                "{} {} {} {model}",
                prefixed('d', dev.name()),
                net(0),
                net(1)
            )
            .trim_end()
            .to_string()
        }
        composite => {
            let nets: Vec<&str> = (0..ty.terminal_count()).map(net).collect();
            format!(
                "{} {} {composite}",
                prefixed('x', dev.name()),
                nets.join(" ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::ElaborateOptions;
    use crate::parse::parse;
    use subgemini_netlist::{DeviceType, NetlistStats, TerminalSpec};

    fn mixed_netlist() -> Netlist {
        let mut nl = Netlist::new("mixed");
        let mos = nl.add_mos_types();
        let res = nl.add_type(DeviceType::two_terminal("res")).unwrap();
        let dio = nl.add_type(DeviceType::polarized("diode:dx")).unwrap();
        let q = nl.add_type(DeviceType::bjt("npn")).unwrap();
        let (a, b, c, vdd) = (nl.net("a"), nl.net("b"), nl.net("c"), nl.net("vdd"));
        nl.mark_global(vdd);
        nl.add_device("mp1", mos.pmos, &[a, vdd, b]).unwrap();
        nl.add_device("n1", mos.nmos, &[a, c, b]).unwrap();
        nl.add_device("r1", res, &[b, c]).unwrap();
        nl.add_device("d1", dio, &[a, c]).unwrap();
        nl.add_device("q1", q, &[a, b, c]).unwrap();
        nl
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let nl = mixed_netlist();
        let text = write_netlist(&nl);
        let doc = parse(&text).unwrap();
        let back = doc
            .elaborate_top("mixed", &ElaborateOptions::default())
            .unwrap();
        let s1 = NetlistStats::of(&nl);
        let s2 = NetlistStats::of(&back);
        assert_eq!(s1.devices, s2.devices);
        assert_eq!(s1.pins, s2.pins);
        assert_eq!(s1.devices_by_type, s2.devices_by_type);
        assert_eq!(s1.globals, s2.globals);
    }

    #[test]
    fn names_get_element_prefixes_only_when_needed() {
        let nl = mixed_netlist();
        let text = write_netlist(&nl);
        assert!(text.contains("mp1 ")); // already prefixed
        assert!(text.contains("mn1 ")); // gained the m prefix
        assert!(text.contains("\nr1 "));
    }

    #[test]
    fn ports_produce_subckt_wrapper() {
        let mut nl = mixed_netlist();
        let a = nl.find_net("a").unwrap();
        nl.mark_port(a);
        let text = write_netlist(&nl);
        assert!(text.contains(".subckt mixed a"));
        assert!(text.trim_end().ends_with(".ends"));
        let doc = parse(&text).unwrap();
        let cell = doc
            .elaborate_cell("mixed", &ElaborateOptions::default())
            .unwrap();
        assert_eq!(cell.ports().len(), 1);
    }

    #[test]
    fn composite_devices_emit_x_cards() {
        let mut nl = Netlist::new("top");
        let cellty = nl
            .add_type(DeviceType::new(
                "nand2",
                vec![
                    TerminalSpec::new("a", "in"),
                    TerminalSpec::new("b", "in"),
                    TerminalSpec::new("y", "y"),
                ],
            ))
            .unwrap();
        let (p, q, r) = (nl.net("p"), nl.net("q"), nl.net("r"));
        nl.add_device("g1", cellty, &[p, q, r]).unwrap();
        let text = write_netlist(&nl);
        assert!(text.contains("xg1 p q r nand2"));
    }
}
