//! Robustness: the SPICE parser must never panic, only return errors,
//! and accepted decks must elaborate or fail cleanly.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary printable garbage: parse() returns, never panics.
    #[test]
    fn parser_never_panics_on_garbage(input in "[ -~\n]{0,400}") {
        let _ = subgemini_spice::parse(&input);
    }

    /// Structured-ish garbage assembled from SPICE-like tokens.
    #[test]
    fn parser_never_panics_on_tokens(
        words in prop::collection::vec(
            prop::sample::select(vec![
                ".subckt", ".ends", ".global", ".end", ".include",
                "m1", "r2", "c3", "x4", "q5", "d6", "inv", "a", "b", "vdd",
                "nmos", "1k", "+", "*", "w=1",
            ]),
            0..60,
        ),
        newlines in prop::collection::vec(0usize..6, 0..60),
    ) {
        let mut text = String::new();
        for (i, w) in words.iter().enumerate() {
            text.push_str(w);
            let brk = newlines.get(i).copied().unwrap_or(1);
            text.push(if brk == 0 { '\n' } else { ' ' });
        }
        if let Ok(doc) = subgemini_spice::parse(&text) {
            // Whatever parsed must elaborate or error, not panic.
            let _ = doc.elaborate_top("fuzz", &Default::default());
            for def in &doc.subckts {
                let _ = doc.elaborate_cell(&def.name, &Default::default());
            }
        }
    }

    /// Valid single-device decks always round-trip.
    #[test]
    fn minimal_valid_decks_elaborate(
        d in "[a-z][a-z0-9]{0,6}",
        g in "[a-z][a-z0-9]{0,6}",
        s in "[a-z][a-z0-9]{0,6}",
    ) {
        let text = format!("M1 {d} {g} {s} nmos\n");
        let doc = subgemini_spice::parse(&text).unwrap();
        let nl = doc.elaborate_top("t", &Default::default()).unwrap();
        prop_assert_eq!(nl.device_count(), 1);
    }
}
