//! Robustness: the SPICE parser must never panic, only return errors,
//! and accepted decks must elaborate or fail cleanly. Inputs come from
//! a seeded internal PRNG so every run fuzzes the same reproducible
//! corpus.

use subgemini_netlist::rng::Rng64;

/// Arbitrary printable garbage: parse() returns, never panics.
#[test]
fn parser_never_panics_on_garbage() {
    for case in 0..256u64 {
        let mut rng = Rng64::new(0x59_1ce0 + case);
        let len = rng.range(0, 401);
        let input = rng.printable(len);
        let _ = subgemini_spice::parse(&input);
    }
}

/// Structured-ish garbage assembled from SPICE-like tokens.
#[test]
fn parser_never_panics_on_tokens() {
    const TOKENS: &[&str] = &[
        ".subckt", ".ends", ".global", ".end", ".include", "m1", "r2", "c3", "x4", "q5", "d6",
        "inv", "a", "b", "vdd", "nmos", "1k", "+", "*", "w=1",
    ];
    for case in 0..256u64 {
        let mut rng = Rng64::new(0x59_2ce0 + case);
        let n = rng.range(0, 60);
        let mut text = String::new();
        for _ in 0..n {
            text.push_str(TOKENS[rng.index(TOKENS.len())]);
            text.push(if rng.range(0, 6) == 0 { '\n' } else { ' ' });
        }
        if let Ok(doc) = subgemini_spice::parse(&text) {
            // Whatever parsed must elaborate or error, not panic.
            let _ = doc.elaborate_top("fuzz", &Default::default());
            for def in &doc.subckts {
                let _ = doc.elaborate_cell(&def.name, &Default::default());
            }
        }
    }
}

/// Valid single-device decks always round-trip.
#[test]
fn minimal_valid_decks_elaborate() {
    for case in 0..256u64 {
        let mut rng = Rng64::new(0x59_3ce0 + case);
        let d = rng.ident(7);
        let g = rng.ident(7);
        let s = rng.ident(7);
        let text = format!("M1 {d} {g} {s} nmos\n");
        let doc = subgemini_spice::parse(&text).unwrap();
        let nl = doc.elaborate_top("t", &Default::default()).unwrap();
        assert_eq!(nl.device_count(), 1, "case {case}: {text}");
    }
}
