//! The exhaustive depth-first subgraph matcher.

use std::collections::HashSet;

use subgemini_netlist::{DeviceId, NetId, Netlist};

/// Options for the DFS matcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfsOptions {
    /// Honor global (special) nets: a pattern `vdd` may only map to the
    /// same-named global net of the main circuit (paper §IV.A).
    pub respect_globals: bool,
    /// Collapse automorphic remappings of the same device set into one
    /// instance (default). Set `false` to record every complete
    /// mapping — needed when exact per-vertex image sets matter.
    pub dedup_automorphs: bool,
    /// Stop after this many recorded instances (0 = unlimited).
    pub max_instances: usize,
    /// Abort after this many search steps to bound exponential blowups.
    pub max_steps: u64,
}

impl Default for DfsOptions {
    fn default() -> Self {
        Self {
            respect_globals: true,
            dedup_automorphs: true,
            max_instances: 0,
            max_steps: 50_000_000,
        }
    }
}

/// A complete instance mapping found by the matcher.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DfsMatch {
    /// `devices[i]` is the main-circuit device matched with pattern
    /// device `i`.
    pub devices: Vec<DeviceId>,
    /// `nets[i]` is the main-circuit net matched with pattern net `i`.
    pub nets: Vec<NetId>,
}

impl DfsMatch {
    /// The matched main-circuit devices as a sorted set — the canonical
    /// identity of an instance (automorphic remappings collapse).
    pub fn device_set(&self) -> Vec<DeviceId> {
        let mut v = self.devices.clone();
        v.sort_unstable();
        v
    }
}

/// Result of a DFS search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DfsResult {
    /// Instances, deduplicated by device set.
    pub instances: Vec<DfsMatch>,
    /// Search steps (candidate device pairings tried).
    pub steps: u64,
    /// `true` if the step budget ran out before the search space was
    /// exhausted (results may be incomplete).
    pub budget_exhausted: bool,
}

impl DfsResult {
    /// Distinct main-circuit devices that serve as the image of pattern
    /// device `s` across all instances.
    pub fn images_of_device(&self, s: DeviceId) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .instances
            .iter()
            .map(|m| m.devices[s.index()])
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct main-circuit nets that serve as the image of pattern net
    /// `s` across all instances.
    pub fn images_of_net(&self, s: NetId) -> Vec<NetId> {
        let mut v: Vec<NetId> = self.instances.iter().map(|m| m.nets[s.index()]).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

struct Search<'a> {
    pattern: &'a Netlist,
    main: &'a Netlist,
    opts: &'a DfsOptions,
    /// Pattern devices in a connectivity-first visit order.
    order: Vec<DeviceId>,
    dev_map: Vec<Option<DeviceId>>,
    net_map: Vec<Option<NetId>>,
    used_dev: Vec<bool>,
    used_net: Vec<bool>,
    result: DfsResult,
    seen_sets: HashSet<Vec<DeviceId>>,
}

impl<'a> Search<'a> {
    fn new(pattern: &'a Netlist, main: &'a Netlist, opts: &'a DfsOptions) -> Self {
        Self {
            pattern,
            main,
            opts,
            order: visit_order(pattern),
            dev_map: vec![None; pattern.device_count()],
            net_map: vec![None; pattern.net_count()],
            used_dev: vec![false; main.device_count()],
            used_net: vec![false; main.net_count()],
            result: DfsResult::default(),
            seen_sets: HashSet::new(),
        }
    }

    fn done(&self) -> bool {
        self.result.budget_exhausted
            || (self.opts.max_instances > 0
                && self.result.instances.len() >= self.opts.max_instances)
    }

    /// Can pattern net `s` map to main net `g` given current bindings?
    fn net_compatible(&self, s: NetId, g: NetId) -> bool {
        if let Some(mapped) = self.net_map[s.index()] {
            return mapped == g;
        }
        if self.used_net[g.index()] {
            return false;
        }
        let sn = self.pattern.net_ref(s);
        let gn = self.main.net_ref(g);
        if self.opts.respect_globals && (sn.is_global() || gn.is_global()) {
            // Special signals match only each other, by name (§IV.A).
            return sn.is_global() && gn.is_global() && sn.name() == gn.name();
        }
        // Internal (non-port, non-global) nets are induced: the image
        // must have exactly the same degree.
        if !sn.is_port() && !sn.is_global() && sn.degree() != gn.degree() {
            return false;
        }
        true
    }

    fn bind_net(&mut self, s: NetId, g: NetId) -> bool {
        if self.net_map[s.index()].is_some() {
            return false; // already bound (caller checks compatibility)
        }
        self.net_map[s.index()] = Some(g);
        self.used_net[g.index()] = true;
        true
    }

    fn unbind_net(&mut self, s: NetId) {
        if let Some(g) = self.net_map[s.index()].take() {
            self.used_net[g.index()] = false;
        }
    }

    /// Attempts to align the pins of pattern device `s` with main device
    /// `g`, trying all within-class permutations; recurses into the next
    /// device on success.
    fn try_pins(&mut self, k: usize, s: DeviceId, g: DeviceId) {
        let sty = self.pattern.device_type_of(s);
        let spins = self.pattern.device(s).pins();
        let gpins = self.main.device(g).pins();
        // Group pin indices by class multiplier. Types are identical, so
        // groups align index-for-index.
        let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
        for i in 0..spins.len() {
            let mult = sty.class_multiplier(i);
            match groups.iter_mut().find(|(m, _)| *m == mult) {
                Some((_, v)) => v.push(i),
                None => groups.push((mult, vec![i])),
            }
        }
        // DFS over per-group assignments of g-pins to s-pins.
        self.assign_group(k, &groups, 0, spins, gpins, &mut Vec::new());
    }

    /// Assigns pins within `groups[gi..]`; `newly_bound` tracks nets we
    /// bound so they can be rolled back.
    #[allow(clippy::too_many_arguments)]
    fn assign_group(
        &mut self,
        k: usize,
        groups: &[(u64, Vec<usize>)],
        gi: usize,
        spins: &[NetId],
        gpins: &[NetId],
        newly_bound: &mut Vec<NetId>,
    ) {
        if self.done() {
            return;
        }
        if gi == groups.len() {
            self.extend(k + 1);
            return;
        }
        let members = &groups[gi].1;
        let mut perm: Vec<usize> = members.clone();
        permute(&mut perm, 0, &mut |p: &[usize]| {
            if self.done() {
                return;
            }
            // Map s pin members[j] to g pin p[j].
            let mut bound_here: Vec<NetId> = Vec::new();
            let mut ok = true;
            for (j, &si) in members.iter().enumerate() {
                let (sn, gn) = (spins[si], gpins[p[j]]);
                if !self.net_compatible(sn, gn) {
                    ok = false;
                    break;
                }
                if self.net_map[sn.index()].is_none() {
                    self.bind_net(sn, gn);
                    bound_here.push(sn);
                }
            }
            if ok {
                newly_bound.extend(bound_here.iter().copied());
                self.assign_group(k, groups, gi + 1, spins, gpins, newly_bound);
                for _ in 0..bound_here.len() {
                    let sn = newly_bound.pop().expect("tracked binding");
                    self.unbind_net(sn);
                }
            } else {
                for sn in bound_here {
                    self.unbind_net(sn);
                }
            }
        });
    }

    fn extend(&mut self, k: usize) {
        if self.done() {
            return;
        }
        if k == self.order.len() {
            self.record();
            return;
        }
        let s = self.order[k];
        let sty_name = self.pattern.device_type_of(s).name();
        // Prefer candidates attached to an already-mapped net image.
        let mut anchored: Option<Vec<DeviceId>> = None;
        for &sn in self.pattern.device(s).pins() {
            if let Some(gn) = self.net_map[sn.index()] {
                let cands: Vec<DeviceId> = self
                    .main
                    .net_ref(gn)
                    .pins()
                    .iter()
                    .map(|p| p.device)
                    .filter(|&d| {
                        !self.used_dev[d.index()] && self.main.device_type_of(d).name() == sty_name
                    })
                    .collect();
                match &anchored {
                    Some(prev) if prev.len() <= cands.len() => {}
                    _ => anchored = Some(cands),
                }
            }
        }
        let candidates: Vec<DeviceId> = match anchored {
            Some(c) => c,
            None => self
                .main
                .device_ids()
                .filter(|&d| {
                    !self.used_dev[d.index()] && self.main.device_type_of(d).name() == sty_name
                })
                .collect(),
        };
        for g in candidates {
            if self.done() {
                return;
            }
            self.result.steps += 1;
            if self.result.steps >= self.opts.max_steps {
                self.result.budget_exhausted = true;
                return;
            }
            self.dev_map[s.index()] = Some(g);
            self.used_dev[g.index()] = true;
            self.try_pins(k, s, g);
            self.dev_map[s.index()] = None;
            self.used_dev[g.index()] = false;
        }
    }

    fn record(&mut self) {
        let devices: Vec<DeviceId> = self
            .dev_map
            .iter()
            .map(|d| d.expect("complete mapping"))
            .collect();
        let mut key = devices.clone();
        key.sort_unstable();
        if !self.seen_sets.insert(key) && self.opts.dedup_automorphs {
            return; // automorphic duplicate
        }
        let nets: Vec<NetId> = self
            .net_map
            .iter()
            .map(|n| n.expect("complete mapping"))
            .collect();
        self.result.instances.push(DfsMatch { devices, nets });
    }
}

/// BFS-ish device visit order that keeps each connected component
/// contiguous, so candidate anchoring stays effective.
fn visit_order(pattern: &Netlist) -> Vec<DeviceId> {
    let nd = pattern.device_count();
    let mut seen = vec![false; nd];
    let mut order = Vec::with_capacity(nd);
    let mut queue = std::collections::VecDeque::new();
    for start in pattern.device_ids() {
        if seen[start.index()] {
            continue;
        }
        seen[start.index()] = true;
        queue.push_back(start);
        while let Some(d) = queue.pop_front() {
            order.push(d);
            for &n in pattern.device(d).pins() {
                let net = pattern.net_ref(n);
                // Do not walk through global rails: they connect
                // everything and would destroy locality.
                if net.is_global() {
                    continue;
                }
                for pin in net.pins() {
                    if !seen[pin.device.index()] {
                        seen[pin.device.index()] = true;
                        queue.push_back(pin.device);
                    }
                }
            }
        }
    }
    order
}

/// Calls `f` with every permutation of `v[k..]` (Heap-like recursive
/// swap enumeration). Group sizes are tiny (bounded by a device's
/// terminal count), so factorial cost is irrelevant.
fn permute(v: &mut Vec<usize>, k: usize, f: &mut impl FnMut(&[usize])) {
    if k + 1 >= v.len() {
        f(v);
        return;
    }
    for i in k..v.len() {
        v.swap(k, i);
        permute(v, k + 1, f);
        v.swap(k, i);
    }
}

/// Exhaustively finds all instances of `pattern` inside `main`.
///
/// This is the "straightforward approach" §IV contrasts SubGemini with:
/// depth-first search anchored on connectivity, with full backtracking.
/// It is exact (used as ground truth in tests) but can be exponentially
/// slower than SubGemini on large circuits.
pub fn find_all(pattern: &Netlist, main: &Netlist, opts: &DfsOptions) -> DfsResult {
    if pattern.device_count() == 0 {
        return DfsResult::default();
    }
    for n in pattern.net_ids() {
        assert!(
            pattern.net_ref(n).degree() > 0,
            "pattern net `{}` is isolated; patterns must be fully connected to devices",
            pattern.net_ref(n).name()
        );
    }
    let mut s = Search::new(pattern, main, opts);
    s.extend(0);
    let mut result = s.result;
    // Deterministic order regardless of exploration order. Cached key:
    // `device_set` sorts a fresh vector per call.
    result.instances.sort_by_cached_key(|a| a.device_set());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgemini_netlist::Netlist;

    fn permutations_of_3() -> Vec<Vec<usize>> {
        let mut v = vec![0, 1, 2];
        let mut out = Vec::new();
        permute(&mut v, 0, &mut |p| out.push(p.to_vec()));
        out
    }

    #[test]
    fn permute_generates_all_orders() {
        let ps = permutations_of_3();
        assert_eq!(ps.len(), 6);
        let unique: std::collections::HashSet<_> = ps.into_iter().collect();
        assert_eq!(unique.len(), 6);
    }

    #[test]
    fn visit_order_keeps_components_contiguous() {
        let mut nl = Netlist::new("two");
        let mos = nl.add_mos_types();
        // Component 1: d0-d1 share net m; component 2: d2 alone.
        let (a, m, b, c) = (nl.net("a"), nl.net("m"), nl.net("b"), nl.net("c"));
        nl.add_device("d0", mos.nmos, &[a, m, a]).unwrap();
        nl.add_device("d1", mos.nmos, &[b, m, b]).unwrap();
        nl.add_device("d2", mos.nmos, &[c, c, c]).unwrap();
        let order = visit_order(&nl);
        assert_eq!(order.len(), 3);
        let pos = |name: &str| {
            let id = nl.find_device(name).unwrap();
            order.iter().position(|&d| d == id).unwrap()
        };
        assert!(pos("d1") < pos("d2") || pos("d0") == 0);
        assert_eq!(pos("d0"), 0);
        assert_eq!(pos("d1"), 1);
    }
}
