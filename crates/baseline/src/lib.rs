//! Exhaustive DFS subgraph matcher — the baseline SubGemini is measured
//! against.
//!
//! §IV of the paper contrasts SubGemini's breadth-first relabeling with
//! "a straightforward approach … to match all the vertices of S to
//! vertices located in G by exhaustively searching from the key vertex
//! as in \[6\]". This crate implements that straightforward approach:
//! depth-first extension of a device mapping with full backtracking,
//! anchored on already-mapped nets for locality.
//!
//! The matcher is *exact* and shares SubGemini's instance semantics
//! (induced internal nets, terminal equivalence classes, optional
//! special-net constraints), so it doubles as the ground-truth oracle in
//! the cross-validation property tests.
//!
//! # Examples
//!
//! Find the inverter inside a NAND gate — which succeeds precisely when
//! special nets are ignored (paper Fig. 7):
//!
//! ```
//! use subgemini_baseline::{find_all, DfsOptions};
//! use subgemini_netlist::Netlist;
//!
//! # fn main() -> Result<(), subgemini_netlist::NetlistError> {
//! let mut inv = Netlist::new("inv");
//! let mos = inv.add_mos_types();
//! let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
//! inv.mark_port(a);
//! inv.mark_port(y);
//! inv.mark_global(vdd);
//! inv.mark_global(gnd);
//! inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
//! inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
//!
//! let mut nand = Netlist::new("nand2");
//! let mos = nand.add_mos_types();
//! let (a, b, y, mid) = (nand.net("a"), nand.net("b"), nand.net("y"), nand.net("mid"));
//! let (vdd, gnd) = (nand.net("vdd"), nand.net("gnd"));
//! nand.mark_global(vdd);
//! nand.mark_global(gnd);
//! nand.add_device("p1", mos.pmos, &[a, vdd, y])?;
//! nand.add_device("p2", mos.pmos, &[b, vdd, y])?;
//! nand.add_device("n1", mos.nmos, &[a, y, mid])?;
//! nand.add_device("n2", mos.nmos, &[b, mid, gnd])?;
//!
//! let with_globals = find_all(&inv, &nand, &DfsOptions::default());
//! assert!(with_globals.instances.is_empty());
//!
//! let ignore = DfsOptions { respect_globals: false, ..Default::default() };
//! let without = find_all(&inv, &nand, &ignore);
//! assert_eq!(without.instances.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod matcher;

pub use matcher::{find_all, DfsMatch, DfsOptions, DfsResult};

#[cfg(test)]
mod tests {
    use super::*;
    use subgemini_netlist::{instantiate, Netlist, NetlistError};

    fn inverter_cell() -> Netlist {
        let mut inv = Netlist::new("inv");
        let mos = inv.add_mos_types();
        let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
        inv.mark_port(a);
        inv.mark_port(y);
        inv.mark_global(vdd);
        inv.mark_global(gnd);
        inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        inv
    }

    fn nand2_cell() -> Netlist {
        let mut nand = Netlist::new("nand2");
        let mos = nand.add_mos_types();
        let (a, b, y, mid) = (nand.net("a"), nand.net("b"), nand.net("y"), nand.net("mid"));
        let (vdd, gnd) = (nand.net("vdd"), nand.net("gnd"));
        nand.mark_port(a);
        nand.mark_port(b);
        nand.mark_port(y);
        nand.mark_global(vdd);
        nand.mark_global(gnd);
        nand.add_device("p1", mos.pmos, &[a, vdd, y]).unwrap();
        nand.add_device("p2", mos.pmos, &[b, vdd, y]).unwrap();
        nand.add_device("n1", mos.nmos, &[a, y, mid]).unwrap();
        nand.add_device("n2", mos.nmos, &[b, mid, gnd]).unwrap();
        nand
    }

    /// A chain of `n` inverters plus one NAND mixing the ends.
    fn chain_chip(n: usize) -> Result<Netlist, NetlistError> {
        let inv = inverter_cell();
        let nand = nand2_cell();
        let mut chip = Netlist::new("chip");
        let mut prev = chip.net("in");
        for i in 0..n {
            let next = chip.net(format!("w{i}"));
            instantiate(&mut chip, &inv, &format!("u{i}"), &[prev, next])?;
            prev = next;
        }
        let first = chip.net("w0");
        let out = chip.net("out");
        instantiate(&mut chip, &nand, "g0", &[prev, first, out])?;
        Ok(chip)
    }

    #[test]
    fn finds_every_planted_inverter() {
        let chip = chain_chip(6).unwrap();
        let inv = inverter_cell();
        let res = find_all(&inv, &chip, &DfsOptions::default());
        assert_eq!(res.instances.len(), 6);
        assert!(!res.budget_exhausted);
        // Each instance maps pattern devices to two distinct chip
        // devices of the right types.
        for m in &res.instances {
            let set = m.device_set();
            assert_eq!(set.len(), 2);
            let names: Vec<&str> = set.iter().map(|&d| chip.device_type_of(d).name()).collect();
            assert!(names.contains(&"nmos") && names.contains(&"pmos"));
        }
    }

    #[test]
    fn finds_planted_nand_once() {
        let chip = chain_chip(4).unwrap();
        let nand = nand2_cell();
        let res = find_all(&nand, &chip, &DfsOptions::default());
        assert_eq!(res.instances.len(), 1);
    }

    #[test]
    fn inverter_not_inside_nand_when_globals_respected() {
        let nand = nand2_cell();
        let inv = inverter_cell();
        let res = find_all(&inv, &nand, &DfsOptions::default());
        assert!(res.instances.is_empty());
    }

    #[test]
    fn inverter_inside_nand_when_globals_ignored() {
        let nand = nand2_cell();
        let inv = inverter_cell();
        let res = find_all(
            &inv,
            &nand,
            &DfsOptions {
                respect_globals: false,
                ..Default::default()
            },
        );
        // Exactly one structural inverter: the p2/n1 pair through y does
        // not close (n1's source is mid, not a rail image), so the match
        // is the p1/n1 pair sharing gate a and drain y.
        assert_eq!(res.instances.len(), 1);
    }

    #[test]
    fn automorphic_duplicates_collapse() {
        // Pattern: two parallel NMOS between the same pair of nets
        // (paper Fig. 5 shape). Main: the same. The two automorphic
        // mappings must collapse to one instance.
        let build = |name: &str| {
            let mut nl = Netlist::new(name);
            let mos = nl.add_mos_types();
            let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
            nl.mark_port(g);
            nl.mark_port(s);
            nl.mark_port(d);
            nl.add_device("a", mos.nmos, &[g, s, d]).unwrap();
            nl.add_device("b", mos.nmos, &[g, s, d]).unwrap();
            nl
        };
        let res = find_all(&build("pat"), &build("main"), &DfsOptions::default());
        assert_eq!(res.instances.len(), 1);
    }

    #[test]
    fn max_instances_limits_results() {
        let chip = chain_chip(6).unwrap();
        let inv = inverter_cell();
        let res = find_all(
            &inv,
            &chip,
            &DfsOptions {
                max_instances: 2,
                ..Default::default()
            },
        );
        assert_eq!(res.instances.len(), 2);
    }

    #[test]
    fn step_budget_aborts_search() {
        let chip = chain_chip(8).unwrap();
        let inv = inverter_cell();
        let res = find_all(
            &inv,
            &chip,
            &DfsOptions {
                max_steps: 3,
                ..Default::default()
            },
        );
        assert!(res.budget_exhausted);
    }

    #[test]
    fn images_of_key_vertex_are_distinct() {
        let chip = chain_chip(5).unwrap();
        let inv = inverter_cell();
        let res = find_all(&inv, &chip, &DfsOptions::default());
        let key = inv.find_device("mn").unwrap();
        assert_eq!(res.images_of_device(key).len(), 5);
        let ynet = inv.find_net("y").unwrap();
        assert_eq!(res.images_of_net(ynet).len(), 5);
    }

    #[test]
    #[should_panic(expected = "isolated")]
    fn isolated_pattern_net_panics() {
        let mut pat = Netlist::new("bad");
        let mos = pat.add_mos_types();
        let (a, b) = (pat.net("a"), pat.net("b"));
        pat.net("floating");
        pat.add_device("m", mos.nmos, &[a, b, b]).unwrap();
        let main = inverter_cell();
        find_all(&pat, &main, &DfsOptions::default());
    }

    #[test]
    fn source_drain_symmetry_respected() {
        // Pattern lists (g, s, d); main lists the transistor with s/d
        // swapped. Must still match.
        let mut pat = Netlist::new("pat");
        let mos = pat.add_mos_types();
        let (g, x, y) = (pat.net("g"), pat.net("x"), pat.net("y"));
        pat.mark_port(g);
        pat.mark_port(x);
        pat.mark_port(y);
        pat.add_device("m", mos.nmos, &[g, x, y]).unwrap();

        let mut main = Netlist::new("main");
        let mos2 = main.add_mos_types();
        let (gg, s, d, o) = (main.net("gg"), main.net("s"), main.net("d"), main.net("o"));
        main.add_device("m1", mos2.nmos, &[gg, d, s]).unwrap();
        main.add_device("m2", mos2.pmos, &[gg, o, s]).unwrap();
        let res = find_all(&pat, &main, &DfsOptions::default());
        assert_eq!(res.instances.len(), 1);
    }
}
