//! Phase I — generating the candidate vector (§III of the paper).
//!
//! Both circuits are partitioned by iterative relabeling, but the
//! pattern `S` carries a **valid/corrupt** bit per vertex: external
//! nets (ports) start corrupt because their images in `G` may have
//! extra connections, and corruption spreads to any vertex with a
//! corrupt neighbor. Label Invariant (1): while `s` is valid, its image
//! carries the same label — so every partition of valid `S` vertices
//! corresponds to a `G` partition that is guaranteed to contain all
//! images.
//!
//! The loop alternates net and device relabeling and stops when one
//! side of `S` is fully corrupt (plus two guards the paper doesn't
//! need: partition stabilization for closed patterns without external
//! nets, and a hard iteration cap). The smallest surviving `G`
//! partition becomes the candidate vector `CV`; its `S` counterpart
//! supplies the key vertex `K`.
//!
//! Consistency checks run after every phase: a valid `S` label that is
//! missing (or undersupplied) in `G` proves no instance exists.
//!
//! All loops run over the flat arrays of a [`CompiledCircuit`]:
//! relabeling is double-buffered through a reusable scratch vector (no
//! per-iteration allocation), and partitions are indexed by
//! sorted-by-label runs ([`PartitionIndex`]) instead of hash maps.

use std::sync::Arc;

use subgemini_netlist::{hashing, CompiledCircuit, DeviceId, NetId, Vertex};

use crate::events::{EventBuffer, EventKind};
use crate::instance::Phase1Stats;
use crate::options::KeyPolicy;

/// Output of Phase I.
#[derive(Clone, Debug)]
pub struct Phase1Output {
    /// The key vertex in the pattern (`None` iff `proven_empty` or the
    /// pattern has no usable vertices).
    pub key: Option<Vertex>,
    /// Candidate images of the key vertex in the main circuit.
    pub candidates: Vec<Vertex>,
    /// Statistics.
    pub stats: Phase1Stats,
    /// `Some` when a governor (deadline or cancellation) stopped the
    /// refinement loop before it finished: no candidate vector was
    /// selected (`key` is `None`) and the outcome must report itself
    /// as truncated. Always `None` on ungoverned runs.
    pub interrupted: Option<crate::budget::TruncationReason>,
}

#[derive(Clone)]
struct Labels {
    dev: Vec<u64>,
    net: Vec<u64>,
}

fn initial_labels(g: &CompiledCircuit) -> Labels {
    Labels {
        dev: (0..g.device_count())
            .map(|i| g.initial_device_label(DeviceId::new(i as u32)))
            .collect(),
        net: (0..g.net_count())
            .map(|i| g.initial_net_label(NetId::new(i as u32)))
            .collect(),
    }
}

/// Relabels every non-global net of `g` from device labels (Jacobi),
/// double-buffering through `scratch` so no allocation happens after
/// the first pass.
fn relabel_nets(g: &CompiledCircuit, l: &mut Labels, scratch: &mut Vec<u64>) {
    scratch.clear();
    scratch.reserve(l.net.len());
    for i in 0..l.net.len() {
        let n = NetId::new(i as u32);
        let v = if g.is_global(n) {
            l.net[i]
        } else {
            let c = g.net_contribs(n, |d| Some(l.dev[d.index()]));
            hashing::relabel(l.net[i], c.sum)
        };
        scratch.push(v);
    }
    std::mem::swap(&mut l.net, scratch);
}

/// Relabels every device of `g` from net labels (Jacobi); see
/// [`relabel_nets`] for the buffering scheme.
fn relabel_devices(g: &CompiledCircuit, l: &mut Labels, scratch: &mut Vec<u64>) {
    scratch.clear();
    scratch.reserve(l.dev.len());
    for i in 0..l.dev.len() {
        let d = DeviceId::new(i as u32);
        let c = g.device_contribs(d, |n| Some(l.net[n.index()]));
        scratch.push(hashing::relabel(l.dev[i], c.sum));
    }
    std::mem::swap(&mut l.dev, scratch);
}

/// Chunk-parallel [`relabel_nets`]: each Jacobi output element is a
/// pure function of the *previous* label vector, so splitting the
/// output range over scoped threads is bit-identical to the serial
/// pass — the parallelism changes wall-clock, never labels. Used for
/// shard-tier main graphs (see DESIGN.md §3i); each chunk's read set
/// is its devices' neighborhoods, the halo-exchange picture of a
/// stencil step.
fn relabel_nets_par(g: &CompiledCircuit, l: &mut Labels, scratch: &mut Vec<u64>, workers: usize) {
    let len = l.net.len();
    scratch.clear();
    scratch.resize(len, 0);
    let chunk = len.div_ceil(workers).max(1);
    let (net, dev) = (&l.net, &l.dev);
    std::thread::scope(|scope| {
        for (ci, out) in scratch.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            scope.spawn(move || {
                for (k, slot) in out.iter_mut().enumerate() {
                    let i = base + k;
                    let n = NetId::new(i as u32);
                    *slot = if g.is_global(n) {
                        net[i]
                    } else {
                        let c = g.net_contribs(n, |d| Some(dev[d.index()]));
                        hashing::relabel(net[i], c.sum)
                    };
                }
            });
        }
    });
    std::mem::swap(&mut l.net, scratch);
}

/// Chunk-parallel [`relabel_devices`]; see [`relabel_nets_par`].
fn relabel_devices_par(
    g: &CompiledCircuit,
    l: &mut Labels,
    scratch: &mut Vec<u64>,
    workers: usize,
) {
    let len = l.dev.len();
    scratch.clear();
    scratch.resize(len, 0);
    let chunk = len.div_ceil(workers).max(1);
    let (net, dev) = (&l.net, &l.dev);
    std::thread::scope(|scope| {
        for (ci, out) in scratch.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            scope.spawn(move || {
                for (k, slot) in out.iter_mut().enumerate() {
                    let i = base + k;
                    let d = DeviceId::new(i as u32);
                    let c = g.device_contribs(d, |n| Some(net[n.index()]));
                    *slot = hashing::relabel(dev[i], c.sum);
                }
            });
        }
    });
    std::mem::swap(&mut l.dev, scratch);
}

/// Label→members partition map stored as runs of a `(label, index)`
/// array sorted by label (ties by index, so members come out in
/// ascending vertex order). Lookup is two binary searches; building is
/// one sort — cheaper and cache-friendlier than a `HashMap<u64, Vec>`
/// for the snapshot-heavy trace.
struct PartitionIndex {
    entries: Vec<(u64, u32)>,
}

impl PartitionIndex {
    fn build(labels: &[u64]) -> Self {
        let mut entries: Vec<(u64, u32)> = labels
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u32))
            .collect();
        entries.sort_unstable();
        Self { entries }
    }

    /// The members of `label`'s partition, ascending by vertex index.
    fn members(&self, label: u64) -> &[(u64, u32)] {
        let lo = self.entries.partition_point(|&(l, _)| l < label);
        let hi = self.entries.partition_point(|&(l, _)| l <= label);
        &self.entries[lo..hi]
    }

    fn count(&self, label: u64) -> usize {
        self.members(label).len()
    }
}

/// A lazily extended sequence of `G` label snapshots. Main-graph
/// relabeling in Phase I is *pattern-independent* (no valid/corrupt
/// logic applies to `G`), so one trace can serve many patterns — the
/// basis of [`run_many`] and the matcher's multi-pattern path.
///
/// The trace owns an [`Arc`] of the compiled main graph, so it can
/// outlive the borrow that produced it (the extractor keeps one alive
/// across replacement passes).
///
/// `step 0` is the initial labeling; odd steps follow a net phase, even
/// steps a device phase.
pub struct GTrace {
    g: Arc<CompiledCircuit>,
    snaps: Vec<StepData>,
    scratch: Vec<u64>,
    /// Scoped threads used per relabeling pass (1 = the serial path,
    /// byte-for-byte the pre-shard code path).
    relabel_workers: usize,
}

/// One trace step: the labels plus label→members partition indices,
/// cached so that per-pattern consistency checks cost `O(|S| log |G|)`
/// rather than `O(|G|)`.
struct StepData {
    labels: Labels,
    dev_parts: PartitionIndex,
    net_parts: PartitionIndex,
}

impl StepData {
    fn from_labels(labels: Labels) -> Self {
        let dev_parts = PartitionIndex::build(&labels.dev);
        let net_parts = PartitionIndex::build(&labels.net);
        Self {
            labels,
            dev_parts,
            net_parts,
        }
    }
}

impl GTrace {
    /// Starts a trace for the compiled main graph `g`.
    pub fn new(g: Arc<CompiledCircuit>) -> Self {
        let first = StepData::from_labels(initial_labels(&g));
        Self {
            g,
            snaps: vec![first],
            scratch: Vec::new(),
            relabel_workers: 1,
        }
    }

    /// Enables chunk-parallel Jacobi relabeling with up to `workers`
    /// scoped threads per pass. Labels are bit-identical to the serial
    /// trace for any worker count — each output element is a pure
    /// function of the previous snapshot — so this only changes
    /// wall-clock. Clamped to at least 1.
    pub fn set_relabel_workers(&mut self, workers: usize) {
        self.relabel_workers = workers.max(1);
    }

    /// Step data after `step` relabeling half-phases (extending the
    /// trace as needed).
    fn step(&mut self, step: usize) -> &StepData {
        while self.snaps.len() <= step {
            let mut next = self
                .snaps
                .last()
                .expect("trace starts non-empty")
                .labels
                .clone();
            let par = self.relabel_workers > 1;
            if self.snaps.len() % 2 == 1 {
                // The snapshot being created has an odd index => it
                // follows a net phase.
                if par {
                    relabel_nets_par(&self.g, &mut next, &mut self.scratch, self.relabel_workers);
                } else {
                    relabel_nets(&self.g, &mut next, &mut self.scratch);
                }
            } else if par {
                relabel_devices_par(&self.g, &mut next, &mut self.scratch, self.relabel_workers);
            } else {
                relabel_devices(&self.g, &mut next, &mut self.scratch);
            }
            self.snaps.push(StepData::from_labels(next));
        }
        &self.snaps[step]
    }
}

struct Validity {
    dev: Vec<bool>,
    net: Vec<bool>,
}

impl Validity {
    fn new(s: &CompiledCircuit) -> Self {
        let net = (0..s.net_count())
            .map(|i| {
                let n = NetId::new(i as u32);
                // External nets are corrupt from the start; globals stay
                // valid forever (their labels are fixed by name).
                s.is_global(n) || !s.is_port(n)
            })
            .collect();
        Self {
            dev: vec![true; s.device_count()],
            net,
        }
    }

    /// Marks nets with an invalid device neighbor invalid; returns how
    /// many were newly invalidated.
    fn propagate_to_nets(&mut self, s: &CompiledCircuit) -> usize {
        let mut newly = 0;
        for i in 0..self.net.len() {
            let n = NetId::new(i as u32);
            if !self.net[i] || s.is_global(n) {
                continue;
            }
            if s.net_neighbors(n).any(|(d, _)| !self.dev[d.index()]) {
                self.net[i] = false;
                newly += 1;
            }
        }
        newly
    }

    /// Marks devices with an invalid net neighbor invalid; returns how
    /// many were newly invalidated.
    fn propagate_to_devices(&mut self, s: &CompiledCircuit) -> usize {
        let mut newly = 0;
        for i in 0..self.dev.len() {
            if !self.dev[i] {
                continue;
            }
            let d = DeviceId::new(i as u32);
            if s.device_neighbors(d).any(|(n, _)| !self.net[n.index()]) {
                self.dev[i] = false;
                newly += 1;
            }
        }
        newly
    }

    fn live_nets(&self, s: &CompiledCircuit) -> usize {
        (0..self.net.len())
            .filter(|&i| self.net[i] && !s.is_global(NetId::new(i as u32)))
            .count()
    }

    fn live_devices(&self) -> usize {
        self.dev.iter().filter(|&&v| v).count()
    }
}

/// Checks Label Invariant (1)'s consequence: every valid `S` partition
/// must be matched in `G` with at least as many members. `Err` carries
/// the first violated `(label, s_count, g_count)` — the pattern
/// provably has no instance. The valid `S` labels are gathered into
/// `scratch` and sorted; each equal-label run is checked against the
/// trace's cached partition index.
fn consistent(
    s_labels: &[u64],
    s_valid: &[bool],
    g_parts: &PartitionIndex,
    scratch: &mut Vec<u64>,
) -> Result<(), (u64, usize, usize)> {
    scratch.clear();
    scratch.extend(
        s_labels
            .iter()
            .zip(s_valid.iter())
            .filter(|&(_, &v)| v)
            .map(|(&l, _)| l),
    );
    scratch.sort_unstable();
    let mut i = 0;
    while i < scratch.len() {
        let l = scratch[i];
        let mut j = i + 1;
        while j < scratch.len() && scratch[j] == l {
            j += 1;
        }
        let gc = g_parts.count(l);
        if gc < j - i {
            return Err((l, j - i, gc));
        }
        i = j;
    }
    Ok(())
}

/// Wall-clock split of one Phase I run (zeroed unless collection was
/// requested).
#[derive(Clone, Copy, Debug, Default)]
pub struct Phase1Timing {
    /// Iterative-relabeling (partition refinement) time.
    pub refine_ns: u64,
    /// Candidate-vector / key-vertex selection time.
    pub select_ns: u64,
}

/// Runs Phase I with the paper's smallest-partition key policy.
pub fn run(s: &CompiledCircuit, g: &Arc<CompiledCircuit>) -> Phase1Output {
    run_with_policy(s, g, KeyPolicy::SmallestPartition)
}

/// Runs Phase I.
pub fn run_with_policy(
    s: &CompiledCircuit,
    g: &Arc<CompiledCircuit>,
    policy: KeyPolicy,
) -> Phase1Output {
    let mut trace = GTrace::new(Arc::clone(g));
    run_with_trace(s, &mut trace, policy)
}

/// Runs Phase I for many patterns against one main circuit, relabeling
/// the main graph only once: its Phase I labels do not depend on the
/// pattern, so the per-pattern cost drops from `O(|G|·iters)` to the
/// pattern-side work after the first call.
pub fn run_many(
    patterns: &[&CompiledCircuit],
    g: &Arc<CompiledCircuit>,
    policy: KeyPolicy,
) -> Vec<Phase1Output> {
    let mut trace = GTrace::new(Arc::clone(g));
    patterns
        .iter()
        .map(|s| run_with_trace(s, &mut trace, policy))
        .collect()
}

/// Runs Phase I against a (shared, lazily extended) main-graph label
/// trace.
///
/// Globals in either graph never relabel (fixed name-derived labels) and
/// are excluded from candidate-vector selection: with special-net
/// semantics they are pre-matched by name, so anchoring Phase II on them
/// would be useless.
pub fn run_with_trace(s: &CompiledCircuit, trace: &mut GTrace, policy: KeyPolicy) -> Phase1Output {
    run_with_trace_timed(s, trace, policy, false).0
}

/// Timed form of [`run_with_trace`]: refinement and selection are
/// measured separately when `collect` is set, and skipped entirely (no
/// clock reads) when it is not.
pub fn run_with_trace_timed(
    s: &CompiledCircuit,
    trace: &mut GTrace,
    policy: KeyPolicy,
    collect: bool,
) -> (Phase1Output, Phase1Timing) {
    run_with_trace_instrumented(s, trace, policy, collect, None)
}

/// Fully instrumented form of [`run_with_trace`]: optional phase timing
/// (`collect`) and an optional structured event buffer receiving
/// [`RefineIter`](EventKind::RefineIter) /
/// [`RefineFail`](EventKind::RefineFail) /
/// [`CvSelected`](EventKind::CvSelected) events. With `events` `None`
/// no event is constructed (the hot loop stays event-free).
pub fn run_with_trace_instrumented(
    s: &CompiledCircuit,
    trace: &mut GTrace,
    policy: KeyPolicy,
    collect: bool,
    events: Option<&mut EventBuffer>,
) -> (Phase1Output, Phase1Timing) {
    run_governed(s, trace, policy, collect, events, None)
}

/// [`run_with_trace_instrumented`] plus an optional search governor:
/// cancellation and wall-clock deadlines are checked once per
/// refinement cycle (effort accounting stays with the caller, which
/// charges the returned iteration count). Internal: the governor type
/// is crate-private by design.
pub(crate) fn run_governed(
    s: &CompiledCircuit,
    trace: &mut GTrace,
    policy: KeyPolicy,
    collect: bool,
    mut events: Option<&mut EventBuffer>,
    governor: Option<&crate::budget::Governor>,
) -> (Phase1Output, Phase1Timing) {
    let mut timing = Phase1Timing::default();
    let timer = collect.then(crate::metrics::PhaseTimer::start);
    let refined = refine(s, trace, events.as_deref_mut(), governor);
    if let Some(t) = &timer {
        timing.refine_ns = t.elapsed_ns();
    }
    let out = match refined {
        Err((stats, interrupted)) => Phase1Output {
            key: None,
            candidates: Vec::new(),
            stats,
            interrupted,
        },
        Ok(refined) => {
            let timer = collect.then(crate::metrics::PhaseTimer::start);
            let out = select(s, trace, policy, refined, events);
            if let Some(t) = &timer {
                timing.select_ns = t.elapsed_ns();
            }
            out
        }
    };
    (out, timing)
}

/// Pattern-side state after the refinement loop stops.
struct Refined {
    sl: Labels,
    valid: Validity,
    step: usize,
    stats: Phase1Stats,
}

/// Distinct labels among valid vertices (both sides) — the event-stream
/// notion of "live partitions". Only computed when events are on.
fn distinct_valid_labels(sl: &Labels, valid: &Validity) -> u32 {
    let mut set = std::collections::HashSet::new();
    for (i, &l) in sl.dev.iter().enumerate() {
        if valid.dev[i] {
            set.insert((false, l));
        }
    }
    for (i, &l) in sl.net.iter().enumerate() {
        if valid.net[i] {
            set.insert((true, l));
        }
    }
    set.len() as u32
}

/// The iterative-relabeling loop: alternating net/device phases with
/// valid/corrupt propagation and per-phase consistency checks. `Err`
/// carries the stats of a run that stopped early: with no
/// [`TruncationReason`](crate::budget::TruncationReason) it proved no
/// instance can exist; with one, a governor interrupted it.
fn refine(
    s: &CompiledCircuit,
    trace: &mut GTrace,
    mut events: Option<&mut EventBuffer>,
    governor: Option<&crate::budget::Governor>,
) -> Result<Refined, (Phase1Stats, Option<crate::budget::TruncationReason>)> {
    let mut stats = Phase1Stats::default();
    let mut sl = initial_labels(s);
    let mut valid = Validity::new(s);
    let mut step = 0usize;
    // Reused buffers: double-buffer for relabeling, sort buffer for
    // consistency checks. No allocation inside the loop after warmup.
    let mut relabel_buf: Vec<u64> = Vec::new();
    let mut sort_buf: Vec<u64> = Vec::new();

    let empty = |stats: Phase1Stats| Phase1Stats {
        proven_empty: true,
        ..stats
    };
    let fail_event = |events: &mut Option<&mut EventBuffer>,
                      round: usize,
                      (label, s_count, g_count): (u64, usize, usize)| {
        if let Some(ev) = events.as_deref_mut() {
            ev.push(EventKind::RefineFail {
                round: round as u32,
                label,
                s_count: s_count as u32,
                g_count: g_count as u32,
            });
        }
    };

    // Consistency on the initial (invariant) labels — the check that
    // removes the "-" vertices in paper Fig. 4.
    {
        let sd = trace.step(0);
        if let Err(v) = consistent(&sl.dev, &valid.dev, &sd.dev_parts, &mut sort_buf)
            .and_then(|()| consistent(&sl.net, &valid.net, &sd.net_parts, &mut sort_buf))
        {
            fail_event(&mut events, 0, v);
            return Err((empty(stats), None));
        }
    }

    let max_cycles = s.device_count() + s.net_count() + 2;
    let mut prev_signature = (0usize, 0usize, 0usize);
    for _cycle in 0..max_cycles {
        // Cooperative stop check, once per cycle: a cancelled or
        // deadline-expired search abandons refinement (the caller
        // reports a truncated outcome). A zero deadline always stops
        // here, before any relabeling work — the deterministic case.
        crate::budget::failpoint::stall("phase1.cycle");
        if let Some(reason) = governor.and_then(crate::budget::Governor::interrupted) {
            return Err((stats, Some(reason)));
        }
        // --- net phase ---
        relabel_nets(s, &mut sl, &mut relabel_buf);
        step += 1;
        let inv_n = valid.propagate_to_nets(s);
        stats.iterations += 1;
        if let Some(ev) = events.as_deref_mut() {
            ev.push(EventKind::RefineIter {
                round: stats.iterations as u32,
                live_partitions: distinct_valid_labels(&sl, &valid),
                corrupted: inv_n as u32,
            });
        }
        if let Err(v) = consistent(
            &sl.net,
            &valid.net,
            &trace.step(step).net_parts,
            &mut sort_buf,
        ) {
            fail_event(&mut events, stats.iterations, v);
            return Err((empty(stats), None));
        }
        if valid.live_nets(s) == 0 {
            break;
        }
        // --- device phase ---
        relabel_devices(s, &mut sl, &mut relabel_buf);
        step += 1;
        let inv_d = valid.propagate_to_devices(s);
        stats.iterations += 1;
        if let Some(ev) = events.as_deref_mut() {
            ev.push(EventKind::RefineIter {
                round: stats.iterations as u32,
                live_partitions: distinct_valid_labels(&sl, &valid),
                corrupted: inv_d as u32,
            });
        }
        if let Err(v) = consistent(
            &sl.dev,
            &valid.dev,
            &trace.step(step).dev_parts,
            &mut sort_buf,
        ) {
            fail_event(&mut events, stats.iterations, v);
            return Err((empty(stats), None));
        }
        if valid.live_devices() == 0 {
            break;
        }
        // --- stabilization guard (closed patterns never corrupt) ---
        let distinct_valid = distinct_valid_labels(&sl, &valid) as usize;
        let signature = (inv_n, inv_d, distinct_valid);
        if inv_n == 0 && inv_d == 0 && signature.2 == prev_signature.2 && _cycle > 0 {
            break;
        }
        prev_signature = signature;
    }

    Ok(Refined {
        sl,
        valid,
        step,
        stats,
    })
}

/// Sorted `(label, index)` entries of the valid `S` vertices on one
/// side, collapsed into `(label, count, first_index)` runs.
fn valid_runs(labels: &[u64], keep: impl Fn(usize) -> bool) -> Vec<(u64, u32, u32)> {
    let mut entries: Vec<(u64, u32)> = labels
        .iter()
        .enumerate()
        .filter(|&(i, _)| keep(i))
        .map(|(i, &l)| (l, i as u32))
        .collect();
    entries.sort_unstable();
    let mut runs: Vec<(u64, u32, u32)> = Vec::new();
    for (l, i) in entries {
        match runs.last_mut() {
            Some((rl, c, _)) if *rl == l => *c += 1,
            _ => runs.push((l, 1, i)),
        }
    }
    runs
}

/// Candidate-vector selection: picks the key vertex per policy from the
/// refined partitions and materializes its candidate images.
fn select(
    s: &CompiledCircuit,
    trace: &mut GTrace,
    policy: KeyPolicy,
    refined: Refined,
    mut events: Option<&mut EventBuffer>,
) -> Phase1Output {
    let Refined {
        sl,
        valid,
        step,
        mut stats,
    } = refined;
    let empty = |stats: Phase1Stats| Phase1Output {
        key: None,
        candidates: Vec::new(),
        stats: Phase1Stats {
            proven_empty: true,
            ..stats
        },
        interrupted: None,
    };
    let g = Arc::clone(&trace.g);
    // Use the cached G partitions at the step we stopped on. Global
    // nets are filtered out of the (at most |S|) partitions we actually
    // inspect, keeping per-pattern cost near-independent of |G|.
    let data = trace.step(step);

    // Valid S vertices per label as sorted runs, so we can report the
    // key's partition size and verify |P_g| >= |P_s| one last time.
    let s_dev_runs = valid_runs(&sl.dev, |i| valid.dev[i]);
    let s_net_runs = valid_runs(&sl.net, |i| {
        valid.net[i] && !s.is_global(NetId::new(i as u32))
    });

    // Non-global G net partition members for exactly the labels we may
    // anchor on, keyed in run (= ascending label) order.
    let mut g_net_parts: Vec<(u64, Vec<u32>)> = s_net_runs
        .iter()
        .map(|&(l, _, _)| {
            let members: Vec<u32> = data
                .net_parts
                .members(l)
                .iter()
                .map(|&(_, gi)| gi)
                .filter(|&gi| !g.is_global(NetId::new(gi)))
                .collect();
            (l, members)
        })
        .collect();

    // Enumerate viable (G-partition size, side, label, first S index)
    // choices, verifying |P_g| >= |P_s| one last time, then pick per
    // policy. Tie-breaking is deterministic by (size, side, label).
    let mut viable: Vec<(usize, u8, u64, u32)> = Vec::new();
    for &(l, sc, first) in &s_dev_runs {
        let gp = data.dev_parts.count(l);
        if gp < sc as usize {
            if let Some(ev) = events.as_deref_mut() {
                ev.push(EventKind::RefineFail {
                    round: stats.iterations as u32,
                    label: l,
                    s_count: sc,
                    g_count: gp as u32,
                });
            }
            return empty(stats);
        }
        viable.push((gp, 0u8, l, first));
    }
    for (&(l, sc, first), (_, members)) in s_net_runs.iter().zip(&g_net_parts) {
        let gp = members.len();
        if gp < sc as usize {
            if let Some(ev) = events.as_deref_mut() {
                ev.push(EventKind::RefineFail {
                    round: stats.iterations as u32,
                    label: l,
                    s_count: sc,
                    g_count: gp as u32,
                });
            }
            return empty(stats);
        }
        viable.push((gp, 1u8, l, first));
    }
    let best = match policy {
        KeyPolicy::SmallestPartition => viable
            .iter()
            .min_by_key(|&&(gp, side, l, _)| (gp, side, l))
            .copied(),
        KeyPolicy::LargestPartition => viable
            .iter()
            .max_by_key(|&&(gp, side, l, _)| (gp, side, l))
            .copied(),
        KeyPolicy::FirstValid => viable
            .iter()
            .min_by_key(|&&(_, side, _, first)| (side, first))
            .copied(),
    };
    let Some((size, side, label, first)) = best else {
        // No valid vertices at all (pattern without devices): nothing to
        // anchor on.
        return Phase1Output {
            key: None,
            candidates: Vec::new(),
            stats,
            interrupted: None,
        };
    };
    let (key, candidates): (Vertex, Vec<Vertex>) = if side == 0 {
        (
            Vertex::Device(DeviceId::new(first)),
            data.dev_parts
                .members(label)
                .iter()
                .map(|&(_, i)| Vertex::Device(DeviceId::new(i)))
                .collect(),
        )
    } else {
        let slot = g_net_parts
            .binary_search_by_key(&label, |&(l, _)| l)
            .expect("net label came from the same runs");
        (
            Vertex::Net(NetId::new(first)),
            std::mem::take(&mut g_net_parts[slot].1)
                .into_iter()
                .map(|i| Vertex::Net(NetId::new(i)))
                .collect(),
        )
    };
    if let Some(ev) = events {
        ev.push(EventKind::CvSelected {
            label,
            size: size as u32,
            key_vertex: key,
        });
    }
    stats.cv_size = size;
    stats.key_partition_size = if side == 0 {
        s_dev_runs
            .iter()
            .find(|&&(l, _, _)| l == label)
            .map_or(0, |&(_, c, _)| c as usize)
    } else {
        s_net_runs
            .iter()
            .find(|&&(l, _, _)| l == label)
            .map_or(0, |&(_, c, _)| c as usize)
    };
    Phase1Output {
        key: Some(key),
        candidates,
        stats,
        interrupted: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgemini_netlist::{instantiate, Netlist};

    fn compile(nl: &Netlist) -> Arc<CompiledCircuit> {
        Arc::new(CompiledCircuit::compile(nl))
    }

    fn inverter_cell() -> Netlist {
        let mut inv = Netlist::new("inv");
        let mos = inv.add_mos_types();
        let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
        inv.mark_port(a);
        inv.mark_port(y);
        inv.mark_global(vdd);
        inv.mark_global(gnd);
        inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        inv
    }

    fn inverter_chain(n: usize) -> Netlist {
        let inv = inverter_cell();
        let mut chip = Netlist::new("chain");
        let mut prev = chip.net("in");
        for i in 0..n {
            let next = chip.net(format!("w{i}"));
            instantiate(&mut chip, &inv, &format!("u{i}"), &[prev, next]).unwrap();
            prev = next;
        }
        chip
    }

    #[test]
    fn candidate_vector_covers_all_instances() {
        let pat = inverter_cell();
        let chip = inverter_chain(5);
        let sp = compile(&pat);
        let gp = compile(&chip);
        let out = run(&sp, &gp);
        assert!(!out.stats.proven_empty);
        let key = out.key.expect("key chosen");
        // Whatever the key is, completeness demands |CV| >= 5 images.
        assert!(out.candidates.len() >= 5, "cv={:?}", out.candidates);
        assert_eq!(out.stats.cv_size, out.candidates.len());
        // Key must come from the pattern's vertex space.
        match key {
            Vertex::Device(d) => assert!(d.index() < pat.device_count()),
            Vertex::Net(n) => assert!(n.index() < pat.net_count()),
        }
    }

    #[test]
    fn absent_device_type_proves_empty() {
        // Pattern uses a resistor; main circuit has none.
        let mut pat = Netlist::new("rc");
        let res = pat
            .add_type(subgemini_netlist::DeviceType::two_terminal("res"))
            .unwrap();
        let (a, b) = (pat.net("a"), pat.net("b"));
        pat.mark_port(a);
        pat.mark_port(b);
        pat.add_device("r1", res, &[a, b]).unwrap();
        let chip = inverter_chain(3);
        let out = run(&compile(&pat), &compile(&chip));
        assert!(out.stats.proven_empty);
        assert!(out.key.is_none());
    }

    #[test]
    fn oversized_pattern_proves_empty() {
        // Pattern needs 4 pmos; main has 2.
        let mut pat = Netlist::new("big");
        let mos = pat.add_mos_types();
        let vdd = pat.net("vdd");
        pat.mark_global(vdd);
        for i in 0..4 {
            let g = pat.net(format!("g{i}"));
            let d = pat.net(format!("d{i}"));
            pat.mark_port(g);
            pat.mark_port(d);
            pat.add_device(format!("p{i}"), mos.pmos, &[g, vdd, d])
                .unwrap();
        }
        let chip = inverter_chain(2);
        let out = run(&compile(&pat), &compile(&chip));
        assert!(out.stats.proven_empty);
    }

    #[test]
    fn closed_pattern_terminates() {
        // A ring oscillator pattern: no ports at all. Phase I must stop
        // via the stabilization guard, not loop forever.
        let inv = inverter_cell();
        let mut ring = Netlist::new("ring");
        let (a, b, c) = (ring.net("n0"), ring.net("n1"), ring.net("n2"));
        for (i, (x, y)) in [(a, b), (b, c), (c, a)].iter().enumerate() {
            instantiate(&mut ring, &inv, &format!("u{i}"), &[*x, *y]).unwrap();
        }
        // Pattern = the ring itself (no ports -> no external nets).
        let mut big = Netlist::new("big");
        let (p, q, r, s) = (big.net("m0"), big.net("m1"), big.net("m2"), big.net("m3"));
        for (i, (x, y)) in [(p, q), (q, r), (r, s), (s, p)].iter().enumerate() {
            instantiate(&mut big, &inv, &format!("v{i}"), &[*x, *y]).unwrap();
        }
        let out = run(&compile(&ring), &compile(&big));
        // 3-ring is not a subgraph of a 4-ring; Phase I may or may not
        // prove it, but it must terminate with *some* answer.
        assert!(out.stats.iterations < 100);
    }

    #[test]
    fn key_prefers_small_partitions() {
        // One NAND in a sea of inverters: anchoring on the NAND-specific
        // structure should give a small CV.
        let inv = inverter_cell();
        let mut chip = inverter_chain(8);
        // Plant a distinctive 2-high NMOS stack.
        let mos = chip.add_mos_types();
        let (x, y, z, gnd) = (
            chip.net("x"),
            chip.net("y9"),
            chip.net("z"),
            chip.net("gnd"),
        );
        chip.add_device("s1", mos.nmos, &[x, y, z]).unwrap();
        let w = chip.net("w9");
        chip.add_device("s2", mos.nmos, &[x, z, gnd]).unwrap();
        let _ = w;
        let pat = inv;
        let out = run(&compile(&pat), &compile(&chip));
        // The inverter pattern's CV must still include all 8 planted
        // inverters' key images.
        assert!(out.candidates.len() >= 8);
    }

    #[test]
    fn iterations_bounded_by_pattern_size() {
        let pat = inverter_cell();
        let chip = inverter_chain(12);
        let out = run(&compile(&pat), &compile(&chip));
        assert!(out.stats.iterations <= pat.device_count() + pat.net_count() + 4);
    }

    #[test]
    fn parallel_relabel_is_bit_identical() {
        let pat = inverter_cell();
        let chip = inverter_chain(9);
        let g = compile(&chip);
        let sp = compile(&pat);
        let mut serial = GTrace::new(Arc::clone(&g));
        let mut par = GTrace::new(Arc::clone(&g));
        par.set_relabel_workers(4);
        let a = run_with_trace(&sp, &mut serial, KeyPolicy::SmallestPartition);
        let b = run_with_trace(&sp, &mut par, KeyPolicy::SmallestPartition);
        assert_eq!(a.key, b.key);
        assert_eq!(a.candidates, b.candidates);
        assert_eq!(serial.snaps.len(), par.snaps.len());
        for (s, p) in serial.snaps.iter().zip(&par.snaps) {
            assert_eq!(s.labels.dev, p.labels.dev);
            assert_eq!(s.labels.net, p.labels.net);
        }
    }

    #[test]
    fn shared_trace_reproduces_isolated_runs() {
        // run_many over one trace must agree with one-trace-per-pattern.
        let pats = [inverter_cell(), inverter_cell()];
        let chip = inverter_chain(6);
        let g = compile(&chip);
        let compiled: Vec<Arc<CompiledCircuit>> = pats.iter().map(compile).collect();
        let refs: Vec<&CompiledCircuit> = compiled.iter().map(|c| c.as_ref()).collect();
        let many = run_many(&refs, &g, KeyPolicy::SmallestPartition);
        for (s, out) in refs.iter().zip(&many) {
            let solo = run(s, &g);
            assert_eq!(solo.key, out.key);
            assert_eq!(solo.candidates, out.candidates);
        }
    }
}
