//! Structural verification of candidate instance mappings.
//!
//! Phase II's labels are probabilistic (64-bit hashes approximating
//! exact partition labels), so a completed mapping is always re-checked
//! structurally before being reported — per the paper's "verify the
//! isomorphism mapping" step. This also pins down the reproduction's
//! instance semantics in one place:
//!
//! * device types must agree;
//! * pins must correspond under terminal equivalence classes;
//! * internal pattern nets are *induced*: their images must have exactly
//!   the same degree (no extra connections in the main circuit);
//! * external nets (ports) may have extra connections;
//! * with special nets honored, a global pattern net must map to the
//!   same-named global main net;
//! * the mapping must be injective on both devices and nets.

use std::collections::HashSet;

use subgemini_netlist::{NetId, Netlist};

use crate::instance::SubMatch;

/// Checks that `m` is a genuine instance of `pattern` inside `main`.
///
/// # Errors
///
/// Returns a human-readable description of the first violation.
pub fn verify_instance(
    pattern: &Netlist,
    main: &Netlist,
    m: &SubMatch,
    respect_globals: bool,
) -> Result<(), String> {
    if m.devices.len() != pattern.device_count() || m.nets.len() != pattern.net_count() {
        return Err(format!(
            "mapping covers {}/{} devices and {}/{} nets",
            m.devices.len(),
            pattern.device_count(),
            m.nets.len(),
            pattern.net_count()
        ));
    }
    // Injectivity.
    let dev_set: HashSet<_> = m.devices.iter().collect();
    if dev_set.len() != m.devices.len() {
        return Err("device mapping is not injective".into());
    }
    let net_set: HashSet<_> = m.nets.iter().collect();
    if net_set.len() != m.nets.len() {
        return Err("net mapping is not injective".into());
    }
    // Devices: type and class-respecting pin correspondence.
    for sd in pattern.device_ids() {
        let gd = m.device(sd);
        if gd.index() >= main.device_count() {
            return Err(format!("image {gd} of {sd} is out of range"));
        }
        let sty = pattern.device_type_of(sd);
        let gty = main.device_type_of(gd);
        if sty.name() != gty.name() {
            return Err(format!(
                "pattern device `{}` ({}) maps to `{}` ({})",
                pattern.device(sd).name(),
                sty.name(),
                main.device(gd).name(),
                gty.name()
            ));
        }
        let mut sp: Vec<(u64, NetId)> = pattern
            .device(sd)
            .pins()
            .iter()
            .enumerate()
            .map(|(i, &n)| (sty.class_multiplier(i), m.net(n)))
            .collect();
        let mut gp: Vec<(u64, NetId)> = main
            .device(gd)
            .pins()
            .iter()
            .enumerate()
            .map(|(i, &n)| (gty.class_multiplier(i), n))
            .collect();
        sp.sort_unstable();
        gp.sort_unstable();
        if sp != gp {
            return Err(format!(
                "pins of pattern device `{}` do not map onto `{}` under its terminal classes",
                pattern.device(sd).name(),
                main.device(gd).name()
            ));
        }
    }
    // Nets: induced-degree and global constraints.
    for sn in pattern.net_ids() {
        let gn = m.net(sn);
        if gn.index() >= main.net_count() {
            return Err(format!("image {gn} of {sn} is out of range"));
        }
        let snet = pattern.net_ref(sn);
        let gnet = main.net_ref(gn);
        if respect_globals && (snet.is_global() || gnet.is_global()) {
            // Special signals match only each other, by name (§IV.A).
            if !(snet.is_global() && gnet.is_global() && snet.name() == gnet.name()) {
                return Err(format!(
                    "special net constraint violated: pattern `{}` maps to `{}`",
                    snet.name(),
                    gnet.name()
                ));
            }
            continue;
        }
        let external = snet.is_port() || snet.is_global();
        if !external && snet.degree() != gnet.degree() {
            return Err(format!(
                "internal pattern net `{}` (degree {}) maps to `{}` (degree {})",
                snet.name(),
                snet.degree(),
                gnet.name(),
                gnet.degree()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgemini_netlist::DeviceId;

    fn inverter() -> Netlist {
        let mut inv = Netlist::new("inv");
        let mos = inv.add_mos_types();
        let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
        inv.mark_port(a);
        inv.mark_port(y);
        inv.mark_global(vdd);
        inv.mark_global(gnd);
        inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        inv
    }

    /// Main circuit: one inverter with extra fanout on `a` and `y`.
    fn main_with_inverter() -> Netlist {
        let mut g = Netlist::new("main");
        let mos = g.add_mos_types();
        let (a, y, vdd, gnd, z) = (
            g.net("a"),
            g.net("y"),
            g.net("vdd"),
            g.net("gnd"),
            g.net("z"),
        );
        g.mark_global(vdd);
        g.mark_global(gnd);
        g.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        g.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        g.add_device("load", mos.nmos, &[y, z, gnd]).unwrap();
        g
    }

    fn identity_match(pattern: &Netlist, main: &Netlist) -> SubMatch {
        SubMatch {
            devices: pattern
                .device_ids()
                .map(|d| main.find_device(pattern.device(d).name()).unwrap())
                .collect(),
            nets: pattern
                .net_ids()
                .map(|n| main.find_net(pattern.net_ref(n).name()).unwrap())
                .collect(),
        }
    }

    #[test]
    fn valid_instance_passes() {
        let p = inverter();
        let g = main_with_inverter();
        let m = identity_match(&p, &g);
        verify_instance(&p, &g, &m, true).unwrap();
        // External nets are allowed extra fanout: y has degree 3 in main.
        verify_instance(&p, &g, &m, false).unwrap();
    }

    #[test]
    fn non_injective_rejected() {
        let p = inverter();
        let g = main_with_inverter();
        let mut m = identity_match(&p, &g);
        m.devices[1] = m.devices[0];
        let err = verify_instance(&p, &g, &m, true).unwrap_err();
        assert!(err.contains("injective"));
    }

    #[test]
    fn wrong_type_rejected() {
        let p = inverter();
        let g = main_with_inverter();
        let mut m = identity_match(&p, &g);
        m.devices.swap(0, 1); // pmos <-> nmos
        let err = verify_instance(&p, &g, &m, true).unwrap_err();
        assert!(err.contains("maps to"));
    }

    #[test]
    fn global_name_enforced_only_when_respected() {
        let p = inverter();
        let g = main_with_inverter();
        let mut m = identity_match(&p, &g);
        // Point pattern vdd at gnd: same global status, wrong name.
        let vdd_s = p.find_net("vdd").unwrap();
        m.nets[vdd_s.index()] = g.find_net("gnd").unwrap();
        // ...and pattern gnd at vdd to keep injectivity.
        let gnd_s = p.find_net("gnd").unwrap();
        m.nets[gnd_s.index()] = g.find_net("vdd").unwrap();
        assert!(verify_instance(&p, &g, &m, true).is_err());
        // Ignoring globals, the crossed mapping is structurally wrong
        // anyway (pmos source on gnd), so pins fail:
        assert!(verify_instance(&p, &g, &m, false).is_err());
    }

    #[test]
    fn internal_degree_enforced() {
        // Pattern with an internal net: 2-transistor chain where mid is
        // internal. Main adds a tap on mid, so degree differs.
        let mut p = Netlist::new("chain");
        let mos = p.add_mos_types();
        let (a, mid, b, gnd) = (p.net("a"), p.net("mid"), p.net("b"), p.net("gnd"));
        p.mark_port(a);
        p.mark_port(b);
        p.mark_global(gnd);
        p.add_device("m1", mos.nmos, &[a, b, mid]).unwrap();
        p.add_device("m2", mos.nmos, &[a, mid, gnd]).unwrap();

        let mut g = Netlist::new("main");
        let mos2 = g.add_mos_types();
        let (a, mid, b, gnd, t) = (
            g.net("a"),
            g.net("mid"),
            g.net("b"),
            g.net("gnd"),
            g.net("t"),
        );
        g.mark_global(gnd);
        g.add_device("m1", mos2.nmos, &[a, b, mid]).unwrap();
        g.add_device("m2", mos2.nmos, &[a, mid, gnd]).unwrap();
        g.add_device("tap", mos2.nmos, &[mid, t, gnd]).unwrap();

        let m = identity_match(&p, &g);
        let err = verify_instance(&p, &g, &m, true).unwrap_err();
        assert!(err.contains("degree"), "{err}");
    }

    #[test]
    fn short_mapping_rejected() {
        let p = inverter();
        let g = main_with_inverter();
        let m = SubMatch {
            devices: vec![DeviceId::new(0)],
            nets: vec![],
        };
        assert!(verify_instance(&p, &g, &m, true).is_err());
    }
}
