//! Pass-by-pass tracing of Phase II, used to regenerate the paper's
//! Table 1.
//!
//! When [`MatchOptions::record_trace`](crate::MatchOptions) is set, the
//! first successful candidate's refinement is recorded: after every
//! relabeling pass a snapshot of all pattern labels and all touched
//! main-circuit labels is stored, with safe/matched flags. The
//! `trace_table1` example renders these snapshots with the paper's
//! symbolic letters (labels named in order of first appearance).

/// The labeling state of one vertex at the end of a pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCell {
    /// The 64-bit label.
    pub label: u64,
    /// Whether the vertex has ever been relabeled or matched.
    pub touched: bool,
    /// Whether the vertex's partition is known to contain only images.
    pub safe: bool,
    /// Whether the vertex is matched (frozen label).
    pub matched: bool,
}

/// Snapshot of both graphs after one Phase II pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// Pattern device cells, indexed by device id.
    pub s_devices: Vec<TraceCell>,
    /// Pattern net cells, indexed by net id.
    pub s_nets: Vec<TraceCell>,
    /// Touched main-circuit device cells as `(device index, cell)`.
    pub g_devices: Vec<(u32, TraceCell)>,
    /// Touched main-circuit net cells as `(net index, cell)`.
    pub g_nets: Vec<(u32, TraceCell)>,
}

/// A full Phase II trace: one snapshot per pass (pass 0 is the state
/// right after the key/candidate pair is matched).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Phase2Trace {
    /// Snapshots in pass order.
    pub passes: Vec<TraceSnapshot>,
}

impl Phase2Trace {
    /// Number of recorded passes (excluding the initial snapshot).
    pub fn pass_count(&self) -> usize {
        self.passes.len().saturating_sub(1)
    }

    /// Renders the trace in the paper's Table 1 notation: one row per
    /// vertex, one column per pass, labels shown as letters assigned in
    /// order of first appearance (`KV` is the initial key/candidate
    /// label, `*` marks safe labels, `[X]` marks matched vertices).
    ///
    /// `pattern` and `main` must be the netlists the trace was recorded
    /// against; untouched main-graph vertices are omitted.
    pub fn render(
        &self,
        pattern: &subgemini_netlist::Netlist,
        main: &subgemini_netlist::Netlist,
    ) -> String {
        use std::collections::HashMap;
        use std::fmt::Write as _;

        struct Namer {
            names: HashMap<u64, String>,
            next: usize,
        }
        impl Namer {
            fn name(&mut self, label: u64) -> String {
                if let Some(n) = self.names.get(&label) {
                    return n.clone();
                }
                let mut i = self.next;
                self.next += 1;
                let mut s = String::new();
                loop {
                    s.insert(0, (b'A' + (i % 26) as u8) as char);
                    i /= 26;
                    if i == 0 {
                        break;
                    }
                    i -= 1;
                }
                self.names.insert(label, s.clone());
                s
            }
        }
        let mut namer = Namer {
            names: HashMap::new(),
            next: 0,
        };
        if let Some(init) = self.passes.first() {
            for c in init.s_nets.iter().chain(init.s_devices.iter()) {
                if c.matched {
                    namer.names.insert(c.label, "KV".to_string());
                }
            }
        }
        let cell_text = |namer: &mut Namer, c: &TraceCell| -> String {
            if !c.touched {
                return String::new();
            }
            let base = namer.name(c.label);
            match (c.matched, c.safe) {
                (true, _) => format!("[{base}]"),
                (false, true) => format!("{base}*"),
                (false, false) => base,
            }
        };
        let passes = self.passes.len();
        let mut rows: Vec<Vec<String>> = Vec::new();
        rows.push({
            let mut r = vec!["-- subgraph S --".to_string()];
            r.extend(vec![String::new(); passes]);
            r
        });
        for d in pattern.device_ids() {
            let mut r = vec![pattern.device(d).name().to_string()];
            r.extend(
                self.passes
                    .iter()
                    .map(|p| cell_text(&mut namer, &p.s_devices[d.index()])),
            );
            rows.push(r);
        }
        for n in pattern.net_ids() {
            let mut r = vec![pattern.net_ref(n).name().to_string()];
            r.extend(
                self.passes
                    .iter()
                    .map(|p| cell_text(&mut namer, &p.s_nets[n.index()])),
            );
            rows.push(r);
        }
        rows.push({
            let mut r = vec!["-- main graph G --".to_string()];
            r.extend(vec![String::new(); passes]);
            r
        });
        for d in main.device_ids() {
            let cells: Vec<String> = self
                .passes
                .iter()
                .map(|p| {
                    p.g_devices
                        .iter()
                        .find(|(i, _)| *i == d.raw())
                        .map(|(_, c)| cell_text(&mut namer, c))
                        .unwrap_or_default()
                })
                .collect();
            if cells.iter().any(|c| !c.is_empty()) {
                let mut r = vec![main.device(d).name().to_string()];
                r.extend(cells);
                rows.push(r);
            }
        }
        for n in main.net_ids() {
            let cells: Vec<String> = self
                .passes
                .iter()
                .map(|p| {
                    p.g_nets
                        .iter()
                        .find(|(i, _)| *i == n.raw())
                        .map(|(_, c)| cell_text(&mut namer, c))
                        .unwrap_or_default()
                })
                .collect();
            if cells.iter().any(|c| !c.is_empty()) {
                let mut r = vec![main.net_ref(n).name().to_string()];
                r.extend(cells);
                rows.push(r);
            }
        }
        // Aligned output.
        let cols = passes + 1;
        let mut width = vec![0usize; cols];
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                width[i] = width[i].max(cell.len()).max(if i == 1 {
                    4
                } else if i > 1 {
                    7
                } else {
                    0
                });
            }
        }
        let mut out = String::new();
        let _ = write!(out, "{:<w$}", "vertex", w = width[0] + 2);
        let _ = write!(out, "{:<w$}", "init", w = width[1] + 2);
        for p in 1..passes {
            let _ = write!(out, "{:<w$}", format!("pass {p}"), w = width[p + 1] + 2);
        }
        out.push('\n');
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                let _ = write!(out, "{:<w$}", cell, w = width[i] + 2);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pass_count_excludes_initial_snapshot() {
        let mut t = Phase2Trace::default();
        assert_eq!(t.pass_count(), 0);
        t.passes.push(TraceSnapshot::default());
        assert_eq!(t.pass_count(), 0);
        t.passes.push(TraceSnapshot::default());
        assert_eq!(t.pass_count(), 1);
    }
}
