//! Matching options.

use std::sync::Arc;

use subgemini_netlist::{Artifact, CompiledCircuit, FingerprintIndex};

use crate::budget::{CancelToken, WorkBudget};
use crate::metrics::ProgressHook;
use crate::shard::ShardPolicy;

/// What to do when two instances want the same main-circuit device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OverlapPolicy {
    /// Report every instance, even if instances share devices (the
    /// paper's Fig. 7 inverter-in-NAND situation when special nets are
    /// ignored).
    #[default]
    AllowOverlap,
    /// First verified instance claims its devices; later instances that
    /// reuse a claimed device are dropped. This is the extraction
    /// discipline: each transistor belongs to exactly one gate.
    ClaimDevices,
}

/// How Phase I picks the key vertex / candidate vector among the valid
/// pattern partitions (ablation knob; see DESIGN.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KeyPolicy {
    /// The paper's rule: the smallest corresponding main-graph
    /// partition, minimizing Phase II work.
    #[default]
    SmallestPartition,
    /// The first valid pattern vertex in id order (devices before
    /// nets) — what a naive implementation would do.
    FirstValid,
    /// The *largest* main-graph partition — the adversarial choice,
    /// included to quantify how much the paper's rule matters.
    LargestPartition,
}

/// How parallel Phase II distributes candidates over worker threads.
/// Either way the serial merge consumes results in candidate-vector
/// order, so the choice affects wall-clock only — never results.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Phase2Scheduler {
    /// Workers claim candidates one at a time from a shared atomic
    /// cursor behind a bounded reorder window (see DESIGN.md §3e).
    /// Robust to skewed per-candidate cost — one pathological
    /// candidate no longer idles every other worker — and lets
    /// workers skip candidates whose key image the merge has already
    /// claimed under [`OverlapPolicy::ClaimDevices`].
    #[default]
    WorkStealing,
    /// The candidate vector is split into contiguous chunks, one per
    /// worker, assigned up front. Kept as an escape hatch and as the
    /// baseline the scheduler benches compare against.
    StaticChunks,
}

/// When to intersect Phase I's candidate vector against the k-hop
/// fingerprint index before Phase II (a sound prune: a fingerprint
/// mismatch proves no isomorphism; see DESIGN.md §3f).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PrunePolicy {
    /// Prune only when a prebuilt index is already available (i.e. the
    /// search was warm-started from an artifact). A cold run stays
    /// byte-identical to one without the index subsystem.
    #[default]
    Auto,
    /// Always prune, building the index on the fly if needed.
    Always,
    /// Never prune, even when an index is available.
    Never,
}

/// A warm-start handle: the compiled main circuit and its fingerprint
/// index, typically loaded from a `.sgc` artifact, shared by reference
/// across every pattern in a run.
///
/// [`prepare`](crate::Matcher) paths use the handle — skipping
/// compilation entirely — when the handle's source digest matches the
/// [`structural_digest`](subgemini_netlist::structural_digest) of the
/// main netlist and globals are respected; otherwise they fall back to
/// a fresh compile (counted as `artifact.warm_misses`).
///
/// Compared by identity (same shared allocation), like [`ProgressHook`].
#[derive(Clone)]
pub struct WarmMain(Arc<WarmMainInner>);

struct WarmMainInner {
    compiled: Arc<CompiledCircuit>,
    index: Arc<FingerprintIndex>,
    source_digest: u64,
    load_ns: u64,
}

impl WarmMain {
    /// Wraps an already-shared compiled circuit and index. `load_ns` is
    /// reported as the `artifact.load_ns` counter on warm hits.
    pub fn new(
        compiled: Arc<CompiledCircuit>,
        index: Arc<FingerprintIndex>,
        source_digest: u64,
        load_ns: u64,
    ) -> Self {
        WarmMain(Arc::new(WarmMainInner {
            compiled,
            index,
            source_digest,
            load_ns,
        }))
    }

    /// Wraps a decoded artifact.
    pub fn from_artifact(artifact: Artifact, load_ns: u64) -> Self {
        let (compiled, index, source_digest) = artifact.into_shared();
        Self::new(compiled, index, source_digest, load_ns)
    }

    /// The shared compiled main circuit.
    pub fn compiled(&self) -> &Arc<CompiledCircuit> {
        &self.0.compiled
    }

    /// The shared fingerprint index.
    pub fn index(&self) -> &Arc<FingerprintIndex> {
        &self.0.index
    }

    /// Structural digest of the netlist the artifact was compiled from.
    pub fn source_digest(&self) -> u64 {
        self.0.source_digest
    }

    /// Nanoseconds spent loading/decoding the artifact.
    pub fn load_ns(&self) -> u64 {
        self.0.load_ns
    }
}

impl std::fmt::Debug for WarmMain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmMain")
            .field("devices", &self.0.compiled.device_count())
            .field("source_digest", &self.0.source_digest)
            .finish()
    }
}

impl PartialEq for WarmMain {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for WarmMain {}

/// Options controlling a SubGemini run.
///
/// # Examples
///
/// ```
/// use subgemini::{MatchOptions, OverlapPolicy};
/// let opts = MatchOptions {
///     respect_globals: false,
///     overlap: OverlapPolicy::ClaimDevices,
///     ..MatchOptions::default()
/// };
/// assert!(!opts.respect_globals);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchOptions {
    /// Honor global (special) nets per §IV.A: a pattern `vdd` net may
    /// only match the same-named global net of the main circuit, global
    /// labels are fixed, and global rails never trigger label spreading.
    /// Default `true`.
    pub respect_globals: bool,
    /// Overlap policy for multi-instance searches.
    pub overlap: OverlapPolicy,
    /// Stop after this many verified instances (0 = unlimited).
    pub max_instances: usize,
    /// Maximum Phase II individuation guesses per candidate before the
    /// candidate is abandoned (guards pathological symmetry).
    pub max_guesses_per_candidate: usize,
    /// Maximum Phase II relabeling passes per candidate (safety valve;
    /// the algorithm normally terminates by progress detection long
    /// before this).
    pub max_passes_per_candidate: usize,
    /// Phase I key-vertex selection policy.
    pub key_policy: KeyPolicy,
    /// Worker threads for Phase II candidate verification (candidates
    /// are independent). `1` (default) runs serially; `0` uses the
    /// machine's available parallelism. Results are identical to the
    /// serial order regardless of thread count; `record_trace` forces
    /// serial execution.
    pub threads: usize,
    /// How parallel Phase II hands candidates to workers; ignored when
    /// the run is effectively serial. Default
    /// [`Phase2Scheduler::WorkStealing`].
    pub scheduler: Phase2Scheduler,
    /// Seed for the deterministic RNG that generates unique match
    /// labels. Runs with equal seeds are bit-identical.
    pub seed: u64,
    /// Record a pass-by-pass [`Phase2Trace`](crate::Phase2Trace) of the
    /// first successful candidate (used to regenerate the paper's
    /// Table 1). Off by default; tracing clones label tables every pass.
    pub record_trace: bool,
    /// Let Phase II spread labels *from* main-circuit nets matched to
    /// pattern ports. Off by default: a port's image may have huge
    /// fanout (a shared clock has one pin per flip-flop), and scanning
    /// it every pass makes per-candidate cost grow with the main
    /// circuit — the same phenomenon §IV.A describes for power rails.
    /// Suppressing it preserves correctness (matched labels still
    /// contribute when a vertex is relabeled for other reasons) and
    /// restores the paper's linear scaling; see the `port_spreading`
    /// ablation bench.
    pub spread_from_port_images: bool,
    /// Collect a [`MetricsReport`](crate::MetricsReport) (phase timers,
    /// effort counters, worker utilization) on the outcome. Off by
    /// default: when disabled no timestamps are taken and results are
    /// identical to a run without the metrics subsystem.
    pub collect_metrics: bool,
    /// Record a structured [`EventJournal`](crate::EventJournal) of
    /// search events (refinement rounds, candidate begin/end, safe-label
    /// checks, backtracks, reject reasons) on the outcome. Off by
    /// default: when disabled no event is constructed and results are
    /// byte-identical to a run without the events subsystem. When on,
    /// each worker records into its own bounded buffer (no locks, no
    /// clocks) and the merged journal is identical for every thread
    /// count.
    pub trace_events: bool,
    /// Per-candidate cap on journaled events (also applies to the
    /// Phase I scope); further events are dropped and counted in
    /// [`EventJournal::dropped`](crate::EventJournal). The cap is per
    /// candidate — not per worker — so drops are deterministic across
    /// thread counts.
    pub trace_events_cap: usize,
    /// Progress callback invoked at phase boundaries and per processed
    /// candidate (see [`ProgressEvent`](crate::ProgressEvent)). `None`
    /// (default) emits nothing.
    pub on_progress: Option<ProgressHook>,
    /// Global work budget: a cap in deterministic effort units and/or a
    /// wall-clock deadline (see [`WorkBudget`]). `None` (default) runs
    /// unbudgeted: no governor is constructed and results are
    /// byte-identical to a run without the budget subsystem. With an
    /// effort cap, the truncation point and the reported instance set
    /// are identical for every thread count; the outcome reports the
    /// stop in [`MatchOutcome::completeness`](crate::MatchOutcome).
    pub budget: Option<WorkBudget>,
    /// Cooperative cancellation flag, checked by every Phase I
    /// refinement cycle and every Phase II worker; cancelling returns
    /// the instances verified so far as a
    /// [`Truncated`](crate::Completeness::Truncated) outcome. `None`
    /// (default) is uncancellable. Compared by identity (same shared
    /// flag), like [`ProgressHook`].
    pub cancel: Option<CancelToken>,
    /// Warm-start handle holding a precompiled main circuit and
    /// fingerprint index (usually loaded from a `.sgc` artifact). Used
    /// — and shared across a whole pattern library — whenever its
    /// source digest matches the main netlist and `respect_globals` is
    /// on; otherwise the run falls back to a fresh compile. `None`
    /// (default) always compiles.
    pub warm_main: Option<WarmMain>,
    /// Fingerprint-based candidate pruning policy. The default
    /// ([`PrunePolicy::Auto`]) prunes exactly when `warm_main` supplied
    /// an index, so cold runs are byte-identical to earlier releases.
    pub prune: PrunePolicy,
    /// Session-layer request id, stamped verbatim onto
    /// [`MatchOutcome::request_id`](crate::MatchOutcome) for
    /// correlation across reports, journals, and logs. Pure metadata —
    /// the search never reads it. `None` (default) for direct core
    /// calls.
    pub request_id: Option<u64>,
    /// Sharded Phase II dispatch over contiguous device-range shards
    /// with pattern-diameter halos (see [`ShardPolicy`] and DESIGN.md
    /// §3i). [`ShardPolicy::Off`] (default) keeps the unsharded
    /// scheduler paths; any other setting changes dispatch only —
    /// instances, stats, journal, reject tallies, and truncation points
    /// stay byte-identical to the unsharded run. Ignored (treated as
    /// off) when `record_trace` forces the serial teaching path.
    pub shards: ShardPolicy,
}

impl Default for MatchOptions {
    fn default() -> Self {
        Self {
            respect_globals: true,
            overlap: OverlapPolicy::AllowOverlap,
            max_instances: 0,
            max_guesses_per_candidate: 256,
            max_passes_per_candidate: 10_000,
            key_policy: KeyPolicy::default(),
            threads: 1,
            scheduler: Phase2Scheduler::default(),
            seed: 0x5b6e_1347,
            record_trace: false,
            spread_from_port_images: false,
            collect_metrics: false,
            trace_events: false,
            trace_events_cap: 8192,
            on_progress: None,
            budget: None,
            cancel: None,
            warm_main: None,
            prune: PrunePolicy::default(),
            request_id: None,
            shards: ShardPolicy::default(),
        }
    }
}

impl MatchOptions {
    /// Resolves `threads` to a concrete worker count: `0` (auto) maps
    /// to the machine's available parallelism, anything else is taken
    /// literally. Resolved exactly once per search so every report
    /// path agrees on both the requested and the resolved value.
    pub fn resolved_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }

    /// The configuration used by the extraction engine: claim devices,
    /// respect special nets.
    pub fn extraction() -> Self {
        Self {
            overlap: OverlapPolicy::ClaimDevices,
            ..Self::default()
        }
    }

    /// Ablation configuration: ignore special nets entirely (paper
    /// Fig. 7 failure mode; also the §IV.A performance comparison).
    pub fn ignore_globals() -> Self {
        Self {
            respect_globals: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_faithful() {
        let o = MatchOptions::default();
        assert!(o.respect_globals);
        assert_eq!(o.overlap, OverlapPolicy::AllowOverlap);
        assert_eq!(o.max_instances, 0);
        assert_eq!(o.budget, None, "searches are unbudgeted by default");
        assert_eq!(o.cancel, None, "searches are uncancellable by default");
        assert_eq!(o.scheduler, Phase2Scheduler::WorkStealing);
        assert_eq!(o.warm_main, None, "cold start by default");
        assert_eq!(o.prune, PrunePolicy::Auto);
        assert_eq!(o.shards, ShardPolicy::Off, "unsharded by default");
    }

    #[test]
    fn warm_main_compares_by_identity() {
        let mut nl = subgemini_netlist::Netlist::new("t");
        let mos = nl.add_mos_types();
        let (a, b) = (nl.net("a"), nl.net("b"));
        nl.add_device("m", mos.nmos, &[a, b, a]).unwrap();
        let art = Artifact::build(&nl);
        let w1 = WarmMain::from_artifact(art.clone(), 7);
        let w2 = WarmMain::from_artifact(art, 7);
        assert_eq!(w1, w1.clone());
        assert_ne!(w1, w2, "distinct handles differ even with equal contents");
        assert_eq!(w1.load_ns(), 7);
    }

    #[test]
    fn resolved_threads_maps_auto_once() {
        let mut o = MatchOptions::default();
        assert_eq!(o.resolved_threads(), 1);
        o.threads = 3;
        assert_eq!(o.resolved_threads(), 3);
        o.threads = 0;
        assert!(o.resolved_threads() >= 1, "auto resolves to >= 1");
    }

    #[test]
    fn presets() {
        assert_eq!(
            MatchOptions::extraction().overlap,
            OverlapPolicy::ClaimDevices
        );
        assert!(!MatchOptions::ignore_globals().respect_globals);
    }
}
