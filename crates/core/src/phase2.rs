//! Phase II — verifying candidates with the safe/suspect labeling
//! search (§IV of the paper).
//!
//! For each candidate `c`, the key vertex and `c` are matched and given
//! a shared unique label. Labels then spread breadth-first, but only
//! **safe** labels participate: a `G` partition is safe iff it has the
//! same size as the equally-labeled pattern partition — then it can
//! contain only image vertices (pigeonhole over Label Invariant (2)).
//! Equal safe singleton partitions are **matched** and frozen. When no
//! progress is possible (paper Fig. 5 symmetry) the algorithm guesses a
//! match inside an equal-labeled partition and recurses. Completed
//! mappings are re-verified structurally.
//!
//! Efficiency notes mirroring the paper:
//!
//! * only *touched* `G` vertices (reached by spreading) are stored, so
//!   the per-candidate cost is proportional to the pattern size, not
//!   `|G|` — this is what makes total runtime linear in the matched
//!   devices;
//! * special nets are pre-matched by name and never *trigger*
//!   relabeling, so a power rail's huge fanout is never scanned (§IV.A's
//!   performance point) — though its fixed label still contributes when
//!   a vertex is relabeled for other reasons.
//!
//! State is dense `Vec`-indexed over the [`CompiledCircuit`]s, with an
//! **undo log** instead of per-branch cloning: every mutation during
//! search records its inverse, a [`Mark`] captures the log position
//! before a guess, and backtracking truncates the log — `O(touched)`
//! per branch, with zero allocation on the hot path after the one-time
//! [`Phase2Runner::make_state`].

use std::collections::HashMap;

use subgemini_netlist::{hashing, CompiledCircuit, DeviceId, NetId, Netlist, Vertex};

use crate::events::{EventBuffer, EventKind, RejectReason, RejectTally};
use crate::instance::{Phase2Stats, SubMatch};
use crate::metrics::Histogram;
use crate::options::MatchOptions;
use crate::trace::{Phase2Trace, TraceCell, TraceSnapshot};
use crate::verify::verify_instance;

/// One inverse operation on the search state. Rolling the log back in
/// LIFO order restores the exact prior state (list pushes pair with
/// their flag sets, so pops stay aligned).
enum UndoOp {
    SDevLabel(u32, u64),
    SNetLabel(u32, u64),
    SDevTouched(u32),
    SNetTouched(u32),
    SDevSafe(u32),
    SNetSafe(u32),
    SDevMatch(u32),
    SNetMatch(u32),
    /// Restore a previously *touched* G device's label.
    GDevLabel(u32, u64),
    GNetLabel(u32, u64),
    /// First touch of a G vertex: clears the flag and pops the touched
    /// list (the stale label slot is unreachable once untouched).
    GDevTouched(u32),
    GNetTouched(u32),
    GDevSafe(u32),
    GNetSafe(u32),
    GDevMatched(u32),
    GNetMatched(u32),
    GNetPortImage(u32),
}

/// A rollback point: undo-log length plus the scalars the log does not
/// cover.
#[derive(Clone, Copy)]
struct Mark {
    undo_len: usize,
    matched: usize,
    label_counter: u64,
    trace_len: usize,
}

/// Mutable search state for one candidate. Dense arrays both sides;
/// G-side sparsity is recovered through the touched/safe index lists.
struct State {
    s_dev: Vec<u64>,
    s_net: Vec<u64>,
    s_dev_touched: Vec<bool>,
    s_net_touched: Vec<bool>,
    s_dev_safe: Vec<bool>,
    s_net_safe: Vec<bool>,
    s_dev_match: Vec<Option<u32>>,
    s_net_match: Vec<Option<u32>>,
    /// Labels of G vertices; a slot is meaningful only while the
    /// corresponding touched flag is set.
    g_dev_label: Vec<u64>,
    g_net_label: Vec<u64>,
    g_dev_touched: Vec<bool>,
    g_net_touched: Vec<bool>,
    g_dev_safe: Vec<bool>,
    g_net_safe: Vec<bool>,
    g_dev_matched: Vec<bool>,
    g_net_matched: Vec<bool>,
    /// Main-graph nets matched to *port* (external) pattern nets. Such
    /// images may have arbitrary main-circuit fanout (think a shared
    /// clock), so — like global rails — they never trigger spreading
    /// unless the option re-enables it.
    g_net_port_image: Vec<bool>,
    /// Sparse iteration orders for the dense flags above.
    g_dev_touched_list: Vec<u32>,
    g_net_touched_list: Vec<u32>,
    g_dev_safe_list: Vec<u32>,
    g_net_safe_list: Vec<u32>,
    matched: usize,
    label_counter: u64,
    undo: Vec<UndoOp>,
    trace: Option<Phase2Trace>,
    /// Structured event journal for this worker
    /// ([`MatchOptions::trace_events`]); never rolled back — failed
    /// branches are exactly what the journal is for.
    events: Option<EventBuffer>,
    /// Backtrack-depth histogram ([`MatchOptions::collect_metrics`]).
    backtrack_hist: Option<Histogram>,
    /// Reject-reason tallies (metrics or events on).
    reject_tally: Option<RejectTally>,
    /// Why the most recent candidate's top-level branch failed.
    last_reject: Option<RejectReason>,
}

impl State {
    fn mark(&self) -> Mark {
        Mark {
            undo_len: self.undo.len(),
            matched: self.matched,
            label_counter: self.label_counter,
            trace_len: self.trace.as_ref().map_or(0, |t| t.passes.len()),
        }
    }

    /// Rolls every mutation after `m` back, restoring the state (and
    /// the trace) exactly as it was when the mark was taken.
    fn rollback(&mut self, m: &Mark) {
        while self.undo.len() > m.undo_len {
            match self.undo.pop().expect("len checked") {
                UndoOp::SDevLabel(i, l) => self.s_dev[i as usize] = l,
                UndoOp::SNetLabel(i, l) => self.s_net[i as usize] = l,
                UndoOp::SDevTouched(i) => self.s_dev_touched[i as usize] = false,
                UndoOp::SNetTouched(i) => self.s_net_touched[i as usize] = false,
                UndoOp::SDevSafe(i) => self.s_dev_safe[i as usize] = false,
                UndoOp::SNetSafe(i) => self.s_net_safe[i as usize] = false,
                UndoOp::SDevMatch(i) => self.s_dev_match[i as usize] = None,
                UndoOp::SNetMatch(i) => self.s_net_match[i as usize] = None,
                UndoOp::GDevLabel(i, l) => self.g_dev_label[i as usize] = l,
                UndoOp::GNetLabel(i, l) => self.g_net_label[i as usize] = l,
                UndoOp::GDevTouched(i) => {
                    self.g_dev_touched[i as usize] = false;
                    let popped = self.g_dev_touched_list.pop();
                    debug_assert_eq!(popped, Some(i));
                }
                UndoOp::GNetTouched(i) => {
                    self.g_net_touched[i as usize] = false;
                    let popped = self.g_net_touched_list.pop();
                    debug_assert_eq!(popped, Some(i));
                }
                UndoOp::GDevSafe(i) => {
                    self.g_dev_safe[i as usize] = false;
                    let popped = self.g_dev_safe_list.pop();
                    debug_assert_eq!(popped, Some(i));
                }
                UndoOp::GNetSafe(i) => {
                    self.g_net_safe[i as usize] = false;
                    let popped = self.g_net_safe_list.pop();
                    debug_assert_eq!(popped, Some(i));
                }
                UndoOp::GDevMatched(i) => self.g_dev_matched[i as usize] = false,
                UndoOp::GNetMatched(i) => self.g_net_matched[i as usize] = false,
                UndoOp::GNetPortImage(i) => self.g_net_port_image[i as usize] = false,
            }
        }
        self.matched = m.matched;
        self.label_counter = m.label_counter;
        if let Some(t) = self.trace.as_mut() {
            t.passes.truncate(m.trace_len);
        }
    }

    // --- logged setters (every hot-path mutation goes through these) ---

    fn set_s_dev_label(&mut self, i: usize, l: u64) {
        if self.s_dev[i] != l {
            self.undo.push(UndoOp::SDevLabel(i as u32, self.s_dev[i]));
            self.s_dev[i] = l;
        }
    }

    fn set_s_net_label(&mut self, i: usize, l: u64) {
        if self.s_net[i] != l {
            self.undo.push(UndoOp::SNetLabel(i as u32, self.s_net[i]));
            self.s_net[i] = l;
        }
    }

    fn touch_s_dev(&mut self, i: usize) {
        if !self.s_dev_touched[i] {
            self.s_dev_touched[i] = true;
            self.undo.push(UndoOp::SDevTouched(i as u32));
        }
    }

    fn touch_s_net(&mut self, i: usize) {
        if !self.s_net_touched[i] {
            self.s_net_touched[i] = true;
            self.undo.push(UndoOp::SNetTouched(i as u32));
        }
    }

    fn set_s_dev_safe(&mut self, i: usize) -> bool {
        if self.s_dev_safe[i] {
            return false;
        }
        self.s_dev_safe[i] = true;
        self.undo.push(UndoOp::SDevSafe(i as u32));
        true
    }

    fn set_s_net_safe(&mut self, i: usize) -> bool {
        if self.s_net_safe[i] {
            return false;
        }
        self.s_net_safe[i] = true;
        self.undo.push(UndoOp::SNetSafe(i as u32));
        true
    }

    fn set_s_dev_match(&mut self, i: usize, g: u32) {
        debug_assert!(self.s_dev_match[i].is_none());
        self.s_dev_match[i] = Some(g);
        self.undo.push(UndoOp::SDevMatch(i as u32));
    }

    fn set_s_net_match(&mut self, i: usize, g: u32) {
        debug_assert!(self.s_net_match[i].is_none());
        self.s_net_match[i] = Some(g);
        self.undo.push(UndoOp::SNetMatch(i as u32));
    }

    fn set_g_dev_label(&mut self, i: u32, l: u64) {
        if self.g_dev_touched[i as usize] {
            self.undo
                .push(UndoOp::GDevLabel(i, self.g_dev_label[i as usize]));
        } else {
            self.g_dev_touched[i as usize] = true;
            self.g_dev_touched_list.push(i);
            self.undo.push(UndoOp::GDevTouched(i));
        }
        self.g_dev_label[i as usize] = l;
    }

    fn set_g_net_label(&mut self, i: u32, l: u64) {
        if self.g_net_touched[i as usize] {
            self.undo
                .push(UndoOp::GNetLabel(i, self.g_net_label[i as usize]));
        } else {
            self.g_net_touched[i as usize] = true;
            self.g_net_touched_list.push(i);
            self.undo.push(UndoOp::GNetTouched(i));
        }
        self.g_net_label[i as usize] = l;
    }

    fn set_g_dev_safe(&mut self, i: u32) -> bool {
        if self.g_dev_safe[i as usize] {
            return false;
        }
        self.g_dev_safe[i as usize] = true;
        self.g_dev_safe_list.push(i);
        self.undo.push(UndoOp::GDevSafe(i));
        true
    }

    fn set_g_net_safe(&mut self, i: u32) -> bool {
        if self.g_net_safe[i as usize] {
            return false;
        }
        self.g_net_safe[i as usize] = true;
        self.g_net_safe_list.push(i);
        self.undo.push(UndoOp::GNetSafe(i));
        true
    }

    fn set_g_dev_matched(&mut self, i: u32) {
        debug_assert!(!self.g_dev_matched[i as usize]);
        self.g_dev_matched[i as usize] = true;
        self.undo.push(UndoOp::GDevMatched(i));
    }

    fn set_g_net_matched(&mut self, i: u32) {
        debug_assert!(!self.g_net_matched[i as usize]);
        self.g_net_matched[i as usize] = true;
        self.undo.push(UndoOp::GNetMatched(i));
    }

    fn set_g_net_port_image(&mut self, i: u32) {
        if !self.g_net_port_image[i as usize] {
            self.g_net_port_image[i as usize] = true;
            self.undo.push(UndoOp::GNetPortImage(i));
        }
    }
}

enum Refined {
    /// All pattern vertices matched (state left in the completed
    /// configuration).
    Complete,
    /// Partition inconsistency: this branch cannot succeed.
    Fail,
    /// No progress without a guess.
    Stuck,
    /// The per-candidate pass budget ran out while passes were still
    /// making progress. Treated like a stall (guessing may still
    /// resolve it) but reported distinctly so exhaustion is never
    /// silent.
    PassBudget,
}

/// Phase II driver bound to one (pattern, main) pair.
pub struct Phase2Runner<'a> {
    s: &'a CompiledCircuit,
    g: &'a CompiledCircuit,
    pattern: &'a Netlist,
    main: &'a Netlist,
    opts: &'a MatchOptions,
}

impl<'a> Phase2Runner<'a> {
    /// Creates a runner. `s`/`g` must be compiled from `pattern`/`main`.
    pub fn new(
        s: &'a CompiledCircuit,
        g: &'a CompiledCircuit,
        pattern: &'a Netlist,
        main: &'a Netlist,
        opts: &'a MatchOptions,
    ) -> Self {
        Self {
            s,
            g,
            pattern,
            main,
            opts,
        }
    }

    /// Builds the candidate-independent pre-match recipe: special nets
    /// matched by name. Returns `None` when a pattern global has no
    /// global counterpart in the main circuit (no instance can exist).
    pub fn base_state(&self) -> Option<BaseState> {
        let mut prematch: Vec<(u32, u32, u64)> = Vec::new();
        for i in 0..self.s.net_count() {
            let n = NetId::new(i as u32);
            if !self.s.is_global(n) {
                continue;
            }
            let name = self.pattern.net_ref(n).name();
            let gm = self.g.find_global(name)?;
            prematch.push((n.raw(), gm.raw(), self.s.initial_net_label(n)));
        }
        Some(BaseState { prematch })
    }

    /// Materializes the dense search state for `base`, sized to the
    /// compiled graphs. Expensive relative to a candidate (`O(|G|)`),
    /// so build it once per worker and reuse it: `run_candidate`
    /// restores it to the base configuration before returning.
    pub fn make_state(&self, base: &BaseState) -> SearchState {
        let nd = self.s.device_count();
        let nn = self.s.net_count();
        let gd = self.g.device_count();
        let gn = self.g.net_count();
        let mut st = State {
            s_dev: (0..nd)
                .map(|i| self.s.initial_device_label(DeviceId::new(i as u32)))
                .collect(),
            s_net: vec![0; nn],
            s_dev_touched: vec![false; nd],
            s_net_touched: vec![false; nn],
            s_dev_safe: vec![false; nd],
            s_net_safe: vec![false; nn],
            s_dev_match: vec![None; nd],
            s_net_match: vec![None; nn],
            g_dev_label: vec![0; gd],
            g_net_label: vec![0; gn],
            g_dev_touched: vec![false; gd],
            g_net_touched: vec![false; gn],
            g_dev_safe: vec![false; gd],
            g_net_safe: vec![false; gn],
            g_dev_matched: vec![false; gd],
            g_net_matched: vec![false; gn],
            g_net_port_image: vec![false; gn],
            g_dev_touched_list: Vec::new(),
            g_net_touched_list: Vec::new(),
            g_dev_safe_list: Vec::new(),
            g_net_safe_list: Vec::new(),
            matched: 0,
            label_counter: 0,
            undo: Vec::new(),
            trace: None,
            events: self
                .opts
                .trace_events
                .then(|| EventBuffer::new(self.opts.trace_events_cap)),
            backtrack_hist: self.opts.collect_metrics.then(Histogram::default),
            reject_tally: (self.opts.collect_metrics || self.opts.trace_events)
                .then(RejectTally::default),
            last_reject: None,
        };
        // The pre-matches form the permanent floor of the state: applied
        // without undo logging, they survive every rollback.
        for &(si, gi, label) in &base.prematch {
            let si = si as usize;
            st.s_net[si] = label;
            st.s_net_touched[si] = true;
            st.s_net_safe[si] = true;
            st.s_net_match[si] = Some(gi);
            st.g_net_label[gi as usize] = label;
            st.g_net_touched[gi as usize] = true;
            st.g_net_touched_list.push(gi);
            st.g_net_safe[gi as usize] = true;
            st.g_net_safe_list.push(gi);
            st.g_net_matched[gi as usize] = true;
            st.matched += 1;
        }
        SearchState {
            state: st,
            base_matched: base.prematch.len(),
        }
    }

    fn total_s(&self) -> usize {
        self.s.device_count() + self.s.net_count()
    }

    fn fresh_label(&self, st: &mut State) -> u64 {
        st.label_counter += 1;
        hashing::mix(self.opts.seed ^ st.label_counter.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn g_dev_label(&self, st: &State, i: u32) -> u64 {
        if st.g_dev_touched[i as usize] {
            st.g_dev_label[i as usize]
        } else {
            self.g.initial_device_label(DeviceId::new(i))
        }
    }

    fn g_net_label(&self, st: &State, i: u32) -> u64 {
        let n = NetId::new(i);
        if self.g.is_global(n) {
            return self.g.initial_net_label(n);
        }
        if st.g_net_touched[i as usize] {
            st.g_net_label[i as usize]
        } else {
            0
        }
    }

    fn do_match(&self, st: &mut State, s_v: Vertex, g_v: Vertex) {
        let label = self.fresh_label(st);
        match (s_v, g_v) {
            (Vertex::Device(sd), Vertex::Device(gd)) => {
                st.set_s_dev_label(sd.index(), label);
                st.touch_s_dev(sd.index());
                st.set_s_dev_safe(sd.index());
                st.set_s_dev_match(sd.index(), gd.raw());
                st.set_g_dev_label(gd.raw(), label);
                st.set_g_dev_safe(gd.raw());
                st.set_g_dev_matched(gd.raw());
            }
            (Vertex::Net(sn), Vertex::Net(gn)) => {
                st.set_s_net_label(sn.index(), label);
                st.touch_s_net(sn.index());
                st.set_s_net_safe(sn.index());
                st.set_s_net_match(sn.index(), gn.raw());
                st.set_g_net_label(gn.raw(), label);
                st.set_g_net_safe(gn.raw());
                st.set_g_net_matched(gn.raw());
                if !self.opts.spread_from_port_images && self.s.is_port(sn) {
                    st.set_g_net_port_image(gn.raw());
                }
            }
            _ => unreachable!("guesses always pair same-kind vertices"),
        }
        st.matched += 1;
    }

    /// One Jacobi relabeling pass over both graphs: every unmatched
    /// vertex with at least one safe, non-global-net neighbor is
    /// relabeled from the labels of its safe neighbors.
    fn pass(&self, st: &mut State) {
        // --- pattern side ---
        let mut s_dev_new: Vec<(usize, u64)> = Vec::new();
        for i in 0..st.s_dev.len() {
            if st.s_dev_match[i].is_some() {
                continue;
            }
            let d = DeviceId::new(i as u32);
            let triggered = self.s.device_neighbors(d).any(|(n, _)| {
                st.s_net_safe[n.index()]
                    && !self.s.is_global(n)
                    && !(!self.opts.spread_from_port_images
                        && st.s_net_match[n.index()].is_some()
                        && self.s.is_port(n))
            });
            if !triggered {
                continue;
            }
            let c = self
                .s
                .device_contribs(d, |n| st.s_net_safe[n.index()].then(|| st.s_net[n.index()]));
            s_dev_new.push((i, hashing::relabel(st.s_dev[i], c.sum)));
        }
        let mut s_net_new: Vec<(usize, u64)> = Vec::new();
        for i in 0..st.s_net.len() {
            if st.s_net_match[i].is_some() || self.s.is_global(NetId::new(i as u32)) {
                continue;
            }
            let n = NetId::new(i as u32);
            let triggered = self
                .s
                .net_neighbors(n)
                .any(|(d, _)| st.s_dev_safe[d.index()]);
            if !triggered {
                continue;
            }
            let c = self
                .s
                .net_contribs(n, |d| st.s_dev_safe[d.index()].then(|| st.s_dev[d.index()]));
            s_net_new.push((i, hashing::relabel(st.s_net[i], c.sum)));
        }
        // --- main side: collect frontier from the safe lists ---
        let mut g_dev_frontier: Vec<u32> = Vec::new();
        for &ni in &st.g_net_safe_list {
            let n = NetId::new(ni);
            if self.g.is_global(n) || st.g_net_port_image[ni as usize] {
                continue; // rails and port images never trigger spreading
            }
            for (d, _) in self.g.net_neighbors(n) {
                if !st.g_dev_matched[d.index()] {
                    g_dev_frontier.push(d.raw());
                }
            }
        }
        g_dev_frontier.sort_unstable();
        g_dev_frontier.dedup();
        let mut g_net_frontier: Vec<u32> = Vec::new();
        for &di in &st.g_dev_safe_list {
            let d = DeviceId::new(di);
            for (n, _) in self.g.device_neighbors(d) {
                if !self.g.is_global(n) && !st.g_net_matched[n.index()] {
                    g_net_frontier.push(n.raw());
                }
            }
        }
        g_net_frontier.sort_unstable();
        g_net_frontier.dedup();
        let mut g_dev_new: Vec<(u32, u64)> = Vec::with_capacity(g_dev_frontier.len());
        for &i in &g_dev_frontier {
            let d = DeviceId::new(i);
            let c = self.g.device_contribs(d, |n| {
                st.g_net_safe[n.index()].then(|| self.g_net_label(st, n.raw()))
            });
            g_dev_new.push((i, hashing::relabel(self.g_dev_label(st, i), c.sum)));
        }
        let mut g_net_new: Vec<(u32, u64)> = Vec::with_capacity(g_net_frontier.len());
        for &i in &g_net_frontier {
            let n = NetId::new(i);
            let c = self.g.net_contribs(n, |d| {
                st.g_dev_safe[d.index()].then(|| self.g_dev_label(st, d.raw()))
            });
            g_net_new.push((i, hashing::relabel(self.g_net_label(st, i), c.sum)));
        }
        // --- commit (Jacobi) ---
        for (i, l) in s_dev_new {
            st.set_s_dev_label(i, l);
            st.touch_s_dev(i);
        }
        for (i, l) in s_net_new {
            st.set_s_net_label(i, l);
            st.touch_s_net(i);
        }
        for (i, l) in g_dev_new {
            st.set_g_dev_label(i, l);
        }
        for (i, l) in g_net_new {
            st.set_g_net_label(i, l);
        }
    }

    /// Builds the label partitions over unmatched touched vertices.
    fn partitions(&self, st: &State) -> HashMap<(u8, u64), (Vec<u32>, Vec<u32>)> {
        let mut parts: HashMap<(u8, u64), (Vec<u32>, Vec<u32>)> = HashMap::new();
        for i in 0..st.s_dev.len() {
            if st.s_dev_match[i].is_none() && st.s_dev_touched[i] {
                parts.entry((0, st.s_dev[i])).or_default().0.push(i as u32);
            }
        }
        for i in 0..st.s_net.len() {
            if st.s_net_match[i].is_none() && st.s_net_touched[i] {
                parts.entry((1, st.s_net[i])).or_default().0.push(i as u32);
            }
        }
        for &i in &st.g_dev_touched_list {
            if !st.g_dev_matched[i as usize] {
                parts
                    .entry((0, st.g_dev_label[i as usize]))
                    .or_default()
                    .1
                    .push(i);
            }
        }
        for &i in &st.g_net_touched_list {
            if !st.g_net_matched[i as usize] {
                parts
                    .entry((1, st.g_net_label[i as usize]))
                    .or_default()
                    .1
                    .push(i);
            }
        }
        // Deterministic member order regardless of hash iteration.
        for (sv, gv) in parts.values_mut() {
            sv.sort_unstable();
            gv.sort_unstable();
        }
        parts
    }

    /// Consistency + safety + singleton matching. `Err(())` on a proven
    /// inconsistency; otherwise returns `(progress, complete)`.
    ///
    /// Partitions are processed in sorted `(kind, label)` order, not hash
    /// order: the order determines which singleton gets the next fresh
    /// match label, and fixing it keeps every label value — and hence the
    /// event journal — identical across runs and thread counts.
    fn analyze(&self, st: &mut State) -> Result<(bool, bool), ()> {
        let parts = self.partitions(st);
        let mut keys: Vec<(u8, u64)> = parts.keys().copied().collect();
        keys.sort_unstable();
        let mut progress = false;
        let mut to_match: Vec<(u8, u32, u32)> = Vec::new();
        for &(kind, label) in &keys {
            let (sv, gv) = &parts[&(kind, label)];
            if sv.is_empty() {
                continue; // main-graph-only garbage partition
            }
            if st.events.is_some() {
                let safe = sv.len() == gv.len();
                if let Some(ev) = st.events.as_mut() {
                    ev.push(EventKind::SafeLabelCheck {
                        label,
                        s_size: sv.len() as u32,
                        g_size: gv.len() as u32,
                        safe,
                    });
                }
            }
            if sv.len() > gv.len() {
                return Err(()); // Label Invariant (2) violated
            }
            if sv.len() == gv.len() {
                // Equal sizes: the G partition holds only images — safe.
                for &i in sv {
                    let newly = if kind == 0 {
                        st.set_s_dev_safe(i as usize)
                    } else {
                        st.set_s_net_safe(i as usize)
                    };
                    progress |= newly;
                }
                for &i in gv {
                    let inserted = if kind == 0 {
                        st.set_g_dev_safe(i)
                    } else {
                        st.set_g_net_safe(i)
                    };
                    progress |= inserted;
                }
                if sv.len() == 1 {
                    to_match.push((kind, sv[0], gv[0]));
                }
            }
        }
        for (kind, si, gi) in to_match {
            if kind == 0 {
                self.do_match(
                    st,
                    Vertex::Device(DeviceId::new(si)),
                    Vertex::Device(DeviceId::new(gi)),
                );
            } else {
                self.do_match(st, Vertex::Net(NetId::new(si)), Vertex::Net(NetId::new(gi)));
            }
            progress = true;
        }
        Ok((progress, st.matched == self.total_s()))
    }

    fn snapshot(&self, st: &State) -> TraceSnapshot {
        let cell_s_dev = |i: usize| TraceCell {
            label: st.s_dev[i],
            touched: st.s_dev_touched[i],
            safe: st.s_dev_safe[i],
            matched: st.s_dev_match[i].is_some(),
        };
        let cell_s_net = |i: usize| TraceCell {
            label: st.s_net[i],
            touched: st.s_net_touched[i],
            safe: st.s_net_safe[i],
            matched: st.s_net_match[i].is_some(),
        };
        let mut g_devices: Vec<(u32, TraceCell)> = st
            .g_dev_touched_list
            .iter()
            .map(|&i| {
                (
                    i,
                    TraceCell {
                        label: st.g_dev_label[i as usize],
                        touched: true,
                        safe: st.g_dev_safe[i as usize],
                        matched: st.g_dev_matched[i as usize],
                    },
                )
            })
            .collect();
        g_devices.sort_unstable_by_key(|&(i, _)| i);
        let mut g_nets: Vec<(u32, TraceCell)> = st
            .g_net_touched_list
            .iter()
            .map(|&i| {
                (
                    i,
                    TraceCell {
                        label: st.g_net_label[i as usize],
                        touched: true,
                        safe: st.g_net_safe[i as usize],
                        matched: st.g_net_matched[i as usize],
                    },
                )
            })
            .collect();
        g_nets.sort_unstable_by_key(|&(i, _)| i);
        TraceSnapshot {
            s_devices: (0..st.s_dev.len()).map(cell_s_dev).collect(),
            s_nets: (0..st.s_net.len()).map(cell_s_net).collect(),
            g_devices,
            g_nets,
        }
    }

    /// Runs relabeling passes until completion, failure, or a stall.
    /// On `Fail` the state is left dirty — the caller rolls back.
    fn refine(&self, st: &mut State, stats: &mut Phase2Stats) -> Refined {
        for _ in 0..self.opts.max_passes_per_candidate {
            stats.passes += 1;
            self.pass(st);
            let analyzed = self.analyze(st);
            if st.trace.is_some() {
                let snap = self.snapshot(st);
                if let Some(trace) = st.trace.as_mut() {
                    trace.passes.push(snap);
                }
            }
            match analyzed {
                Err(()) => return Refined::Fail,
                Ok((_, true)) => return Refined::Complete,
                Ok((false, false)) => return Refined::Stuck,
                Ok((true, false)) => {}
            }
        }
        // Pass budget exhausted while still progressing: guessing may
        // still resolve it, but the exhaustion must surface as its own
        // reject reason if the candidate ultimately fails.
        Refined::PassBudget
    }

    /// Chooses the next ambiguity to guess on: the unmatched pattern
    /// vertex whose label has the smallest main-graph partition.
    fn choose_guess(&self, st: &State) -> Option<(Vertex, Vec<Vertex>)> {
        let parts = self.partitions(st);
        let mut best: Option<(usize, u8, u64)> = None;
        for (&(kind, label), (sv, gv)) in &parts {
            if sv.is_empty() || gv.len() < sv.len() {
                continue;
            }
            let cand = (gv.len(), kind, label);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        if let Some((_, kind, label)) = best {
            let (sv, gv) = &parts[&(kind, label)];
            let s_v = if kind == 0 {
                Vertex::Device(DeviceId::new(sv[0]))
            } else {
                Vertex::Net(NetId::new(sv[0]))
            };
            let cands = gv
                .iter()
                .map(|&i| {
                    if kind == 0 {
                        Vertex::Device(DeviceId::new(i))
                    } else {
                        Vertex::Net(NetId::new(i))
                    }
                })
                .collect();
            return Some((s_v, cands));
        }
        // Anchored fallback: a pattern device that was never reached by
        // spreading (all its nets are rails or suppressed port images)
        // but has at least one *matched* pin. Its image must sit on the
        // images of those pins, so enumerate the smallest such fanout
        // instead of relabeling it wholesale — this keeps port-image
        // suppression linear without losing completeness.
        let mut best_anchor: Option<(usize, u32, Vec<Vertex>)> = None;
        for i in 0..st.s_dev.len() {
            if st.s_dev_match[i].is_some() || st.s_dev_touched[i] {
                continue;
            }
            let sd = DeviceId::new(i as u32);
            // Matched pins as (class multiplier, image net) requirements.
            let mut required: Vec<(u64, u32)> = Vec::new();
            for (n, mult) in self.s.device_neighbors(sd) {
                if let Some(g) = st.s_net_match[n.index()] {
                    required.push((mult, g));
                }
            }
            if required.is_empty() {
                continue;
            }
            // Anchor on the matched image with the smallest fanout.
            let &(_, anchor) = required
                .iter()
                .min_by_key(|&&(_, g)| self.g.net_degree(NetId::new(g)))
                .expect("required is non-empty");
            required.sort_unstable();
            let want = self.s.initial_device_label(sd);
            let mut cands: Vec<Vertex> = Vec::new();
            for (gd, _) in self.g.net_neighbors(NetId::new(anchor)) {
                if st.g_dev_matched[gd.index()] || self.g.initial_device_label(gd) != want {
                    continue;
                }
                // The candidate's pins must cover every matched-pin
                // requirement (sub-multiset check).
                let mut have: Vec<(u64, u32)> = self
                    .g
                    .device_neighbors(gd)
                    .map(|(n, mult)| (mult, n.raw()))
                    .collect();
                have.sort_unstable();
                let mut hi = 0;
                let covered = required.iter().all(|req| {
                    while hi < have.len() && have[hi] < *req {
                        hi += 1;
                    }
                    if hi < have.len() && have[hi] == *req {
                        hi += 1;
                        true
                    } else {
                        false
                    }
                });
                if covered && !cands.contains(&Vertex::Device(gd)) {
                    cands.push(Vertex::Device(gd));
                }
            }
            if cands.is_empty() {
                // An unreachable device with no possible image: fail the
                // branch outright.
                return None;
            }
            if best_anchor
                .as_ref()
                .is_none_or(|(n, _, _)| cands.len() < *n)
            {
                best_anchor = Some((cands.len(), i as u32, cands));
            }
        }
        if let Some((_, i, cands)) = best_anchor {
            return Some((Vertex::Device(DeviceId::new(i)), cands));
        }
        // Last resort for disconnected patterns: anchor an untouched
        // pattern device on any unmatched main device still carrying the
        // same initial label.
        for i in 0..st.s_dev.len() {
            if st.s_dev_match[i].is_some() || st.s_dev_touched[i] {
                continue;
            }
            let want = st.s_dev[i]; // untouched: still the initial label
            let cands: Vec<Vertex> = (0..self.g.device_count() as u32)
                .filter(|&gi| !st.g_dev_matched[gi as usize] && self.g_dev_label(st, gi) == want)
                .map(|gi| Vertex::Device(DeviceId::new(gi)))
                .collect();
            if !cands.is_empty() {
                return Some((Vertex::Device(DeviceId::new(i as u32)), cands));
            }
            return None;
        }
        None
    }

    fn build_submatch(&self, st: &State) -> SubMatch {
        SubMatch {
            devices: st
                .s_dev_match
                .iter()
                .map(|m| DeviceId::new(m.expect("complete mapping")))
                .collect(),
            nets: st
                .s_net_match
                .iter()
                .map(|m| NetId::new(m.expect("complete mapping")))
                .collect(),
        }
    }

    /// The recursive `VerifyImage(K, CV)` of §IV, for one key/candidate
    /// set. `depth > 0` calls are ambiguity guesses and consume the
    /// guess budget. Returns `true` with the state left in the
    /// completed configuration; `false` with the state rolled back to
    /// where the caller left it.
    fn verify_image(
        &self,
        st: &mut State,
        s_v: Vertex,
        cands: &[Vertex],
        stats: &mut Phase2Stats,
        guesses_left: &mut usize,
        depth: usize,
    ) -> bool {
        for &c in cands {
            if depth > 0 {
                if *guesses_left == 0 {
                    return false;
                }
                *guesses_left -= 1;
                stats.guesses += 1;
            }
            let mark = st.mark();
            self.do_match(st, s_v, c);
            if st.trace.is_some() {
                let snap = self.snapshot(st);
                if let Some(trace) = st.trace.as_mut() {
                    trace.passes.push(snap);
                }
            }
            let reason = match self.refine(st, stats) {
                Refined::Complete => {
                    let m = self.build_submatch(st);
                    if verify_instance(self.pattern, self.main, &m, self.opts.respect_globals)
                        .is_ok()
                    {
                        return true;
                    }
                    // Label collision survived to completion: reject.
                    RejectReason::LabelConflict
                }
                Refined::Fail => RejectReason::UnsafePartition,
                refined @ (Refined::Stuck | Refined::PassBudget) => {
                    let passes_out = matches!(refined, Refined::PassBudget);
                    match self.choose_guess(st) {
                        Some((s_next, g_cands)) => {
                            if self.verify_image(
                                st,
                                s_next,
                                &g_cands,
                                stats,
                                guesses_left,
                                depth + 1,
                            ) {
                                return true;
                            }
                            // The pass budget is the root cause when the
                            // stall itself came from exhausting it.
                            if passes_out {
                                RejectReason::PassBudgetExhausted
                            } else if *guesses_left == 0 {
                                RejectReason::BudgetExhausted
                            } else {
                                RejectReason::BacktrackExhausted
                            }
                        }
                        None => {
                            if passes_out {
                                RejectReason::PassBudgetExhausted
                            } else {
                                RejectReason::NoViableGuess
                            }
                        }
                    }
                }
            };
            let undo_ops = st.undo.len() - mark.undo_len;
            st.rollback(&mark);
            if depth > 0 {
                stats.backtracks += 1;
                if let Some(ev) = st.events.as_mut() {
                    ev.push(EventKind::Backtrack {
                        depth: depth as u32,
                        undo_ops: undo_ops as u32,
                    });
                }
                if let Some(h) = st.backtrack_hist.as_mut() {
                    h.record(depth as u64);
                }
            } else {
                st.last_reject = Some(reason);
            }
        }
        false
    }

    /// Verifies one candidate from the candidate vector against a
    /// reusable search state (see [`make_state`](Self::make_state)).
    /// Returns the instance (and its trace if enabled); the state is
    /// always restored to the base configuration before returning.
    /// `rank` is the candidate's index in the candidate vector — the
    /// deterministic scope of its journal events.
    #[allow(clippy::too_many_arguments)]
    pub fn run_candidate(
        &self,
        search: &mut SearchState,
        key: Vertex,
        candidate: Vertex,
        rank: u32,
        stats: &mut Phase2Stats,
        record_trace: bool,
    ) -> Option<(SubMatch, Option<Phase2Trace>)> {
        stats.candidates_tried += 1;
        if let Some(ev) = search.state.events.as_mut() {
            ev.begin_candidate(rank);
            ev.push(EventKind::CandidateBegin { c: candidate });
        }
        let reject = |search: &mut SearchState, stats: &mut Phase2Stats, reason: RejectReason| {
            stats.false_candidates += 1;
            if let Some(t) = search.state.reject_tally.as_mut() {
                t.bump(reason);
            }
            if let Some(ev) = search.state.events.as_mut() {
                ev.push(EventKind::Reject { reason });
                ev.push(EventKind::CandidateEnd {
                    c: candidate,
                    matched: false,
                });
            }
        };
        // Reject same-kind mismatches immediately (cannot happen with a
        // well-formed candidate vector, but keeps the API total).
        if key.is_device() != candidate.is_device() {
            reject(search, stats, RejectReason::KindMismatch);
            return None;
        }
        // Quick type check for device keys.
        if let (Vertex::Device(sd), Vertex::Device(gd)) = (key, candidate) {
            if self.s.initial_device_label(sd) != self.g.initial_device_label(gd) {
                reject(search, stats, RejectReason::DegreeMismatch);
                return None;
            }
        }
        let st = &mut search.state;
        st.trace = record_trace.then(Phase2Trace::default);
        st.last_reject = None;
        let base_mark = Mark {
            undo_len: 0,
            matched: search.base_matched,
            label_counter: 0,
            trace_len: 0,
        };
        let mut guesses_left = self.opts.max_guesses_per_candidate;
        // Fault injection (test-only; folds to nothing in release): a
        // guess storm burns budget through the real counters so every
        // thread count charges this candidate identically; a stall just
        // sleeps here.
        match crate::budget::failpoint::get("phase2.candidate") {
            Some(crate::budget::failpoint::Action::GuessStorm(n)) => {
                let burn = (n as usize).min(guesses_left);
                guesses_left -= burn;
                stats.guesses += burn;
            }
            Some(crate::budget::failpoint::Action::StallMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            _ => {}
        }
        let out = if self.verify_image(st, key, &[candidate], stats, &mut guesses_left, 0) {
            let m = self.build_submatch(st);
            Some((m, st.trace.take()))
        } else {
            stats.false_candidates += 1;
            let reason = st.last_reject.unwrap_or(RejectReason::NoViableGuess);
            if let Some(t) = st.reject_tally.as_mut() {
                t.bump(reason);
            }
            if let Some(ev) = st.events.as_mut() {
                ev.push(EventKind::Reject { reason });
            }
            None
        };
        if let Some(ev) = st.events.as_mut() {
            ev.push(EventKind::CandidateEnd {
                c: candidate,
                matched: out.is_some(),
            });
        }
        st.rollback(&base_mark);
        st.trace = None;
        out
    }

    /// [`run_candidate`](Self::run_candidate) with optional per-candidate
    /// timing: when `timing` is set, the candidate's verification
    /// wall-clock is added to the accumulator (sum, max, latency
    /// histogram). `None` takes no timestamps.
    #[allow(clippy::too_many_arguments)]
    pub fn run_candidate_timed(
        &self,
        search: &mut SearchState,
        key: Vertex,
        candidate: Vertex,
        rank: u32,
        stats: &mut Phase2Stats,
        record_trace: bool,
        timing: Option<&mut CandidateTiming>,
    ) -> Option<(SubMatch, Option<Phase2Trace>)> {
        let Some(t) = timing else {
            return self.run_candidate(search, key, candidate, rank, stats, record_trace);
        };
        let timer = crate::metrics::PhaseTimer::start();
        let out = self.run_candidate(search, key, candidate, rank, stats, record_trace);
        let ns = timer.elapsed_ns();
        t.sum_ns += ns;
        t.max_ns = t.max_ns.max(ns);
        t.hist.record(ns);
        out
    }
}

/// Per-worker accumulator for candidate verification wall-clock:
/// summed, maximum, and a log2-bucket latency histogram.
#[derive(Debug, Default)]
pub struct CandidateTiming {
    /// Summed verification time (ns).
    pub sum_ns: u64,
    /// Longest single-candidate verification (ns).
    pub max_ns: u64,
    /// Per-candidate latency distribution.
    pub hist: Histogram,
}

/// Opaque candidate-independent Phase II pre-match recipe (globals
/// matched by name). Materialize with
/// [`Phase2Runner::make_state`].
pub struct BaseState {
    prematch: Vec<(u32, u32, u64)>,
}

/// A reusable dense search state: build once per worker, pass to
/// [`Phase2Runner::run_candidate`] for every candidate. The undo log
/// guarantees each call leaves it back in the base configuration.
pub struct SearchState {
    state: State,
    base_matched: usize,
}

impl SearchState {
    /// Takes the worker's event buffer for merging (empties the slot).
    pub fn take_events(&mut self) -> Option<EventBuffer> {
        self.state.events.take()
    }

    /// Takes the worker's backtrack-depth histogram (empties the slot).
    pub fn take_backtrack_hist(&mut self) -> Option<Histogram> {
        self.state.backtrack_hist.take()
    }

    /// Takes the worker's reject-reason tallies (empties the slot).
    pub fn take_reject_tally(&mut self) -> Option<RejectTally> {
        self.state.reject_tally.take()
    }

    /// Drains the events recorded since the last drain, leaving the
    /// buffer in place (empty) for the next candidate. Unlike
    /// [`take_events`](Self::take_events) this keeps tracing enabled,
    /// so a reused search state keeps recording per candidate.
    pub fn drain_events(&mut self) -> Option<EventBuffer> {
        self.state.events.as_mut().map(EventBuffer::drain)
    }

    /// Drains the reject tallies accumulated since the last drain,
    /// leaving a zeroed tally in place for the next candidate.
    pub fn drain_reject_tally(&mut self) -> Option<RejectTally> {
        self.state.reject_tally.as_mut().map(std::mem::take)
    }
}
