//! Phase II — verifying candidates with the safe/suspect labeling
//! search (§IV of the paper).
//!
//! For each candidate `c`, the key vertex and `c` are matched and given
//! a shared unique label. Labels then spread breadth-first, but only
//! **safe** labels participate: a `G` partition is safe iff it has the
//! same size as the equally-labeled pattern partition — then it can
//! contain only image vertices (pigeonhole over Label Invariant (2)).
//! Equal safe singleton partitions are **matched** and frozen. When no
//! progress is possible (paper Fig. 5 symmetry) the algorithm guesses a
//! match inside an equal-labeled partition and recurses with state
//! save/restore. Completed mappings are re-verified structurally.
//!
//! Efficiency notes mirroring the paper:
//!
//! * only *touched* `G` vertices (reached by spreading) are stored, so
//!   the per-candidate cost is proportional to the pattern size, not
//!   `|G|` — this is what makes total runtime linear in the matched
//!   devices;
//! * special nets are pre-matched by name and never *trigger*
//!   relabeling, so a power rail's huge fanout is never scanned (§IV.A's
//!   performance point) — though its fixed label still contributes when
//!   a vertex is relabeled for other reasons.

use std::collections::{HashMap, HashSet};

use subgemini_netlist::{hashing, CircuitGraph, DeviceId, NetId, Netlist, Vertex};

use crate::instance::{Phase2Stats, SubMatch};
use crate::options::MatchOptions;
use crate::trace::{Phase2Trace, TraceCell, TraceSnapshot};
use crate::verify::verify_instance;

/// Mutable search state for one candidate (cloned on recursion).
#[derive(Clone)]
struct State {
    s_dev: Vec<u64>,
    s_net: Vec<u64>,
    s_dev_touched: Vec<bool>,
    s_net_touched: Vec<bool>,
    s_dev_safe: Vec<bool>,
    s_net_safe: Vec<bool>,
    s_dev_match: Vec<Option<u32>>,
    s_net_match: Vec<Option<u32>>,
    /// Labels of touched main-graph devices/nets.
    g_dev: HashMap<u32, u64>,
    g_net: HashMap<u32, u64>,
    g_dev_safe: HashSet<u32>,
    g_net_safe: HashSet<u32>,
    g_dev_matched: HashSet<u32>,
    g_net_matched: HashSet<u32>,
    /// Main-graph nets matched to *port* (external) pattern nets. Such
    /// images may have arbitrary main-circuit fanout (think a shared
    /// clock), so — like global rails — they never trigger spreading
    /// unless the option re-enables it.
    g_net_port_image: HashSet<u32>,
    matched: usize,
    label_counter: u64,
    trace: Option<Phase2Trace>,
}

enum Refined {
    /// All pattern vertices matched.
    Complete(State),
    /// Partition inconsistency: this branch cannot succeed.
    Fail,
    /// No progress without a guess.
    Stuck(State),
}

/// Phase II driver bound to one (pattern, main) pair.
pub struct Phase2Runner<'a> {
    s: &'a CircuitGraph<'a>,
    g: &'a CircuitGraph<'a>,
    pattern: &'a Netlist,
    main: &'a Netlist,
    opts: &'a MatchOptions,
}

impl<'a> Phase2Runner<'a> {
    /// Creates a runner. `s`/`g` must be graphs of `pattern`/`main`.
    pub fn new(
        s: &'a CircuitGraph<'a>,
        g: &'a CircuitGraph<'a>,
        pattern: &'a Netlist,
        main: &'a Netlist,
        opts: &'a MatchOptions,
    ) -> Self {
        Self {
            s,
            g,
            pattern,
            main,
            opts,
        }
    }

    /// Builds the candidate-independent base state with special nets
    /// pre-matched by name. Returns `None` when a pattern global has no
    /// counterpart in the main circuit (no instance can exist).
    pub fn base_state(&self) -> Option<BaseState> {
        let nd = self.s.device_count();
        let nn = self.s.net_count();
        let mut st = State {
            s_dev: (0..nd)
                .map(|i| self.s.initial_device_label(DeviceId::new(i as u32)))
                .collect(),
            s_net: vec![0; nn],
            s_dev_touched: vec![false; nd],
            s_net_touched: vec![false; nn],
            s_dev_safe: vec![false; nd],
            s_net_safe: vec![false; nn],
            s_dev_match: vec![None; nd],
            s_net_match: vec![None; nn],
            g_dev: HashMap::new(),
            g_net: HashMap::new(),
            g_dev_safe: HashSet::new(),
            g_net_safe: HashSet::new(),
            g_dev_matched: HashSet::new(),
            g_net_matched: HashSet::new(),
            g_net_port_image: HashSet::new(),
            matched: 0,
            label_counter: 0,
            trace: None,
        };
        for i in 0..nn {
            let n = NetId::new(i as u32);
            if !self.s.is_global(n) {
                continue;
            }
            let name = self.pattern.net_ref(n).name();
            let gm = self.main.find_net(name)?;
            if !self.main.net_ref(gm).is_global() {
                return None;
            }
            let label = self.s.initial_net_label(n);
            st.s_net[i] = label;
            st.s_net_touched[i] = true;
            st.s_net_safe[i] = true;
            st.s_net_match[i] = Some(gm.raw());
            st.g_net.insert(gm.raw(), label);
            st.g_net_safe.insert(gm.raw());
            st.g_net_matched.insert(gm.raw());
            st.matched += 1;
        }
        Some(BaseState(st))
    }

    fn total_s(&self) -> usize {
        self.s.device_count() + self.s.net_count()
    }

    fn fresh_label(&self, st: &mut State) -> u64 {
        st.label_counter += 1;
        hashing::mix(self.opts.seed ^ st.label_counter.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }

    fn g_dev_label(&self, st: &State, i: u32) -> u64 {
        st.g_dev
            .get(&i)
            .copied()
            .unwrap_or_else(|| self.g.initial_device_label(DeviceId::new(i)))
    }

    fn g_net_label(&self, st: &State, i: u32) -> u64 {
        let n = NetId::new(i);
        if self.g.is_global(n) {
            return self.g.initial_net_label(n);
        }
        st.g_net.get(&i).copied().unwrap_or(0)
    }

    fn do_match(&self, st: &mut State, s_v: Vertex, g_v: Vertex) {
        let label = self.fresh_label(st);
        match (s_v, g_v) {
            (Vertex::Device(sd), Vertex::Device(gd)) => {
                st.s_dev[sd.index()] = label;
                st.s_dev_touched[sd.index()] = true;
                st.s_dev_safe[sd.index()] = true;
                st.s_dev_match[sd.index()] = Some(gd.raw());
                st.g_dev.insert(gd.raw(), label);
                st.g_dev_safe.insert(gd.raw());
                st.g_dev_matched.insert(gd.raw());
            }
            (Vertex::Net(sn), Vertex::Net(gn)) => {
                st.s_net[sn.index()] = label;
                st.s_net_touched[sn.index()] = true;
                st.s_net_safe[sn.index()] = true;
                st.s_net_match[sn.index()] = Some(gn.raw());
                st.g_net.insert(gn.raw(), label);
                st.g_net_safe.insert(gn.raw());
                st.g_net_matched.insert(gn.raw());
                if !self.opts.spread_from_port_images && self.pattern.net_ref(sn).is_port() {
                    st.g_net_port_image.insert(gn.raw());
                }
            }
            _ => unreachable!("guesses always pair same-kind vertices"),
        }
        st.matched += 1;
    }

    /// One Jacobi relabeling pass over both graphs: every unmatched
    /// vertex with at least one safe, non-global-net neighbor is
    /// relabeled from the labels of its safe neighbors.
    fn pass(&self, st: &mut State) {
        // --- pattern side ---
        let mut s_dev_new: Vec<(usize, u64)> = Vec::new();
        for i in 0..st.s_dev.len() {
            if st.s_dev_match[i].is_some() {
                continue;
            }
            let d = DeviceId::new(i as u32);
            let triggered = self.s.device_neighbors(d).any(|(n, _)| {
                st.s_net_safe[n.index()]
                    && !self.s.is_global(n)
                    && !(!self.opts.spread_from_port_images
                        && st.s_net_match[n.index()].is_some()
                        && self.pattern.net_ref(n).is_port())
            });
            if !triggered {
                continue;
            }
            let c = self
                .s
                .device_contribs(d, |n| st.s_net_safe[n.index()].then(|| st.s_net[n.index()]));
            s_dev_new.push((i, hashing::relabel(st.s_dev[i], c.sum)));
        }
        let mut s_net_new: Vec<(usize, u64)> = Vec::new();
        for i in 0..st.s_net.len() {
            if st.s_net_match[i].is_some() || self.s.is_global(NetId::new(i as u32)) {
                continue;
            }
            let n = NetId::new(i as u32);
            let triggered = self
                .s
                .net_neighbors(n)
                .any(|(d, _)| st.s_dev_safe[d.index()]);
            if !triggered {
                continue;
            }
            let c = self
                .s
                .net_contribs(n, |d| st.s_dev_safe[d.index()].then(|| st.s_dev[d.index()]));
            s_net_new.push((i, hashing::relabel(st.s_net[i], c.sum)));
        }
        // --- main side: collect frontier from safe vertices ---
        let mut g_dev_frontier: HashSet<u32> = HashSet::new();
        for &ni in &st.g_net_safe {
            let n = NetId::new(ni);
            if self.g.is_global(n) || st.g_net_port_image.contains(&ni) {
                continue; // rails and port images never trigger spreading
            }
            for (d, _) in self.g.net_neighbors(n) {
                if !st.g_dev_matched.contains(&d.raw()) {
                    g_dev_frontier.insert(d.raw());
                }
            }
        }
        let mut g_net_frontier: HashSet<u32> = HashSet::new();
        for &di in &st.g_dev_safe {
            let d = DeviceId::new(di);
            for (n, _) in self.g.device_neighbors(d) {
                if !self.g.is_global(n) && !st.g_net_matched.contains(&n.raw()) {
                    g_net_frontier.insert(n.raw());
                }
            }
        }
        let mut g_dev_new: Vec<(u32, u64)> = Vec::with_capacity(g_dev_frontier.len());
        for &i in &g_dev_frontier {
            let d = DeviceId::new(i);
            let c = self.g.device_contribs(d, |n| {
                st.g_net_safe
                    .contains(&n.raw())
                    .then(|| self.g_net_label(st, n.raw()))
            });
            g_dev_new.push((i, hashing::relabel(self.g_dev_label(st, i), c.sum)));
        }
        let mut g_net_new: Vec<(u32, u64)> = Vec::with_capacity(g_net_frontier.len());
        for &i in &g_net_frontier {
            let n = NetId::new(i);
            let c = self.g.net_contribs(n, |d| {
                st.g_dev_safe
                    .contains(&d.raw())
                    .then(|| self.g_dev_label(st, d.raw()))
            });
            g_net_new.push((i, hashing::relabel(self.g_net_label(st, i), c.sum)));
        }
        // --- commit (Jacobi) ---
        for (i, l) in s_dev_new {
            st.s_dev[i] = l;
            st.s_dev_touched[i] = true;
        }
        for (i, l) in s_net_new {
            st.s_net[i] = l;
            st.s_net_touched[i] = true;
        }
        for (i, l) in g_dev_new {
            st.g_dev.insert(i, l);
        }
        for (i, l) in g_net_new {
            st.g_net.insert(i, l);
        }
    }

    /// Builds the label partitions over unmatched touched vertices.
    fn partitions(&self, st: &State) -> HashMap<(u8, u64), (Vec<u32>, Vec<u32>)> {
        let mut parts: HashMap<(u8, u64), (Vec<u32>, Vec<u32>)> = HashMap::new();
        for i in 0..st.s_dev.len() {
            if st.s_dev_match[i].is_none() && st.s_dev_touched[i] {
                parts.entry((0, st.s_dev[i])).or_default().0.push(i as u32);
            }
        }
        for i in 0..st.s_net.len() {
            if st.s_net_match[i].is_none() && st.s_net_touched[i] {
                parts.entry((1, st.s_net[i])).or_default().0.push(i as u32);
            }
        }
        for (&i, &l) in &st.g_dev {
            if !st.g_dev_matched.contains(&i) {
                parts.entry((0, l)).or_default().1.push(i);
            }
        }
        for (&i, &l) in &st.g_net {
            if !st.g_net_matched.contains(&i) {
                parts.entry((1, l)).or_default().1.push(i);
            }
        }
        // Deterministic member order regardless of hash iteration.
        for (sv, gv) in parts.values_mut() {
            sv.sort_unstable();
            gv.sort_unstable();
        }
        parts
    }

    /// Consistency + safety + singleton matching. `Err(())` on a proven
    /// inconsistency; otherwise returns `(progress, complete)`.
    fn analyze(&self, st: &mut State) -> Result<(bool, bool), ()> {
        let parts = self.partitions(st);
        let mut progress = false;
        let mut to_match: Vec<(u8, u32, u32)> = Vec::new();
        for (&(kind, _label), (sv, gv)) in &parts {
            if sv.is_empty() {
                continue; // main-graph-only garbage partition
            }
            if sv.len() > gv.len() {
                return Err(()); // Label Invariant (2) violated
            }
            if sv.len() == gv.len() {
                // Equal sizes: the G partition holds only images — safe.
                for &i in sv {
                    let safe = if kind == 0 {
                        &mut st.s_dev_safe[i as usize]
                    } else {
                        &mut st.s_net_safe[i as usize]
                    };
                    if !*safe {
                        *safe = true;
                        progress = true;
                    }
                }
                for &i in gv {
                    let inserted = if kind == 0 {
                        st.g_dev_safe.insert(i)
                    } else {
                        st.g_net_safe.insert(i)
                    };
                    progress |= inserted;
                }
                if sv.len() == 1 {
                    to_match.push((kind, sv[0], gv[0]));
                }
            }
        }
        for (kind, si, gi) in to_match {
            if kind == 0 {
                self.do_match(
                    st,
                    Vertex::Device(DeviceId::new(si)),
                    Vertex::Device(DeviceId::new(gi)),
                );
            } else {
                self.do_match(st, Vertex::Net(NetId::new(si)), Vertex::Net(NetId::new(gi)));
            }
            progress = true;
        }
        Ok((progress, st.matched == self.total_s()))
    }

    fn snapshot(&self, st: &State) -> TraceSnapshot {
        let cell_s_dev = |i: usize| TraceCell {
            label: st.s_dev[i],
            touched: st.s_dev_touched[i],
            safe: st.s_dev_safe[i],
            matched: st.s_dev_match[i].is_some(),
        };
        let cell_s_net = |i: usize| TraceCell {
            label: st.s_net[i],
            touched: st.s_net_touched[i],
            safe: st.s_net_safe[i],
            matched: st.s_net_match[i].is_some(),
        };
        let mut g_devices: Vec<(u32, TraceCell)> = st
            .g_dev
            .iter()
            .map(|(&i, &l)| {
                (
                    i,
                    TraceCell {
                        label: l,
                        touched: true,
                        safe: st.g_dev_safe.contains(&i),
                        matched: st.g_dev_matched.contains(&i),
                    },
                )
            })
            .collect();
        g_devices.sort_unstable_by_key(|&(i, _)| i);
        let mut g_nets: Vec<(u32, TraceCell)> = st
            .g_net
            .iter()
            .map(|(&i, &l)| {
                (
                    i,
                    TraceCell {
                        label: l,
                        touched: true,
                        safe: st.g_net_safe.contains(&i),
                        matched: st.g_net_matched.contains(&i),
                    },
                )
            })
            .collect();
        g_nets.sort_unstable_by_key(|&(i, _)| i);
        TraceSnapshot {
            s_devices: (0..st.s_dev.len()).map(cell_s_dev).collect(),
            s_nets: (0..st.s_net.len()).map(cell_s_net).collect(),
            g_devices,
            g_nets,
        }
    }

    /// Runs relabeling passes until completion, failure, or a stall.
    fn refine(&self, mut st: State, stats: &mut Phase2Stats) -> Refined {
        for _ in 0..self.opts.max_passes_per_candidate {
            stats.passes += 1;
            self.pass(&mut st);
            let analyzed = self.analyze(&mut st);
            if st.trace.is_some() {
                let snap = self.snapshot(&st);
                if let Some(trace) = st.trace.as_mut() {
                    trace.passes.push(snap);
                }
            }
            match analyzed {
                Err(()) => return Refined::Fail,
                Ok((_, true)) => return Refined::Complete(st),
                Ok((false, false)) => return Refined::Stuck(st),
                Ok((true, false)) => {}
            }
        }
        // Pass budget exhausted: treat as a stall so guessing may still
        // resolve it.
        Refined::Stuck(st)
    }

    /// Chooses the next ambiguity to guess on: the unmatched pattern
    /// vertex whose label has the smallest main-graph partition.
    fn choose_guess(&self, st: &State) -> Option<(Vertex, Vec<Vertex>)> {
        let parts = self.partitions(st);
        let mut best: Option<(usize, u8, u64)> = None;
        for (&(kind, label), (sv, gv)) in &parts {
            if sv.is_empty() || gv.len() < sv.len() {
                continue;
            }
            let cand = (gv.len(), kind, label);
            if best.is_none_or(|b| cand < b) {
                best = Some(cand);
            }
        }
        if let Some((_, kind, label)) = best {
            let (sv, gv) = &parts[&(kind, label)];
            let s_v = if kind == 0 {
                Vertex::Device(DeviceId::new(sv[0]))
            } else {
                Vertex::Net(NetId::new(sv[0]))
            };
            let cands = gv
                .iter()
                .map(|&i| {
                    if kind == 0 {
                        Vertex::Device(DeviceId::new(i))
                    } else {
                        Vertex::Net(NetId::new(i))
                    }
                })
                .collect();
            return Some((s_v, cands));
        }
        // Anchored fallback: a pattern device that was never reached by
        // spreading (all its nets are rails or suppressed port images)
        // but has at least one *matched* pin. Its image must sit on the
        // images of those pins, so enumerate the smallest such fanout
        // instead of relabeling it wholesale — this keeps port-image
        // suppression linear without losing completeness.
        let mut best_anchor: Option<(usize, u32, Vec<Vertex>)> = None;
        for i in 0..st.s_dev.len() {
            if st.s_dev_match[i].is_some() || st.s_dev_touched[i] {
                continue;
            }
            let sd = DeviceId::new(i as u32);
            // Matched pins as (class multiplier, image net) requirements.
            let mut required: Vec<(u64, u32)> = Vec::new();
            for (pin_idx, (n, mult)) in self.s.device_neighbors(sd).enumerate() {
                let _ = pin_idx;
                if let Some(g) = st.s_net_match[n.index()] {
                    required.push((mult, g));
                }
            }
            if required.is_empty() {
                continue;
            }
            // Anchor on the matched image with the smallest fanout.
            let &(_, anchor) = required
                .iter()
                .min_by_key(|&&(_, g)| self.g.net_degree(NetId::new(g)))
                .expect("required is non-empty");
            required.sort_unstable();
            let want = self.s.initial_device_label(sd);
            let mut cands: Vec<Vertex> = Vec::new();
            for (gd, _) in self.g.net_neighbors(NetId::new(anchor)) {
                if st.g_dev_matched.contains(&gd.raw()) || self.g.initial_device_label(gd) != want {
                    continue;
                }
                // The candidate's pins must cover every matched-pin
                // requirement (sub-multiset check).
                let mut have: Vec<(u64, u32)> = self
                    .g
                    .device_neighbors(gd)
                    .map(|(n, mult)| (mult, n.raw()))
                    .collect();
                have.sort_unstable();
                let mut hi = 0;
                let covered = required.iter().all(|req| {
                    while hi < have.len() && have[hi] < *req {
                        hi += 1;
                    }
                    if hi < have.len() && have[hi] == *req {
                        hi += 1;
                        true
                    } else {
                        false
                    }
                });
                if covered && !cands.contains(&Vertex::Device(gd)) {
                    cands.push(Vertex::Device(gd));
                }
            }
            if cands.is_empty() {
                // An unreachable device with no possible image: fail the
                // branch outright.
                return None;
            }
            if best_anchor
                .as_ref()
                .is_none_or(|(n, _, _)| cands.len() < *n)
            {
                best_anchor = Some((cands.len(), i as u32, cands));
            }
        }
        if let Some((_, i, cands)) = best_anchor {
            return Some((Vertex::Device(DeviceId::new(i)), cands));
        }
        // Last resort for disconnected patterns: anchor an untouched
        // pattern device on any unmatched main device still carrying the
        // same initial label.
        for i in 0..st.s_dev.len() {
            if st.s_dev_match[i].is_some() || st.s_dev_touched[i] {
                continue;
            }
            let want = st.s_dev[i]; // untouched: still the initial label
            let cands: Vec<Vertex> = (0..self.g.device_count() as u32)
                .filter(|&gi| !st.g_dev_matched.contains(&gi) && self.g_dev_label(st, gi) == want)
                .map(|gi| Vertex::Device(DeviceId::new(gi)))
                .collect();
            if !cands.is_empty() {
                return Some((Vertex::Device(DeviceId::new(i as u32)), cands));
            }
            return None;
        }
        None
    }

    fn build_submatch(&self, st: &State) -> SubMatch {
        SubMatch {
            devices: st
                .s_dev_match
                .iter()
                .map(|m| DeviceId::new(m.expect("complete mapping")))
                .collect(),
            nets: st
                .s_net_match
                .iter()
                .map(|m| NetId::new(m.expect("complete mapping")))
                .collect(),
        }
    }

    /// The recursive `VerifyImage(K, CV)` of §IV, for one key/candidate
    /// set. `depth > 0` calls are ambiguity guesses and consume the
    /// guess budget.
    fn verify_image(
        &self,
        st: &State,
        s_v: Vertex,
        cands: &[Vertex],
        stats: &mut Phase2Stats,
        guesses_left: &mut usize,
        depth: usize,
    ) -> Option<State> {
        for &c in cands {
            if depth > 0 {
                if *guesses_left == 0 {
                    return None;
                }
                *guesses_left -= 1;
                stats.guesses += 1;
            }
            let mut st2 = st.clone();
            self.do_match(&mut st2, s_v, c);
            if depth == 0 {
                if let Some(trace) = st2.trace.as_mut() {
                    trace.passes.clear();
                }
            }
            if st2.trace.is_some() {
                let snap = self.snapshot(&st2);
                if let Some(trace) = st2.trace.as_mut() {
                    trace.passes.push(snap);
                }
            }
            let failed_branch = match self.refine(st2, stats) {
                Refined::Complete(done) => {
                    let m = self.build_submatch(&done);
                    if verify_instance(self.pattern, self.main, &m, self.opts.respect_globals)
                        .is_ok()
                    {
                        return Some(done);
                    }
                    true // label collision survived to completion: reject
                }
                Refined::Fail => true,
                Refined::Stuck(stuck) => match self.choose_guess(&stuck) {
                    Some((s_next, g_cands)) => {
                        match self.verify_image(
                            &stuck,
                            s_next,
                            &g_cands,
                            stats,
                            guesses_left,
                            depth + 1,
                        ) {
                            Some(done) => return Some(done),
                            None => true,
                        }
                    }
                    None => true,
                },
            };
            if failed_branch && depth > 0 {
                stats.backtracks += 1;
            }
        }
        None
    }

    /// Verifies one candidate from the candidate vector. Returns the
    /// instance (and its trace if enabled).
    pub fn run_candidate(
        &self,
        base: &BaseState,
        key: Vertex,
        candidate: Vertex,
        stats: &mut Phase2Stats,
        record_trace: bool,
    ) -> Option<(SubMatch, Option<Phase2Trace>)> {
        stats.candidates_tried += 1;
        // Reject same-kind mismatches immediately (cannot happen with a
        // well-formed candidate vector, but keeps the API total).
        if key.is_device() != candidate.is_device() {
            stats.false_candidates += 1;
            return None;
        }
        // Quick type check for device keys.
        if let (Vertex::Device(sd), Vertex::Device(gd)) = (key, candidate) {
            if self.s.initial_device_label(sd) != self.g.initial_device_label(gd) {
                stats.false_candidates += 1;
                return None;
            }
        }
        let mut st = base.0.clone();
        st.trace = record_trace.then(Phase2Trace::default);
        let mut guesses_left = self.opts.max_guesses_per_candidate;
        match self.verify_image(&st, key, &[candidate], stats, &mut guesses_left, 0) {
            Some(done) => {
                let m = self.build_submatch(&done);
                Some((m, done.trace))
            }
            None => {
                stats.false_candidates += 1;
                None
            }
        }
    }

    /// [`run_candidate`](Self::run_candidate) with optional per-candidate
    /// timing: when `timing` is `Some((sum, max))`, the candidate's
    /// verification wall-clock is added to `sum` and folded into `max`.
    /// `None` takes no timestamps.
    pub fn run_candidate_timed(
        &self,
        base: &BaseState,
        key: Vertex,
        candidate: Vertex,
        stats: &mut Phase2Stats,
        record_trace: bool,
        timing: Option<&mut (u64, u64)>,
    ) -> Option<(SubMatch, Option<Phase2Trace>)> {
        let Some((sum, max)) = timing else {
            return self.run_candidate(base, key, candidate, stats, record_trace);
        };
        let timer = crate::metrics::PhaseTimer::start();
        let out = self.run_candidate(base, key, candidate, stats, record_trace);
        let ns = timer.elapsed_ns();
        *sum += ns;
        *max = (*max).max(ns);
        out
    }
}

/// Opaque candidate-independent Phase II state (globals pre-matched).
pub struct BaseState(State);
