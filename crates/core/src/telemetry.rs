//! Cross-request telemetry: durable, mergeable rollups of per-search
//! statistics.
//!
//! Every search produces a rich [`MetricsReport`](crate::MetricsReport)
//! and event journal — but both die with the response. This module is
//! the aggregation layer the session engine folds each *completed*
//! request into, so a long-lived daemon can answer "what are p99 find
//! latencies on circuit X?" without re-running anything:
//!
//! * [`ShardedCounter`] — a cache-line-padded, thread-sharded atomic
//!   counter for hot-path tallies (one `fetch_add` per request, no
//!   contention between workers).
//! * [`RequestSample`] — the distilled per-request numbers (wall time,
//!   deterministic effort, backtracks, truncation reason, prune and
//!   reject tallies), extracted from a [`MatchOutcome`] once the
//!   CV-ordered serial merge has produced it.
//! * [`Rollup`] — a mergeable accumulation of samples: request counts,
//!   log2-bucket latency/effort/backtrack [`Histogram`]s (p50/p95/p99),
//!   truncation- and reject-reason tallies, prune ratios.
//! * [`Telemetry`] — the shared registry of rollups keyed by endpoint
//!   and by registered-circuit name, snapshotted for `/metrics`.
//! * [`prometheus`] — text-format v0.0.4 exposition over snapshots.
//!
//! The sharing contract (DESIGN.md §3h): folding happens exactly once
//! per request, *after* the deterministic serial merge has finished the
//! outcome, on the request's own thread. Aggregation therefore never
//! races the search and can never perturb it — telemetry on/off leaves
//! instances, journals, and truncation points byte-identical. Rollup
//! maps use `BTreeMap`, so snapshots are ordered by key and equal
//! regardless of the order concurrent requests completed in.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::budget::Completeness;
use crate::instance::MatchOutcome;
use crate::metrics::{json, Histogram};

/// Shards in a [`ShardedCounter`]; enough that a small worker pool
/// rarely collides on a line.
const SHARD_COUNT: usize = 16;

/// One counter shard, padded to its own cache line so neighbouring
/// shards never false-share.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

/// A thread-sharded atomic counter: each thread bumps its own
/// cache-line-padded shard, reads sum all shards. Reads are racy in the
/// usual monotone-counter sense (a concurrent bump may or may not be
/// visible) but never lose increments.
#[derive(Default)]
pub struct ShardedCounter {
    shards: [Shard; SHARD_COUNT],
}

impl ShardedCounter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    fn shard(&self) -> &AtomicU64 {
        thread_local! {
            static SHARD: usize = {
                static NEXT: AtomicUsize = AtomicUsize::new(0);
                NEXT.fetch_add(1, Ordering::Relaxed) % SHARD_COUNT
            };
        }
        let i = SHARD.with(|s| *s);
        &self.shards[i].0
    }

    /// Adds `by` to the calling thread's shard.
    pub fn add(&self, by: u64) {
        self.shard().fetch_add(by, Ordering::Relaxed);
    }

    /// The current total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// The distilled telemetry numbers of one completed request, extracted
/// from its outcome(s) after the serial merge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RequestSample {
    /// End-to-end wall time of the search call, in nanoseconds.
    pub wall_ns: u64,
    /// Deterministic effort: Phase I iterations + Phase II candidates
    /// tried + passes + guesses + backtracks. Always derivable from the
    /// stats block, so it is available even on ungoverned runs where
    /// `effort_spent` stays 0.
    pub effort: u64,
    /// Total Phase II backtracks.
    pub backtracks: u64,
    /// Truncation reason name when the request stopped early (the first
    /// one, for multi-outcome surveys).
    pub truncation: Option<String>,
    /// Candidates pruned by the fingerprint index.
    pub pruned_candidates: u64,
    /// Candidates admitted past the fingerprint index.
    pub admitted_candidates: u64,
    /// Per-reason Phase II reject tallies (`reject.*` counter names
    /// with the prefix stripped), sorted by reason.
    pub rejects: Vec<(String, u64)>,
    /// Whether any outcome of this request ran sharded Phase II
    /// dispatch (`shard.count > 0`, DESIGN.md §3i).
    pub sharded: bool,
    /// Halo-duplicated candidates dropped by the cross-shard merge
    /// (`shard.dedup_dropped`), summed over the request's outcomes.
    pub shard_dedup_dropped: u64,
}

impl RequestSample {
    /// Distills a single-outcome request (find/explain).
    pub fn from_outcome(outcome: &MatchOutcome, wall_ns: u64) -> Self {
        Self::from_outcomes(std::iter::once(outcome), wall_ns)
    }

    /// Distills a multi-outcome request (survey): stats are summed over
    /// the rows, the wall time covers the whole sweep.
    pub fn from_outcomes<'a>(
        outcomes: impl IntoIterator<Item = &'a MatchOutcome>,
        wall_ns: u64,
    ) -> Self {
        let mut sample = RequestSample {
            wall_ns,
            ..RequestSample::default()
        };
        for outcome in outcomes {
            sample.absorb(outcome);
        }
        sample.rejects.sort();
        sample
    }

    fn absorb(&mut self, outcome: &MatchOutcome) {
        let p1 = &outcome.phase1;
        let p2 = &outcome.phase2;
        self.effort +=
            (p1.iterations + p2.candidates_tried + p2.passes + p2.guesses + p2.backtracks) as u64;
        self.backtracks += p2.backtracks as u64;
        if let Completeness::Truncated { reason, .. } = &outcome.completeness {
            if self.truncation.is_none() {
                self.truncation = Some(reason.as_str().to_string());
            }
        }
        if let Some(m) = &outcome.metrics {
            self.pruned_candidates += m.counters.get("index.pruned_candidates");
            self.admitted_candidates += m.counters.get("index.admitted_candidates");
            self.sharded |= m.counters.get("shard.count") > 0;
            self.shard_dedup_dropped += m.counters.get("shard.dedup_dropped");
            for (name, v) in m.counters.iter() {
                if let Some(reason) = name.strip_prefix("reject.") {
                    match self.rejects.iter_mut().find(|(n, _)| n == reason) {
                        Some(slot) => slot.1 += v,
                        None => self.rejects.push((reason.to_string(), v)),
                    }
                }
            }
        }
    }
}

/// A mergeable accumulation of [`RequestSample`]s: one per endpoint
/// and one per registered circuit inside a [`Telemetry`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Rollup {
    /// Requests folded in.
    pub requests: u64,
    /// How many of them were truncated.
    pub truncated: u64,
    /// Wall-time distribution (ns).
    pub wall_ns: Histogram,
    /// Deterministic-effort distribution.
    pub effort: Histogram,
    /// Backtrack-count distribution.
    pub backtracks: Histogram,
    /// Total candidates pruned by the fingerprint index.
    pub pruned_candidates: u64,
    /// Total candidates admitted past the index.
    pub admitted_candidates: u64,
    /// Truncation tallies by reason name.
    pub truncation_reasons: BTreeMap<String, u64>,
    /// Phase II reject tallies by reason name.
    pub reject_reasons: BTreeMap<String, u64>,
    /// Requests that ran sharded Phase II dispatch.
    pub sharded_requests: u64,
    /// Total halo-duplicated candidates dropped by cross-shard merges.
    pub shard_dedup_dropped: u64,
}

impl Rollup {
    /// Folds one request in.
    pub fn fold(&mut self, sample: &RequestSample) {
        self.requests += 1;
        self.wall_ns.record(sample.wall_ns);
        self.effort.record(sample.effort);
        self.backtracks.record(sample.backtracks);
        self.pruned_candidates += sample.pruned_candidates;
        self.admitted_candidates += sample.admitted_candidates;
        if let Some(reason) = &sample.truncation {
            self.truncated += 1;
            *self.truncation_reasons.entry(reason.clone()).or_insert(0) += 1;
        }
        for (reason, v) in &sample.rejects {
            *self.reject_reasons.entry(reason.clone()).or_insert(0) += v;
        }
        self.sharded_requests += sample.sharded as u64;
        self.shard_dedup_dropped += sample.shard_dedup_dropped;
    }

    /// Merges another rollup in (bucket-wise histogram sums, tally
    /// sums). `a.merge(&b)` equals folding b's samples into a — the
    /// property the seeded merge tests pin.
    pub fn merge(&mut self, other: &Rollup) {
        self.requests += other.requests;
        self.truncated += other.truncated;
        self.wall_ns.merge(&other.wall_ns);
        self.effort.merge(&other.effort);
        self.backtracks.merge(&other.backtracks);
        self.pruned_candidates += other.pruned_candidates;
        self.admitted_candidates += other.admitted_candidates;
        for (reason, v) in &other.truncation_reasons {
            *self.truncation_reasons.entry(reason.clone()).or_insert(0) += v;
        }
        for (reason, v) in &other.reject_reasons {
            *self.reject_reasons.entry(reason.clone()).or_insert(0) += v;
        }
        self.sharded_requests += other.sharded_requests;
        self.shard_dedup_dropped += other.shard_dedup_dropped;
    }

    /// Fraction of index-checked candidates that were pruned (0 when
    /// the index never ran).
    pub fn prune_ratio(&self) -> f64 {
        let total = self.pruned_candidates + self.admitted_candidates;
        if total == 0 {
            0.0
        } else {
            self.pruned_candidates as f64 / total as f64
        }
    }

    /// The rollup as a JSON object (stable key order).
    pub fn to_json(&self) -> json::Value {
        use json::Value;
        let tally_obj = |m: &BTreeMap<String, u64>| {
            Value::Obj(m.iter().map(|(k, v)| (k.clone(), Value::int(*v))).collect())
        };
        Value::Obj(vec![
            ("requests".into(), Value::int(self.requests)),
            ("truncated".into(), Value::int(self.truncated)),
            ("wall_ns".into(), self.wall_ns.to_json()),
            ("effort".into(), self.effort.to_json()),
            ("backtracks".into(), self.backtracks.to_json()),
            (
                "pruned_candidates".into(),
                Value::int(self.pruned_candidates),
            ),
            (
                "admitted_candidates".into(),
                Value::int(self.admitted_candidates),
            ),
            ("prune_ratio".into(), Value::Num(self.prune_ratio())),
            (
                "truncation_reasons".into(),
                tally_obj(&self.truncation_reasons),
            ),
            ("reject_reasons".into(), tally_obj(&self.reject_reasons)),
            // v1-additive (appended after the original key set): shard
            // dispatch adoption and merge dedup volume.
            ("sharded_requests".into(), Value::int(self.sharded_requests)),
            (
                "shard_dedup_dropped".into(),
                Value::int(self.shard_dedup_dropped),
            ),
        ])
    }
}

#[derive(Default)]
struct Rollups {
    endpoints: BTreeMap<String, Rollup>,
    circuits: BTreeMap<String, Rollup>,
}

/// The shared cross-request aggregation registry. Cheap when disabled
/// (one atomic load per request); when enabled, each completed request
/// costs one sharded-counter bump plus one short mutex-guarded fold.
pub struct Telemetry {
    enabled: AtomicBool,
    requests: ShardedCounter,
    rollups: Mutex<Rollups>,
}

impl Telemetry {
    /// A fresh registry.
    pub fn new(enabled: bool) -> Self {
        Self {
            enabled: AtomicBool::new(enabled),
            requests: ShardedCounter::new(),
            rollups: Mutex::new(Rollups::default()),
        }
    }

    /// Whether folds are currently recorded.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (existing rollups are kept).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Folds one completed request into the `endpoint` rollup and, when
    /// the request ran against a registered circuit, that circuit's
    /// rollup. No-op while disabled.
    pub fn fold(&self, endpoint: &str, circuit: Option<&str>, sample: &RequestSample) {
        if !self.enabled() {
            return;
        }
        self.requests.add(1);
        let mut rollups = self.rollups.lock().expect("telemetry rollups poisoned");
        rollups
            .endpoints
            .entry(endpoint.to_string())
            .or_default()
            .fold(sample);
        if let Some(name) = circuit {
            rollups
                .circuits
                .entry(name.to_string())
                .or_default()
                .fold(sample);
        }
    }

    /// A point-in-time copy of every rollup.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let rollups = self.rollups.lock().expect("telemetry rollups poisoned");
        TelemetrySnapshot {
            requests: self.requests.get(),
            endpoints: rollups
                .endpoints
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
            circuits: rollups
                .circuits
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Self::new(true)
    }
}

/// A point-in-time copy of a [`Telemetry`] registry, sorted by key.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// Total requests folded since startup.
    pub requests: u64,
    /// Per-endpoint rollups, sorted by endpoint name.
    pub endpoints: Vec<(String, Rollup)>,
    /// Per-registered-circuit rollups, sorted by circuit name.
    pub circuits: Vec<(String, Rollup)>,
}

impl TelemetrySnapshot {
    /// The snapshot as a JSON object.
    pub fn to_json(&self) -> json::Value {
        use json::Value;
        let section = |rollups: &[(String, Rollup)]| {
            Value::Obj(
                rollups
                    .iter()
                    .map(|(name, r)| (name.clone(), r.to_json()))
                    .collect(),
            )
        };
        Value::Obj(vec![
            ("requests".into(), Value::int(self.requests)),
            ("endpoints".into(), section(&self.endpoints)),
            ("circuits".into(), section(&self.circuits)),
        ])
    }

    /// The named endpoint's rollup, if any request hit it.
    pub fn endpoint(&self, name: &str) -> Option<&Rollup> {
        self.endpoints
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
    }

    /// The named circuit's rollup, if any request ran against it.
    pub fn circuit(&self, name: &str) -> Option<&Rollup> {
        self.circuits
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r)
    }
}

/// Prometheus text-format v0.0.4 exposition.
///
/// [`TextWriter`] guarantees the format invariants scrapers rely on:
/// one `# HELP`/`# TYPE` pair per metric family no matter how many
/// labeled samples it gets, escaped label values, and the
/// `_bucket`/`_sum`/`_count` triplet (with a final `+Inf` bucket whose
/// value equals `_count`) for every histogram.
pub mod prometheus {
    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    use crate::metrics::Histogram;

    /// Escapes a label value per the exposition format: backslash,
    /// double quote, and newline.
    pub fn escape_label_value(v: &str) -> String {
        let mut out = String::with_capacity(v.len());
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out
    }

    /// An append-only text-format builder that declares each metric
    /// family exactly once.
    #[derive(Default)]
    pub struct TextWriter {
        out: String,
        declared: BTreeSet<String>,
    }

    impl TextWriter {
        /// An empty exposition.
        pub fn new() -> Self {
            Self::default()
        }

        fn declare(&mut self, name: &str, kind: &str, help: &str) {
            if self.declared.insert(name.to_string()) {
                let _ = writeln!(self.out, "# HELP {name} {help}");
                let _ = writeln!(self.out, "# TYPE {name} {kind}");
            }
        }

        fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
            self.out.push_str(name);
            self.write_labels(labels, None);
            let _ = writeln!(self.out, " {value}");
        }

        fn write_labels(&mut self, labels: &[(&str, &str)], extra: Option<(&str, &str)>) {
            if labels.is_empty() && extra.is_none() {
                return;
            }
            self.out.push('{');
            let mut first = true;
            for (k, v) in labels.iter().copied().chain(extra) {
                if !first {
                    self.out.push(',');
                }
                first = false;
                let _ = write!(self.out, "{k}=\"{}\"", escape_label_value(v));
            }
            self.out.push('}');
        }

        /// Emits one counter sample, declaring the family on first use.
        pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
            self.declare(name, "counter", help);
            self.sample(name, labels, value);
        }

        /// Emits one gauge sample, declaring the family on first use.
        pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
            self.declare(name, "gauge", help);
            self.sample(name, labels, value);
        }

        /// Emits a full histogram family: cumulative `_bucket` samples
        /// with `le` upper bounds (ending in `+Inf`), then `_sum` and
        /// `_count`.
        pub fn histogram(
            &mut self,
            name: &str,
            help: &str,
            labels: &[(&str, &str)],
            h: &Histogram,
        ) {
            self.declare(name, "histogram", help);
            let bucket = format!("{name}_bucket");
            let mut cumulative = 0u64;
            for (le, count) in h.bucket_counts() {
                cumulative += count;
                let le = le.to_string();
                self.out.push_str(&bucket);
                self.write_labels(labels, Some(("le", &le)));
                let _ = writeln!(self.out, " {cumulative}");
            }
            self.out.push_str(&bucket);
            self.write_labels(labels, Some(("le", "+Inf")));
            let _ = writeln!(self.out, " {}", h.count());
            self.sample(&format!("{name}_sum"), labels, h.sum());
            self.sample(&format!("{name}_count"), labels, h.count());
        }

        /// The finished exposition body.
        pub fn finish(self) -> String {
            self.out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prometheus::{escape_label_value, TextWriter};
    use super::*;
    use subgemini_netlist::rng::Rng64;

    #[test]
    fn sharded_counter_sums_across_threads() {
        let counter = std::sync::Arc::new(ShardedCounter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let counter = std::sync::Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    counter.add(1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), 8000);
    }

    fn random_sample(rng: &mut Rng64) -> RequestSample {
        let truncation = match rng.next_u64() % 4 {
            0 => Some("effort_exhausted".to_string()),
            1 => Some("cancelled".to_string()),
            _ => None,
        };
        let mut rejects = vec![
            ("degree".to_string(), rng.next_u64() % 50),
            ("safe_label".to_string(), rng.next_u64() % 50),
        ];
        rejects.retain(|(_, v)| *v > 0);
        RequestSample {
            wall_ns: rng.next_u64() % (1 << 34),
            effort: rng.next_u64() % (1 << 20),
            backtracks: rng.next_u64() % 512,
            truncation,
            pruned_candidates: rng.next_u64() % 1000,
            admitted_candidates: rng.next_u64() % 1000,
            rejects,
            sharded: rng.next_u64().is_multiple_of(3),
            shard_dedup_dropped: rng.next_u64() % 20,
        }
    }

    /// Satellite: merged per-request histograms equal a histogram built
    /// from the concatenated samples — 64 seeded cases over random
    /// sample sets and random partitions of them.
    #[test]
    fn merged_rollups_equal_concatenated_fold() {
        let mut rng = Rng64::new(0x0007_e1e6_e72a_11e7_u64);
        for _case in 0..64 {
            let n = 1 + (rng.next_u64() % 40) as usize;
            let samples: Vec<RequestSample> = (0..n).map(|_| random_sample(&mut rng)).collect();

            // One rollup folded over everything.
            let mut whole = Rollup::default();
            for s in &samples {
                whole.fold(s);
            }

            // Random partition into chunks, one rollup each, merged.
            let mut merged = Rollup::default();
            let mut i = 0usize;
            while i < n {
                let take = 1 + (rng.next_u64() as usize % (n - i));
                let mut part = Rollup::default();
                for s in &samples[i..i + take] {
                    part.fold(s);
                }
                merged.merge(&part);
                i += take;
            }

            assert_eq!(whole, merged);
            assert_eq!(whole.wall_ns.p99(), merged.wall_ns.p99());
        }
    }

    /// Satellite: folding the same multiset of samples from 1, 2, or 8
    /// threads yields identical snapshots (BTreeMap keying makes the
    /// result order-independent).
    #[test]
    fn fold_is_thread_count_invariant() {
        let mut rng = Rng64::new(42);
        let samples: Vec<RequestSample> = (0..64).map(|_| random_sample(&mut rng)).collect();
        let mut snapshots = Vec::new();
        for threads in [1usize, 2, 8] {
            let telemetry = std::sync::Arc::new(Telemetry::new(true));
            let chunk = samples.len().div_ceil(threads);
            std::thread::scope(|scope| {
                for part in samples.chunks(chunk) {
                    let telemetry = std::sync::Arc::clone(&telemetry);
                    scope.spawn(move || {
                        for (i, s) in part.iter().enumerate() {
                            let circuit = if i % 2 == 0 { Some("chip") } else { None };
                            telemetry.fold("find", circuit, s);
                        }
                    });
                }
            });
            snapshots.push(telemetry.snapshot());
        }
        // Per-thread interleaving differs, but every deterministic
        // field of the snapshot must agree. (wall_ns histograms are
        // deterministic here too: the samples are fixed inputs.)
        assert_eq!(snapshots[0], snapshots[1]);
        assert_eq!(snapshots[0], snapshots[2]);
        assert_eq!(snapshots[0].requests, 64);
        assert!(snapshots[0].endpoint("find").is_some());
        assert!(snapshots[0].circuit("chip").is_some());
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let telemetry = Telemetry::new(false);
        telemetry.fold("find", Some("chip"), &RequestSample::default());
        let snap = telemetry.snapshot();
        assert_eq!(snap.requests, 0);
        assert!(snap.endpoints.is_empty());
        telemetry.set_enabled(true);
        telemetry.fold("find", Some("chip"), &RequestSample::default());
        assert_eq!(telemetry.snapshot().requests, 1);
    }

    #[test]
    fn sample_distills_truncation_and_rejects() {
        use crate::budget::TruncationReason;
        use crate::metrics::MetricsReport;
        let mut metrics = MetricsReport::default();
        metrics.counters.bump("index.pruned_candidates", 7);
        metrics.counters.bump("index.admitted_candidates", 3);
        metrics.counters.bump("reject.degree", 5);
        metrics.counters.bump("unrelated.counter", 9);
        let outcome = MatchOutcome {
            completeness: Completeness::Truncated {
                reason: TruncationReason::EffortExhausted,
                candidates_tried: 1,
                candidates_skipped: 2,
            },
            metrics: Some(metrics),
            ..MatchOutcome::default()
        };
        let sample = RequestSample::from_outcome(&outcome, 1234);
        assert_eq!(sample.wall_ns, 1234);
        assert_eq!(sample.truncation.as_deref(), Some("effort_exhausted"));
        assert_eq!(sample.pruned_candidates, 7);
        assert_eq!(sample.admitted_candidates, 3);
        assert_eq!(sample.rejects, vec![("degree".to_string(), 5)]);
        let mut rollup = Rollup::default();
        rollup.fold(&sample);
        assert_eq!(rollup.prune_ratio(), 0.7);
        assert_eq!(rollup.truncation_reasons["effort_exhausted"], 1);
    }

    #[test]
    fn sample_distills_shard_counters() {
        use crate::metrics::MetricsReport;
        let mut metrics = MetricsReport::default();
        metrics.counters.bump("shard.count", 4);
        metrics.counters.bump("shard.dedup_dropped", 9);
        let outcome = MatchOutcome {
            metrics: Some(metrics),
            ..MatchOutcome::default()
        };
        let sample = RequestSample::from_outcome(&outcome, 1);
        assert!(sample.sharded);
        assert_eq!(sample.shard_dedup_dropped, 9);
        let mut rollup = Rollup::default();
        rollup.fold(&sample);
        rollup.fold(&RequestSample::default()); // unsharded request
        assert_eq!(rollup.sharded_requests, 1);
        assert_eq!(rollup.shard_dedup_dropped, 9);
        // The JSON keys are additive and present.
        let json = rollup.to_json().compact();
        assert!(json.contains("\"sharded_requests\":1"), "{json}");
        assert!(json.contains("\"shard_dedup_dropped\":9"), "{json}");
    }

    #[test]
    fn exposition_declares_each_family_once() {
        let mut w = TextWriter::new();
        w.counter(
            "subg_requests_total",
            "Requests.",
            &[("endpoint", "find")],
            3,
        );
        w.counter(
            "subg_requests_total",
            "Requests.",
            &[("endpoint", "survey")],
            1,
        );
        let text = w.finish();
        assert_eq!(text.matches("# TYPE subg_requests_total").count(), 1);
        assert_eq!(text.matches("# HELP subg_requests_total").count(), 1);
        assert!(text.contains("subg_requests_total{endpoint=\"find\"} 3\n"));
        assert!(text.contains("subg_requests_total{endpoint=\"survey\"} 1\n"));
    }

    #[test]
    fn exposition_escapes_label_values() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        let mut w = TextWriter::new();
        w.gauge("g", "h", &[("name", "we\"ird\\chip\n")], 1);
        let text = w.finish();
        assert!(
            text.contains("g{name=\"we\\\"ird\\\\chip\\n\"} 1\n"),
            "{text}"
        );
    }

    #[test]
    fn exposition_histogram_emits_bucket_sum_count() {
        let mut h = Histogram::default();
        for v in [0u64, 1, 3, 900] {
            h.record(v);
        }
        let mut w = TextWriter::new();
        w.histogram("lat", "Latency.", &[("endpoint", "find")], &h);
        let text = w.finish();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(
            text.contains("lat_bucket{endpoint=\"find\",le=\"+Inf\"} 4\n"),
            "{text}"
        );
        assert!(text.contains("lat_sum{endpoint=\"find\"} 904\n"), "{text}");
        assert!(text.contains("lat_count{endpoint=\"find\"} 4\n"), "{text}");
        // Buckets are cumulative and monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("lat_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "{text}");
            last = v;
        }
    }
}
