//! Library extraction: converting a transistor netlist into a gate
//! netlist by repeated subcircuit identification and replacement.
//!
//! This is the paper's flagship application (§I): "converting a
//! transistor netlist into a gate netlist involves finding the
//! subcircuits representing gates and replacing them with the
//! corresponding gates". Cells are processed largest-first — the
//! paper's §IV.A alternative to special-casing power rails, and the
//! discipline that prevents an inverter from eating half of every NAND.
//!
//! Each round matches one cell with
//! [`OverlapPolicy::ClaimDevices`](crate::OverlapPolicy) and rebuilds
//! the netlist with every found instance collapsed into a composite
//! device whose type carries inferred port-symmetry classes, so a later
//! (gate-level) match can treat NAND inputs as interchangeable.

use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::Arc;

use subgemini_netlist::{CompiledCircuit, DeviceId, Netlist, NetlistError};

use crate::instance::{MatchOutcome, SubMatch};
use crate::matcher::{assert_no_isolated_nets, find_all_compiled, strip_globals, PreparedMain};
use crate::options::{MatchOptions, OverlapPolicy};
use crate::phase1::GTrace;
use crate::symmetry::composite_type;

/// The compiled state of the extractor's current netlist: one CSR
/// snapshot plus one Phase I label trace, shared by every cell round
/// until a replacement pass actually changes the netlist.
struct CompiledMain {
    /// De-globaled copy, present only when `respect_globals` is off.
    stripped: Option<Netlist>,
    compiled: Arc<CompiledCircuit>,
    trace: GTrace,
    compile_ns: u64,
    /// Fingerprint index for candidate pruning (warm handle's, or built
    /// fresh under [`PrunePolicy`](crate::PrunePolicy)`::Always`).
    index: Option<Arc<subgemini_netlist::FingerprintIndex>>,
    /// Whether this snapshot was adopted from a warm-start artifact
    /// (only possible before the first replacement pass).
    warm: bool,
    load_ns: u64,
    index_build_ns: u64,
    /// Whether `compile_ns` has already been attributed to a cell's
    /// metrics; later rounds report a cache hit instead.
    reported: bool,
}

impl CompiledMain {
    fn build(current: &Netlist, options: &MatchOptions) -> Self {
        // Warm start applies to the unmodified input only: any
        // replacement pass changes the digest and recompiles cold.
        if options.respect_globals {
            if let Some(w) = options.warm_main.as_ref() {
                if w.source_digest() == subgemini_netlist::structural_digest(current) {
                    let compiled = Arc::clone(w.compiled());
                    let trace = GTrace::new(Arc::clone(&compiled));
                    return CompiledMain {
                        stripped: None,
                        compiled,
                        trace,
                        compile_ns: 0,
                        index: Some(Arc::clone(w.index())),
                        warm: true,
                        load_ns: w.load_ns(),
                        index_build_ns: 0,
                        reported: false,
                    };
                }
            }
        }
        let timer = options
            .collect_metrics
            .then(crate::metrics::PhaseTimer::start);
        let stripped = (!options.respect_globals).then(|| strip_globals(current, false));
        let compiled = Arc::new(CompiledCircuit::compile(
            stripped.as_ref().unwrap_or(current),
        ));
        let compile_ns = timer.map_or(0, |t| t.elapsed_ns());
        let (index, index_build_ns) = if options.prune == crate::options::PrunePolicy::Always {
            let t = options
                .collect_metrics
                .then(crate::metrics::PhaseTimer::start);
            let idx = Arc::new(subgemini_netlist::FingerprintIndex::build(&compiled));
            (Some(idx), t.map_or(0, |t| t.elapsed_ns()))
        } else {
            (None, 0)
        };
        let trace = GTrace::new(Arc::clone(&compiled));
        CompiledMain {
            stripped,
            compiled,
            trace,
            compile_ns,
            index,
            warm: false,
            load_ns: 0,
            index_build_ns,
            reported: false,
        }
    }
}

/// One composite device created by extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExtractedInstance {
    /// The library cell name.
    pub cell: String,
    /// The composite device's name in the output netlist.
    pub device: String,
    /// Names of the primitive devices that were collapsed.
    pub absorbed: Vec<String>,
}

/// Summary of an extraction run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtractReport {
    /// All composites created, in creation order.
    pub instances: Vec<ExtractedInstance>,
    /// Per-cell instance counts, in processing (largest-first) order.
    pub per_cell: Vec<(String, usize)>,
    /// Devices of the input that no cell covered.
    pub unabsorbed_devices: usize,
    /// Cell rounds whose match stopped early under the extractor's
    /// [`WorkBudget`](crate::WorkBudget) (each cell's search gets a
    /// fresh budget) or [`CancelToken`](crate::CancelToken). Cells
    /// never started because of a cancellation are *not* counted; they
    /// appear as missing entries in [`ExtractReport::per_cell`].
    pub truncated_cells: usize,
    /// Per-cell and total timings, when the extractor's options set
    /// [`MatchOptions::collect_metrics`](crate::MatchOptions).
    pub metrics: Option<crate::metrics::ExtractMetrics>,
}

impl ExtractReport {
    /// Instances of a particular cell.
    pub fn count_of(&self, cell: &str) -> usize {
        self.per_cell
            .iter()
            .find(|(c, _)| c == cell)
            .map_or(0, |&(_, n)| n)
    }
}

/// A configured extraction engine over a cell library.
///
/// # Examples
///
/// See the `gate_extraction` example and the crate-level documentation;
/// a minimal run:
///
/// ```
/// use subgemini::Extractor;
/// use subgemini_netlist::{instantiate, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut inv = Netlist::new("inv");
/// # let mos = inv.add_mos_types();
/// # let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
/// # inv.mark_port(a); inv.mark_port(y); inv.mark_global(vdd); inv.mark_global(gnd);
/// # inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// # inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// # let mut chip = Netlist::new("chip");
/// # let (i, o) = (chip.net("in"), chip.net("out"));
/// # instantiate(&mut chip, &inv, "u1", &[i, o])?;
/// let mut extractor = Extractor::new();
/// extractor.add_cell(inv);
/// let (gates, report) = extractor.extract(&chip)?;
/// assert_eq!(report.count_of("inv"), 1);
/// assert_eq!(gates.device_count(), 1); // one composite, no transistors
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Extractor {
    cells: Vec<Netlist>,
    options: MatchOptions,
    composite_offset: usize,
}

impl Extractor {
    /// Creates an extractor with extraction-appropriate default options
    /// (devices are claimed; special nets respected).
    pub fn new() -> Self {
        Self {
            cells: Vec::new(),
            options: MatchOptions::extraction(),
            composite_offset: 0,
        }
    }

    /// Adds a library cell (a netlist with ports).
    pub fn add_cell(&mut self, cell: Netlist) -> &mut Self {
        self.cells.push(cell);
        self
    }

    /// Overrides the matching options; the overlap policy is forced to
    /// [`OverlapPolicy::ClaimDevices`](crate::OverlapPolicy).
    pub fn set_options(&mut self, options: MatchOptions) -> &mut Self {
        self.options = MatchOptions {
            overlap: OverlapPolicy::ClaimDevices,
            ..options
        };
        self
    }

    /// Starts composite-device numbering at `offset` instead of 0, so
    /// repeated [`extract`](Extractor::extract) calls over the same
    /// evolving netlist — the re-entrant mode the hierarchy fixpoint
    /// driver uses — never collide with composites minted by earlier
    /// rounds. Composites from a prior round are legal main devices:
    /// they survive matching untouched unless a library cell's
    /// composite type claims them.
    pub fn set_composite_offset(&mut self, offset: usize) -> &mut Self {
        self.composite_offset = offset;
        self
    }

    /// Runs extraction: matches each cell largest-first, replacing
    /// instances with composite devices, and returns the gate-level
    /// netlist plus a report.
    ///
    /// The input netlist is never cloned wholesale: rounds that find
    /// nothing match against the borrowed input (or the previous
    /// round's rebuild), reusing one compiled CSR snapshot and one
    /// Phase I label trace. Only a round that actually replaced
    /// instances rebuilds — and thus recompiles — the netlist.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction errors from the rebuild (only
    /// possible if input names collide with generated composite names).
    pub fn extract(&self, main: &Netlist) -> Result<(Netlist, ExtractReport), NetlistError> {
        use crate::metrics::{
            ExtractCellMetrics, ExtractMetrics, MetricsReport, PhaseTimer, ProgressEvent,
        };
        let collect = self.options.collect_metrics;
        let progress = self.options.on_progress.as_ref();
        let total_timer = collect.then(PhaseTimer::start);
        let mut cells: Vec<&Netlist> = self.cells.iter().collect();
        // Largest first; ties broken by name for determinism.
        cells.sort_by(|a, b| {
            b.device_count()
                .cmp(&a.device_count())
                .then_with(|| a.name().cmp(b.name()))
        });
        let mut current: Cow<'_, Netlist> = Cow::Borrowed(main);
        let mut compiled_main: Option<CompiledMain> = None;
        let mut report = ExtractReport::default();
        let mut metrics = collect.then(ExtractMetrics::default);
        let n_cells = cells.len();
        for (ci, cell) in cells.into_iter().enumerate() {
            // Cooperative cancellation between cell rounds: already
            // extracted cells keep their composites, unstarted cells
            // simply never run (visible as absent `per_cell` entries).
            if self
                .options
                .cancel
                .as_ref()
                .is_some_and(crate::budget::CancelToken::is_cancelled)
            {
                break;
            }
            if let Some(hook) = progress {
                hook.call(&ProgressEvent::ExtractCellStarted {
                    cell: cell.name().to_string(),
                    index: ci,
                    total: n_cells,
                });
            }
            assert_no_isolated_nets(cell);
            let match_timer = collect.then(PhaseTimer::start);
            let mut outcome = if cell.device_count() == 0 {
                MatchOutcome::default()
            } else {
                let CompiledMain {
                    stripped,
                    compiled,
                    trace,
                    compile_ns,
                    index,
                    warm,
                    load_ns,
                    index_build_ns,
                    reported,
                } = compiled_main
                    .get_or_insert_with(|| CompiledMain::build(&current, &self.options));
                let main_cached = *reported;
                let main_ns = if main_cached { 0 } else { *compile_ns };
                *reported = true;
                let prepared = PreparedMain {
                    netlist: Cow::Borrowed(stripped.as_ref().unwrap_or(&current)),
                    compiled: Arc::clone(compiled),
                    compile_ns: main_ns,
                    index: index.clone(),
                    warm: *warm,
                    load_ns: *load_ns,
                    index_build_ns: if main_cached { 0 } else { *index_build_ns },
                };
                find_all_compiled(cell, &prepared, trace, &self.options, main_ns, main_cached)
            };
            // Read the timer once so `ExtractCellMetrics::match_ns` and
            // the outcome's `metrics.total_ns` agree exactly.
            let match_ns = match_timer.map_or(0, |t| t.elapsed_ns());
            if match_timer.is_some() {
                let m = outcome.metrics.get_or_insert_with(|| MetricsReport {
                    threads_requested: self.options.threads,
                    threads_used: 1,
                    ..MetricsReport::default()
                });
                m.total_ns = match_ns;
            }
            let found = outcome.instances.len();
            if outcome.completeness.is_truncated() {
                report.truncated_cells += 1;
            }
            report.per_cell.push((cell.name().to_string(), found));
            let replace_timer = collect.then(PhaseTimer::start);
            if found > 0 {
                current = Cow::Owned(replace_instances(
                    &current,
                    cell,
                    &outcome.instances,
                    &mut report,
                    self.composite_offset,
                )?);
                // The netlist changed; the next round must recompile.
                compiled_main = None;
            }
            if let Some(m) = metrics.as_mut() {
                m.cells.push(ExtractCellMetrics {
                    cell: cell.name().to_string(),
                    found,
                    match_ns,
                    replace_ns: replace_timer.map_or(0, |t| t.elapsed_ns()),
                    match_metrics: outcome.metrics.take(),
                });
            }
            if let Some(hook) = progress {
                hook.call(&ProgressEvent::ExtractCellFinished {
                    cell: cell.name().to_string(),
                    found,
                });
            }
        }
        if let (Some(m), Some(t)) = (metrics.as_mut(), total_timer) {
            m.total_ns = t.elapsed_ns();
        }
        report.metrics = metrics;
        // A device is absorbed exactly when it *is* one of this run's
        // composites. Comparing type names against cell names would
        // misclassify input devices whose type happens to share a
        // library cell's name — the normal state of a partially
        // extracted netlist fed back in.
        let composite_names: HashSet<&str> =
            report.instances.iter().map(|i| i.device.as_str()).collect();
        report.unabsorbed_devices = current
            .device_ids()
            .filter(|&d| !composite_names.contains(current.device(d).name()))
            .count();
        Ok((current.into_owned(), report))
    }
}

/// Rebuilds `main` with each instance collapsed into a composite
/// device.
fn replace_instances(
    main: &Netlist,
    cell: &Netlist,
    instances: &[SubMatch],
    report: &mut ExtractReport,
    composite_offset: usize,
) -> Result<Netlist, NetlistError> {
    let mut absorbed: HashSet<DeviceId> = HashSet::new();
    for m in instances {
        absorbed.extend(m.devices.iter().copied());
    }
    let mut out = Netlist::new(main.name().to_string());
    // Copy surviving devices (nets come into being lazily, by name, so
    // interior nets of collapsed instances vanish).
    let carry_net = |out: &mut Netlist, name: &str, is_global: bool, is_port: bool| {
        let id = out.net(name);
        if is_global {
            out.mark_global(id);
        }
        if is_port {
            out.mark_port(id);
        }
        id
    };
    for d in main.device_ids() {
        if absorbed.contains(&d) {
            continue;
        }
        let dev = main.device(d);
        let ty = out.add_type(main.device_type(dev.type_id()).clone())?;
        let pins: Vec<_> = dev
            .pins()
            .iter()
            .map(|&n| {
                let net = main.net_ref(n);
                carry_net(&mut out, net.name(), net.is_global(), net.is_port())
            })
            .collect();
        out.add_device(dev.name().to_string(), ty, &pins)?;
    }
    // Add the composites.
    let comp = out.add_type(composite_type(cell))?;
    let start = composite_offset + report.instances.len();
    for (i, m) in instances.iter().enumerate() {
        let name = format!("{}#{}", cell.name(), start + i);
        let pins: Vec<_> = m
            .port_images(cell)
            .iter()
            .map(|&n| {
                let net = main.net_ref(n);
                carry_net(&mut out, net.name(), net.is_global(), net.is_port())
            })
            .collect();
        out.add_device(name.clone(), comp, &pins)?;
        report.instances.push(ExtractedInstance {
            cell: cell.name().to_string(),
            device: name,
            absorbed: m
                .devices
                .iter()
                .map(|&d| main.device(d).name().to_string())
                .collect(),
        });
    }
    Ok(out)
}
