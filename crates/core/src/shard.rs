//! Sharded Phase II dispatch: a deterministic partition of the main
//! graph (and of the candidate vector) into contiguous device-range
//! shards with pattern-diameter halos (DESIGN.md §3i).
//!
//! A [`ShardPlan`] splits the compiled device order into `k` contiguous
//! **core** ranges and extends each core with a **halo**: every device
//! within pattern-diameter device-hops of the core (two devices are one
//! hop apart when they share a non-global net). The halo is the
//! containment contract — any instance whose anchor device lies in a
//! shard's core is fully contained in `core ∪ halo`, because pattern
//! adjacency is preserved by an embedding (two pattern devices sharing
//! a net map to main devices sharing the image net), so every instance
//! device is within `diameter(S)` device-hops of the anchor.
//!
//! Shards drive *dispatch*, not results: every candidate of the Phase I
//! vector is owned by exactly one shard (device anchors by core range,
//! net anchors by their smallest-index adjacent device), workers claim
//! whole shards and verify their candidates into the same per-candidate
//! slots the unsharded scheduler uses, and the serial CV-ordered merge
//! stays the sole determinism authority. Instances, stats, journal,
//! reject tallies, and truncation points are therefore byte-identical
//! to the unsharded run by construction; the same instance reached from
//! anchors in two different shards is deduped by the merge's canonical
//! device-set check and counted as `shard.dedup_dropped`.

use std::ops::Range;

use subgemini_netlist::{CompiledCircuit, NetId, Vertex};

/// Devices per shard targeted by [`ShardPolicy::Auto`]. Derived from
/// the device count only — never from the machine — so shard
/// boundaries are invariant across thread counts and hosts.
pub const AUTO_DEVICES_PER_SHARD: usize = 8192;

/// Upper bound on the shard count [`ShardPolicy::Auto`] resolves to.
pub const AUTO_MAX_SHARDS: usize = 64;

/// Whether (and how) Phase II dispatch shards the main graph.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShardPolicy {
    /// No sharding (default): the unsharded scheduler paths run
    /// unchanged, byte-identical to releases without the shard layer.
    #[default]
    Off,
    /// Pick a shard count from the main graph's device count alone
    /// (about one shard per [`AUTO_DEVICES_PER_SHARD`] devices, capped
    /// at [`AUTO_MAX_SHARDS`]); resolves to off below two shards.
    Auto,
    /// Exactly this many shards (`0` and `1` mean off).
    Count(u32),
}

impl ShardPolicy {
    /// Resolves the policy against a main graph of `devices` devices:
    /// `Some(k)` with `k >= 2` when sharding is on, `None` when it is
    /// off (explicitly, or because the resolved count degenerates).
    /// Deterministic in `devices` only, so a given circuit shards the
    /// same way for every thread count.
    pub fn resolve(&self, devices: usize) -> Option<usize> {
        let k = match self {
            ShardPolicy::Off => return None,
            ShardPolicy::Auto => (devices / AUTO_DEVICES_PER_SHARD).min(AUTO_MAX_SHARDS),
            ShardPolicy::Count(k) => *k as usize,
        };
        let k = k.min(devices);
        (k >= 2).then_some(k)
    }
}

/// Maximum eccentricity over the pattern's devices in the device-hop
/// metric (one hop = a shared non-global net), i.e. the number of halo
/// hops that guarantees instance containment. Returns `None` when the
/// pattern's devices are not mutually reachable through non-global nets
/// — the distance bound then degenerates and halos must cover the whole
/// graph.
pub fn pattern_diameter(s: &CompiledCircuit) -> Option<usize> {
    let nd = s.device_count();
    if nd == 0 {
        return Some(0);
    }
    let mut diameter = 0usize;
    let mut dist = vec![usize::MAX; nd];
    let mut queue = std::collections::VecDeque::new();
    for src in 0..nd {
        dist.fill(usize::MAX);
        dist[src] = 0;
        queue.clear();
        queue.push_back(src);
        let mut reached = 1usize;
        while let Some(d) = queue.pop_front() {
            let dd = dist[d];
            for (n, _) in s.device_neighbors(subgemini_netlist::DeviceId::new(d as u32)) {
                if s.is_global(n) {
                    continue;
                }
                for (d2, _) in s.net_neighbors(n) {
                    let i = d2.index();
                    if dist[i] == usize::MAX {
                        dist[i] = dd + 1;
                        diameter = diameter.max(dd + 1);
                        reached += 1;
                        queue.push_back(i);
                    }
                }
            }
        }
        if reached < nd {
            return None;
        }
    }
    Some(diameter)
}

/// A deterministic shard partition of a compiled main graph: `k`
/// contiguous core device ranges in compiled order, each with a halo of
/// every device within `diameter` device-hops of the core. Built once
/// per sharded search (metered as `shard.plan_ns`).
#[derive(Clone, Debug)]
pub struct ShardPlan {
    devices: usize,
    chunk: usize,
    shards: usize,
    diameter: Option<usize>,
    /// Per shard: device indices within `diameter` hops of the core but
    /// outside it, ascending. With `diameter: None` (degenerate pattern
    /// metric) every non-core device is halo.
    halos: Vec<Vec<u32>>,
}

impl ShardPlan {
    /// Builds the plan: contiguous near-equal core ranges plus a BFS
    /// halo per shard. `diameter` is the pattern-diameter hop count
    /// ([`pattern_diameter`]); `None` makes every halo cover the whole
    /// rest of the graph (the conservative fallback for patterns whose
    /// device metric is disconnected).
    ///
    /// # Panics
    ///
    /// Panics unless `2 <= shards <= g.device_count()` (what
    /// [`ShardPolicy::resolve`] guarantees).
    pub fn build(g: &CompiledCircuit, shards: usize, diameter: Option<usize>) -> Self {
        let devices = g.device_count();
        assert!(
            (2..=devices).contains(&shards),
            "shard count {shards} out of range for {devices} devices"
        );
        let chunk = devices.div_ceil(shards);
        let mut plan = Self {
            devices,
            chunk,
            shards,
            diameter,
            halos: Vec::with_capacity(shards),
        };
        // Stamp-based visited set reused across shards: `seen[d] == s+1`
        // means device d was reached during shard s's BFS.
        let mut seen = vec![0u32; devices];
        let mut frontier: Vec<u32> = Vec::new();
        let mut next: Vec<u32> = Vec::new();
        for s in 0..shards {
            let core = plan.core(s);
            let halo = match diameter {
                None => {
                    // Degenerate metric: everything outside the core.
                    (0..devices as u32)
                        .filter(|&d| !core.contains(&(d as usize)))
                        .collect()
                }
                Some(0) => Vec::new(),
                Some(k) => {
                    let stamp = s as u32 + 1;
                    let mut halo: Vec<u32> = Vec::new();
                    frontier.clear();
                    for d in core.clone() {
                        seen[d] = stamp;
                        frontier.push(d as u32);
                    }
                    for _hop in 0..k {
                        next.clear();
                        for &d in &frontier {
                            for (n, _) in g.device_neighbors(subgemini_netlist::DeviceId::new(d)) {
                                if g.is_global(n) {
                                    continue;
                                }
                                for (d2, _) in g.net_neighbors(n) {
                                    let i = d2.index();
                                    if seen[i] != stamp {
                                        seen[i] = stamp;
                                        next.push(i as u32);
                                        halo.push(i as u32);
                                    }
                                }
                            }
                        }
                        std::mem::swap(&mut frontier, &mut next);
                        if frontier.is_empty() {
                            break;
                        }
                    }
                    halo.sort_unstable();
                    halo
                }
            };
            plan.halos.push(halo);
        }
        plan
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The pattern-diameter hop count the halos were built for (`None`
    /// = degenerate metric, halos cover the whole graph).
    pub fn diameter(&self) -> Option<usize> {
        self.diameter
    }

    /// Shard `s`'s core device-index range (contiguous in compiled
    /// order; may be empty for trailing shards of tiny graphs).
    pub fn core(&self, s: usize) -> Range<usize> {
        let lo = (s * self.chunk).min(self.devices);
        let hi = ((s + 1) * self.chunk).min(self.devices);
        lo..hi
    }

    /// Shard `s`'s halo: device indices within pattern-diameter hops of
    /// the core but outside it, ascending.
    pub fn halo(&self, s: usize) -> &[u32] {
        &self.halos[s]
    }

    /// Total halo devices across all shards (the overlap the sharding
    /// pays for containment; reported as `shard.halo_devices`).
    pub fn halo_devices(&self) -> u64 {
        self.halos.iter().map(|h| h.len() as u64).sum()
    }

    /// The shard whose core contains device index `d`.
    pub fn owner_of_device(&self, d: usize) -> usize {
        debug_assert!(d < self.devices);
        (d / self.chunk).min(self.shards - 1)
    }

    /// The shard that owns a candidate anchored at `v`: device anchors
    /// by core range, net anchors by their smallest-index adjacent
    /// device (shard 0 for the impossible dangling net). Every
    /// candidate is owned by exactly one shard.
    pub fn owner_of(&self, g: &CompiledCircuit, v: Vertex) -> usize {
        match v {
            Vertex::Device(d) => self.owner_of_device(d.index()),
            Vertex::Net(n) => self.owner_of_net(g, n),
        }
    }

    fn owner_of_net(&self, g: &CompiledCircuit, n: NetId) -> usize {
        g.net_neighbors(n)
            .map(|(d, _)| d.index())
            .min()
            .map_or(0, |d| self.owner_of_device(d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use subgemini_netlist::Netlist;

    fn chain(n: usize) -> Arc<CompiledCircuit> {
        let mut nl = Netlist::new("chain");
        let mos = nl.add_mos_types();
        let mut prev = nl.net("in");
        for i in 0..n {
            let next = nl.net(format!("w{i}"));
            nl.add_device(format!("m{i}"), mos.nmos, &[prev, prev, next])
                .unwrap();
            prev = next;
        }
        Arc::new(CompiledCircuit::compile(&nl))
    }

    #[test]
    fn policy_resolution() {
        assert_eq!(ShardPolicy::Off.resolve(1_000_000), None);
        assert_eq!(ShardPolicy::Count(0).resolve(100), None);
        assert_eq!(ShardPolicy::Count(1).resolve(100), None);
        assert_eq!(ShardPolicy::Count(4).resolve(100), Some(4));
        assert_eq!(ShardPolicy::Count(200).resolve(100), Some(100));
        assert_eq!(ShardPolicy::Auto.resolve(100), None, "tiny stays off");
        assert_eq!(
            ShardPolicy::Auto.resolve(4 * AUTO_DEVICES_PER_SHARD),
            Some(4)
        );
        assert_eq!(
            ShardPolicy::Auto.resolve(1000 * AUTO_DEVICES_PER_SHARD),
            Some(AUTO_MAX_SHARDS)
        );
    }

    #[test]
    fn cores_partition_devices() {
        for devices in [5usize, 10, 17, 100] {
            for shards in 2..=devices.min(9) {
                let g = chain(devices);
                let plan = ShardPlan::build(&g, shards, Some(1));
                let mut covered = vec![0usize; devices];
                for s in 0..shards {
                    for d in plan.core(s) {
                        covered[d] += 1;
                        assert_eq!(plan.owner_of_device(d), s);
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "{devices}/{shards}");
            }
        }
    }

    #[test]
    fn chain_halo_is_hop_neighborhood() {
        // 12-device chain, adjacent devices share a net; 3 shards of 4.
        let g = chain(12);
        let plan = ShardPlan::build(&g, 3, Some(2));
        // Shard 1 core = 4..8; halo at 2 hops = {2,3,8,9}.
        assert_eq!(plan.core(1), 4..8);
        assert_eq!(plan.halo(1), &[2, 3, 8, 9]);
        // Shard 0 core = 0..4; halo = {4,5}.
        assert_eq!(plan.halo(0), &[4, 5]);
        assert_eq!(plan.halo_devices(), 2 + 4 + 2);
    }

    #[test]
    fn degenerate_diameter_halo_covers_everything() {
        let g = chain(6);
        let plan = ShardPlan::build(&g, 2, None);
        assert_eq!(plan.halo(0), &[3, 4, 5]);
        assert_eq!(plan.halo(1), &[0, 1, 2]);
    }

    #[test]
    fn pattern_diameter_of_chain_and_disconnected() {
        // Chain of 4 devices: diameter 3.
        assert_eq!(pattern_diameter(&chain(4)), Some(3));
        // Two devices connected only through a global net: disconnected
        // under the non-global metric.
        let mut nl = Netlist::new("gsplit");
        let mos = nl.add_mos_types();
        let vdd = nl.net("vdd");
        nl.mark_global(vdd);
        let (a, b) = (nl.net("a"), nl.net("b"));
        nl.add_device("m1", mos.nmos, &[a, vdd, a]).unwrap();
        nl.add_device("m2", mos.nmos, &[b, vdd, b]).unwrap();
        let s = CompiledCircuit::compile(&nl);
        assert_eq!(pattern_diameter(&s), None);
    }

    #[test]
    fn net_candidates_have_one_owner() {
        let g = chain(10);
        let plan = ShardPlan::build(&g, 3, Some(1));
        for i in 0..g.net_count() {
            let n = NetId::new(i as u32);
            let o = plan.owner_of(&g, Vertex::Net(n));
            assert!(o < 3);
            // Owner is the smallest adjacent device's owner.
            if let Some(d) = g.net_neighbors(n).map(|(d, _)| d.index()).min() {
                assert_eq!(o, plan.owner_of_device(d));
            }
        }
    }
}
