//! Search governor: deterministic work budgets, cooperative
//! cancellation, and graceful partial results.
//!
//! Phase I's candidate vector is a complete filter, but Phase II is
//! still backtracking search on an NP-complete problem — a single
//! pathological candidate (high symmetry, few safe labels) can stall a
//! whole run. `max_passes_per_candidate` / `max_guesses_per_candidate`
//! cap work *per candidate*; nothing bounds the search globally or
//! lets a caller stop it. This module adds both:
//!
//! * [`WorkBudget`] — a global cap measured in deterministic *effort
//!   units* (the Phase I/II counters the search already maintains:
//!   refinement iterations, labeling passes, guesses, backtracks),
//!   with an optional wall-clock deadline layered on top.
//! * [`CancelToken`] — a lock-free flag checked cooperatively by
//!   Phase I refinement rounds and every Phase II worker.
//! * [`Completeness`] / [`TruncationReason`] — how an outcome reports
//!   that it stopped early, and why, without losing the instances that
//!   were already verified.
//!
//! # Determinism contract
//!
//! Effort is charged at *candidate granularity*, in candidate-vector
//! order, by the serial merge loop — never from raw time and never in
//! worker completion order. A candidate's cost (`1 + Δpasses +
//! Δguesses + Δbacktracks`) is a pure function of the pattern, the
//! main circuit, and the options, so the truncation point and the
//! reported instance set are identical across `threads 1/2/8`. Worker
//! threads may *precompute* candidates beyond the truncation point
//! (they observe a shared effort accumulator and stop within one
//! candidate of exhaustion), but precomputed results past the cutoff
//! are simply never consumed. Wall-clock deadlines are inherently
//! timing-dependent and therefore only map onto the same machinery as
//! cancellation — with the one deterministic special case of a zero
//! deadline, which always truncates at the very first check site.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::options::MatchOptions;

/// A global cap on search work, in deterministic effort units, with an
/// optional wall-clock deadline layered on top.
///
/// One *effort unit* is one refinement iteration (Phase I) or one
/// labeling pass, guess, or backtrack (Phase II); every candidate
/// additionally costs one unit to open. See the module docs for the
/// determinism contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkBudget {
    /// Maximum effort units to spend; `None` = unlimited.
    pub max_effort: Option<u64>,
    /// Wall-clock deadline in milliseconds from the start of the
    /// search; `None` = no deadline. A deadline of `0` deterministically
    /// truncates at the first check site.
    pub deadline_ms: Option<u64>,
}

impl WorkBudget {
    /// A budget of `units` effort units, no deadline.
    pub fn effort(units: u64) -> Self {
        WorkBudget {
            max_effort: Some(units),
            deadline_ms: None,
        }
    }

    /// A wall-clock deadline of `ms` milliseconds, no effort cap.
    pub fn deadline(ms: u64) -> Self {
        WorkBudget {
            max_effort: None,
            deadline_ms: Some(ms),
        }
    }

    /// `true` when neither an effort cap nor a deadline is set.
    pub fn is_unlimited(&self) -> bool {
        self.max_effort.is_none() && self.deadline_ms.is_none()
    }
}

/// A lock-free cancellation flag shared between a caller and a running
/// search.
///
/// Clones share the flag. Phase I checks it once per refinement cycle;
/// Phase II checks it before every candidate (in the serial merge and
/// in every worker), so all workers stop within one check interval of
/// [`CancelToken::cancel`]. A cancelled search returns gracefully with
/// the instances verified so far and
/// [`Completeness::Truncated`]`{ reason: `[`TruncationReason::Cancelled`]`, .. }`.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether [`CancelToken::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Identity comparison (same shared flag), mirroring `ProgressHook`:
/// tokens have no meaningful value equality, and `MatchOptions` must
/// stay `Eq`.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for CancelToken {}

/// Why a search stopped before exhausting the candidate vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TruncationReason {
    /// The [`WorkBudget::max_effort`] cap was reached.
    EffortExhausted,
    /// The [`WorkBudget::deadline_ms`] wall-clock deadline passed.
    DeadlineExpired,
    /// [`CancelToken::cancel`] was called.
    Cancelled,
}

impl TruncationReason {
    /// Stable snake_case name, used in reports and the event journal.
    pub fn as_str(&self) -> &'static str {
        match self {
            TruncationReason::EffortExhausted => "effort_exhausted",
            TruncationReason::DeadlineExpired => "deadline_expired",
            TruncationReason::Cancelled => "cancelled",
        }
    }
}

/// Whether an outcome covered the whole candidate vector or stopped
/// early under a budget, deadline, or cancellation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub enum Completeness {
    /// Every candidate was considered; the instance list is the full
    /// answer (subject only to the caller's own `max_instances`).
    #[default]
    Complete,
    /// The search stopped early; the instance list is a valid prefix
    /// of the complete answer (everything reported did verify).
    Truncated {
        /// What stopped the search.
        reason: TruncationReason,
        /// Candidates actually verified before the stop.
        candidates_tried: usize,
        /// Candidates never considered because of the stop.
        candidates_skipped: usize,
    },
}

impl Completeness {
    /// `true` for [`Completeness::Complete`].
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }

    /// `true` for [`Completeness::Truncated`].
    pub fn is_truncated(&self) -> bool {
        !self.is_complete()
    }
}

/// Wall-clock deadline state: fixed at search start so every check
/// site compares against the same origin.
#[derive(Clone, Debug)]
pub(crate) struct Deadline {
    start: Instant,
    limit: Duration,
}

impl Deadline {
    fn expired(&self) -> bool {
        self.start.elapsed() >= self.limit
    }
}

/// The per-search governor: owns the effort ledger and answers "should
/// this search keep going?" at every cooperative check site. Built
/// only when the options carry a budget or a cancel token, so a
/// governor-free search does no extra work at all.
#[derive(Debug)]
pub(crate) struct Governor {
    max_effort: Option<u64>,
    spent: u64,
    cancel: Option<CancelToken>,
    deadline: Option<Deadline>,
}

impl Governor {
    /// A governor for these options, or `None` when neither a budget
    /// nor a cancel token is configured (the zero-cost default).
    pub(crate) fn from_options(options: &MatchOptions) -> Option<Governor> {
        let budget = options.budget.as_ref();
        if budget.is_none_or(WorkBudget::is_unlimited) && options.cancel.is_none() {
            return None;
        }
        let deadline = budget.and_then(|b| b.deadline_ms).map(|ms| Deadline {
            start: Instant::now(),
            limit: Duration::from_millis(ms),
        });
        Some(Governor {
            max_effort: budget.and_then(|b| b.max_effort),
            spent: 0,
            cancel: options.cancel.clone(),
            deadline,
        })
    }

    /// Adds `units` to the effort ledger.
    pub(crate) fn charge(&mut self, units: u64) {
        self.spent = self.spent.saturating_add(units);
    }

    /// Effort units charged so far.
    pub(crate) fn spent(&self) -> u64 {
        self.spent
    }

    /// The effort cap, if one is set.
    pub(crate) fn limit(&self) -> Option<u64> {
        self.max_effort
    }

    /// `true` once the charged effort has reached the cap.
    pub(crate) fn effort_exhausted(&self) -> bool {
        self.max_effort.is_some_and(|m| self.spent >= m)
    }

    /// Non-effort stop conditions: cancellation first (an explicit
    /// caller action), then the wall-clock deadline.
    pub(crate) fn interrupted(&self) -> Option<TruncationReason> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(TruncationReason::Cancelled);
        }
        if self.deadline.as_ref().is_some_and(Deadline::expired) {
            return Some(TruncationReason::DeadlineExpired);
        }
        None
    }

    /// The full stop check used in candidate-vector order: effort
    /// exhaustion dominates interruption so effort-budget truncation
    /// stays deterministic even when a deadline is also set.
    pub(crate) fn should_stop(&self) -> Option<TruncationReason> {
        if self.effort_exhausted() {
            return Some(TruncationReason::EffortExhausted);
        }
        self.interrupted()
    }

    /// A thread-shareable view for Phase II workers, seeded with the
    /// effort already charged (Phase I's iterations). Owning (the
    /// cancel token is an `Arc` clone, the deadline a copied origin),
    /// so the streaming merge can keep charging the authoritative
    /// `&mut Governor` ledger while workers poll this view.
    pub(crate) fn shared(&self) -> SharedGovernor {
        SharedGovernor {
            spent: AtomicU64::new(self.spent),
            max_effort: self.max_effort,
            cancel: self.cancel.clone(),
            deadline: self.deadline.clone(),
            halt: AtomicBool::new(false),
            claim_epoch: AtomicU64::new(0),
        }
    }
}

/// The governor's broadcast face: Phase II workers observe a shared
/// effort accumulator plus the cancel/deadline flags, so exhaustion
/// stops every worker within one check interval. The accumulator is a
/// *stop signal only* — the authoritative, deterministic ledger is the
/// serial merge's, charged in candidate-vector order.
///
/// The scheduler rides two extra signals on the same broadcast object:
/// [`halt`](SharedGovernor::halt), raised by the streaming merge when
/// it stops consuming (`max_instances` reached, truncation, or normal
/// completion), and a monotone [claim epoch](SharedGovernor::claim_epoch),
/// bumped each time the merge publishes newly claimed devices under
/// `OverlapPolicy::ClaimDevices` — workers use it as a cheap "any
/// claims yet?" gate before consulting the claim board.
#[derive(Debug)]
pub(crate) struct SharedGovernor {
    spent: AtomicU64,
    max_effort: Option<u64>,
    cancel: Option<CancelToken>,
    deadline: Option<Deadline>,
    halt: AtomicBool,
    claim_epoch: AtomicU64,
}

impl SharedGovernor {
    /// A broadcast face with no budget, cancel, or deadline: never
    /// stops on its own, but still carries the scheduler's halt and
    /// claim-epoch signals. Used on ungoverned parallel runs.
    pub(crate) fn unlimited() -> SharedGovernor {
        SharedGovernor {
            spent: AtomicU64::new(0),
            max_effort: None,
            cancel: None,
            deadline: None,
            halt: AtomicBool::new(false),
            claim_epoch: AtomicU64::new(0),
        }
    }

    /// Adds a finished candidate's effort to the broadcast accumulator.
    pub(crate) fn charge(&self, units: u64) {
        self.spent.fetch_add(units, Ordering::Relaxed);
    }

    /// Whether workers should stop taking new candidates.
    pub(crate) fn should_stop(&self) -> bool {
        if self
            .max_effort
            .is_some_and(|m| self.spent.load(Ordering::Relaxed) >= m)
        {
            return true;
        }
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return true;
        }
        self.deadline.as_ref().is_some_and(Deadline::expired)
    }

    /// Tells workers the merge has stopped consuming: no new claims
    /// are worth making. Raised on every merge exit path so workers
    /// blocked on the reorder window always drain promptly.
    pub(crate) fn halt(&self) {
        self.halt.store(true, Ordering::Release);
    }

    /// Whether [`halt`](Self::halt) has been raised.
    pub(crate) fn halted(&self) -> bool {
        self.halt.load(Ordering::Acquire)
    }

    /// Publishes that the claim board grew. Called by the merge *after*
    /// setting the board's bits, so a worker that observes the new
    /// epoch also observes the bits.
    pub(crate) fn bump_claim_epoch(&self) {
        self.claim_epoch.fetch_add(1, Ordering::Release);
    }

    /// The current claim epoch (0 = nothing claimed yet).
    pub(crate) fn claim_epoch(&self) -> u64 {
        self.claim_epoch.load(Ordering::Acquire)
    }
}

/// The effort-unit reading of a Phase II stats block; per-candidate
/// costs are differences of this quantity plus the per-candidate
/// opening unit.
pub(crate) fn effort_of(stats: &crate::instance::Phase2Stats) -> u64 {
    (stats.passes + stats.guesses + stats.backtracks) as u64
}

/// Named fault-injection sites for the budget/cancellation test layer.
///
/// Compiled only under `cfg(test)` or the `failpoints` cargo feature;
/// in ordinary release builds every hook is a `const None` that the
/// optimizer deletes (verified by the bench regression gate). Tests
/// use [`configure`](failpoint::configure) to inject deterministic
/// guess storms, stalls, or worker death at a named site, and must
/// [`clear_all`](failpoint::clear_all) afterwards — the registry is
/// process-global.
pub mod failpoint {
    /// What to inject at a site.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum Action {
        /// Sleep this many milliseconds at the site (simulates a stall;
        /// exercises wall-clock deadlines without relying on real
        /// workload timing).
        StallMs(u64),
        /// Burn this many guesses from the per-candidate guess budget
        /// before verification starts (a deterministic "guess storm":
        /// inflates every candidate's effort identically on every
        /// thread count).
        GuessStorm(u64),
        /// Phase II workers return immediately without touching their
        /// chunk (simulated worker death; the serial merge recomputes
        /// whatever it still needs, so results are unchanged).
        KillWorker,
    }

    /// Sites the search consults. Checked at: every Phase I refinement
    /// cycle (`phase1.cycle`), every Phase II candidate verification
    /// (`phase2.candidate`), every Phase II worker startup
    /// (`phase2.worker`), and every work-stealing claim attempt
    /// (`phase2.steal`) — where `KillWorker` abandons an
    /// already-claimed candidate, exercising the merge's hole
    /// recovery.
    pub const SITES: [&str; 4] = [
        "phase1.cycle",
        "phase2.candidate",
        "phase2.worker",
        "phase2.steal",
    ];

    #[cfg(any(test, feature = "failpoints"))]
    mod registry {
        use super::Action;
        use std::collections::HashMap;
        use std::sync::{Mutex, OnceLock};

        fn map() -> &'static Mutex<HashMap<String, Action>> {
            static REGISTRY: OnceLock<Mutex<HashMap<String, Action>>> = OnceLock::new();
            REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
        }

        /// Arms `site` with `action` (replacing any previous arming).
        pub fn configure(site: &str, action: Action) {
            map()
                .lock()
                .expect("failpoint registry lock")
                .insert(site.to_string(), action);
        }

        /// Disarms one site.
        pub fn clear(site: &str) {
            map().lock().expect("failpoint registry lock").remove(site);
        }

        /// Disarms every site.
        pub fn clear_all() {
            map().lock().expect("failpoint registry lock").clear();
        }

        /// The action armed at `site`, if any.
        pub fn get(site: &str) -> Option<Action> {
            map()
                .lock()
                .expect("failpoint registry lock")
                .get(site)
                .copied()
        }
    }

    #[cfg(any(test, feature = "failpoints"))]
    pub use registry::{clear, clear_all, configure, get};

    /// With the `failpoints` feature off, every site is permanently
    /// disarmed and the check folds to a constant.
    #[cfg(not(any(test, feature = "failpoints")))]
    #[inline(always)]
    pub(crate) fn get(_site: &str) -> Option<Action> {
        None
    }

    /// Sleeps when the armed action is a stall; used by the search's
    /// check sites so stall injection is one call.
    pub(crate) fn stall(site: &str) {
        if let Some(Action::StallMs(ms)) = get(site) {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared_and_identity_compared() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert!(!c.is_cancelled());
    }

    #[test]
    fn governor_absent_without_budget_or_cancel() {
        let opts = MatchOptions::default();
        assert!(Governor::from_options(&opts).is_none());
        let opts = MatchOptions {
            budget: Some(WorkBudget::default()),
            ..MatchOptions::default()
        };
        assert!(
            Governor::from_options(&opts).is_none(),
            "an unlimited budget is the same as no budget"
        );
    }

    #[test]
    fn effort_charging_and_exhaustion() {
        let opts = MatchOptions {
            budget: Some(WorkBudget::effort(10)),
            ..MatchOptions::default()
        };
        let mut g = Governor::from_options(&opts).expect("budgeted");
        assert!(!g.effort_exhausted());
        g.charge(9);
        assert!(!g.effort_exhausted());
        g.charge(1);
        assert!(g.effort_exhausted());
        assert_eq!(g.should_stop(), Some(TruncationReason::EffortExhausted));
        assert_eq!(g.spent(), 10);
        assert_eq!(g.limit(), Some(10));
    }

    #[test]
    fn zero_deadline_expires_immediately() {
        let opts = MatchOptions {
            budget: Some(WorkBudget::deadline(0)),
            ..MatchOptions::default()
        };
        let g = Governor::from_options(&opts).expect("deadlined");
        assert_eq!(g.interrupted(), Some(TruncationReason::DeadlineExpired));
    }

    #[test]
    fn cancellation_dominates_deadline() {
        let token = CancelToken::new();
        token.cancel();
        let opts = MatchOptions {
            budget: Some(WorkBudget::deadline(0)),
            cancel: Some(token),
            ..MatchOptions::default()
        };
        let g = Governor::from_options(&opts).expect("governed");
        assert_eq!(g.interrupted(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn shared_governor_broadcasts_exhaustion() {
        let opts = MatchOptions {
            budget: Some(WorkBudget::effort(5)),
            ..MatchOptions::default()
        };
        let mut g = Governor::from_options(&opts).expect("budgeted");
        g.charge(3);
        let shared = g.shared();
        assert!(!shared.should_stop());
        shared.charge(2);
        assert!(shared.should_stop());
    }

    #[test]
    fn shared_governor_halt_and_claim_epoch_signals() {
        let shared = SharedGovernor::unlimited();
        assert!(!shared.should_stop());
        assert!(!shared.halted());
        assert_eq!(shared.claim_epoch(), 0);
        shared.bump_claim_epoch();
        shared.bump_claim_epoch();
        assert_eq!(shared.claim_epoch(), 2);
        shared.halt();
        assert!(shared.halted());
        // Halt is a scheduler signal, not a governor stop: an
        // unlimited governor still never reports should_stop.
        assert!(!shared.should_stop());
    }

    #[test]
    fn truncation_reason_names_are_stable() {
        assert_eq!(
            TruncationReason::EffortExhausted.as_str(),
            "effort_exhausted"
        );
        assert_eq!(
            TruncationReason::DeadlineExpired.as_str(),
            "deadline_expired"
        );
        assert_eq!(TruncationReason::Cancelled.as_str(), "cancelled");
    }

    #[test]
    fn failpoints_configure_and_clear() {
        failpoint::configure("phase2.candidate", failpoint::Action::GuessStorm(7));
        assert_eq!(
            failpoint::get("phase2.candidate"),
            Some(failpoint::Action::GuessStorm(7))
        );
        failpoint::clear("phase2.candidate");
        assert_eq!(failpoint::get("phase2.candidate"), None);
        failpoint::configure("phase1.cycle", failpoint::Action::StallMs(1));
        failpoint::clear_all();
        assert_eq!(failpoint::get("phase1.cycle"), None);
    }
}
