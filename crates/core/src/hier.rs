//! Iterative hierarchy reconstruction: the paper's §I headline
//! application, rebuilding a design hierarchy from a flat transistor
//! netlist by running extraction repeatedly.
//!
//! The cell library is grouped into *levels*: a cell whose devices are
//! all primitives sits at level 1; a cell whose devices include other
//! cells' composite types sits one level above the deepest cell it
//! references. A [`Hierarchizer`] then runs the existing [`Extractor`]
//! bottom-up, level by level, over the evolving netlist — composites
//! minted by lower rounds are legal main devices for higher rounds —
//! and repeats the whole sweep until a full sweep replaces nothing
//! (a fixpoint). The result is a [`HierarchyOutcome`]: the recovered
//! top-level netlist (composites for every found instance), the
//! normalized library cells, and a [`HierarchyReport`] with per-level
//! per-cell counts, the containment tree, and the unabsorbed residue.
//!
//! ## Library normalization
//!
//! A level-2 cell as parsed from a SPICE deck references lower cells
//! through `X` instances whose device types carry naive terminal
//! classes (each port its own class, named after the port). Extraction,
//! however, replaces instances with composites built by
//! [`composite_type`] — terminals classed by inferred port symmetry.
//! Since label hashing mixes terminal class names, a pattern holding
//! the naive type would never match a main circuit holding the
//! canonical one. [`Hierarchizer::new`] therefore *normalizes* the
//! library bottom-up: every device whose type name matches a library
//! cell is retyped to the canonical composite type of that
//! (already-normalized) cell, making patterns and mains agree by
//! construction.
//!
//! ## Fixpoint argument
//!
//! Every composite absorbs at least one device and each absorbed
//! device belongs to exactly one composite
//! ([`OverlapPolicy::ClaimDevices`](crate::OverlapPolicy)), so a sweep
//! that replaces anything strictly shrinks the netlist unless every
//! replaced cell is a single-device cell — and a single-device cell
//! cannot re-match its own composite (the composite's type name is the
//! cell name, not the device's original type), while mutual
//! single-device absorption between cells would require a reference
//! cycle, which level grouping rejects. Sweeps therefore make strict
//! progress and the driver terminates; a generous sweep cap guards the
//! invariant.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

use subgemini_netlist::{DeviceType, NetId, Netlist, NetlistError};

use crate::extract::{ExtractedInstance, Extractor};
use crate::metrics::json::Value;
use crate::metrics::REPORT_SCHEMA_VERSION;
use crate::options::MatchOptions;
use crate::symmetry::composite_type;

/// Sweeps after which the driver gives up instead of looping; far above
/// any real hierarchy depth (each productive sweep shrinks the netlist).
const MAX_SWEEPS: usize = 64;

/// Errors from library grouping, normalization, or the fixpoint driver.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HierError {
    /// Two library cells share a name.
    DuplicateCell(String),
    /// Cell references form a cycle through the named cell.
    Cycle(String),
    /// A device referencing a library cell has the wrong pin count.
    PortArity {
        /// The cell holding the offending device.
        cell: String,
        /// The offending device's name.
        device: String,
        /// The referenced cell's port count.
        expected: usize,
        /// The device's actual pin count.
        got: usize,
    },
    /// The sweep cap was hit without reaching a fixpoint.
    NoFixpoint(usize),
    /// A netlist rebuild failed (name or type collision).
    Netlist(NetlistError),
}

impl fmt::Display for HierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierError::DuplicateCell(name) => {
                write!(f, "library defines cell `{name}` more than once")
            }
            HierError::Cycle(name) => {
                write!(f, "cell references form a cycle through `{name}`")
            }
            HierError::PortArity {
                cell,
                device,
                expected,
                got,
            } => write!(
                f,
                "device `{device}` in cell `{cell}` has {got} pins but the referenced cell has {expected} ports"
            ),
            HierError::NoFixpoint(sweeps) => {
                write!(f, "no fixpoint after {sweeps} sweeps")
            }
            HierError::Netlist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for HierError {}

impl From<NetlistError> for HierError {
    fn from(e: NetlistError) -> Self {
        HierError::Netlist(e)
    }
}

/// Accumulated tallies for one library level.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LevelReport {
    /// The level (1 = cells of primitives only).
    pub level: usize,
    /// Per-cell instance counts in the level's processing
    /// (largest-first) order, summed over all sweeps.
    pub per_cell: Vec<(String, usize)>,
    /// Cell rounds at this level whose match stopped early (budget,
    /// deadline, or cancellation), summed over all sweeps.
    pub truncated_cells: usize,
}

/// One node of the recovered containment tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HierNode {
    /// A primitive device no cell absorbed (name in the final netlist).
    Leaf(String),
    /// A recovered cell instance.
    Cell {
        /// The library cell name.
        cell: String,
        /// The composite device's name.
        device: String,
        /// The devices this instance absorbed, recursively resolved.
        children: Vec<HierNode>,
    },
}

/// Summary of a hierarchy reconstruction run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierarchyReport {
    /// Per-level tallies, ascending level.
    pub levels: Vec<LevelReport>,
    /// Containment forest over the final netlist's devices: composites
    /// become [`HierNode::Cell`] with their absorbed devices as
    /// children, untouched primitives become [`HierNode::Leaf`].
    pub tree: Vec<HierNode>,
    /// Final-netlist devices that are not composites minted by this run
    /// (the residue no cell covered).
    pub unabsorbed_devices: usize,
    /// Bottom-up sweeps executed, including the final all-quiet sweep
    /// that confirmed the fixpoint.
    pub sweeps: usize,
}

impl HierarchyReport {
    /// Total instances of `cell` across all levels.
    pub fn count_of(&self, cell: &str) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.per_cell.iter())
            .filter(|(c, _)| c == cell)
            .map(|&(_, n)| n)
            .sum()
    }

    /// The stable machine-readable report document.
    pub fn to_json(&self) -> Value {
        fn node(n: &HierNode) -> Value {
            match n {
                HierNode::Leaf(name) => Value::Str(name.clone()),
                HierNode::Cell {
                    cell,
                    device,
                    children,
                } => Value::Obj(vec![
                    ("cell".into(), Value::Str(cell.clone())),
                    ("device".into(), Value::Str(device.clone())),
                    (
                        "children".into(),
                        Value::Arr(children.iter().map(node).collect()),
                    ),
                ]),
            }
        }
        Value::Obj(vec![
            ("schema_version".into(), Value::int(REPORT_SCHEMA_VERSION)),
            ("sweeps".into(), Value::int(self.sweeps as u64)),
            (
                "levels".into(),
                Value::Arr(
                    self.levels
                        .iter()
                        .map(|l| {
                            Value::Obj(vec![
                                ("level".into(), Value::int(l.level as u64)),
                                (
                                    "truncated_cells".into(),
                                    Value::int(l.truncated_cells as u64),
                                ),
                                (
                                    "cells".into(),
                                    Value::Arr(
                                        l.per_cell
                                            .iter()
                                            .map(|(c, n)| {
                                                Value::Obj(vec![
                                                    ("cell".into(), Value::Str(c.clone())),
                                                    ("found".into(), Value::int(*n as u64)),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "unabsorbed_devices".into(),
                Value::int(self.unabsorbed_devices as u64),
            ),
            (
                "tree".into(),
                Value::Arr(self.tree.iter().map(node).collect()),
            ),
        ])
    }

    /// A human-readable table: per-level counts plus the residue.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hierarchy: {} level(s), {} sweep(s)",
            self.levels.len(),
            self.sweeps
        );
        for l in &self.levels {
            let trunc = if l.truncated_cells > 0 {
                format!("  ({} truncated)", l.truncated_cells)
            } else {
                String::new()
            };
            let _ = writeln!(out, "level {}:{trunc}", l.level);
            for (cell, n) in &l.per_cell {
                let _ = writeln!(out, "  {cell:<20} {n:>6}");
            }
        }
        let _ = writeln!(out, "unabsorbed devices: {}", self.unabsorbed_devices);
        out
    }
}

/// Everything a hierarchy run produces.
#[derive(Clone, Debug)]
pub struct HierarchyOutcome {
    /// The final netlist: every found instance collapsed into a
    /// composite device, untouched primitives carried through.
    pub top: Netlist,
    /// The normalized library, ascending level, each level in its
    /// processing (largest-first) order — the `.subckt` definitions a
    /// hierarchical deck needs, lowest first.
    pub cells: Vec<Netlist>,
    /// Tallies, containment tree, residue.
    pub report: HierarchyReport,
}

impl HierarchyOutcome {
    /// The normalized cells instantiated at least once, in definition
    /// order (lower levels first, so a deck defines a cell before any
    /// higher cell instantiates it). Cloned so the result feeds
    /// `write_hierarchical`-style `&[Netlist]` consumers directly.
    pub fn used_cells(&self) -> Vec<Netlist> {
        self.cells
            .iter()
            .filter(|c| self.report.count_of(c.name()) > 0)
            .cloned()
            .collect()
    }
}

/// What one round (one level-pass of one sweep) did; handed to the
/// observer of [`Hierarchizer::run_observed`] as soon as the round
/// finishes, for per-round telemetry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundReport {
    /// 1-based sweep number.
    pub sweep: usize,
    /// The level this round extracted.
    pub level: usize,
    /// Instances replaced by this round.
    pub replaced: usize,
    /// Cell rounds truncated within this round.
    pub truncated_cells: usize,
}

/// A configured hierarchy-reconstruction driver over a grouped,
/// normalized cell library.
///
/// # Examples
///
/// ```
/// use subgemini::hier::Hierarchizer;
/// use subgemini_netlist::{instantiate, DeviceType, Netlist, TerminalSpec};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Level 1: an inverter. Level 2: a buffer of two inverters,
/// // referencing `inv` through a (naive) composite device type.
/// let mut inv = Netlist::new("inv");
/// let mos = inv.add_mos_types();
/// let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
/// inv.mark_port(a);
/// inv.mark_port(y);
/// inv.mark_global(vdd);
/// inv.mark_global(gnd);
/// inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
///
/// let mut buf2 = Netlist::new("buf2");
/// let ity = buf2.add_type(DeviceType::new(
///     "inv",
///     vec![TerminalSpec::new("a", "a"), TerminalSpec::new("y", "y")],
/// ))?;
/// let (ba, bm, by) = (buf2.net("a"), buf2.net("m"), buf2.net("y"));
/// buf2.mark_port(ba);
/// buf2.mark_port(by);
/// buf2.add_device("u1", ity, &[ba, bm])?;
/// buf2.add_device("u2", ity, &[bm, by])?;
///
/// // Flat main: two chained inverters.
/// let mut chip = Netlist::new("chip");
/// let (ci, cm, co) = (chip.net("in"), chip.net("mid"), chip.net("out"));
/// instantiate(&mut chip, &inv, "g1", &[ci, cm])?;
/// instantiate(&mut chip, &inv, "g2", &[cm, co])?;
///
/// let outcome = Hierarchizer::new(&[inv, buf2])?.run(&chip)?;
/// assert_eq!(outcome.report.count_of("inv"), 2);
/// assert_eq!(outcome.report.count_of("buf2"), 1);
/// assert_eq!(outcome.top.device_count(), 1); // one buf2 composite
/// assert_eq!(outcome.report.unabsorbed_devices, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Hierarchizer {
    /// Normalized cells grouped by level; index 0 holds level 1.
    levels: Vec<Vec<Netlist>>,
    options: MatchOptions,
}

impl Hierarchizer {
    /// Groups `cells` into levels and normalizes cross-cell references
    /// to canonical composite types (see the module docs).
    ///
    /// # Errors
    ///
    /// [`HierError::DuplicateCell`] on name clashes,
    /// [`HierError::Cycle`] when references are not a DAG,
    /// [`HierError::PortArity`] on pin-count mismatches, and
    /// [`HierError::Netlist`] if a rebuild fails.
    pub fn new(cells: &[Netlist]) -> Result<Self, HierError> {
        let mut index: HashMap<&str, usize> = HashMap::new();
        for (i, c) in cells.iter().enumerate() {
            if index.insert(c.name(), i).is_some() {
                return Err(HierError::DuplicateCell(c.name().to_string()));
            }
        }
        let refs: Vec<Vec<usize>> = cells
            .iter()
            .map(|c| {
                let mut r: Vec<usize> = c
                    .device_ids()
                    .filter_map(|d| index.get(c.device_type_of(d).name()).copied())
                    .collect();
                r.sort_unstable();
                r.dedup();
                r
            })
            .collect();
        let mut level = vec![0usize; cells.len()];
        let mut state = vec![0u8; cells.len()];
        for i in 0..cells.len() {
            assign_level(i, cells, &refs, &mut level, &mut state)?;
        }
        // Normalize bottom-up: composite types of lower cells must
        // exist before any higher cell is rebuilt over them.
        let mut order: Vec<usize> = (0..cells.len()).collect();
        order.sort_by(|&a, &b| {
            level[a].cmp(&level[b]).then_with(|| {
                cells[b]
                    .device_count()
                    .cmp(&cells[a].device_count())
                    .then_with(|| cells[a].name().cmp(cells[b].name()))
            })
        });
        let referenced: HashSet<usize> = refs.iter().flatten().copied().collect();
        let mut composites: Vec<Option<DeviceType>> = vec![None; cells.len()];
        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut levels: Vec<Vec<Netlist>> = vec![Vec::new(); max_level];
        for &i in &order {
            let norm = if refs[i].is_empty() {
                cells[i].clone()
            } else {
                normalize_cell(&cells[i], &index, &composites)?
            };
            if referenced.contains(&i) {
                composites[i] = Some(composite_type(&norm));
            }
            levels[level[i] - 1].push(norm);
        }
        Ok(Self {
            levels,
            options: MatchOptions::extraction(),
        })
    }

    /// Overrides the matching options used by every round; the overlap
    /// policy is forced to claim devices, as extraction requires.
    pub fn set_options(&mut self, options: MatchOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// The normalized library, grouped by level (index 0 = level 1).
    pub fn levels(&self) -> &[Vec<Netlist>] {
        &self.levels
    }

    /// Runs the fixpoint driver over `flat`.
    ///
    /// # Errors
    ///
    /// [`HierError::Netlist`] from a rebuild, or
    /// [`HierError::NoFixpoint`] if the sweep cap is hit.
    pub fn run(&self, flat: &Netlist) -> Result<HierarchyOutcome, HierError> {
        self.run_observed(flat, |_| {})
    }

    /// Runs the fixpoint driver, invoking `on_round` after every round
    /// (one level-pass of one sweep) — the hook the engine uses to fold
    /// one telemetry sample per round.
    ///
    /// # Errors
    ///
    /// See [`Hierarchizer::run`].
    pub fn run_observed(
        &self,
        flat: &Netlist,
        mut on_round: impl FnMut(&RoundReport),
    ) -> Result<HierarchyOutcome, HierError> {
        let mut extractors: Vec<Extractor> = self
            .levels
            .iter()
            .map(|cells| {
                let mut ex = Extractor::new();
                for c in cells {
                    ex.add_cell(c.clone());
                }
                ex.set_options(self.options.clone());
                ex
            })
            .collect();
        let mut per_level: Vec<BTreeMap<String, usize>> = vec![BTreeMap::new(); self.levels.len()];
        let mut truncated: Vec<usize> = vec![0; self.levels.len()];
        let mut all_instances: Vec<ExtractedInstance> = Vec::new();
        let mut current = flat.clone();
        let mut sweeps = 0usize;
        loop {
            if sweeps == MAX_SWEEPS {
                return Err(HierError::NoFixpoint(sweeps));
            }
            sweeps += 1;
            let mut replaced_this_sweep = 0usize;
            for (li, ex) in extractors.iter_mut().enumerate() {
                ex.set_composite_offset(all_instances.len());
                let (next, rep) = ex.extract(&current)?;
                for (cell, n) in &rep.per_cell {
                    *per_level[li].entry(cell.clone()).or_insert(0) += n;
                }
                truncated[li] += rep.truncated_cells;
                let replaced = rep.instances.len();
                on_round(&RoundReport {
                    sweep: sweeps,
                    level: li + 1,
                    replaced,
                    truncated_cells: rep.truncated_cells,
                });
                all_instances.extend(rep.instances);
                current = next;
                replaced_this_sweep += replaced;
            }
            if replaced_this_sweep == 0 {
                break;
            }
        }
        // Per-level tallies in each level's processing (largest-first)
        // order; cells a cancelled sweep never reached report 0.
        let levels: Vec<LevelReport> = self
            .levels
            .iter()
            .enumerate()
            .map(|(li, cells)| {
                let mut ordered: Vec<&Netlist> = cells.iter().collect();
                ordered.sort_by(|a, b| {
                    b.device_count()
                        .cmp(&a.device_count())
                        .then_with(|| a.name().cmp(b.name()))
                });
                LevelReport {
                    level: li + 1,
                    per_cell: ordered
                        .iter()
                        .map(|c| {
                            (
                                c.name().to_string(),
                                per_level[li].get(c.name()).copied().unwrap_or(0),
                            )
                        })
                        .collect(),
                    truncated_cells: truncated[li],
                }
            })
            .collect();
        let minted: HashMap<&str, &ExtractedInstance> = all_instances
            .iter()
            .map(|i| (i.device.as_str(), i))
            .collect();
        let tree: Vec<HierNode> = current
            .device_ids()
            .map(|d| containment_node(current.device(d).name(), &minted))
            .collect();
        let unabsorbed_devices = current
            .device_ids()
            .filter(|&d| !minted.contains_key(current.device(d).name()))
            .count();
        Ok(HierarchyOutcome {
            top: current,
            cells: self.levels.iter().flatten().cloned().collect(),
            report: HierarchyReport {
                levels,
                tree,
                unabsorbed_devices,
                sweeps,
            },
        })
    }
}

/// One-call convenience over [`Hierarchizer`].
///
/// # Errors
///
/// See [`Hierarchizer::new`] and [`Hierarchizer::run`].
pub fn hierarchize(
    flat: &Netlist,
    cells: &[Netlist],
    options: &MatchOptions,
) -> Result<HierarchyOutcome, HierError> {
    let mut h = Hierarchizer::new(cells)?;
    h.set_options(options.clone());
    h.run(flat)
}

/// Assigns `level[i]` (1 + deepest referenced cell), detecting cycles.
fn assign_level(
    i: usize,
    cells: &[Netlist],
    refs: &[Vec<usize>],
    level: &mut [usize],
    state: &mut [u8],
) -> Result<usize, HierError> {
    if state[i] == 2 {
        return Ok(level[i]);
    }
    if state[i] == 1 {
        return Err(HierError::Cycle(cells[i].name().to_string()));
    }
    state[i] = 1;
    let mut l = 1;
    for &j in &refs[i] {
        if j == i {
            return Err(HierError::Cycle(cells[i].name().to_string()));
        }
        l = l.max(1 + assign_level(j, cells, refs, level, state)?);
    }
    state[i] = 2;
    level[i] = l;
    Ok(l)
}

/// Rebuilds `cell` with every library-cell reference retyped to the
/// referenced cell's canonical composite type.
fn normalize_cell(
    cell: &Netlist,
    index: &HashMap<&str, usize>,
    composites: &[Option<DeviceType>],
) -> Result<Netlist, HierError> {
    let mut out = Netlist::new(cell.name().to_string());
    let mut nets: Vec<NetId> = Vec::with_capacity(cell.net_count());
    for n in cell.net_ids() {
        let net = cell.net_ref(n);
        let id = out.net(net.name());
        if net.is_global() {
            out.mark_global(id);
        }
        nets.push(id);
    }
    for &p in cell.ports() {
        out.mark_port(nets[p.index()]);
    }
    for d in cell.device_ids() {
        let dev = cell.device(d);
        let src = cell.device_type_of(d);
        let ty = match index.get(src.name()) {
            Some(&j) => {
                let comp = composites[j]
                    .as_ref()
                    .expect("referenced cells are normalized before their referrers");
                if comp.terminal_count() != dev.pins().len() {
                    return Err(HierError::PortArity {
                        cell: cell.name().to_string(),
                        device: dev.name().to_string(),
                        expected: comp.terminal_count(),
                        got: dev.pins().len(),
                    });
                }
                out.add_type(comp.clone())?
            }
            None => out.add_type(src.clone())?,
        };
        let pins: Vec<NetId> = dev.pins().iter().map(|&n| nets[n.index()]).collect();
        out.add_device(dev.name().to_string(), ty, &pins)?;
    }
    Ok(out)
}

/// Resolves a final-netlist device name into its containment node.
fn containment_node(name: &str, minted: &HashMap<&str, &ExtractedInstance>) -> HierNode {
    match minted.get(name) {
        Some(inst) => HierNode::Cell {
            cell: inst.cell.clone(),
            device: name.to_string(),
            children: inst
                .absorbed
                .iter()
                .map(|c| containment_node(c, minted))
                .collect(),
        },
        None => HierNode::Leaf(name.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgemini_netlist::{instantiate, TerminalSpec};

    fn inv() -> Netlist {
        let mut inv = Netlist::new("inv");
        let mos = inv.add_mos_types();
        let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
        inv.mark_port(a);
        inv.mark_port(y);
        inv.mark_global(vdd);
        inv.mark_global(gnd);
        inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        inv
    }

    /// A buffer referencing `inv` through a naive composite type, as a
    /// hierarchical SPICE parse would produce it.
    fn buf2() -> Netlist {
        let mut b = Netlist::new("buf2");
        let ity = b
            .add_type(DeviceType::new(
                "inv",
                vec![TerminalSpec::new("a", "a"), TerminalSpec::new("y", "y")],
            ))
            .unwrap();
        let (a, m, y) = (b.net("a"), b.net("m"), b.net("y"));
        b.mark_port(a);
        b.mark_port(y);
        b.add_device("u1", ity, &[a, m]).unwrap();
        b.add_device("u2", ity, &[m, y]).unwrap();
        b
    }

    fn two_inverter_chip() -> Netlist {
        let mut chip = Netlist::new("chip");
        let (i, m, o) = (chip.net("in"), chip.net("mid"), chip.net("out"));
        let cell = inv();
        instantiate(&mut chip, &cell, "g1", &[i, m]).unwrap();
        instantiate(&mut chip, &cell, "g2", &[m, o]).unwrap();
        chip
    }

    #[test]
    fn levels_group_by_reference_depth() {
        let h = Hierarchizer::new(&[buf2(), inv()]).unwrap();
        assert_eq!(h.levels().len(), 2);
        assert_eq!(h.levels()[0][0].name(), "inv");
        assert_eq!(h.levels()[1][0].name(), "buf2");
    }

    #[test]
    fn normalization_retypes_references_to_canonical_composites() {
        let h = Hierarchizer::new(&[inv(), buf2()]).unwrap();
        let norm = &h.levels()[1][0];
        let canonical = composite_type(&inv());
        let d = norm.device_ids().next().unwrap();
        assert_eq!(norm.device_type_of(d), &canonical);
    }

    #[test]
    fn two_level_fixpoint_recovers_the_buffer() {
        let outcome = hierarchize(
            &two_inverter_chip(),
            &[inv(), buf2()],
            &MatchOptions::extraction(),
        )
        .unwrap();
        assert_eq!(outcome.report.count_of("inv"), 2);
        assert_eq!(outcome.report.count_of("buf2"), 1);
        assert_eq!(outcome.top.device_count(), 1);
        assert_eq!(outcome.report.unabsorbed_devices, 0);
        // One productive sweep plus the all-quiet confirmation.
        assert_eq!(outcome.report.sweeps, 2);
        // Containment: buf2#…, two inv children, four transistor leaves.
        assert_eq!(outcome.report.tree.len(), 1);
        match &outcome.report.tree[0] {
            HierNode::Cell { cell, children, .. } => {
                assert_eq!(cell, "buf2");
                assert_eq!(children.len(), 2);
                for child in children {
                    match child {
                        HierNode::Cell { cell, children, .. } => {
                            assert_eq!(cell, "inv");
                            assert_eq!(children.len(), 2);
                            assert!(children.iter().all(|c| matches!(c, HierNode::Leaf(_))));
                        }
                        HierNode::Leaf(name) => panic!("unexpected leaf {name}"),
                    }
                }
            }
            HierNode::Leaf(name) => panic!("unexpected leaf {name}"),
        }
        assert_eq!(outcome.used_cells().len(), 2);
    }

    #[test]
    fn round_observer_sees_every_level_pass() {
        let mut h = Hierarchizer::new(&[inv(), buf2()]).unwrap();
        h.set_options(MatchOptions::extraction());
        let mut rounds = Vec::new();
        h.run_observed(&two_inverter_chip(), |r| rounds.push(r.clone()))
            .unwrap();
        // Two sweeps × two levels.
        assert_eq!(rounds.len(), 4);
        assert_eq!((rounds[0].sweep, rounds[0].level), (1, 1));
        assert_eq!(rounds[0].replaced, 2);
        assert_eq!((rounds[1].sweep, rounds[1].level), (1, 2));
        assert_eq!(rounds[1].replaced, 1);
        assert!(rounds[2..].iter().all(|r| r.replaced == 0));
    }

    #[test]
    fn reference_cycles_are_rejected() {
        let mk = |name: &str, other: &str| {
            let mut c = Netlist::new(name);
            let ty = c
                .add_type(DeviceType::new(
                    other,
                    vec![TerminalSpec::new("a", "a"), TerminalSpec::new("y", "y")],
                ))
                .unwrap();
            let (a, y) = (c.net("a"), c.net("y"));
            c.mark_port(a);
            c.mark_port(y);
            c.add_device("u", ty, &[a, y]).unwrap();
            c
        };
        let err = Hierarchizer::new(&[mk("a", "b"), mk("b", "a")]).unwrap_err();
        assert!(matches!(err, HierError::Cycle(_)), "{err}");
    }

    #[test]
    fn duplicate_cells_and_bad_arity_are_rejected() {
        let err = Hierarchizer::new(&[inv(), inv()]).unwrap_err();
        assert_eq!(err, HierError::DuplicateCell("inv".into()));

        let mut bad = Netlist::new("bad");
        let ty = bad
            .add_type(DeviceType::new("inv", vec![TerminalSpec::new("a", "a")]))
            .unwrap();
        let a = bad.net("a");
        bad.mark_port(a);
        bad.add_device("u", ty, &[a]).unwrap();
        let err = Hierarchizer::new(&[inv(), bad]).unwrap_err();
        assert!(matches!(err, HierError::PortArity { .. }), "{err}");
    }

    #[test]
    fn report_json_and_text_cover_the_schema() {
        let outcome = hierarchize(
            &two_inverter_chip(),
            &[inv(), buf2()],
            &MatchOptions::extraction(),
        )
        .unwrap();
        let doc = outcome.report.to_json();
        assert_eq!(
            doc.get("schema_version").unwrap().as_u64(),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(doc.get("sweeps").unwrap().as_u64(), Some(2));
        let levels = doc.get("levels").unwrap().as_arr().unwrap();
        assert_eq!(levels.len(), 2);
        assert_eq!(
            levels[0].get("cells").unwrap().as_arr().unwrap()[0]
                .get("found")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(doc.get("unabsorbed_devices").unwrap().as_u64(), Some(0));
        let text = outcome.report.render_text();
        assert!(text.contains("level 1:"), "{text}");
        assert!(text.contains("inv"), "{text}");
        assert!(text.contains("unabsorbed devices: 0"), "{text}");
    }
}
