//! Deterministic work-stealing scheduler for the Phase II pre-pass.
//!
//! The candidate vector is an ordered list of jobs whose *results*
//! must be consumed in order (the serial merge is the determinism
//! authority — see `DESIGN.md` §3e), but whose *computation* is
//! order-free: every candidate verification starts from the same base
//! state and rolls back afterwards, so it is a pure function of the
//! candidate. That split is what makes work stealing deterministic
//! here: workers may claim candidates in any interleaving, yet the
//! merge consumes slot `i` only after slots `0..i`, charging effort
//! and deciding truncation in candidate-vector order exactly as the
//! serial path would.
//!
//! Three small lock-free pieces live in this module:
//!
//! * [`StealQueue`] — a shared claim cursor plus a bounded reorder
//!   window. Workers claim the next unclaimed candidate index with one
//!   `fetch_add`; the window (`merge_pos + window`) stops workers from
//!   racing arbitrarily far ahead of the merge, bounding the number of
//!   computed-but-unconsumed slots (memory) and the work wasted when
//!   the merge truncates.
//! * [`ClaimBoard`] — one bit per target device, set by the merge when
//!   `OverlapPolicy::ClaimDevices` claims an instance's devices.
//!   Workers consult it before verifying: a candidate whose key image
//!   is already claimed will be skipped by the merge anyway, so
//!   verifying it is pure waste. Bits only ever turn on, and only the
//!   serial merge sets them, so a worker-side skip can never disagree
//!   with the merge's own (authoritative) claim check.
//! * [`WorkerStats`] — per-worker scheduler counters, summed into the
//!   `scheduler.*` metrics namespace by the harvest.
//!
//! All synchronization is acquire/release on three counters; there are
//! no locks on the claim path and the hot cursor is cache-line padded
//! to keep claim traffic off neighbouring data.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Pads (and aligns) a value to a 64-byte cache line so a hot atomic
/// does not false-share with its neighbours.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct CachePadded<T>(pub T);

/// Outcome of a [`StealQueue::try_claim`] attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Claim {
    /// The caller owns candidate `i` and must either fill its slot or
    /// abandon it (the merge recovers abandoned slots serially).
    Got(usize),
    /// The next candidate is outside the reorder window; retry after
    /// the merge advances (callers should briefly yield).
    Blocked,
    /// Every candidate has been claimed; the worker can exit.
    Drained,
}

/// Shared claim cursor with a bounded reorder window.
///
/// `cursor` is the next unclaimed candidate index; `merge_pos` is the
/// index the serial merge is currently waiting on. Workers may only
/// claim indices below `merge_pos + window`, which keeps the set of
/// in-flight-or-parked slots bounded. Because the window is anchored
/// at `merge_pos`, the candidate the merge needs next is always
/// claimable — the pipeline cannot deadlock on the window.
#[derive(Debug)]
pub(crate) struct StealQueue {
    cursor: CachePadded<AtomicUsize>,
    merge_pos: CachePadded<AtomicUsize>,
    /// Workers still inside their claim/verify loop. The merge uses
    /// this to decide when a never-filled slot is a permanent hole
    /// (worker died or was halted) rather than still in flight.
    active: CachePadded<AtomicUsize>,
    len: usize,
    window: usize,
}

impl StealQueue {
    /// A queue over `len` candidates for `workers` workers. The window
    /// scales with the worker count so every worker can stay several
    /// candidates deep without contending on the merge position.
    pub(crate) fn new(len: usize, workers: usize) -> Self {
        StealQueue {
            cursor: CachePadded(AtomicUsize::new(0)),
            merge_pos: CachePadded(AtomicUsize::new(0)),
            active: CachePadded(AtomicUsize::new(workers)),
            len,
            window: (8 * workers.max(1)).max(32),
        }
    }

    /// Attempts to claim the next candidate. Lock-free: one relaxed
    /// load pair plus one `fetch_add` on success.
    pub(crate) fn try_claim(&self) -> Claim {
        let next = self.cursor.0.load(Ordering::Relaxed);
        if next >= self.len {
            return Claim::Drained;
        }
        let merge = self.merge_pos.0.load(Ordering::Relaxed);
        if next >= merge.saturating_add(self.window) {
            return Claim::Blocked;
        }
        let got = self.cursor.0.fetch_add(1, Ordering::Relaxed);
        if got >= self.len {
            Claim::Drained
        } else {
            Claim::Got(got)
        }
    }

    /// The merge reports it is now waiting on candidate `i`, sliding
    /// the reorder window forward.
    pub(crate) fn advance_merge(&self, i: usize) {
        self.merge_pos.0.store(i, Ordering::Relaxed);
    }

    /// A worker reports it has exited its claim loop (normally, on a
    /// stop signal, or via an injected kill).
    pub(crate) fn worker_done(&self) {
        self.active.0.fetch_sub(1, Ordering::Release);
    }

    /// Whether any worker is still claiming or verifying. Pairs with
    /// [`worker_done`](Self::worker_done): once this returns false it
    /// stays false, and every slot write by an exited worker is
    /// visible (release/acquire on `active`).
    pub(crate) fn workers_active(&self) -> bool {
        self.active.0.load(Ordering::Acquire) > 0
    }

    /// The reorder-window size (exposed for tests and docs).
    #[cfg(test)]
    pub(crate) fn window(&self) -> usize {
        self.window
    }
}

/// One atomic bit per target device: "some merged instance claimed
/// this device". Written only by the serial merge, read by workers as
/// a best-effort skip hint. Monotone (bits only set), so stale reads
/// are safe: a worker that misses a bit merely does wasted work; a
/// worker that sees a bit is observing a claim the merge has already
/// committed at an earlier candidate-vector position.
#[derive(Debug)]
pub(crate) struct ClaimBoard {
    bits: Vec<AtomicUsize>,
}

const BITS: usize = usize::BITS as usize;

impl ClaimBoard {
    pub(crate) fn new(devices: usize) -> Self {
        ClaimBoard {
            bits: (0..devices.div_ceil(BITS).max(1))
                .map(|_| AtomicUsize::new(0))
                .collect(),
        }
    }

    /// Marks a device claimed. Merge-side only.
    pub(crate) fn publish(&self, device: usize) {
        self.bits[device / BITS].fetch_or(1 << (device % BITS), Ordering::Relaxed);
    }

    /// Whether a device has been claimed by a merged instance.
    pub(crate) fn is_claimed(&self, device: usize) -> bool {
        self.bits[device / BITS].load(Ordering::Relaxed) & (1 << (device % BITS)) != 0
    }
}

/// Per-worker scheduler counters, harvested into `scheduler.*` metrics.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct WorkerStats {
    /// Candidates this worker claimed (and attempted).
    pub claimed: u64,
    /// Claims outside the worker's static-chunk home range — i.e. work
    /// it would have idled through under static chunking.
    pub steals: u64,
    /// Candidates skipped because the claim board already covered
    /// their key image.
    pub claim_skips: u64,
    /// Times the worker found the reorder window full and had to
    /// yield before claiming.
    pub window_stalls: u64,
}

impl WorkerStats {
    pub(crate) fn absorb(&mut self, o: &WorkerStats) {
        self.claimed += o.claimed;
        self.steals += o.steals;
        self.claim_skips += o.claim_skips;
        self.window_stalls += o.window_stalls;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn claims_are_unique_and_exhaustive() {
        let q = StealQueue::new(10, 2);
        let mut got = Vec::new();
        loop {
            match q.try_claim() {
                Claim::Got(i) => got.push(i),
                Claim::Blocked => q.advance_merge(got.len()),
                Claim::Drained => break,
            }
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn window_blocks_runaway_claims_but_never_the_merge_position() {
        let q = StealQueue::new(1000, 1);
        let w = q.window();
        for i in 0..w {
            assert_eq!(q.try_claim(), Claim::Got(i));
        }
        // Window full: merge at 0, cursor at merge + window.
        assert_eq!(q.try_claim(), Claim::Blocked);
        // Advancing the merge re-opens exactly one slot — and the
        // merge's own position is always inside the window.
        q.advance_merge(1);
        assert_eq!(q.try_claim(), Claim::Got(w));
        assert_eq!(q.try_claim(), Claim::Blocked);
    }

    #[test]
    fn concurrent_claims_partition_the_range() {
        let q = StealQueue::new(500, 4);
        let sum = AtomicU64::new(0);
        let count = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| loop {
                    match q.try_claim() {
                        Claim::Got(i) => {
                            sum.fetch_add(i as u64, Ordering::Relaxed);
                            count.fetch_add(1, Ordering::Relaxed);
                            // Keep the window open: emulate a merge
                            // that instantly consumes.
                            q.advance_merge(i);
                        }
                        Claim::Blocked => std::thread::yield_now(),
                        Claim::Drained => break,
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 500);
        assert_eq!(sum.load(Ordering::Relaxed), (0..500u64).sum());
    }

    #[test]
    fn worker_done_drains_active() {
        let q = StealQueue::new(4, 3);
        assert!(q.workers_active());
        q.worker_done();
        q.worker_done();
        assert!(q.workers_active());
        q.worker_done();
        assert!(!q.workers_active());
    }

    #[test]
    fn claim_board_bits_are_monotone_and_word_spanning() {
        let b = ClaimBoard::new(130);
        assert!(!b.is_claimed(0));
        assert!(!b.is_claimed(129));
        b.publish(0);
        b.publish(63);
        b.publish(64);
        b.publish(129);
        for d in [0, 63, 64, 129] {
            assert!(b.is_claimed(d), "device {d} should be claimed");
        }
        assert!(!b.is_claimed(1));
        assert!(!b.is_claimed(128));
    }

    #[test]
    fn empty_claim_board_is_well_formed() {
        let b = ClaimBoard::new(0);
        assert!(!b.is_claimed(0));
    }

    #[test]
    fn worker_stats_absorb_sums_fields() {
        let mut a = WorkerStats {
            claimed: 1,
            steals: 2,
            claim_skips: 3,
            window_stalls: 4,
        };
        a.absorb(&WorkerStats {
            claimed: 10,
            steals: 20,
            claim_skips: 30,
            window_stalls: 40,
        });
        assert_eq!(a.claimed, 11);
        assert_eq!(a.steals, 22);
        assert_eq!(a.claim_skips, 33);
        assert_eq!(a.window_stalls, 44);
    }
}
