//! Structured search-event tracing: what the search *did*, not just how
//! long it took.
//!
//! [`MatchOptions::trace_events`](crate::MatchOptions) turns on a
//! structured journal of search events covering both phases: Phase I
//! refinement rounds ([`EventKind::RefineIter`]), candidate-vector
//! selection ([`EventKind::CvSelected`]), and the per-candidate Phase II
//! story — begin/end markers, safe-label checks, backtracks, and a
//! closed-enum [`RejectReason`] for every failed candidate.
//!
//! The collection discipline mirrors `collect_metrics`:
//!
//! * **Zero cost when off** (the default): no event is constructed, no
//!   buffer allocated, and results, mappings, and effort counters are
//!   byte-identical to a build without this module.
//! * **Lock-free when on**: each Phase II worker records into its own
//!   bounded [`EventBuffer`] (a plain `Vec` capped per candidate — no
//!   locks, no clocks on the hot path). Buffers are merged
//!   deterministically by `(candidate rank, sequence number)` when the
//!   search finishes, so the journal is identical for any `--threads`
//!   value that processes the same candidate set.
//!
//! Two exporters sit on the dependency-free [`json`](crate::metrics::json)
//! emitter: [`journal_to_ndjson`] (one JSON object per line) and
//! [`journal_to_chrome_trace`] (Chrome `traceEvents`, loadable in
//! `chrome://tracing` or Perfetto, with phases as `B`/`E` spans and
//! candidates as nested slices on a deterministic virtual timeline).
//! [`ExplainReport`] aggregates the journal into a human answer to "why
//! did this search find nothing?".

use subgemini_netlist::Vertex;

use crate::instance::MatchOutcome;
use crate::metrics::json::Value;

/// Where in the search an event was recorded. `Phase1` events sort
/// before every candidate; candidate events sort by rank (the
/// candidate's index in the candidate vector), which is
/// thread-assignment-independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventScope {
    /// Phase I (refinement + selection) and pre-match setup. Serial,
    /// recorded by the coordinating thread.
    Phase1,
    /// Phase II processing of the candidate with this rank (index in
    /// the candidate vector).
    Candidate(u32),
}

/// Why Phase II rejected a candidate. Closed enum; every variant is also
/// tallied into the `reject.*` counters when metrics are collected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RejectReason {
    /// Key and candidate are different vertex kinds (device vs net).
    KindMismatch,
    /// The candidate's invariant initial label (device type + pin
    /// structure) differs from the key's.
    DegreeMismatch,
    /// Label spreading produced a partition where the pattern has more
    /// members than the main graph — Label Invariant (2) violated.
    UnsafePartition,
    /// The mapping completed but failed structural re-verification (a
    /// label collision survived to completion).
    LabelConflict,
    /// The search stalled and no partition or anchor could supply a
    /// guess.
    NoViableGuess,
    /// The per-candidate guess budget
    /// ([`MatchOptions::max_guesses_per_candidate`](crate::MatchOptions))
    /// ran out before any branch completed.
    BudgetExhausted,
    /// Every guess branch was explored and failed (backtracking
    /// exhausted the ambiguity).
    BacktrackExhausted,
    /// The per-candidate pass budget
    /// ([`MatchOptions::max_passes_per_candidate`](crate::MatchOptions))
    /// ran out while refinement was still making progress, and guessing
    /// could not rescue the candidate.
    PassBudgetExhausted,
}

impl RejectReason {
    /// Every variant, in the fixed order used for counter registration
    /// and report aggregation.
    pub const ALL: [RejectReason; 8] = [
        RejectReason::KindMismatch,
        RejectReason::DegreeMismatch,
        RejectReason::UnsafePartition,
        RejectReason::LabelConflict,
        RejectReason::NoViableGuess,
        RejectReason::BudgetExhausted,
        RejectReason::BacktrackExhausted,
        RejectReason::PassBudgetExhausted,
    ];

    /// Stable machine name (also the suffix of the `reject.*` counter).
    pub fn as_str(self) -> &'static str {
        match self {
            RejectReason::KindMismatch => "kind_mismatch",
            RejectReason::DegreeMismatch => "degree_mismatch",
            RejectReason::UnsafePartition => "unsafe_partition",
            RejectReason::LabelConflict => "label_conflict",
            RejectReason::NoViableGuess => "no_viable_guess",
            RejectReason::BudgetExhausted => "budget_exhausted",
            RejectReason::BacktrackExhausted => "backtrack_exhausted",
            RejectReason::PassBudgetExhausted => "pass_budget_exhausted",
        }
    }

    /// The `Counters` name the reason is tallied under.
    pub fn counter_name(self) -> &'static str {
        match self {
            RejectReason::KindMismatch => "reject.kind_mismatch",
            RejectReason::DegreeMismatch => "reject.degree_mismatch",
            RejectReason::UnsafePartition => "reject.unsafe_partition",
            RejectReason::LabelConflict => "reject.label_conflict",
            RejectReason::NoViableGuess => "reject.no_viable_guess",
            RejectReason::BudgetExhausted => "reject.budget_exhausted",
            RejectReason::BacktrackExhausted => "reject.backtrack_exhausted",
            RejectReason::PassBudgetExhausted => "reject.pass_budget_exhausted",
        }
    }

    /// One-line human explanation.
    pub fn describe(self) -> &'static str {
        match self {
            RejectReason::KindMismatch => "key and candidate are different vertex kinds",
            RejectReason::DegreeMismatch => {
                "candidate's device type / pin structure differs from the key's"
            }
            RejectReason::UnsafePartition => {
                "a pattern partition outgrew its main-graph partition (safe-label check failed)"
            }
            RejectReason::LabelConflict => {
                "completed mapping failed structural re-verification (label collision)"
            }
            RejectReason::NoViableGuess => "search stalled with no partition or anchor to guess on",
            RejectReason::BudgetExhausted => "per-candidate guess budget exhausted",
            RejectReason::BacktrackExhausted => "every guess branch failed (backtrack exhaustion)",
            RejectReason::PassBudgetExhausted => {
                "per-candidate pass budget exhausted while refinement was still progressing"
            }
        }
    }

    fn index(self) -> usize {
        RejectReason::ALL
            .iter()
            .position(|&r| r == self)
            .expect("ALL is exhaustive")
    }
}

/// Per-candidate reject tallies, indexed by [`RejectReason::ALL`] order.
/// Cheap to merge across workers; folded into the `reject.*` counters
/// and the [`ExplainReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RejectTally([u64; RejectReason::ALL.len()]);

impl RejectTally {
    /// Counts one rejection.
    pub fn bump(&mut self, reason: RejectReason) {
        self.0[reason.index()] += 1;
    }

    /// Adds another tally in.
    pub fn merge(&mut self, other: &RejectTally) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }

    /// `(reason, count)` pairs with non-zero counts, in `ALL` order.
    pub fn nonzero(&self) -> Vec<(RejectReason, u64)> {
        RejectReason::ALL
            .iter()
            .zip(self.0.iter())
            .filter(|&(_, &c)| c > 0)
            .map(|(&r, &c)| (r, c))
            .collect()
    }

    /// Total rejections across all reasons.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }
}

/// One structured search event. All payloads are plain integers or
/// [`Vertex`] ids — no strings, no clocks, no allocation per event
/// beyond the buffer slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// One Phase I relabeling half-phase finished. `round` counts
    /// half-phases (matches `Phase1Stats::iterations`), `live_partitions`
    /// is the number of distinct labels over still-valid pattern
    /// vertices, `corrupted` how many vertices were invalidated this
    /// round.
    RefineIter {
        /// Half-phase number, starting at 1.
        round: u32,
        /// Distinct labels among valid (uncorrupted) pattern vertices.
        live_partitions: u32,
        /// Vertices newly marked corrupt this round.
        corrupted: u32,
    },
    /// A Phase I consistency check failed: a valid pattern label has
    /// fewer main-graph holders than pattern holders — no instance can
    /// exist. Terminal for the search.
    RefineFail {
        /// Half-phase number at which the check failed (0 = the initial
        /// labels).
        round: u32,
        /// The undersupplied label.
        label: u64,
        /// Pattern vertices carrying the label.
        s_count: u32,
        /// Main-graph vertices carrying the label.
        g_count: u32,
    },
    /// Phase I chose the key vertex and candidate vector.
    CvSelected {
        /// The label of the winning partition.
        label: u64,
        /// Candidate-vector size.
        size: u32,
        /// The key vertex in the pattern.
        key_vertex: Vertex,
    },
    /// The candidate vector was intersected against the k-hop
    /// fingerprint index (warm start or `PrunePolicy::Always`):
    /// `pruned` candidates were proven non-isomorphic and will be
    /// skipped, `admitted` proceed to Phase II. Emitted once, in the
    /// Phase I scope, right after `CvSelected`.
    CvPruned {
        /// Candidates eliminated by fingerprint mismatch.
        pruned: u64,
        /// Candidates surviving the prune.
        admitted: u64,
    },
    /// A pattern global net has no same-named global in the main
    /// circuit; Phase II cannot even pre-match. Terminal.
    PrematchFail,
    /// Phase II starts verifying a candidate.
    CandidateBegin {
        /// The candidate vertex in the main graph.
        c: Vertex,
    },
    /// One safe-label partition check during candidate refinement:
    /// `safe` iff the sizes are equal (the pigeonhole that lets the
    /// partition participate in spreading). `s_size > g_size` is the
    /// inconsistency that fails the branch.
    SafeLabelCheck {
        /// The partition label.
        label: u64,
        /// Pattern-side members.
        s_size: u32,
        /// Main-graph-side members.
        g_size: u32,
        /// Whether the partition was proven safe.
        safe: bool,
    },
    /// A guess branch failed and was rolled back through the undo log.
    Backtrack {
        /// Guess depth of the abandoned branch (1 = first guess).
        depth: u32,
        /// Undo-log operations reverted by the rollback.
        undo_ops: u32,
    },
    /// The candidate was rejected, with the classified reason. Emitted
    /// once per failed candidate, right before its `CandidateEnd`.
    Reject {
        /// Why the candidate failed.
        reason: RejectReason,
    },
    /// Phase II finished a candidate.
    CandidateEnd {
        /// The candidate vertex.
        c: Vertex,
        /// Whether it verified into an instance.
        matched: bool,
    },
    /// The search stopped before exhausting the candidate vector
    /// (work budget, deadline, or cancellation); the outcome's
    /// instance list is a valid prefix of the complete answer.
    /// Emitted once, in the Phase I scope (the truncation decision is
    /// made by the serial coordinator).
    Truncated {
        /// What stopped the search.
        reason: crate::budget::TruncationReason,
        /// Candidates verified before the stop. `u64` so a journal
        /// over a >4B-candidate vector cannot silently wrap (the
        /// outcome's `Completeness::Truncated` carries `usize`).
        candidates_tried: u64,
        /// Candidates never considered.
        candidates_skipped: u64,
    },
}

/// One journal entry: an [`EventKind`] plus its deterministic position
/// `(scope, seq)` in the merged stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Which part of the search produced the event.
    pub scope: EventScope,
    /// Sequence number within the scope (per candidate / within
    /// Phase I), starting at 0.
    pub seq: u32,
    /// The event payload.
    pub kind: EventKind,
}

/// A per-worker append-only event buffer with a per-candidate capacity
/// bound. No locks: each Phase II worker owns one. The per-*candidate*
/// (not per-worker) cap keeps the drop decision independent of how
/// candidates were distributed over workers, which is what makes the
/// merged journal thread-count-invariant.
#[derive(Debug)]
pub struct EventBuffer {
    events: Vec<Event>,
    scope: EventScope,
    seq: u32,
    cap_per_scope: usize,
    scope_len: usize,
    dropped: u64,
}

impl EventBuffer {
    /// Creates a buffer that keeps at most `cap_per_scope` events per
    /// candidate (and for the Phase I scope). Further events in a scope
    /// are counted in [`dropped`](EventJournal::dropped) but not stored.
    pub fn new(cap_per_scope: usize) -> Self {
        Self {
            events: Vec::new(),
            scope: EventScope::Phase1,
            seq: 0,
            cap_per_scope,
            scope_len: 0,
            dropped: 0,
        }
    }

    /// Switches the buffer to candidate `rank`, resetting the sequence
    /// counter and the per-scope budget.
    pub fn begin_candidate(&mut self, rank: u32) {
        self.scope = EventScope::Candidate(rank);
        self.seq = 0;
        self.scope_len = 0;
    }

    /// Appends an event in the current scope (or counts it as dropped
    /// once the scope's cap is reached).
    pub fn push(&mut self, kind: EventKind) {
        if self.scope_len >= self.cap_per_scope {
            self.dropped += 1;
            // seq keeps advancing so drops are visible as gaps.
            self.seq += 1;
            return;
        }
        self.events.push(Event {
            scope: self.scope,
            seq: self.seq,
            kind,
        });
        self.seq += 1;
        self.scope_len += 1;
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Consumes the buffer into its raw parts for merging.
    pub fn into_parts(self) -> (Vec<Event>, u64) {
        (self.events, self.dropped)
    }

    /// Takes everything recorded so far, leaving this buffer empty and
    /// back in the Phase I scope with the same cap. Used by the
    /// scheduler to harvest one candidate's events into its slot while
    /// the worker's buffer is reused for the next candidate.
    pub fn drain(&mut self) -> EventBuffer {
        let cap = self.cap_per_scope;
        std::mem::replace(self, EventBuffer::new(cap))
    }
}

/// The merged, deterministic journal of one search: Phase I events
/// first, then candidate events ordered by `(rank, seq)` — independent
/// of the worker count that produced them.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EventJournal {
    /// Events in deterministic `(scope, seq)` order.
    pub events: Vec<Event>,
    /// Events dropped by the per-candidate buffer cap
    /// ([`MatchOptions::trace_events_cap`](crate::MatchOptions)).
    pub dropped: u64,
}

impl EventJournal {
    /// Merges per-worker buffers into one deterministic stream.
    pub fn merge(buffers: Vec<EventBuffer>) -> Self {
        let mut events = Vec::new();
        let mut dropped = 0u64;
        for buf in buffers {
            let (ev, d) = buf.into_parts();
            events.extend(ev);
            dropped += d;
        }
        // (scope, seq) is unique across all buffers: Phase I events come
        // from one serial buffer, and each candidate's events live in
        // exactly one worker's buffer.
        events.sort_unstable_by_key(|e| (e.scope, e.seq));
        Self { events, dropped }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the journal holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

fn vertex_str(v: Vertex) -> String {
    match v {
        Vertex::Device(d) => format!("device:{}", d.index()),
        Vertex::Net(n) => format!("net:{}", n.index()),
    }
}

fn label_str(l: u64) -> String {
    format!("{l:#018x}")
}

/// The event's stable machine name.
pub fn event_name(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::RefineIter { .. } => "refine_iter",
        EventKind::RefineFail { .. } => "refine_fail",
        EventKind::CvSelected { .. } => "cv_selected",
        EventKind::CvPruned { .. } => "cv_pruned",
        EventKind::PrematchFail => "prematch_fail",
        EventKind::CandidateBegin { .. } => "candidate_begin",
        EventKind::SafeLabelCheck { .. } => "safe_label_check",
        EventKind::Backtrack { .. } => "backtrack",
        EventKind::Reject { .. } => "reject",
        EventKind::CandidateEnd { .. } => "candidate_end",
        EventKind::Truncated { .. } => "truncated",
    }
}

/// The event's payload as ordered JSON members (no scope/seq).
fn kind_args(kind: &EventKind) -> Vec<(String, Value)> {
    match *kind {
        EventKind::RefineIter {
            round,
            live_partitions,
            corrupted,
        } => vec![
            ("round".into(), Value::int(round as u64)),
            ("live_partitions".into(), Value::int(live_partitions as u64)),
            ("corrupted".into(), Value::int(corrupted as u64)),
        ],
        EventKind::RefineFail {
            round,
            label,
            s_count,
            g_count,
        } => vec![
            ("round".into(), Value::int(round as u64)),
            ("label".into(), Value::Str(label_str(label))),
            ("s_count".into(), Value::int(s_count as u64)),
            ("g_count".into(), Value::int(g_count as u64)),
        ],
        EventKind::CvSelected {
            label,
            size,
            key_vertex,
        } => vec![
            ("label".into(), Value::Str(label_str(label))),
            ("size".into(), Value::int(size as u64)),
            ("key_vertex".into(), Value::Str(vertex_str(key_vertex))),
        ],
        EventKind::CvPruned { pruned, admitted } => vec![
            ("pruned".into(), Value::int(pruned)),
            ("admitted".into(), Value::int(admitted)),
        ],
        EventKind::PrematchFail => vec![],
        EventKind::CandidateBegin { c } => {
            vec![("candidate".into(), Value::Str(vertex_str(c)))]
        }
        EventKind::SafeLabelCheck {
            label,
            s_size,
            g_size,
            safe,
        } => vec![
            ("label".into(), Value::Str(label_str(label))),
            ("s_size".into(), Value::int(s_size as u64)),
            ("g_size".into(), Value::int(g_size as u64)),
            ("safe".into(), Value::Bool(safe)),
        ],
        EventKind::Backtrack { depth, undo_ops } => vec![
            ("depth".into(), Value::int(depth as u64)),
            ("undo_ops".into(), Value::int(undo_ops as u64)),
        ],
        EventKind::Reject { reason } => {
            vec![("reason".into(), Value::Str(reason.as_str().into()))]
        }
        EventKind::CandidateEnd { c, matched } => vec![
            ("candidate".into(), Value::Str(vertex_str(c))),
            ("matched".into(), Value::Bool(matched)),
        ],
        EventKind::Truncated {
            reason,
            candidates_tried,
            candidates_skipped,
        } => vec![
            ("reason".into(), Value::Str(reason.as_str().into())),
            ("candidates_tried".into(), Value::int(candidates_tried)),
            ("candidates_skipped".into(), Value::int(candidates_skipped)),
        ],
    }
}

/// One event as a JSON object: `rank` (`null` for Phase I), `seq`,
/// `event`, then the payload fields.
pub fn event_to_json(e: &Event) -> Value {
    let rank = match e.scope {
        EventScope::Phase1 => Value::Null,
        EventScope::Candidate(r) => Value::int(r as u64),
    };
    let mut members = vec![
        ("rank".into(), rank),
        ("seq".into(), Value::int(e.seq as u64)),
        ("event".into(), Value::Str(event_name(&e.kind).into())),
    ];
    members.extend(kind_args(&e.kind));
    Value::Obj(members)
}

/// Newline-delimited JSON export: one compact object per event, plus a
/// trailing `journal_end` record carrying the drop count.
pub fn journal_to_ndjson(journal: &EventJournal) -> String {
    let mut out = String::new();
    for e in &journal.events {
        out.push_str(&event_to_json(e).compact());
        out.push('\n');
    }
    let tail = Value::Obj(vec![
        ("event".into(), Value::Str("journal_end".into())),
        ("events".into(), Value::int(journal.events.len() as u64)),
        ("dropped".into(), Value::int(journal.dropped)),
    ]);
    out.push_str(&tail.compact());
    out.push('\n');
    out
}

/// Chrome-trace (`chrome://tracing` / Perfetto) export.
///
/// The journal carries no wall-clock timestamps (events must be
/// byte-identical across thread counts), so the trace uses a
/// **deterministic virtual timeline**: every event advances the clock
/// by one microsecond. The result is a *logical* flame view — span
/// width is event count, not nanoseconds — with `phase1` and `phase2`
/// as top-level `B`/`E` spans, one nested slice per candidate, and the
/// remaining events as instants with their payload under `args`.
pub fn journal_to_chrome_trace(journal: &EventJournal) -> Value {
    const PID: u64 = 1;
    const TID: u64 = 1;
    let mut trace: Vec<Value> = Vec::new();
    let mut ts = 0u64;
    let common = |name: &str, ph: &str, ts: u64| {
        vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("cat".to_string(), Value::Str("subgemini".to_string())),
            ("ph".to_string(), Value::Str(ph.to_string())),
            ("ts".to_string(), Value::int(ts)),
            ("pid".to_string(), Value::int(PID)),
            ("tid".to_string(), Value::int(TID)),
        ]
    };
    let mut in_phase1 = false;
    let mut in_phase2 = false;
    let mut open_candidate = false;
    for e in &journal.events {
        match e.scope {
            EventScope::Phase1 if !in_phase1 => {
                trace.push(Value::Obj(common("phase1", "B", ts)));
                ts += 1;
                in_phase1 = true;
            }
            EventScope::Candidate(_) if !in_phase2 => {
                if in_phase1 {
                    trace.push(Value::Obj(common("phase1", "E", ts)));
                    ts += 1;
                    in_phase1 = false;
                }
                trace.push(Value::Obj(common("phase2", "B", ts)));
                ts += 1;
                in_phase2 = true;
            }
            _ => {}
        }
        match e.kind {
            EventKind::CandidateBegin { c } => {
                // Defensive: a Begin without a prior End (dropped by the
                // cap) must not unbalance the stack.
                if open_candidate {
                    trace.push(Value::Obj(common("candidate", "E", ts)));
                    ts += 1;
                }
                let rank = match e.scope {
                    EventScope::Candidate(r) => r,
                    EventScope::Phase1 => 0,
                };
                let mut obj = common(&format!("candidate {rank}"), "B", ts);
                ts += 1;
                obj.push((
                    "args".to_string(),
                    Value::Obj(vec![("candidate".to_string(), Value::Str(vertex_str(c)))]),
                ));
                trace.push(Value::Obj(obj));
                open_candidate = true;
            }
            EventKind::CandidateEnd { c, matched } => {
                let rank = match e.scope {
                    EventScope::Candidate(r) => r,
                    EventScope::Phase1 => 0,
                };
                let mut obj = common(&format!("candidate {rank}"), "E", ts);
                ts += 1;
                obj.push((
                    "args".to_string(),
                    Value::Obj(vec![
                        ("candidate".to_string(), Value::Str(vertex_str(c))),
                        ("matched".to_string(), Value::Bool(matched)),
                    ]),
                ));
                trace.push(Value::Obj(obj));
                open_candidate = false;
            }
            ref kind => {
                let mut obj = common(event_name(kind), "i", ts);
                ts += 1;
                obj.push(("s".to_string(), Value::Str("t".to_string())));
                obj.push(("args".to_string(), Value::Obj(kind_args(kind))));
                trace.push(Value::Obj(obj));
            }
        }
    }
    if open_candidate {
        trace.push(Value::Obj(common("candidate", "E", ts)));
        ts += 1;
    }
    if in_phase1 {
        trace.push(Value::Obj(common("phase1", "E", ts)));
        ts += 1;
    }
    if in_phase2 {
        trace.push(Value::Obj(common("phase2", "E", ts)));
    }
    Value::Obj(vec![
        ("traceEvents".into(), Value::Arr(trace)),
        ("displayTimeUnit".into(), Value::Str("ms".into())),
        (
            "otherData".into(),
            Value::Obj(vec![
                (
                    "generator".into(),
                    Value::Str("subgemini trace_events".into()),
                ),
                ("dropped_events".into(), Value::int(journal.dropped)),
                (
                    "note".into(),
                    Value::Str("virtual timeline: 1 event = 1us; span width is event count".into()),
                ),
            ]),
        ),
    ])
}

/// Aggregated diagnosis of one search, built from its event journal:
/// reject-reason totals and, for a no-match search, the first point
/// where the search diverged from finding an instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExplainReport {
    /// Instances found.
    pub instances: usize,
    /// Candidate-vector size.
    pub cv_size: usize,
    /// Candidates that were actually processed (have journal events).
    pub candidates_seen: usize,
    /// Phase I refinement rounds (half-phases).
    pub refine_rounds: usize,
    /// `(reason, count)` totals over rejected candidates, descending by
    /// count (ties in `RejectReason::ALL` order).
    pub reject_totals: Vec<(RejectReason, u64)>,
    /// For a no-match search: the earliest terminal divergence, as a
    /// human sentence. `None` when instances were found (or no journal
    /// was recorded).
    pub first_divergence: Option<String>,
}

impl ExplainReport {
    /// Builds the report from an outcome whose journal was recorded
    /// (`trace_events`). Works on journal-less outcomes too, but can
    /// then only report counts.
    pub fn from_outcome(outcome: &MatchOutcome) -> Self {
        let mut report = ExplainReport {
            instances: outcome.count(),
            cv_size: outcome.phase1.cv_size,
            refine_rounds: outcome.phase1.iterations,
            ..ExplainReport::default()
        };
        let mut tally = RejectTally::default();
        let mut first_reject: Option<(u32, RejectReason)> = None;
        let mut refine_fail: Option<(u32, u64, u32, u32)> = None;
        let mut prematch_fail = false;
        let mut seen = std::collections::BTreeSet::new();
        if let Some(journal) = &outcome.events {
            for e in &journal.events {
                match e.kind {
                    EventKind::Reject { reason } => {
                        tally.bump(reason);
                        if let EventScope::Candidate(r) = e.scope {
                            if first_reject.is_none_or(|(fr, _)| r < fr) {
                                first_reject = Some((r, reason));
                            }
                        }
                    }
                    EventKind::RefineFail {
                        round,
                        label,
                        s_count,
                        g_count,
                    } => {
                        refine_fail.get_or_insert((round, label, s_count, g_count));
                    }
                    EventKind::PrematchFail => prematch_fail = true,
                    EventKind::CandidateBegin { .. } => {
                        if let EventScope::Candidate(r) = e.scope {
                            seen.insert(r);
                        }
                    }
                    _ => {}
                }
            }
        }
        report.candidates_seen = seen.len();
        let mut totals = tally.nonzero();
        totals.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        report.reject_totals = totals;
        if report.instances == 0 {
            report.first_divergence = Some(if let Some((round, label, s, g)) = refine_fail {
                format!(
                    "phase1 refinement round {round}: no main-graph partition matched valid \
                     pattern label {} ({g} holders in G, {s} required) — no instance can exist",
                    label_str(label)
                )
            } else if prematch_fail {
                "pre-match: a pattern global net has no same-named global net in the main \
                 circuit"
                    .to_string()
            } else if outcome.phase1.proven_empty {
                "phase1 proved the search empty before selecting a candidate vector".to_string()
            } else if report.cv_size == 0 {
                "phase1 found no partition to anchor on (pattern has no valid vertices)".to_string()
            } else if let Some((rank, reason)) = first_reject {
                format!(
                    "candidate #{rank}: {} ({})",
                    reason.as_str(),
                    reason.describe()
                )
            } else {
                "no candidate was processed".to_string()
            });
        }
        report
    }

    /// Renders the human-readable explain text.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "explain: {} instance(s); |CV|={} ({} candidate(s) processed); \
             {} refinement round(s)",
            self.instances, self.cv_size, self.candidates_seen, self.refine_rounds
        );
        if self.reject_totals.is_empty() {
            if self.instances == 0 {
                let _ = writeln!(out, "no candidates were rejected");
            }
        } else {
            let _ = writeln!(out, "reject reasons:");
            for (reason, count) in &self.reject_totals {
                let _ = writeln!(
                    out,
                    "  {:<22} {:>6}  ({})",
                    reason.as_str(),
                    count,
                    reason.describe()
                );
            }
        }
        if let Some(d) = &self.first_divergence {
            let _ = writeln!(out, "first divergence: {d}");
        }
        out
    }

    /// The report as a JSON object (additive schema, stable keys).
    pub fn to_json(&self) -> Value {
        Value::Obj(vec![
            ("instances".into(), Value::int(self.instances as u64)),
            ("cv_size".into(), Value::int(self.cv_size as u64)),
            (
                "candidates_seen".into(),
                Value::int(self.candidates_seen as u64),
            ),
            (
                "refine_rounds".into(),
                Value::int(self.refine_rounds as u64),
            ),
            (
                "reject_totals".into(),
                Value::Obj(
                    self.reject_totals
                        .iter()
                        .map(|&(r, c)| (r.as_str().to_string(), Value::int(c)))
                        .collect(),
                ),
            ),
            (
                "first_divergence".into(),
                match &self.first_divergence {
                    Some(d) => Value::Str(d.clone()),
                    None => Value::Null,
                },
            ),
        ])
    }
}

/// Validates a Chrome-trace JSON document: a `traceEvents` array whose
/// entries all carry `name`/`ph`/`ts`/`pid`/`tid`, with `B`/`E` events
/// balanced in stack order per `(pid, tid)`. Returns the event count.
///
/// # Errors
///
/// Returns a description of the first malformed entry or unbalanced
/// span.
pub fn validate_chrome_trace(doc: &Value) -> Result<usize, String> {
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_arr)
        .ok_or("missing `traceEvents` array")?;
    let mut stacks: std::collections::BTreeMap<(u64, u64), Vec<String>> =
        std::collections::BTreeMap::new();
    let mut last_ts: Option<u64> = None;
    for (i, e) in events.iter().enumerate() {
        let name = e
            .get("name")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing name"))?;
        let ph = e
            .get("ph")
            .and_then(Value::as_str)
            .ok_or(format!("event {i}: missing ph"))?;
        let ts = e
            .get("ts")
            .and_then(Value::as_u64)
            .ok_or(format!("event {i}: missing ts"))?;
        let pid = e
            .get("pid")
            .and_then(Value::as_u64)
            .ok_or(format!("event {i}: missing pid"))?;
        let tid = e
            .get("tid")
            .and_then(Value::as_u64)
            .ok_or(format!("event {i}: missing tid"))?;
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("event {i}: ts went backwards ({prev} -> {ts})"));
            }
        }
        last_ts = Some(ts);
        let stack = stacks.entry((pid, tid)).or_default();
        match ph {
            "B" => stack.push(name.to_string()),
            "E" => {
                stack
                    .pop()
                    .ok_or(format!("event {i}: E `{name}` with empty stack"))?;
            }
            "i" | "I" | "X" | "M" => {}
            other => return Err(format!("event {i}: unexpected ph `{other}`")),
        }
    }
    for ((pid, tid), stack) in stacks {
        if !stack.is_empty() {
            return Err(format!(
                "unclosed span(s) on pid {pid} tid {tid}: {stack:?}"
            ));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::json;
    use subgemini_netlist::DeviceId;

    fn dev(i: u32) -> Vertex {
        Vertex::Device(DeviceId::new(i))
    }

    #[test]
    fn truncated_counts_survive_past_u32() {
        // A journal over a >4B-candidate vector must not wrap: the
        // event carries the counts as u64 end to end.
        let tried = u32::MAX as u64 + 5;
        let skipped = u32::MAX as u64 + 7;
        let e = Event {
            scope: EventScope::Phase1,
            seq: 0,
            kind: EventKind::Truncated {
                reason: crate::budget::TruncationReason::EffortExhausted,
                candidates_tried: tried,
                candidates_skipped: skipped,
            },
        };
        let rendered = event_to_json(&e).pretty();
        assert!(
            rendered.contains(&format!("\"candidates_tried\": {tried}")),
            "u64 count mangled in {rendered}"
        );
        assert!(
            rendered.contains(&format!("\"candidates_skipped\": {skipped}")),
            "u64 count mangled in {rendered}"
        );
    }

    #[test]
    fn drain_takes_events_and_resets_scope_and_cap() {
        let mut b = EventBuffer::new(2);
        b.begin_candidate(3);
        b.push(EventKind::CandidateBegin { c: dev(1) });
        let taken = b.drain();
        let (events, dropped) = taken.into_parts();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].scope, EventScope::Candidate(3));
        assert_eq!(dropped, 0);
        // The original buffer is empty, back in Phase1, same cap.
        assert!(b.is_empty());
        b.begin_candidate(4);
        for _ in 0..5 {
            b.push(EventKind::Backtrack {
                depth: 1,
                undo_ops: 1,
            });
        }
        let (events, dropped) = b.into_parts();
        assert_eq!(events.len(), 2, "cap of 2 must survive drain");
        assert_eq!(dropped, 3);
    }

    #[test]
    fn buffer_caps_per_candidate_and_counts_drops() {
        let mut b = EventBuffer::new(2);
        b.begin_candidate(0);
        for _ in 0..5 {
            b.push(EventKind::Backtrack {
                depth: 1,
                undo_ops: 3,
            });
        }
        b.begin_candidate(1);
        b.push(EventKind::CandidateBegin { c: dev(7) });
        let (events, dropped) = b.into_parts();
        assert_eq!(events.len(), 3);
        assert_eq!(dropped, 3);
        // Fresh scope resets the budget.
        assert_eq!(events[2].scope, EventScope::Candidate(1));
        assert_eq!(events[2].seq, 0);
    }

    #[test]
    fn merge_orders_by_scope_then_seq() {
        let mut a = EventBuffer::new(100);
        a.begin_candidate(2);
        a.push(EventKind::CandidateBegin { c: dev(0) });
        a.push(EventKind::CandidateEnd {
            c: dev(0),
            matched: false,
        });
        let mut b = EventBuffer::new(100);
        b.push(EventKind::RefineIter {
            round: 1,
            live_partitions: 4,
            corrupted: 0,
        });
        let mut c = EventBuffer::new(100);
        c.begin_candidate(0);
        c.push(EventKind::CandidateBegin { c: dev(1) });
        let j = EventJournal::merge(vec![a, b, c]);
        let scopes: Vec<EventScope> = j.events.iter().map(|e| e.scope).collect();
        assert_eq!(
            scopes,
            vec![
                EventScope::Phase1,
                EventScope::Candidate(0),
                EventScope::Candidate(2),
                EventScope::Candidate(2),
            ]
        );
    }

    #[test]
    fn ndjson_lines_parse_individually() {
        let mut b = EventBuffer::new(100);
        b.push(EventKind::CvSelected {
            label: 0xabc,
            size: 3,
            key_vertex: dev(1),
        });
        b.begin_candidate(0);
        b.push(EventKind::Reject {
            reason: RejectReason::UnsafePartition,
        });
        let j = EventJournal::merge(vec![b]);
        let text = journal_to_ndjson(&j);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3); // 2 events + journal_end
        for line in &lines {
            let v = json::parse(line).expect("each line is valid JSON");
            assert!(v.get("event").is_some());
        }
        let first = json::parse(lines[0]).unwrap();
        assert_eq!(first.get("rank"), Some(&Value::Null));
        assert_eq!(first.get("event").unwrap().as_str(), Some("cv_selected"));
        let last = json::parse(lines[2]).unwrap();
        assert_eq!(last.get("event").unwrap().as_str(), Some("journal_end"));
        assert_eq!(last.get("dropped").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn chrome_trace_is_balanced_and_valid() {
        let mut b = EventBuffer::new(100);
        b.push(EventKind::RefineIter {
            round: 1,
            live_partitions: 2,
            corrupted: 1,
        });
        b.begin_candidate(0);
        b.push(EventKind::CandidateBegin { c: dev(0) });
        b.push(EventKind::SafeLabelCheck {
            label: 1,
            s_size: 1,
            g_size: 1,
            safe: true,
        });
        b.push(EventKind::CandidateEnd {
            c: dev(0),
            matched: true,
        });
        let j = EventJournal::merge(vec![b]);
        let doc = journal_to_chrome_trace(&j);
        let n = validate_chrome_trace(&doc).expect("valid trace");
        assert!(n >= 6, "spans + events, got {n}");
        // Round-trips through the JSON parser.
        assert_eq!(json::parse(&doc.pretty()).unwrap(), doc);
    }

    #[test]
    fn validate_rejects_unbalanced_traces() {
        let doc = Value::Obj(vec![(
            "traceEvents".into(),
            Value::Arr(vec![Value::Obj(vec![
                ("name".into(), Value::Str("x".into())),
                ("ph".into(), Value::Str("B".into())),
                ("ts".into(), Value::int(0)),
                ("pid".into(), Value::int(1)),
                ("tid".into(), Value::int(1)),
            ])]),
        )]);
        assert!(validate_chrome_trace(&doc).is_err());
        assert!(validate_chrome_trace(&Value::Obj(vec![])).is_err());
    }

    #[test]
    fn reject_tally_orders_and_merges() {
        let mut t = RejectTally::default();
        t.bump(RejectReason::LabelConflict);
        t.bump(RejectReason::UnsafePartition);
        t.bump(RejectReason::UnsafePartition);
        let mut u = RejectTally::default();
        u.bump(RejectReason::UnsafePartition);
        t.merge(&u);
        assert_eq!(t.total(), 4);
        assert_eq!(
            t.nonzero(),
            vec![
                (RejectReason::UnsafePartition, 3),
                (RejectReason::LabelConflict, 1),
            ]
        );
    }

    #[test]
    fn explain_report_names_first_reject() {
        let mut b = EventBuffer::new(100);
        b.begin_candidate(0);
        b.push(EventKind::CandidateBegin { c: dev(0) });
        b.push(EventKind::Reject {
            reason: RejectReason::UnsafePartition,
        });
        b.push(EventKind::CandidateEnd {
            c: dev(0),
            matched: false,
        });
        let mut outcome = MatchOutcome::default();
        outcome.phase1.cv_size = 1;
        outcome.events = Some(EventJournal::merge(vec![b]));
        let r = ExplainReport::from_outcome(&outcome);
        assert_eq!(r.instances, 0);
        assert_eq!(r.candidates_seen, 1);
        assert_eq!(r.reject_totals, vec![(RejectReason::UnsafePartition, 1)]);
        let d = r.first_divergence.as_deref().expect("no-match diverges");
        assert!(d.contains("candidate #0"), "{d}");
        assert!(d.contains("unsafe_partition"), "{d}");
        let text = r.render();
        assert!(text.contains("reject reasons:"), "{text}");
        assert!(r.to_json().get("first_divergence").is_some());
    }
}
