//! Circuit rule checking: flagging questionable constructs described as
//! pattern netlists.
//!
//! The paper (§I) proposes replacing hard-coded design-rule programs
//! with a *library of circuit patterns*: each questionable construct is
//! just a subcircuit, and flagging it is a SubGemini search. New rules
//! are added by writing netlists, not code.

use subgemini_netlist::Netlist;

use crate::matcher::find_all;
use crate::options::MatchOptions;

/// A reported rule violation: one instance of a rule's pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleViolation {
    /// The rule's name.
    pub rule: String,
    /// The rule's description.
    pub description: String,
    /// Names of the main-circuit devices forming the flagged instance.
    pub devices: Vec<String>,
}

struct Rule {
    name: String,
    description: String,
    pattern: Netlist,
    options: MatchOptions,
}

/// A library of rules, each a pattern netlist with a description.
///
/// # Examples
///
/// ```
/// use subgemini::RuleChecker;
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// // Rule: an NMOS pulling up to vdd (degraded-high pass device).
/// let mut bad = Netlist::new("nmos-to-vdd");
/// let mos = bad.add_mos_types();
/// let (g, d, vdd) = (bad.net("g"), bad.net("d"), bad.net("vdd"));
/// bad.mark_port(g);
/// bad.mark_port(d);
/// bad.mark_global(vdd);
/// bad.add_device("m", mos.nmos, &[g, vdd, d])?;
///
/// let mut checker = RuleChecker::new();
/// checker.add_rule("nmos-pullup", "nmos sources from vdd: degraded high", bad);
///
/// // Circuit with the bad construct.
/// let mut chip = Netlist::new("chip");
/// let mos = chip.add_mos_types();
/// let (a, q, vdd) = (chip.net("a"), chip.net("q"), chip.net("vdd"));
/// chip.mark_global(vdd);
/// chip.add_device("mbad", mos.nmos, &[a, vdd, q])?;
/// let violations = checker.check(&chip);
/// assert_eq!(violations.len(), 1);
/// assert_eq!(violations[0].devices, vec!["mbad"]);
/// # Ok(())
/// # }
/// ```
#[derive(Default)]
pub struct RuleChecker {
    rules: Vec<Rule>,
}

impl RuleChecker {
    /// Creates an empty rule library.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule with default matching options.
    pub fn add_rule(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        pattern: Netlist,
    ) -> &mut Self {
        self.add_rule_with_options(name, description, pattern, MatchOptions::default())
    }

    /// Adds a rule with explicit matching options (e.g. a rule that
    /// must ignore special nets).
    pub fn add_rule_with_options(
        &mut self,
        name: impl Into<String>,
        description: impl Into<String>,
        pattern: Netlist,
        options: MatchOptions,
    ) -> &mut Self {
        self.rules.push(Rule {
            name: name.into(),
            description: description.into(),
            pattern,
            options,
        });
        self
    }

    /// Number of rules in the library.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Checks `main` against every rule, returning all violations in
    /// rule order.
    pub fn check(&self, main: &Netlist) -> Vec<RuleViolation> {
        let mut out = Vec::new();
        for rule in &self.rules {
            let found = find_all(&rule.pattern, main, &rule.options);
            for m in &found.instances {
                out.push(RuleViolation {
                    rule: rule.name.clone(),
                    description: rule.description.clone(),
                    devices: m
                        .device_set()
                        .iter()
                        .map(|&d| main.device(d).name().to_string())
                        .collect(),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_library_reports_nothing() {
        let checker = RuleChecker::new();
        let chip = Netlist::new("chip");
        assert!(checker.check(&chip).is_empty());
        assert_eq!(checker.rule_count(), 0);
    }

    #[test]
    fn multiple_rules_report_in_order() {
        let mut chip = Netlist::new("chip");
        let mos = chip.add_mos_types();
        let (a, q, vdd, gnd) = (
            chip.net("a"),
            chip.net("q"),
            chip.net("vdd"),
            chip.net("gnd"),
        );
        chip.mark_global(vdd);
        chip.mark_global(gnd);
        chip.add_device("m1", mos.nmos, &[a, vdd, q]).unwrap(); // bad pullup
        chip.add_device("m2", mos.pmos, &[a, gnd, q]).unwrap(); // bad pulldown

        let nmos_pullup = {
            let mut p = Netlist::new("r1");
            let mos = p.add_mos_types();
            let (g, d, vdd) = (p.net("g"), p.net("d"), p.net("vdd"));
            p.mark_port(g);
            p.mark_port(d);
            p.mark_global(vdd);
            p.add_device("m", mos.nmos, &[g, vdd, d]).unwrap();
            p
        };
        let pmos_pulldown = {
            let mut p = Netlist::new("r2");
            let mos = p.add_mos_types();
            let (g, d, gnd) = (p.net("g"), p.net("d"), p.net("gnd"));
            p.mark_port(g);
            p.mark_port(d);
            p.mark_global(gnd);
            p.add_device("m", mos.pmos, &[g, gnd, d]).unwrap();
            p
        };
        let mut checker = RuleChecker::new();
        checker.add_rule("nmos-pullup", "degraded high", nmos_pullup);
        checker.add_rule("pmos-pulldown", "degraded low", pmos_pulldown);
        let v = checker.check(&chip);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].rule, "nmos-pullup");
        assert_eq!(v[0].devices, vec!["m1"]);
        assert_eq!(v[1].rule, "pmos-pulldown");
        assert_eq!(v[1].devices, vec!["m2"]);
    }
}
