//! Technology mapping: covering a circuit with library components.
//!
//! §I of the paper: tree-covering technology mappers require tree
//! subjects and tree patterns; "a general subgraph isomorphism
//! algorithm would allow one to find all possible coverings for general
//! component graphs, including those with feedback and reconvergent
//! fanout." This module does exactly that: SubGemini enumerates every
//! match of every library cell (the *cover candidates*), and a
//! selection pass chooses a disjoint subset — greedily by cost
//! effectiveness, or exactly by branch-and-bound on small subjects.

use std::collections::HashSet;

use subgemini_netlist::{DeviceId, Netlist};

use crate::instance::SubMatch;
use crate::matcher::find_all_many;
use crate::options::MatchOptions;

/// One possible placement of a library cell on the subject.
#[derive(Clone, Debug)]
pub struct CoverCandidate {
    /// Library cell name.
    pub cell: String,
    /// Index into the mapper's library.
    pub cell_index: usize,
    /// The match (devices/nets of the subject).
    pub instance: SubMatch,
    /// The cell's cost (area, say).
    pub cost: f64,
}

impl CoverCandidate {
    /// Number of subject devices this candidate covers.
    pub fn size(&self) -> usize {
        self.instance.devices.len()
    }
}

/// Result of a covering run.
#[derive(Clone, Debug, Default)]
pub struct CoverResult {
    /// Chosen, pairwise-disjoint candidates.
    pub chosen: Vec<CoverCandidate>,
    /// Subject devices no chosen candidate covers.
    pub uncovered: Vec<DeviceId>,
    /// Sum of chosen costs.
    pub total_cost: f64,
    /// Library cells whose candidate enumeration was truncated by the
    /// mapper's [`WorkBudget`](crate::WorkBudget) (each cell's search
    /// gets a fresh budget). Non-zero means some placements may be
    /// missing and the cover is a best effort over what was found.
    pub truncated_cells: usize,
}

impl CoverResult {
    /// `true` when every subject device is covered.
    pub fn is_complete(&self) -> bool {
        self.uncovered.is_empty()
    }

    /// Chosen instance count of a given cell.
    pub fn count_of(&self, cell: &str) -> usize {
        self.chosen.iter().filter(|c| c.cell == cell).count()
    }
}

/// A technology mapper over a costed pattern library.
///
/// # Examples
///
/// ```
/// use subgemini::TechMapper;
/// use subgemini_netlist::{instantiate, Netlist};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut inv = Netlist::new("inv");
/// # let mos = inv.add_mos_types();
/// # let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
/// # inv.mark_port(a); inv.mark_port(y); inv.mark_global(vdd); inv.mark_global(gnd);
/// # inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// # inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// # let mut chip = Netlist::new("chip");
/// # let (i, m, o) = (chip.net("in"), chip.net("m"), chip.net("out"));
/// # instantiate(&mut chip, &inv, "u1", &[i, m])?;
/// # instantiate(&mut chip, &inv, "u2", &[m, o])?;
/// let mut mapper = TechMapper::new();
/// mapper.add_cell(inv, 1.0);
/// let cover = mapper.map_greedy(&chip);
/// assert!(cover.is_complete());
/// assert_eq!(cover.count_of("inv"), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct TechMapper {
    library: Vec<(Netlist, f64)>,
    options: MatchOptions,
}

impl TechMapper {
    /// Creates an empty mapper.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a pattern cell with its cost.
    pub fn add_cell(&mut self, cell: Netlist, cost: f64) -> &mut Self {
        self.library.push((cell, cost));
        self
    }

    /// Overrides matching options (overlaps are always allowed during
    /// candidate enumeration — selection handles disjointness).
    pub fn set_options(&mut self, options: MatchOptions) -> &mut Self {
        self.options = options;
        self
    }

    /// Enumerates every placement of every library cell (with
    /// overlaps). The subject is compiled once and shared across the
    /// whole library via [`find_all_many`](crate::find_all_many).
    pub fn candidates(&self, subject: &Netlist) -> Vec<CoverCandidate> {
        self.enumerate(subject).0
    }

    /// Candidate enumeration plus how many cells' searches were
    /// truncated under a per-cell work budget.
    fn enumerate(&self, subject: &Netlist) -> (Vec<CoverCandidate>, usize) {
        let opts = MatchOptions {
            overlap: crate::options::OverlapPolicy::AllowOverlap,
            ..self.options.clone()
        };
        let cells: Vec<&Netlist> = self.library.iter().map(|(cell, _)| cell).collect();
        let mut out = Vec::new();
        let mut truncated_cells = 0usize;
        for (i, outcome) in find_all_many(&cells, subject, &opts)
            .into_iter()
            .enumerate()
        {
            let (cell, cost) = &self.library[i];
            if outcome.completeness.is_truncated() {
                truncated_cells += 1;
            }
            for m in outcome.instances {
                out.push(CoverCandidate {
                    cell: cell.name().to_string(),
                    cell_index: i,
                    instance: m,
                    cost: *cost,
                });
            }
        }
        (out, truncated_cells)
    }

    /// Greedy covering: repeatedly takes the disjoint candidate with the
    /// best cost-per-covered-device ratio.
    pub fn map_greedy(&self, subject: &Netlist) -> CoverResult {
        let (candidates, truncated_cells) = self.enumerate(subject);
        // Decorate with the device-set tiebreak key once per candidate
        // — computing it inside the comparator would allocate two
        // sorted vectors per comparison.
        let mut decorated: Vec<(Vec<DeviceId>, CoverCandidate)> = candidates
            .into_iter()
            .map(|c| (c.instance.device_set(), c))
            .collect();
        decorated.sort_by(|(da, a), (db, b)| {
            let ra = a.cost / a.size() as f64;
            let rb = b.cost / b.size() as f64;
            ra.partial_cmp(&rb)
                .expect("costs are finite")
                .then_with(|| da.cmp(db))
        });
        let mut covered: HashSet<DeviceId> = HashSet::new();
        let mut result = CoverResult {
            truncated_cells,
            ..CoverResult::default()
        };
        for (_, cand) in decorated {
            if cand.instance.devices.iter().any(|d| covered.contains(d)) {
                continue;
            }
            covered.extend(cand.instance.devices.iter().copied());
            result.total_cost += cand.cost;
            result.chosen.push(cand);
        }
        result.uncovered = subject
            .device_ids()
            .filter(|d| !covered.contains(d))
            .collect();
        result
    }

    /// Exact minimum-cost complete covering by branch-and-bound.
    ///
    /// Returns `None` if no complete cover exists or the search exceeds
    /// `node_budget` explored nodes. Intended for small subjects (a few
    /// hundred devices); use [`TechMapper::map_greedy`] beyond that.
    pub fn map_exact(&self, subject: &Netlist, node_budget: usize) -> Option<CoverResult> {
        let (candidates, truncated_cells) = self.enumerate(subject);
        let nd = subject.device_count();
        // Per device: which candidates cover it.
        let mut covers: Vec<Vec<usize>> = vec![Vec::new(); nd];
        for (ci, cand) in candidates.iter().enumerate() {
            for d in &cand.instance.devices {
                covers[d.index()].push(ci);
            }
        }
        if covers.iter().any(Vec::is_empty) {
            return None; // some device is uncoverable
        }
        // Cheapest per-device rate, for an admissible lower bound.
        let min_rate = candidates
            .iter()
            .map(|c| c.cost / c.size() as f64)
            .fold(f64::INFINITY, f64::min);
        struct Search<'a> {
            candidates: &'a [CoverCandidate],
            covers: &'a [Vec<usize>],
            min_rate: f64,
            best_cost: f64,
            best: Option<Vec<usize>>,
            nodes: usize,
            budget: usize,
        }
        impl Search<'_> {
            fn go(&mut self, covered: &mut Vec<bool>, chosen: &mut Vec<usize>, cost: f64) {
                self.nodes += 1;
                if self.nodes > self.budget {
                    return;
                }
                // Branch on the lowest uncovered device.
                let Some(next) = covered.iter().position(|&c| !c) else {
                    if cost < self.best_cost {
                        self.best_cost = cost;
                        self.best = Some(chosen.clone());
                    }
                    return;
                };
                let remaining = covered.iter().filter(|&&c| !c).count();
                if cost + remaining as f64 * self.min_rate >= self.best_cost {
                    return; // bound
                }
                for &ci in &self.covers[next] {
                    let cand = &self.candidates[ci];
                    if cand.instance.devices.iter().any(|d| covered[d.index()]) {
                        continue;
                    }
                    for d in &cand.instance.devices {
                        covered[d.index()] = true;
                    }
                    chosen.push(ci);
                    self.go(covered, chosen, cost + cand.cost);
                    chosen.pop();
                    for d in &cand.instance.devices {
                        covered[d.index()] = false;
                    }
                }
            }
        }
        let mut search = Search {
            candidates: &candidates,
            covers: &covers,
            min_rate,
            best_cost: f64::INFINITY,
            best: None,
            nodes: 0,
            budget: node_budget,
        };
        search.go(&mut vec![false; nd], &mut Vec::new(), 0.0);
        let best = search.best?;
        let chosen: Vec<CoverCandidate> = best.iter().map(|&ci| candidates[ci].clone()).collect();
        let total_cost = chosen.iter().map(|c| c.cost).sum();
        Some(CoverResult {
            chosen,
            uncovered: Vec::new(),
            total_cost,
            truncated_cells,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use subgemini_netlist::instantiate;

    fn inv() -> Netlist {
        let mut inv = Netlist::new("inv");
        let mos = inv.add_mos_types();
        let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
        inv.mark_port(a);
        inv.mark_port(y);
        inv.mark_global(vdd);
        inv.mark_global(gnd);
        inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        inv
    }

    fn buf() -> Netlist {
        let mut b = Netlist::new("buf");
        let (a, y) = {
            let a = b.net("a");
            let y = b.net("y");
            (a, y)
        };
        b.mark_port(a);
        b.mark_port(y);
        let mid = b.net("mid");
        let mos = b.add_mos_types();
        let (vdd, gnd) = (b.net("vdd"), b.net("gnd"));
        b.mark_global(vdd);
        b.mark_global(gnd);
        b.add_device("p1", mos.pmos, &[a, vdd, mid]).unwrap();
        b.add_device("n1", mos.nmos, &[a, gnd, mid]).unwrap();
        b.add_device("p2", mos.pmos, &[mid, vdd, y]).unwrap();
        b.add_device("n2", mos.nmos, &[mid, gnd, y]).unwrap();
        b
    }

    fn chain(n: usize) -> Netlist {
        let cell = inv();
        let mut chip = Netlist::new("chain");
        let mut prev = chip.net("in");
        for i in 0..n {
            let next = chip.net(format!("w{i}"));
            instantiate(&mut chip, &cell, &format!("u{i}"), &[prev, next]).unwrap();
            prev = next;
        }
        chip
    }

    #[test]
    fn greedy_covers_chain_with_cheapest_mix() {
        let chip = chain(4);
        let mut mapper = TechMapper::new();
        mapper.add_cell(inv(), 1.0);
        mapper.add_cell(buf(), 1.2); // cheaper per device than 2 invs
        let cover = mapper.map_greedy(&chip);
        assert!(cover.is_complete());
        // Buffers at (0,1) and (2,3): cost 2.4 < 4 invs at 4.0.
        assert_eq!(cover.count_of("buf"), 2);
        assert_eq!(cover.count_of("inv"), 0);
        assert!((cover.total_cost - 2.4).abs() < 1e-9);
    }

    #[test]
    fn exact_matches_greedy_on_easy_input_and_beats_bad_costs() {
        let chip = chain(3);
        let mut mapper = TechMapper::new();
        mapper.add_cell(inv(), 1.0);
        mapper.add_cell(buf(), 1.2);
        let exact = mapper.map_exact(&chip, 100_000).expect("coverable");
        // 3 inverters: buf+inv = 2.2 beats 3 invs = 3.0.
        assert!((exact.total_cost - 2.2).abs() < 1e-9);
        assert!(exact.is_complete());
        let greedy = mapper.map_greedy(&chip);
        assert!(greedy.total_cost >= exact.total_cost - 1e-9);
    }

    #[test]
    fn incomplete_cover_reports_uncovered() {
        // Library with only bufs cannot cover an odd chain.
        let chip = chain(3);
        let mut mapper = TechMapper::new();
        mapper.add_cell(buf(), 1.0);
        let cover = mapper.map_greedy(&chip);
        assert!(!cover.is_complete());
        assert_eq!(cover.uncovered.len(), 2); // one inverter's 2 devices
        assert!(mapper.map_exact(&chip, 10_000).is_none());
    }

    #[test]
    fn exact_respects_node_budget() {
        let chip = chain(6);
        let mut mapper = TechMapper::new();
        mapper.add_cell(inv(), 1.0);
        mapper.add_cell(buf(), 1.2);
        // A budget of one node cannot finish.
        assert!(mapper.map_exact(&chip, 1).is_none());
    }

    #[test]
    fn candidates_enumerate_overlaps() {
        let chip = chain(3);
        let mut mapper = TechMapper::new();
        mapper.add_cell(buf(), 1.0);
        // Bufs at (0,1) and (1,2) overlap on the middle inverter.
        let cands = mapper.candidates(&chip);
        assert_eq!(cands.len(), 2);
    }
}
