//! SubGemini: fast subcircuit identification via two-phase subgraph
//! isomorphism.
//!
//! A from-scratch reproduction of *"SubGemini: Identifying SubCircuits
//! using a Fast Subgraph Isomorphism Algorithm"* (Ohlrich, Ebeling,
//! Ginting, Sather — DAC 1993). Given a small *pattern* netlist (a
//! subcircuit with ports) and a large *main* netlist, SubGemini finds
//! every instance of the pattern:
//!
//! * **Phase I** partitions both circuits by iterative labeling with
//!   valid/corrupt tracking and picks a **key vertex** in the pattern
//!   plus a **candidate vector** of its possible images — a complete,
//!   usually tiny filter (see [`candidates`]).
//! * **Phase II** verifies each candidate by spreading *safe* labels
//!   outward from the postulated match, matching equal singleton
//!   partitions, guessing (with backtracking) on symmetric ambiguity,
//!   and structurally verifying the completed mapping.
//!
//! The crate also implements the applications the paper motivates:
//! transistor→gate [`Extractor`] with a cell library, iterative
//! hierarchy reconstruction ([`hier`]), circuit [`RuleChecker`]s, and
//! port-symmetry inference for composite device types
//! ([`port_symmetry_classes`]).
//!
//! # Quickstart
//!
//! ```
//! use subgemini::Matcher;
//! use subgemini_netlist::{instantiate, Netlist};
//!
//! # fn main() -> Result<(), subgemini_netlist::NetlistError> {
//! // Pattern: a CMOS inverter with ports a/y and global rails.
//! let mut inv = Netlist::new("inv");
//! let mos = inv.add_mos_types();
//! let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
//! inv.mark_port(a);
//! inv.mark_port(y);
//! inv.mark_global(vdd);
//! inv.mark_global(gnd);
//! inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
//! inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
//!
//! // Main circuit: a ring of four inverters.
//! let mut ring = Netlist::new("ring");
//! let nets: Vec<_> = (0..4).map(|i| ring.net(format!("n{i}"))).collect();
//! for i in 0..4 {
//!     instantiate(&mut ring, &inv, &format!("u{i}"), &[nets[i], nets[(i + 1) % 4]])?;
//! }
//!
//! let outcome = Matcher::new(&inv, &ring).find_all();
//! assert_eq!(outcome.count(), 4);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod events;
mod extract;
pub mod hier;
mod instance;
mod matcher;
pub mod metrics;
mod options;
mod phase1;
mod phase2;
mod rules;
mod scheduler;
pub mod shard;
mod symmetry;
mod techmap;
pub mod telemetry;
mod trace;
mod verify;

pub use budget::{CancelToken, Completeness, TruncationReason, WorkBudget};
pub use events::{Event, EventJournal, EventKind, EventScope, ExplainReport, RejectReason};
pub use extract::{ExtractReport, ExtractedInstance, Extractor};
pub use instance::{MatchOutcome, Phase1Stats, Phase2Stats, SubMatch};
pub use matcher::{find_all, find_all_many, Matcher};
pub use metrics::{Counters, Histogram, MetricsReport, ProgressEvent, ProgressHook};
pub use options::{KeyPolicy, MatchOptions, OverlapPolicy, Phase2Scheduler, PrunePolicy, WarmMain};
pub use rules::{RuleChecker, RuleViolation};
pub use shard::{ShardPlan, ShardPolicy};
pub use symmetry::port_symmetry_classes;
pub use techmap::{CoverCandidate, CoverResult, TechMapper};
pub use telemetry::{RequestSample, Rollup, ShardedCounter, Telemetry, TelemetrySnapshot};
pub use trace::{Phase2Trace, TraceCell, TraceSnapshot};
pub use verify::verify_instance;

/// Phase I as a standalone step: returns the key vertex and candidate
/// vector without running Phase II. Exposed for the candidate-filter
/// experiments (DESIGN.md E7) and for diagnostic tooling.
pub mod candidates {
    use std::sync::Arc;

    use subgemini_netlist::{CompiledCircuit, Netlist, Vertex};

    pub use crate::instance::Phase1Stats;

    /// The Phase I result: key vertex, candidate vector, statistics.
    #[derive(Clone, Debug)]
    pub struct CandidateVector {
        /// The key vertex in the pattern.
        pub key: Option<Vertex>,
        /// The candidate images in the main circuit.
        pub candidates: Vec<Vertex>,
        /// Phase I statistics.
        pub stats: Phase1Stats,
    }

    /// Runs Phase I only.
    ///
    /// # Examples
    ///
    /// ```
    /// use subgemini_netlist::Netlist;
    ///
    /// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
    /// let mut inv = Netlist::new("inv");
    /// let mos = inv.add_mos_types();
    /// let (a, y) = (inv.net("a"), inv.net("y"));
    /// inv.mark_port(a);
    /// inv.mark_port(y);
    /// inv.add_device("mp", mos.pmos, &[a, y, y])?;
    /// let cv = subgemini::candidates::generate(&inv, &inv);
    /// assert_eq!(cv.candidates.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn generate(pattern: &Netlist, main: &Netlist) -> CandidateVector {
        let s = CompiledCircuit::compile(pattern);
        let g = Arc::new(CompiledCircuit::compile(main));
        let out = crate::phase1::run(&s, &g);
        CandidateVector {
            key: out.key,
            candidates: out.candidates,
            stats: out.stats,
        }
    }

    /// Runs Phase I for many patterns against one main circuit,
    /// sharing the main graph's label refinement: Phase I relabels `G`
    /// without any pattern-dependent state, so a library survey pays
    /// the `O(|G| · iterations)` cost once instead of per pattern.
    ///
    /// Returns one [`CandidateVector`] per pattern, in order.
    ///
    /// # Examples
    ///
    /// ```
    /// use subgemini_netlist::Netlist;
    ///
    /// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
    /// let mut cell = Netlist::new("t");
    /// let mos = cell.add_mos_types();
    /// let (a, y) = (cell.net("a"), cell.net("y"));
    /// cell.mark_port(a);
    /// cell.mark_port(y);
    /// cell.add_device("m", mos.nmos, &[a, y, y])?;
    /// let cvs = subgemini::candidates::generate_many(&[&cell], &cell);
    /// assert_eq!(cvs.len(), 1);
    /// assert_eq!(cvs[0].candidates.len(), 1);
    /// # Ok(())
    /// # }
    /// ```
    pub fn generate_many(patterns: &[&Netlist], main: &Netlist) -> Vec<CandidateVector> {
        let compiled: Vec<CompiledCircuit> = patterns
            .iter()
            .map(|p| CompiledCircuit::compile(p))
            .collect();
        let refs: Vec<&CompiledCircuit> = compiled.iter().collect();
        let g = Arc::new(CompiledCircuit::compile(main));
        crate::phase1::run_many(&refs, &g, crate::KeyPolicy::SmallestPartition)
            .into_iter()
            .map(|out| CandidateVector {
                key: out.key,
                candidates: out.candidates,
                stats: out.stats,
            })
            .collect()
    }
}
