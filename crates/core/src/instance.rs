//! Result types: instances, statistics, outcomes.

use subgemini_netlist::{DeviceId, NetId, Netlist, Vertex};

/// One verified subcircuit instance: a mapping from every pattern vertex
/// to its image in the main circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SubMatch {
    /// `devices[i]` is the main-circuit image of pattern device `i`.
    pub devices: Vec<DeviceId>,
    /// `nets[i]` is the main-circuit image of pattern net `i`.
    pub nets: Vec<NetId>,
}

impl SubMatch {
    /// Image of a pattern device.
    pub fn device(&self, s: DeviceId) -> DeviceId {
        self.devices[s.index()]
    }

    /// Image of a pattern net.
    pub fn net(&self, s: NetId) -> NetId {
        self.nets[s.index()]
    }

    /// The matched main-circuit devices as a sorted set — the canonical
    /// identity of the instance (automorphic remappings collapse onto
    /// the same set).
    pub fn device_set(&self) -> Vec<DeviceId> {
        let mut v = self.devices.clone();
        v.sort_unstable();
        v
    }

    /// Images of the pattern's ports, in port order — the "pin
    /// connections" of the found instance, used when replacing it with a
    /// composite device.
    pub fn port_images(&self, pattern: &Netlist) -> Vec<NetId> {
        pattern.ports().iter().map(|&p| self.net(p)).collect()
    }
}

/// Statistics from Phase I (candidate-vector generation).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Phase1Stats {
    /// Relabeling iterations executed (one iteration = one net phase
    /// and/or one device phase, per the paper's optimized loop).
    pub iterations: usize,
    /// Size of the chosen candidate vector.
    pub cv_size: usize,
    /// Size of the pattern partition the key vertex was chosen from.
    pub key_partition_size: usize,
    /// `true` if a consistency check proved no instance can exist.
    pub proven_empty: bool,
}

/// Statistics from Phase II (candidate verification).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Phase2Stats {
    /// Candidates taken from the candidate vector.
    pub candidates_tried: usize,
    /// Candidates that failed verification (Phase I false positives).
    pub false_candidates: usize,
    /// Total relabeling passes across all candidates.
    pub passes: usize,
    /// Ambiguity guesses made (paper Fig. 5 situations).
    pub guesses: usize,
    /// Guesses that were rolled back.
    pub backtracks: usize,
    /// Instances dropped by [`OverlapPolicy::ClaimDevices`](crate::OverlapPolicy).
    pub overlap_dropped: usize,
}

impl Phase2Stats {
    /// Adds another stats block (one consumed candidate's worth) into
    /// this one. The streaming merge uses this to accumulate exactly
    /// the candidates it consumed, in candidate-vector order, so the
    /// outcome's stats are identical across thread counts.
    pub(crate) fn absorb(&mut self, o: &Phase2Stats) {
        self.candidates_tried += o.candidates_tried;
        self.false_candidates += o.false_candidates;
        self.passes += o.passes;
        self.guesses += o.guesses;
        self.backtracks += o.backtracks;
        self.overlap_dropped += o.overlap_dropped;
    }
}

/// Complete outcome of a SubGemini search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MatchOutcome {
    /// Verified instances, deduplicated by device set, in deterministic
    /// order.
    pub instances: Vec<SubMatch>,
    /// The key vertex chosen in the pattern (`None` when Phase I proved
    /// emptiness before choosing one).
    pub key: Option<Vertex>,
    /// Phase I statistics.
    pub phase1: Phase1Stats,
    /// Phase II statistics.
    pub phase2: Phase2Stats,
    /// Pass-by-pass trace of the first successful candidate, when
    /// [`MatchOptions::record_trace`](crate::MatchOptions) was set.
    pub trace: Option<crate::trace::Phase2Trace>,
    /// Phase timings and effort counters, when
    /// [`MatchOptions::collect_metrics`](crate::MatchOptions) was set.
    pub metrics: Option<crate::metrics::MetricsReport>,
    /// Merged structured event journal, when
    /// [`MatchOptions::trace_events`](crate::MatchOptions) was set.
    /// Deterministic across thread counts: events are ordered by
    /// `(candidate rank, sequence)` regardless of worker assignment.
    pub events: Option<crate::events::EventJournal>,
    /// Whether the search ran to completion or was stopped early by a
    /// [`WorkBudget`](crate::WorkBudget) or
    /// [`CancelToken`](crate::CancelToken). A truncated outcome still
    /// carries every instance verified before the stop; with an effort
    /// budget the truncation point is identical for every thread count.
    pub completeness: crate::budget::Completeness,
    /// The session-layer request id this search ran under
    /// ([`MatchOptions::request_id`](crate::MatchOptions)), stamped
    /// verbatim for correlation in reports and logs. Pure metadata: it
    /// never influences the search.
    pub request_id: Option<u64>,
}

impl MatchOutcome {
    /// Number of instances found.
    pub fn count(&self) -> usize {
        self.instances.len()
    }

    /// Distinct main-circuit images of the key vertex across instances.
    pub fn key_images(&self) -> Vec<Vertex> {
        let Some(key) = self.key else {
            return Vec::new();
        };
        let mut v: Vec<Vertex> = self
            .instances
            .iter()
            .map(|m| match key {
                Vertex::Device(d) => Vertex::Device(m.device(d)),
                Vertex::Net(n) => Vertex::Net(m.net(n)),
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total devices covered by all instances (with multiplicity) — the
    /// paper's "total number of devices within the subcircuits being
    /// matched", the x-axis of the linearity experiment (E5).
    pub fn matched_device_total(&self) -> usize {
        self.instances.iter().map(|m| m.devices.len()).sum()
    }
}

impl std::fmt::Display for MatchOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} instance(s); phase1: |CV|={} in {} iterations; \
             phase2: {} tried, {} false, {} passes, {} guesses, {} backtracks",
            self.instances.len(),
            self.phase1.cv_size,
            self.phase1.iterations,
            self.phase2.candidates_tried,
            self.phase2.false_candidates,
            self.phase2.passes,
            self.phase2.guesses,
            self.phase2.backtracks
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_set_is_sorted_and_canonical() {
        let m = SubMatch {
            devices: vec![DeviceId::new(5), DeviceId::new(1)],
            nets: vec![],
        };
        assert_eq!(m.device_set(), vec![DeviceId::new(1), DeviceId::new(5)]);
    }

    #[test]
    fn outcome_display_summarizes() {
        let o = MatchOutcome::default();
        let text = o.to_string();
        assert!(text.contains("0 instance(s)"));
        assert!(text.contains("phase2"));
    }

    #[test]
    fn outcome_counters() {
        let mut o = MatchOutcome::default();
        assert_eq!(o.count(), 0);
        assert!(o.key_images().is_empty());
        o.key = Some(Vertex::Device(DeviceId::new(0)));
        o.instances.push(SubMatch {
            devices: vec![DeviceId::new(3)],
            nets: vec![NetId::new(2)],
        });
        o.instances.push(SubMatch {
            devices: vec![DeviceId::new(3)],
            nets: vec![NetId::new(4)],
        });
        assert_eq!(o.count(), 2);
        assert_eq!(o.key_images(), vec![Vertex::Device(DeviceId::new(3))]);
        assert_eq!(o.matched_device_total(), 2);
    }
}
