//! Observability: phase timers, a counter registry, progress events,
//! and a machine-readable report.
//!
//! Collection is opt-in via
//! [`MatchOptions::collect_metrics`](crate::MatchOptions): when off
//! (the default), the matcher takes no timestamps, allocates no
//! registry, and [`MatchOutcome::metrics`](crate::MatchOutcome) stays
//! `None`, so results and effort counters are identical to a run
//! without this subsystem. When on, the matcher records monotonic
//! wall-clock time for each phase (Phase I refinement, candidate-vector
//! selection, Phase II verification) plus per-worker busy time, and
//! attaches a [`MetricsReport`].
//!
//! The [`json`] submodule is a dependency-free JSON emitter/parser used
//! by the report serializers (`subg --report json`, the `bench_json`
//! binary) and by tests that check schema stability.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::instance::MatchOutcome;

/// A monotonic phase timer. Thin wrapper over [`Instant`] so call sites
/// read as instrumentation rather than clock arithmetic.
#[derive(Clone, Copy, Debug)]
pub struct PhaseTimer(Instant);

impl PhaseTimer {
    /// Starts the timer.
    pub fn start() -> Self {
        PhaseTimer(Instant::now())
    }

    /// Nanoseconds since `start`, saturated to `u64`.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// An ordered registry of named counters. Names are registered on first
/// bump; iteration order is first-bump order, so reports are stable for
/// a fixed code path. Lookups go through an index map, so per-candidate
/// counter traffic (e.g. one bump per Phase II reject) stays O(1)
/// instead of scanning the registry.
#[derive(Clone, Debug, Default)]
pub struct Counters {
    entries: Vec<(String, u64)>,
    index: HashMap<String, usize>,
}

impl Counters {
    /// Adds `by` to `name`, registering it at zero first if new.
    pub fn bump(&mut self, name: &str, by: u64) {
        match self.index.get(name) {
            Some(&i) => self.entries[i].1 += by,
            None => {
                self.index.insert(name.to_string(), self.entries.len());
                self.entries.push((name.to_string(), by));
            }
        }
    }

    /// Current value of `name` (0 if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.index.get(name).map_or(0, |&i| self.entries[i].1)
    }

    /// Iterates `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), *v))
    }

    /// Number of registered counters.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no counter has been registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// Equality is over the visible registry (names + values in registration
// order); the index map is a derived lookup structure.
impl PartialEq for Counters {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for Counters {}

/// A log2-bucket histogram of non-negative integer samples (latencies
/// in nanoseconds, backtrack depths, …). Bucket 0 holds the value 0;
/// bucket `i ≥ 1` holds values in `[2^(i-1), 2^i - 1]` — i.e. samples
/// are binned by bit length, so recording is a couple of ALU ops and
/// the memory footprint is at most 65 counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Upper bound of bucket `i` (the largest value it can hold).
    fn bucket_max(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let b = Self::bucket_of(value);
        if b >= self.buckets.len() {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Folds another histogram in (bucket-wise sum).
    pub fn merge(&mut self, other: &Histogram) {
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The allocated buckets as `(upper bound, count)` pairs in
    /// ascending bucket order — the raw layout exposition formats need
    /// (Prometheus `le` buckets) rather than the derived quantiles.
    pub fn bucket_counts(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| (Self::bucket_max(i), c))
    }

    /// The upper bound of the bucket holding the `q`-quantile sample
    /// (`q` in `[0, 1]`), i.e. the reported percentile overestimates by
    /// at most 2x — the usual log2-histogram contract. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // 1-based rank of the target sample.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_max(i);
            }
        }
        Self::bucket_max(self.buckets.len().saturating_sub(1))
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The histogram as a JSON object (`count`, `sum`, `p50`, `p95`,
    /// `p99`).
    pub fn to_json(&self) -> json::Value {
        json::Value::Obj(vec![
            ("count".into(), json::Value::int(self.count)),
            ("sum".into(), json::Value::int(self.sum)),
            ("p50".into(), json::Value::int(self.p50())),
            ("p95".into(), json::Value::int(self.p95())),
            ("p99".into(), json::Value::int(self.p99())),
        ])
    }
}

/// Structured timing/effort metrics for one matching run. All times are
/// monotonic wall-clock nanoseconds.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsReport {
    /// End-to-end `find_all` time, including netlist preparation.
    pub total_ns: u64,
    /// Time spent compiling netlists into
    /// [`CompiledCircuit`](subgemini_netlist::CompiledCircuit) CSR
    /// snapshots (main + pattern). When a search reuses a cached main
    /// compilation (library surveys, extraction passes), only the
    /// pattern's share appears here and the
    /// `compile.main_cache_hits` counter is bumped instead.
    pub compile_ns: u64,
    /// Phase I iterative-relabeling (partition refinement) time.
    pub phase1_refine_ns: u64,
    /// Phase I candidate-vector / key-vertex selection time.
    pub phase1_select_ns: u64,
    /// Summed Phase II per-candidate verification time across workers.
    pub phase2_verify_ns: u64,
    /// Longest single-candidate verification.
    pub phase2_max_candidate_ns: u64,
    /// Wall-clock time of the Phase II candidate stage (parallel
    /// pre-pass plus serial merge).
    pub phase2_wall_ns: u64,
    /// Thread count requested via [`MatchOptions::threads`](crate::MatchOptions)
    /// (0 = auto).
    pub threads_requested: usize,
    /// The requested count with `0` (auto) resolved to the machine's
    /// available parallelism — what the search would use if eligible
    /// for parallel execution. Schema v1 additive.
    pub threads_resolved: usize,
    /// Worker threads actually used for candidate verification.
    pub threads_used: usize,
    /// Busy (verification) time per worker, one entry per worker; a
    /// single entry on the serial path.
    pub worker_busy_ns: Vec<u64>,
    /// Named effort counters.
    pub counters: Counters,
    /// Per-candidate verification latency (ns), log2-bucketed.
    pub verify_ns_hist: Histogram,
    /// Backtrack depth at each rollback, log2-bucketed.
    pub backtrack_depth_hist: Histogram,
    /// Effort units charged on the governor's deterministic ledger
    /// (Phase I iterations + per-candidate costs, in candidate-vector
    /// order). Zero on ungoverned runs.
    pub effort_spent: u64,
    /// The [`WorkBudget::max_effort`](crate::WorkBudget) cap in force
    /// (0 = unlimited or ungoverned).
    pub effort_limit: u64,
}

impl MetricsReport {
    /// Fraction of the Phase II wall-clock during which workers were
    /// busy, in `[0, 1]`: `sum(busy) / (threads_used * wall)`. Returns 1
    /// for degenerate (zero-time) runs.
    pub fn worker_utilization(&self) -> f64 {
        let busy: u64 = self.worker_busy_ns.iter().sum();
        let denom = self.threads_used as u64 * self.phase2_wall_ns;
        if denom == 0 {
            return 1.0;
        }
        (busy as f64 / denom as f64).min(1.0)
    }
}

/// Timings for one extraction run
/// ([`ExtractReport::metrics`](crate::ExtractReport)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtractMetrics {
    /// End-to-end extraction time.
    pub total_ns: u64,
    /// Per-cell breakdown, in (largest-first) processing order.
    pub cells: Vec<ExtractCellMetrics>,
}

/// Per-cell slice of an extraction run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtractCellMetrics {
    /// Library cell name.
    pub cell: String,
    /// Instances found for the cell.
    pub found: usize,
    /// Wall-clock of the cell's `find_all` round.
    pub match_ns: u64,
    /// Wall-clock of collapsing the found instances into composites.
    pub replace_ns: u64,
    /// The match's own [`MetricsReport`].
    pub match_metrics: Option<MetricsReport>,
}

/// A progress notification from the matcher or extractor.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ProgressEvent {
    /// Phase I is starting.
    Phase1Started {
        /// Devices in the pattern.
        pattern_devices: usize,
        /// Devices in the main circuit.
        main_devices: usize,
    },
    /// Phase I finished and produced a candidate vector.
    Phase1Finished {
        /// Relabeling iterations executed.
        iterations: usize,
        /// Candidate-vector size (0 when proven empty).
        cv_size: usize,
    },
    /// One candidate has been fully processed (post-verification).
    CandidateChecked {
        /// Index in the candidate vector.
        index: usize,
        /// Candidate-vector size.
        total: usize,
        /// Whether the candidate verified into an instance.
        matched: bool,
    },
    /// A new (deduplicated, unclaimed) instance was accepted.
    InstanceFound {
        /// Instances accepted so far, including this one.
        count: usize,
    },
    /// The extractor is starting a library cell.
    ExtractCellStarted {
        /// Cell name.
        cell: String,
        /// Index in largest-first processing order.
        index: usize,
        /// Number of library cells.
        total: usize,
    },
    /// The extractor finished a library cell.
    ExtractCellFinished {
        /// Cell name.
        cell: String,
        /// Instances found for this cell.
        found: usize,
    },
}

/// A shareable progress callback
/// ([`MatchOptions::on_progress`](crate::MatchOptions)).
///
/// Equality is pointer identity (two hooks are equal iff they share the
/// same closure), which keeps `MatchOptions` comparable.
#[derive(Clone)]
pub struct ProgressHook(Arc<dyn Fn(&ProgressEvent) + Send + Sync>);

impl ProgressHook {
    /// Wraps a callback.
    pub fn new(f: impl Fn(&ProgressEvent) + Send + Sync + 'static) -> Self {
        ProgressHook(Arc::new(f))
    }

    /// Invokes the callback.
    pub fn call(&self, event: &ProgressEvent) {
        (self.0)(event);
    }
}

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

impl PartialEq for ProgressHook {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

impl Eq for ProgressHook {}

/// Dependency-free JSON tree, emitter, and parser — just enough for the
/// stable report schema.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value. Objects preserve insertion order so emitted
    /// documents are byte-stable.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any JSON number (emitted without trailing `.0` when integral).
        Num(f64),
        /// A string.
        Str(String),
        /// An array.
        Arr(Vec<Value>),
        /// An object (ordered key/value pairs).
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        /// Convenience: an integer number.
        pub fn int(v: u64) -> Value {
            Value::Num(v as f64)
        }

        /// Member lookup on objects.
        pub fn get(&self, key: &str) -> Option<&Value> {
            match self {
                Value::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
                _ => None,
            }
        }

        /// The numeric value, if this is a number.
        pub fn as_f64(&self) -> Option<f64> {
            match *self {
                Value::Num(n) => Some(n),
                _ => None,
            }
        }

        /// The value as a non-negative integer, if integral.
        pub fn as_u64(&self) -> Option<u64> {
            match *self {
                Value::Num(n) if n >= 0.0 && n.fract() == 0.0 => Some(n as u64),
                _ => None,
            }
        }

        /// The string value, if this is a string.
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }

        /// The elements, if this is an array.
        pub fn as_arr(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(v) => Some(v),
                _ => None,
            }
        }

        /// Serializes with two-space indentation and a trailing newline.
        pub fn pretty(&self) -> String {
            let mut out = String::new();
            self.emit(&mut out, 0);
            out.push('\n');
            out
        }

        /// Serializes to a single line with no extra whitespace — the
        /// NDJSON form used by the event-journal exporter.
        pub fn compact(&self) -> String {
            let mut out = String::new();
            self.emit_compact(&mut out);
            out
        }

        fn emit_compact(&self, out: &mut String) {
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Num(n) => {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                }
                Value::Str(s) => emit_string(out, s),
                Value::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.emit_compact(out);
                    }
                    out.push(']');
                }
                Value::Obj(members) => {
                    out.push('{');
                    for (i, (k, v)) in members.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        emit_string(out, k);
                        out.push(':');
                        v.emit_compact(out);
                    }
                    out.push('}');
                }
            }
        }

        fn emit(&self, out: &mut String, indent: usize) {
            let pad = |out: &mut String, n: usize| {
                for _ in 0..n {
                    out.push_str("  ");
                }
            };
            match self {
                Value::Null => out.push_str("null"),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Num(n) => {
                    if n.fract() == 0.0 && n.abs() < 9e15 {
                        let _ = write!(out, "{}", *n as i64);
                    } else {
                        let _ = write!(out, "{n}");
                    }
                }
                Value::Str(s) => emit_string(out, s),
                Value::Arr(items) => {
                    if items.is_empty() {
                        out.push_str("[]");
                        return;
                    }
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        pad(out, indent + 1);
                        item.emit(out, indent + 1);
                    }
                    out.push('\n');
                    pad(out, indent);
                    out.push(']');
                }
                Value::Obj(members) => {
                    if members.is_empty() {
                        out.push_str("{}");
                        return;
                    }
                    out.push('{');
                    for (i, (k, v)) in members.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push('\n');
                        pad(out, indent + 1);
                        emit_string(out, k);
                        out.push_str(": ");
                        v.emit(out, indent + 1);
                    }
                    out.push('\n');
                    pad(out, indent);
                    out.push('}');
                }
            }
        }
    }

    fn emit_string(out: &mut String, s: &str) {
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push('"');
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input.
    pub fn parse(text: &str) -> Result<Value, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    fn skip_ws(b: &[u8], pos: &mut usize) {
        while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        }
    }

    fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
        if *pos < b.len() && b[*pos] == c {
            *pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, *pos))
        }
    }

    fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b'{') => {
                *pos += 1;
                let mut members = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b'}') {
                    *pos += 1;
                    return Ok(Value::Obj(members));
                }
                loop {
                    skip_ws(b, pos);
                    let key = parse_string(b, pos)?;
                    skip_ws(b, pos);
                    expect(b, pos, b':')?;
                    let v = parse_value(b, pos)?;
                    members.push((key, v));
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b'}') => {
                            *pos += 1;
                            return Ok(Value::Obj(members));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
                    }
                }
            }
            Some(b'[') => {
                *pos += 1;
                let mut items = Vec::new();
                skip_ws(b, pos);
                if b.get(*pos) == Some(&b']') {
                    *pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    items.push(parse_value(b, pos)?);
                    skip_ws(b, pos);
                    match b.get(*pos) {
                        Some(b',') => *pos += 1,
                        Some(b']') => {
                            *pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
                    }
                }
            }
            Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
            Some(b't') if b[*pos..].starts_with(b"true") => {
                *pos += 4;
                Ok(Value::Bool(true))
            }
            Some(b'f') if b[*pos..].starts_with(b"false") => {
                *pos += 5;
                Ok(Value::Bool(false))
            }
            Some(b'n') if b[*pos..].starts_with(b"null") => {
                *pos += 4;
                Ok(Value::Null)
            }
            Some(_) => {
                let start = *pos;
                while *pos < b.len()
                    && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                {
                    *pos += 1;
                }
                let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
                s.parse::<f64>()
                    .map(Value::Num)
                    .map_err(|_| format!("bad number `{s}` at byte {start}"))
            }
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
        expect(b, pos, b'"')?;
        let mut out = String::new();
        let mut chunk_start = *pos;
        while *pos < b.len() {
            match b[*pos] {
                b'"' => {
                    out.push_str(
                        std::str::from_utf8(&b[chunk_start..*pos]).map_err(|e| e.to_string())?,
                    );
                    *pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    out.push_str(
                        std::str::from_utf8(&b[chunk_start..*pos]).map_err(|e| e.to_string())?,
                    );
                    *pos += 1;
                    let esc = *b.get(*pos).ok_or("unterminated escape")?;
                    *pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = b
                                .get(*pos..*pos + 4)
                                .ok_or("truncated \\u escape")
                                .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                            *pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("unknown escape `\\{}`", other as char));
                        }
                    }
                    chunk_start = *pos;
                }
                _ => *pos += 1,
            }
        }
        Err("unterminated string".into())
    }
}

/// Version tag written into every JSON report. Bump only on breaking
/// schema changes.
pub const REPORT_SCHEMA_VERSION: u64 = 1;

/// Builds the stable machine-readable report for a match outcome.
///
/// Top-level fields (`schema_version`, `instances`,
/// `matched_device_total`, `key`, `phase1`, `phase2`, `completeness`,
/// `truncation`, `metrics`) are part of the schema contract;
/// `completeness` is `"complete"` or `"truncated"`, `truncation` is
/// `null` unless the search stopped early, and `metrics` is `null`
/// unless the run collected metrics.
pub fn outcome_to_json(outcome: &MatchOutcome) -> json::Value {
    use json::Value;
    let key = match outcome.key {
        Some(subgemini_netlist::Vertex::Device(d)) => Value::Str(format!("device:{}", d.index())),
        Some(subgemini_netlist::Vertex::Net(n)) => Value::Str(format!("net:{}", n.index())),
        None => Value::Null,
    };
    let p2 = &outcome.phase2;
    let false_rate = if p2.candidates_tried == 0 {
        0.0
    } else {
        p2.false_candidates as f64 / p2.candidates_tried as f64
    };
    let metrics = match &outcome.metrics {
        None => Value::Null,
        Some(m) => Value::Obj(vec![
            ("total_ns".into(), Value::int(m.total_ns)),
            ("compile_ns".into(), Value::int(m.compile_ns)),
            ("phase1_refine_ns".into(), Value::int(m.phase1_refine_ns)),
            ("phase1_select_ns".into(), Value::int(m.phase1_select_ns)),
            ("phase2_verify_ns".into(), Value::int(m.phase2_verify_ns)),
            (
                "phase2_max_candidate_ns".into(),
                Value::int(m.phase2_max_candidate_ns),
            ),
            ("phase2_wall_ns".into(), Value::int(m.phase2_wall_ns)),
            (
                "threads_requested".into(),
                Value::int(m.threads_requested as u64),
            ),
            (
                "threads_resolved".into(),
                Value::int(m.threads_resolved as u64),
            ),
            ("threads_used".into(), Value::int(m.threads_used as u64)),
            (
                "worker_busy_ns".into(),
                Value::Arr(m.worker_busy_ns.iter().map(|&n| Value::int(n)).collect()),
            ),
            (
                "worker_utilization".into(),
                Value::Num(m.worker_utilization()),
            ),
            (
                "counters".into(),
                Value::Obj(
                    m.counters
                        .iter()
                        .map(|(n, v)| (n.to_string(), Value::int(v)))
                        .collect(),
                ),
            ),
            ("verify_ns_hist".into(), m.verify_ns_hist.to_json()),
            (
                "backtrack_depth_hist".into(),
                m.backtrack_depth_hist.to_json(),
            ),
            ("effort_spent".into(), Value::int(m.effort_spent)),
            ("effort_limit".into(), Value::int(m.effort_limit)),
        ]),
    };
    let completeness = match &outcome.completeness {
        crate::budget::Completeness::Complete => Value::Str("complete".into()),
        crate::budget::Completeness::Truncated { .. } => Value::Str("truncated".into()),
    };
    let truncation = match &outcome.completeness {
        crate::budget::Completeness::Complete => Value::Null,
        crate::budget::Completeness::Truncated {
            reason,
            candidates_tried,
            candidates_skipped,
        } => Value::Obj(vec![
            ("reason".into(), Value::Str(reason.as_str().into())),
            (
                "candidates_tried".into(),
                Value::int(*candidates_tried as u64),
            ),
            (
                "candidates_skipped".into(),
                Value::int(*candidates_skipped as u64),
            ),
        ]),
    };
    Value::Obj(vec![
        ("schema_version".into(), Value::int(REPORT_SCHEMA_VERSION)),
        ("instances".into(), Value::int(outcome.count() as u64)),
        (
            "matched_device_total".into(),
            Value::int(outcome.matched_device_total() as u64),
        ),
        ("key".into(), key),
        (
            "phase1".into(),
            Value::Obj(vec![
                (
                    "iterations".into(),
                    Value::int(outcome.phase1.iterations as u64),
                ),
                ("cv_size".into(), Value::int(outcome.phase1.cv_size as u64)),
                (
                    "key_partition_size".into(),
                    Value::int(outcome.phase1.key_partition_size as u64),
                ),
                (
                    "proven_empty".into(),
                    Value::Bool(outcome.phase1.proven_empty),
                ),
            ]),
        ),
        (
            "phase2".into(),
            Value::Obj(vec![
                (
                    "candidates_tried".into(),
                    Value::int(p2.candidates_tried as u64),
                ),
                (
                    "false_candidates".into(),
                    Value::int(p2.false_candidates as u64),
                ),
                ("passes".into(), Value::int(p2.passes as u64)),
                ("guesses".into(), Value::int(p2.guesses as u64)),
                ("backtracks".into(), Value::int(p2.backtracks as u64)),
                (
                    "overlap_dropped".into(),
                    Value::int(p2.overlap_dropped as u64),
                ),
                ("false_candidate_rate".into(), Value::Num(false_rate)),
            ]),
        ),
        ("completeness".into(), completeness),
        ("truncation".into(), truncation),
        ("metrics".into(), metrics),
        // Schema v1 additive: the session-layer request id (null for
        // direct core calls that never pass through an engine).
        (
            "request_id".into(),
            match outcome.request_id {
                Some(id) => Value::int(id),
                None => Value::Null,
            },
        ),
    ])
}

/// Renders the human-readable (`--report text`) form of the same data.
pub fn outcome_to_text(outcome: &MatchOutcome) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "{outcome}");
    if let crate::budget::Completeness::Truncated {
        reason,
        candidates_tried,
        candidates_skipped,
    } = &outcome.completeness
    {
        let _ = writeln!(
            out,
            "truncated ({}): {candidates_tried} candidate(s) tried, {candidates_skipped} skipped; \
             reported instances are a valid prefix of the complete answer",
            reason.as_str(),
        );
    }
    if let Some(m) = &outcome.metrics {
        let ms = |ns: u64| ns as f64 / 1e6;
        let _ = writeln!(
            out,
            "timings: total {:.3} ms = compile {:.3} ms + phase1 refine {:.3} ms + select {:.3} ms + phase2 {:.3} ms wall",
            ms(m.total_ns),
            ms(m.compile_ns),
            ms(m.phase1_refine_ns),
            ms(m.phase1_select_ns),
            ms(m.phase2_wall_ns),
        );
        let _ = writeln!(
            out,
            "phase2 verify: {:.3} ms busy across {} worker(s) (max candidate {:.3} ms, utilization {:.0}%)",
            ms(m.phase2_verify_ns),
            m.threads_used,
            ms(m.phase2_max_candidate_ns),
            m.worker_utilization() * 100.0,
        );
        if !m.verify_ns_hist.is_empty() {
            let h = &m.verify_ns_hist;
            let _ = writeln!(
                out,
                "verify latency: p50 <= {:.3} ms, p95 <= {:.3} ms, p99 <= {:.3} ms over {} candidate(s)",
                ms(h.p50()),
                ms(h.p95()),
                ms(h.p99()),
                h.count(),
            );
        }
        if !m.backtrack_depth_hist.is_empty() {
            let h = &m.backtrack_depth_hist;
            let _ = writeln!(
                out,
                "backtrack depth: p50 <= {}, p95 <= {}, p99 <= {} over {} rollback(s)",
                h.p50(),
                h.p95(),
                h.p99(),
                h.count(),
            );
        }
        for (name, v) in m.counters.iter() {
            let _ = writeln!(out, "counter {name} = {v}");
        }
        if outcome.count() == 0 {
            // A no-match run should say *why*, not just "0 instances":
            // surface the top reject reasons tallied during Phase II.
            let mut rejects: Vec<(&str, u64)> = m
                .counters
                .iter()
                .filter_map(|(n, v)| n.strip_prefix("reject.").map(|r| (r, v)))
                .filter(|&(_, v)| v > 0)
                .collect();
            rejects.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
            if !rejects.is_empty() {
                let _ = writeln!(out, "top reject reasons:");
                for (name, v) in rejects.iter().take(3) {
                    let _ = writeln!(out, "  {name} x{v}");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_register_in_bump_order() {
        let mut c = Counters::default();
        c.bump("b", 2);
        c.bump("a", 1);
        c.bump("b", 3);
        assert_eq!(c.get("b"), 5);
        assert_eq!(c.get("a"), 1);
        assert_eq!(c.get("missing"), 0);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["b", "a"]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        assert!(h.is_empty());
        assert_eq!(h.p50(), 0);
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1025);
        // Bucket occupancy: [0]:1, [1]:1, [2,3]:2, [4,7]:2, [8..15]:1, [512..1023]:1.
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.p50(), 3); // rank-4 sample closes the [2,3] bucket
        assert_eq!(h.p99(), 1023);
        let mut other = Histogram::default();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.count(), 9);
        assert_eq!(h.quantile(1.0), u64::MAX);
        let j = h.to_json();
        assert_eq!(j.get("count").unwrap().as_u64(), Some(9));
    }

    #[test]
    fn counters_lookup_matches_scan_semantics() {
        let mut c = Counters::default();
        for i in 0..100 {
            c.bump(&format!("k{i}"), i);
        }
        c.bump("k3", 10);
        assert_eq!(c.get("k3"), 13);
        let names: Vec<&str> = c.iter().map(|(n, _)| n).take(3).collect();
        assert_eq!(names, ["k0", "k1", "k2"]);
        let d = c.clone();
        assert_eq!(c, d);
    }

    #[test]
    fn compact_json_is_single_line_and_parses() {
        use json::Value;
        let v = Value::Obj(vec![
            ("a".into(), Value::int(3)),
            ("b".into(), Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("s".into(), Value::Str("x\ny".into())),
        ]);
        let line = v.compact();
        assert!(!line.contains('\n') || line.contains("\\n"));
        assert_eq!(line, "{\"a\":3,\"b\":[null,true],\"s\":\"x\\ny\"}");
        assert_eq!(json::parse(&line).unwrap(), v);
    }

    #[test]
    fn utilization_is_bounded() {
        let m = MetricsReport {
            phase2_wall_ns: 100,
            threads_used: 2,
            worker_busy_ns: vec![90, 70],
            ..MetricsReport::default()
        };
        let u = m.worker_utilization();
        assert!((0.0..=1.0).contains(&u));
        assert!((u - 0.8).abs() < 1e-9);
        assert_eq!(MetricsReport::default().worker_utilization(), 1.0);
    }

    #[test]
    fn progress_hook_equality_is_identity() {
        let a = ProgressHook::new(|_| {});
        let b = ProgressHook::new(|_| {});
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
        assert_eq!(format!("{a:?}"), "ProgressHook(..)");
    }

    #[test]
    fn json_roundtrips() {
        use json::Value;
        let v = Value::Obj(vec![
            ("a".into(), Value::int(3)),
            ("b".into(), Value::Arr(vec![Value::Null, Value::Bool(true)])),
            ("s".into(), Value::Str("he\"llo\n".into())),
            ("f".into(), Value::Num(0.5)),
            ("e".into(), Value::Obj(vec![])),
        ]);
        let text = v.pretty();
        let back = json::parse(&text).unwrap();
        assert_eq!(v, back);
        assert_eq!(back.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(back.get("s").unwrap().as_str(), Some("he\"llo\n"));
        assert_eq!(back.get("b").unwrap().as_arr().unwrap().len(), 2);
    }

    #[test]
    fn json_parse_rejects_garbage() {
        assert!(json::parse("{").is_err());
        assert!(json::parse("[1,]").is_err());
        assert!(json::parse("\"open").is_err());
        assert!(json::parse("123 junk").is_err());
        assert!(json::parse("nul").is_err());
    }

    #[test]
    fn outcome_json_has_stable_top_level_schema() {
        let mut o = MatchOutcome::default();
        let v = outcome_to_json(&o);
        for field in [
            "schema_version",
            "instances",
            "matched_device_total",
            "key",
            "phase1",
            "phase2",
            "completeness",
            "truncation",
            "metrics",
        ] {
            assert!(v.get(field).is_some(), "missing {field}");
        }
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(REPORT_SCHEMA_VERSION)
        );
        assert_eq!(
            v.get("completeness"),
            Some(&json::Value::Str("complete".into()))
        );
        assert_eq!(v.get("truncation"), Some(&json::Value::Null));
        assert_eq!(v.get("metrics"), Some(&json::Value::Null));
        // Round-trips through the parser.
        assert_eq!(json::parse(&v.pretty()).unwrap(), v);

        o.metrics = Some(MetricsReport {
            total_ns: 42,
            threads_used: 1,
            worker_busy_ns: vec![40],
            ..MetricsReport::default()
        });
        let v = outcome_to_json(&o);
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("total_ns").unwrap().as_u64(), Some(42));
        assert_eq!(m.get("effort_spent").unwrap().as_u64(), Some(0));
        assert_eq!(m.get("effort_limit").unwrap().as_u64(), Some(0));
        let text = outcome_to_text(&o);
        assert!(text.contains("timings:"));
    }

    #[test]
    fn truncated_outcome_reports_in_json_and_text() {
        let o = MatchOutcome {
            completeness: crate::budget::Completeness::Truncated {
                reason: crate::budget::TruncationReason::EffortExhausted,
                candidates_tried: 3,
                candidates_skipped: 7,
            },
            ..MatchOutcome::default()
        };
        let v = outcome_to_json(&o);
        assert_eq!(
            v.get("completeness"),
            Some(&json::Value::Str("truncated".into()))
        );
        let t = v.get("truncation").unwrap();
        assert_eq!(
            t.get("reason"),
            Some(&json::Value::Str("effort_exhausted".into()))
        );
        assert_eq!(t.get("candidates_tried").unwrap().as_u64(), Some(3));
        assert_eq!(t.get("candidates_skipped").unwrap().as_u64(), Some(7));
        let text = outcome_to_text(&o);
        assert!(text.contains("truncated (effort_exhausted)"));
        assert!(text.contains("3 candidate(s) tried, 7 skipped"));
    }
}
