//! The high-level matching API tying Phase I and Phase II together.

use std::collections::HashSet;

use subgemini_netlist::{CircuitGraph, DeviceId, Netlist};

use crate::instance::{MatchOutcome, SubMatch};
use crate::metrics::{MetricsReport, PhaseTimer, ProgressEvent};
use crate::options::{MatchOptions, OverlapPolicy};
use crate::phase1;
use crate::phase2::Phase2Runner;
use crate::trace::Phase2Trace;

/// A configured subcircuit search: find instances of `pattern` inside
/// `main`.
///
/// # Examples
///
/// ```
/// use subgemini::Matcher;
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// // Pattern: CMOS inverter. Main: two chained inverters.
/// let mut inv = Netlist::new("inv");
/// let mos = inv.add_mos_types();
/// let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
/// inv.mark_port(a);
/// inv.mark_port(y);
/// inv.mark_global(vdd);
/// inv.mark_global(gnd);
/// inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
///
/// let mut chip = Netlist::new("chip");
/// let (i, m, o) = (chip.net("in"), chip.net("mid"), chip.net("out"));
/// subgemini_netlist::instantiate(&mut chip, &inv, "u1", &[i, m])?;
/// subgemini_netlist::instantiate(&mut chip, &inv, "u2", &[m, o])?;
///
/// let outcome = Matcher::new(&inv, &chip).find_all();
/// assert_eq!(outcome.count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Matcher<'a> {
    pattern: &'a Netlist,
    main: &'a Netlist,
    options: MatchOptions,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher with default options.
    pub fn new(pattern: &'a Netlist, main: &'a Netlist) -> Self {
        Self {
            pattern,
            main,
            options: MatchOptions::default(),
        }
    }

    /// Replaces the options (builder style).
    pub fn options(mut self, options: MatchOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the full two-phase search and returns every verified
    /// instance plus statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pattern contains a net not connected to any device
    /// (such a net cannot be anchored by either phase).
    pub fn find_all(&self) -> MatchOutcome {
        find_all(self.pattern, self.main, &self.options)
    }

    /// Returns the first verified instance, if any.
    pub fn find_first(&self) -> Option<SubMatch> {
        let opts = MatchOptions {
            max_instances: 1,
            ..self.options.clone()
        };
        find_all(self.pattern, self.main, &opts)
            .instances
            .into_iter()
            .next()
    }
}

/// Free-function form of [`Matcher::find_all`].
///
/// # Panics
///
/// Panics if the pattern has no devices attached to one of its nets
/// (see [`Matcher::find_all`]).
pub fn find_all(pattern: &Netlist, main: &Netlist, options: &MatchOptions) -> MatchOutcome {
    for n in pattern.net_ids() {
        assert!(
            pattern.net_ref(n).degree() > 0,
            "pattern net `{}` is isolated; patterns must be fully connected to devices",
            pattern.net_ref(n).name()
        );
    }
    let total_timer = options.collect_metrics.then(PhaseTimer::start);
    let mut outcome = find_all_unprepared(pattern, main, options);
    if let Some(t) = total_timer {
        let m = outcome.metrics.get_or_insert_with(|| MetricsReport {
            threads_requested: options.threads,
            threads_used: 1,
            ..MetricsReport::default()
        });
        m.total_ns = t.elapsed_ns();
    }
    outcome
}

fn find_all_unprepared(pattern: &Netlist, main: &Netlist, options: &MatchOptions) -> MatchOutcome {
    if pattern.device_count() == 0 {
        return MatchOutcome::default();
    }
    // Ignoring special nets = matching against de-globaled copies. A
    // pattern's power rails become *external* nets (their images may
    // have any fanout), matching the baseline matcher's semantics.
    if !options.respect_globals {
        let strip = |nl: &Netlist, as_ports: bool| {
            let mut c = nl.clone();
            let globals: Vec<_> = c.global_nets().collect();
            for g in globals {
                if as_ports {
                    c.mark_port(g);
                }
                c.clear_global(g);
            }
            c
        };
        let (p, m) = (strip(pattern, true), strip(main, false));
        return find_all_prepared(&p, &m, options);
    }
    find_all_prepared(pattern, main, options)
}

fn find_all_prepared(pattern: &Netlist, main: &Netlist, options: &MatchOptions) -> MatchOutcome {
    let mut outcome = MatchOutcome::default();
    let collect = options.collect_metrics;
    let progress = options.on_progress.as_ref();
    let s = CircuitGraph::new(pattern);
    let g = CircuitGraph::new(main);

    // ---- Phase I ----
    if let Some(hook) = progress {
        hook.call(&ProgressEvent::Phase1Started {
            pattern_devices: pattern.device_count(),
            main_devices: main.device_count(),
        });
    }
    let (p1, p1_timing) = phase1::run_with_policy_timed(&s, &g, options.key_policy, collect);
    let mut metrics = collect.then(|| MetricsReport {
        phase1_refine_ns: p1_timing.refine_ns,
        phase1_select_ns: p1_timing.select_ns,
        threads_requested: options.threads,
        threads_used: 1,
        ..MetricsReport::default()
    });
    outcome.phase1 = p1.stats;
    outcome.key = p1.key;
    if let Some(hook) = progress {
        hook.call(&ProgressEvent::Phase1Finished {
            iterations: outcome.phase1.iterations,
            cv_size: outcome.phase1.cv_size,
        });
    }
    let Some(key) = p1.key else {
        outcome.metrics = metrics;
        return outcome;
    };

    // ---- Phase II ----
    let runner = Phase2Runner::new(&s, &g, pattern, main, options);
    let Some(base) = runner.base_state() else {
        // A pattern global has no counterpart in the main circuit.
        outcome.phase1.proven_empty = true;
        outcome.metrics = metrics;
        return outcome;
    };
    // Optional parallel pre-pass: candidates are independent, so their
    // verification can run on worker threads. The merge below consumes
    // the precomputed per-candidate results in candidate-vector order,
    // so instances are identical to a serial run (tracing forces the
    // serial path; effort counters may include candidates a serial run
    // would have skipped after a claim).
    let worker_count = match options.threads {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    };
    let phase2_timer = collect.then(PhaseTimer::start);
    let precomputed: Option<Vec<Option<crate::instance::SubMatch>>> = if !options.record_trace
        && worker_count > 1
        && p1.candidates.len() > 1
    {
        let n = p1.candidates.len();
        let mut results: Vec<Option<crate::instance::SubMatch>> = Vec::new();
        results.resize_with(n, || None);
        let chunk = n.div_ceil(worker_count.min(n));
        // Per-worker (stats, busy_ns, max_candidate_ns), pushed on
        // worker exit; busy times are zero unless collecting.
        let stats_parts =
            std::sync::Mutex::new(Vec::<(crate::instance::Phase2Stats, u64, u64)>::new());
        let mut workers_used = 0usize;
        std::thread::scope(|scope| {
            for (slot_chunk, cand_chunk) in
                results.chunks_mut(chunk).zip(p1.candidates.chunks(chunk))
            {
                workers_used += 1;
                let runner = &runner;
                let base = &base;
                let stats_parts = &stats_parts;
                scope.spawn(move || {
                    let mut stats = crate::instance::Phase2Stats::default();
                    let mut timing = collect.then_some((0u64, 0u64));
                    for (slot, &c) in slot_chunk.iter_mut().zip(cand_chunk) {
                        *slot = runner
                            .run_candidate_timed(base, key, c, &mut stats, false, timing.as_mut())
                            .map(|(m, _)| m);
                    }
                    let (busy, max) = timing.unwrap_or_default();
                    stats_parts
                        .lock()
                        .expect("no panics while holding the lock")
                        .push((stats, busy, max));
                });
            }
        });
        for (part, busy, max) in stats_parts.into_inner().expect("threads joined") {
            outcome.phase2.candidates_tried += part.candidates_tried;
            outcome.phase2.false_candidates += part.false_candidates;
            outcome.phase2.passes += part.passes;
            outcome.phase2.guesses += part.guesses;
            outcome.phase2.backtracks += part.backtracks;
            if let Some(m) = metrics.as_mut() {
                m.worker_busy_ns.push(busy);
                m.phase2_verify_ns += busy;
                m.phase2_max_candidate_ns = m.phase2_max_candidate_ns.max(max);
            }
        }
        if let Some(m) = metrics.as_mut() {
            m.threads_used = workers_used;
        }
        Some(results)
    } else {
        None
    };

    let mut claimed: HashSet<DeviceId> = HashSet::new();
    let mut seen_sets: HashSet<Vec<DeviceId>> = HashSet::new();
    let mut trace: Option<Phase2Trace> = None;
    let mut serial_timing = (collect && precomputed.is_none()).then_some((0u64, 0u64));
    let mut checked = 0u64;
    let mut matched = 0u64;
    let mut dedup_dropped = 0u64;
    let total = p1.candidates.len();
    for (i, &c) in p1.candidates.iter().enumerate() {
        if options.max_instances > 0 && outcome.instances.len() >= options.max_instances {
            break;
        }
        // Claimed key images cannot start a new instance.
        if options.overlap == OverlapPolicy::ClaimDevices {
            if let Some(d) = c.as_device() {
                if claimed.contains(&d) {
                    continue;
                }
            }
        }
        let want_trace = options.record_trace && trace.is_none();
        let verified = match &precomputed {
            Some(results) => results[i].clone().map(|m| (m, None)),
            None => runner.run_candidate_timed(
                &base,
                key,
                c,
                &mut outcome.phase2,
                want_trace,
                serial_timing.as_mut(),
            ),
        };
        checked += 1;
        if let Some(hook) = progress {
            hook.call(&ProgressEvent::CandidateChecked {
                index: i,
                total,
                matched: verified.is_some(),
            });
        }
        let Some((m, t)) = verified else {
            continue;
        };
        matched += 1;
        let set = m.device_set();
        if !seen_sets.insert(set.clone()) {
            dedup_dropped += 1;
            continue; // same instance reached through another candidate
        }
        if options.overlap == OverlapPolicy::ClaimDevices {
            if set.iter().any(|d| claimed.contains(d)) {
                outcome.phase2.overlap_dropped += 1;
                continue;
            }
            claimed.extend(set.iter().copied());
        }
        if want_trace {
            trace = t;
        }
        outcome.instances.push(m);
        if let Some(hook) = progress {
            hook.call(&ProgressEvent::InstanceFound {
                count: outcome.instances.len(),
            });
        }
    }
    outcome.instances.sort_by_key(|a| a.device_set());
    outcome.trace = trace;
    if let Some(m) = metrics.as_mut() {
        if let Some((busy, max)) = serial_timing {
            m.worker_busy_ns.push(busy);
            m.phase2_verify_ns += busy;
            m.phase2_max_candidate_ns = m.phase2_max_candidate_ns.max(max);
        }
        if let Some(t) = &phase2_timer {
            m.phase2_wall_ns = t.elapsed_ns();
        }
        m.counters.bump("candidates.checked", checked);
        m.counters.bump("candidates.matched", matched);
        m.counters
            .bump("instances.reported", outcome.instances.len() as u64);
        m.counters.bump("instances.dedup_dropped", dedup_dropped);
        m.counters.bump(
            "instances.claim_dropped",
            outcome.phase2.overlap_dropped as u64,
        );
    }
    outcome.metrics = metrics;
    outcome
}
