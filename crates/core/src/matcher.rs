//! The high-level matching API tying Phase I and Phase II together.

use std::collections::HashSet;

use subgemini_netlist::{CircuitGraph, DeviceId, Netlist};

use crate::instance::{MatchOutcome, SubMatch};
use crate::options::{MatchOptions, OverlapPolicy};
use crate::phase1;
use crate::phase2::Phase2Runner;
use crate::trace::Phase2Trace;

/// A configured subcircuit search: find instances of `pattern` inside
/// `main`.
///
/// # Examples
///
/// ```
/// use subgemini::Matcher;
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// // Pattern: CMOS inverter. Main: two chained inverters.
/// let mut inv = Netlist::new("inv");
/// let mos = inv.add_mos_types();
/// let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
/// inv.mark_port(a);
/// inv.mark_port(y);
/// inv.mark_global(vdd);
/// inv.mark_global(gnd);
/// inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
///
/// let mut chip = Netlist::new("chip");
/// let (i, m, o) = (chip.net("in"), chip.net("mid"), chip.net("out"));
/// subgemini_netlist::instantiate(&mut chip, &inv, "u1", &[i, m])?;
/// subgemini_netlist::instantiate(&mut chip, &inv, "u2", &[m, o])?;
///
/// let outcome = Matcher::new(&inv, &chip).find_all();
/// assert_eq!(outcome.count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Matcher<'a> {
    pattern: &'a Netlist,
    main: &'a Netlist,
    options: MatchOptions,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher with default options.
    pub fn new(pattern: &'a Netlist, main: &'a Netlist) -> Self {
        Self {
            pattern,
            main,
            options: MatchOptions::default(),
        }
    }

    /// Replaces the options (builder style).
    pub fn options(mut self, options: MatchOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the full two-phase search and returns every verified
    /// instance plus statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pattern contains a net not connected to any device
    /// (such a net cannot be anchored by either phase).
    pub fn find_all(&self) -> MatchOutcome {
        find_all(self.pattern, self.main, &self.options)
    }

    /// Returns the first verified instance, if any.
    pub fn find_first(&self) -> Option<SubMatch> {
        let opts = MatchOptions {
            max_instances: 1,
            ..self.options.clone()
        };
        find_all(self.pattern, self.main, &opts)
            .instances
            .into_iter()
            .next()
    }
}

/// Free-function form of [`Matcher::find_all`].
///
/// # Panics
///
/// Panics if the pattern has no devices attached to one of its nets
/// (see [`Matcher::find_all`]).
pub fn find_all(pattern: &Netlist, main: &Netlist, options: &MatchOptions) -> MatchOutcome {
    for n in pattern.net_ids() {
        assert!(
            pattern.net_ref(n).degree() > 0,
            "pattern net `{}` is isolated; patterns must be fully connected to devices",
            pattern.net_ref(n).name()
        );
    }
    if pattern.device_count() == 0 {
        return MatchOutcome::default();
    }
    // Ignoring special nets = matching against de-globaled copies. A
    // pattern's power rails become *external* nets (their images may
    // have any fanout), matching the baseline matcher's semantics.
    if !options.respect_globals {
        let strip = |nl: &Netlist, as_ports: bool| {
            let mut c = nl.clone();
            let globals: Vec<_> = c.global_nets().collect();
            for g in globals {
                if as_ports {
                    c.mark_port(g);
                }
                c.clear_global(g);
            }
            c
        };
        let (p, m) = (strip(pattern, true), strip(main, false));
        return find_all_prepared(&p, &m, options);
    }
    find_all_prepared(pattern, main, options)
}

fn find_all_prepared(pattern: &Netlist, main: &Netlist, options: &MatchOptions) -> MatchOutcome {
    let mut outcome = MatchOutcome::default();
    let s = CircuitGraph::new(pattern);
    let g = CircuitGraph::new(main);

    // ---- Phase I ----
    let p1 = phase1::run_with_policy(&s, &g, options.key_policy);
    outcome.phase1 = p1.stats;
    outcome.key = p1.key;
    let Some(key) = p1.key else {
        return outcome;
    };

    // ---- Phase II ----
    let runner = Phase2Runner::new(&s, &g, pattern, main, options);
    let Some(base) = runner.base_state() else {
        // A pattern global has no counterpart in the main circuit.
        outcome.phase1.proven_empty = true;
        return outcome;
    };
    // Optional parallel pre-pass: candidates are independent, so their
    // verification can run on worker threads. The merge below consumes
    // the precomputed per-candidate results in candidate-vector order,
    // so instances are identical to a serial run (tracing forces the
    // serial path; effort counters may include candidates a serial run
    // would have skipped after a claim).
    let worker_count = match options.threads {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    };
    let precomputed: Option<Vec<Option<crate::instance::SubMatch>>> =
        if !options.record_trace && worker_count > 1 && p1.candidates.len() > 1 {
            let n = p1.candidates.len();
            let mut results: Vec<Option<crate::instance::SubMatch>> = Vec::new();
            results.resize_with(n, || None);
            let chunk = n.div_ceil(worker_count.min(n));
            let stats_parts = std::sync::Mutex::new(Vec::<crate::instance::Phase2Stats>::new());
            std::thread::scope(|scope| {
                for (slot_chunk, cand_chunk) in
                    results.chunks_mut(chunk).zip(p1.candidates.chunks(chunk))
                {
                    let runner = &runner;
                    let base = &base;
                    let stats_parts = &stats_parts;
                    scope.spawn(move || {
                        let mut stats = crate::instance::Phase2Stats::default();
                        for (slot, &c) in slot_chunk.iter_mut().zip(cand_chunk) {
                            *slot = runner
                                .run_candidate(base, key, c, &mut stats, false)
                                .map(|(m, _)| m);
                        }
                        stats_parts
                            .lock()
                            .expect("no panics while holding the lock")
                            .push(stats);
                    });
                }
            });
            for part in stats_parts.into_inner().expect("threads joined") {
                outcome.phase2.candidates_tried += part.candidates_tried;
                outcome.phase2.false_candidates += part.false_candidates;
                outcome.phase2.passes += part.passes;
                outcome.phase2.guesses += part.guesses;
                outcome.phase2.backtracks += part.backtracks;
            }
            Some(results)
        } else {
            None
        };

    let mut claimed: HashSet<DeviceId> = HashSet::new();
    let mut seen_sets: HashSet<Vec<DeviceId>> = HashSet::new();
    let mut trace: Option<Phase2Trace> = None;
    for (i, &c) in p1.candidates.iter().enumerate() {
        if options.max_instances > 0 && outcome.instances.len() >= options.max_instances {
            break;
        }
        // Claimed key images cannot start a new instance.
        if options.overlap == OverlapPolicy::ClaimDevices {
            if let Some(d) = c.as_device() {
                if claimed.contains(&d) {
                    continue;
                }
            }
        }
        let want_trace = options.record_trace && trace.is_none();
        let (m, t) = match &precomputed {
            Some(results) => match results[i].clone() {
                Some(m) => (m, None),
                None => continue,
            },
            None => match runner.run_candidate(&base, key, c, &mut outcome.phase2, want_trace) {
                Some((m, t)) => (m, t),
                None => continue,
            },
        };
        let set = m.device_set();
        if !seen_sets.insert(set.clone()) {
            continue; // same instance reached through another candidate
        }
        if options.overlap == OverlapPolicy::ClaimDevices {
            if set.iter().any(|d| claimed.contains(d)) {
                outcome.phase2.overlap_dropped += 1;
                continue;
            }
            claimed.extend(set.iter().copied());
        }
        if want_trace {
            trace = t;
        }
        outcome.instances.push(m);
    }
    outcome.instances.sort_by_key(|a| a.device_set());
    outcome.trace = trace;
    outcome
}
