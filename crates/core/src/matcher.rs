//! The high-level matching API tying Phase I and Phase II together.
//!
//! The main circuit is compiled to a [`CompiledCircuit`] exactly once
//! per search — and exactly once *total* for a multi-pattern search
//! ([`find_all_many`]), where one Phase I label trace and one compiled
//! `G` are shared by every pattern.

use std::borrow::Cow;
use std::collections::HashSet;
use std::sync::Arc;

use subgemini_netlist::{CompiledCircuit, DeviceId, Netlist};

use crate::budget::{effort_of, Completeness, Governor, TruncationReason};
use crate::events::{EventBuffer, EventJournal, EventKind, RejectTally};
use crate::instance::{MatchOutcome, SubMatch};
use crate::metrics::{Histogram, MetricsReport, PhaseTimer, ProgressEvent};
use crate::options::{MatchOptions, OverlapPolicy};
use crate::phase1;
use crate::phase2::{CandidateTiming, Phase2Runner};
use crate::trace::Phase2Trace;

/// A configured subcircuit search: find instances of `pattern` inside
/// `main`.
///
/// # Examples
///
/// ```
/// use subgemini::Matcher;
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// // Pattern: CMOS inverter. Main: two chained inverters.
/// let mut inv = Netlist::new("inv");
/// let mos = inv.add_mos_types();
/// let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
/// inv.mark_port(a);
/// inv.mark_port(y);
/// inv.mark_global(vdd);
/// inv.mark_global(gnd);
/// inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
///
/// let mut chip = Netlist::new("chip");
/// let (i, m, o) = (chip.net("in"), chip.net("mid"), chip.net("out"));
/// subgemini_netlist::instantiate(&mut chip, &inv, "u1", &[i, m])?;
/// subgemini_netlist::instantiate(&mut chip, &inv, "u2", &[m, o])?;
///
/// let outcome = Matcher::new(&inv, &chip).find_all();
/// assert_eq!(outcome.count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Matcher<'a> {
    pattern: &'a Netlist,
    main: &'a Netlist,
    options: MatchOptions,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher with default options.
    pub fn new(pattern: &'a Netlist, main: &'a Netlist) -> Self {
        Self {
            pattern,
            main,
            options: MatchOptions::default(),
        }
    }

    /// Replaces the options (builder style).
    pub fn options(mut self, options: MatchOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the full two-phase search and returns every verified
    /// instance plus statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pattern contains a net not connected to any device
    /// (such a net cannot be anchored by either phase).
    pub fn find_all(&self) -> MatchOutcome {
        find_all(self.pattern, self.main, &self.options)
    }

    /// Returns the first verified instance, if any.
    pub fn find_first(&self) -> Option<SubMatch> {
        let opts = MatchOptions {
            max_instances: 1,
            ..self.options.clone()
        };
        find_all(self.pattern, self.main, &opts)
            .instances
            .into_iter()
            .next()
    }
}

/// The main circuit, prepared once: de-globaled if requested, compiled
/// to CSR, with the compilation cost recorded for metrics.
pub(crate) struct PreparedMain<'a> {
    pub(crate) netlist: Cow<'a, Netlist>,
    pub(crate) compiled: Arc<CompiledCircuit>,
    pub(crate) compile_ns: u64,
}

/// De-globals a netlist copy. A pattern's power rails become *external*
/// nets (their images may have any fanout), matching the baseline
/// matcher's semantics when `respect_globals` is off.
pub(crate) fn strip_globals(nl: &Netlist, as_ports: bool) -> Netlist {
    let mut c = nl.clone();
    let globals: Vec<_> = c.global_nets().collect();
    for g in globals {
        if as_ports {
            c.mark_port(g);
        }
        c.clear_global(g);
    }
    c
}

pub(crate) fn prepare_main<'a>(main: &'a Netlist, options: &MatchOptions) -> PreparedMain<'a> {
    let timer = options.collect_metrics.then(PhaseTimer::start);
    let netlist: Cow<'a, Netlist> = if options.respect_globals {
        Cow::Borrowed(main)
    } else {
        Cow::Owned(strip_globals(main, false))
    };
    let compiled = Arc::new(CompiledCircuit::compile(&netlist));
    let compile_ns = timer.map_or(0, |t| t.elapsed_ns());
    PreparedMain {
        netlist,
        compiled,
        compile_ns,
    }
}

pub(crate) fn assert_no_isolated_nets(pattern: &Netlist) {
    for n in pattern.net_ids() {
        assert!(
            pattern.net_ref(n).degree() > 0,
            "pattern net `{}` is isolated; patterns must be fully connected to devices",
            pattern.net_ref(n).name()
        );
    }
}

/// Free-function form of [`Matcher::find_all`].
///
/// # Panics
///
/// Panics if the pattern has no devices attached to one of its nets
/// (see [`Matcher::find_all`]).
pub fn find_all(pattern: &Netlist, main: &Netlist, options: &MatchOptions) -> MatchOutcome {
    assert_no_isolated_nets(pattern);
    let total_timer = options.collect_metrics.then(PhaseTimer::start);
    let mut outcome = if pattern.device_count() == 0 {
        MatchOutcome::default()
    } else {
        let prepared = prepare_main(main, options);
        let mut trace = phase1::GTrace::new(Arc::clone(&prepared.compiled));
        find_all_compiled(
            pattern,
            &prepared,
            &mut trace,
            options,
            prepared.compile_ns,
            false,
        )
    };
    if let Some(t) = total_timer {
        let m = outcome.metrics.get_or_insert_with(|| MetricsReport {
            threads_requested: options.threads,
            threads_used: 1,
            ..MetricsReport::default()
        });
        m.total_ns = t.elapsed_ns();
    }
    outcome
}

/// Searches for every pattern of a library inside one main circuit,
/// compiling (and Phase-I-relabeling) the main circuit **exactly
/// once**: the compiled CSR and the label trace are shared across
/// patterns, so per-pattern cost is proportional to the pattern, not
/// the chip. Outcomes are identical to calling [`find_all`] per
/// pattern.
///
/// # Panics
///
/// Panics if any pattern has an isolated net (see
/// [`Matcher::find_all`]).
pub fn find_all_many(
    patterns: &[&Netlist],
    main: &Netlist,
    options: &MatchOptions,
) -> Vec<MatchOutcome> {
    for p in patterns {
        assert_no_isolated_nets(p);
    }
    let prepared = prepare_main(main, options);
    let mut trace = phase1::GTrace::new(Arc::clone(&prepared.compiled));
    patterns
        .iter()
        .enumerate()
        .map(|(i, pattern)| {
            let total_timer = options.collect_metrics.then(PhaseTimer::start);
            let mut outcome = if pattern.device_count() == 0 {
                MatchOutcome::default()
            } else {
                // Only the first pattern pays (and reports) the main
                // compile; later ones count a cache hit.
                let main_ns = if i == 0 { prepared.compile_ns } else { 0 };
                find_all_compiled(pattern, &prepared, &mut trace, options, main_ns, i > 0)
            };
            if let Some(t) = total_timer {
                let m = outcome.metrics.get_or_insert_with(|| MetricsReport {
                    threads_requested: options.threads,
                    threads_used: 1,
                    ..MetricsReport::default()
                });
                m.total_ns = t.elapsed_ns();
            }
            outcome
        })
        .collect()
}

/// Budget bookkeeping on a metrics report. Called only when a governor
/// exists, so ungoverned runs report byte-identical metrics.
fn record_budget_metrics(m: &mut MetricsReport, g: &Governor, completeness: &Completeness) {
    m.effort_spent = g.spent();
    m.effort_limit = g.limit().unwrap_or(0);
    m.counters.bump("budget.effort_spent", g.spent());
    if let Completeness::Truncated {
        candidates_skipped, ..
    } = completeness
    {
        m.counters.bump("budget.truncations", 1);
        m.counters
            .bump("budget.candidates_skipped", *candidates_skipped as u64);
    }
}

/// The two-phase search against an already-prepared main circuit and a
/// shared Phase I label trace. `main_compile_ns` is the compilation
/// cost to attribute to this outcome's metrics; `main_cached` marks a
/// reused compilation (counted, not re-measured).
pub(crate) fn find_all_compiled(
    pattern: &Netlist,
    prepared: &PreparedMain<'_>,
    trace: &mut phase1::GTrace,
    options: &MatchOptions,
    main_compile_ns: u64,
    main_cached: bool,
) -> MatchOutcome {
    let mut outcome = MatchOutcome::default();
    // The search governor exists only when a budget or cancel token is
    // configured; `None` keeps every path below byte-identical to an
    // ungoverned build.
    let mut governor = Governor::from_options(options);
    let collect = options.collect_metrics;
    let progress = options.on_progress.as_ref();
    let main_nl: &Netlist = &prepared.netlist;

    // The pattern is compiled once per search (it is tiny next to G).
    let compile_timer = collect.then(PhaseTimer::start);
    let pattern_nl: Cow<'_, Netlist> = if options.respect_globals {
        Cow::Borrowed(pattern)
    } else {
        Cow::Owned(strip_globals(pattern, true))
    };
    let s = CompiledCircuit::compile(&pattern_nl);
    let pattern_compile_ns = compile_timer.map_or(0, |t| t.elapsed_ns());

    // ---- Phase I ----
    if let Some(hook) = progress {
        hook.call(&ProgressEvent::Phase1Started {
            pattern_devices: pattern_nl.device_count(),
            main_devices: main_nl.device_count(),
        });
    }
    // One serial buffer for Phase I / pre-match events; worker buffers
    // are created inside their search states and merged at the end.
    let mut p1_events = options
        .trace_events
        .then(|| EventBuffer::new(options.trace_events_cap));
    let (p1, p1_timing) = phase1::run_governed(
        &s,
        trace,
        options.key_policy,
        collect,
        p1_events.as_mut(),
        governor.as_ref(),
    );
    // Phase I effort: one unit per refinement iteration, charged on the
    // serial ledger (and inherited by the workers' shared view below).
    if let Some(g) = governor.as_mut() {
        g.charge(p1.stats.iterations as u64);
    }
    let mut metrics = collect.then(|| MetricsReport {
        compile_ns: main_compile_ns + pattern_compile_ns,
        phase1_refine_ns: p1_timing.refine_ns,
        phase1_select_ns: p1_timing.select_ns,
        threads_requested: options.threads,
        threads_used: 1,
        ..MetricsReport::default()
    });
    if main_cached {
        if let Some(m) = metrics.as_mut() {
            m.counters.bump("compile.main_cache_hits", 1);
        }
    }
    outcome.phase1 = p1.stats;
    outcome.key = p1.key;
    if let Some(hook) = progress {
        hook.call(&ProgressEvent::Phase1Finished {
            iterations: outcome.phase1.iterations,
            cv_size: outcome.phase1.cv_size,
        });
    }
    let Some(key) = p1.key else {
        if let Some(reason) = p1.interrupted {
            // Refinement itself was cut short: no candidate was ever
            // considered, so tried and skipped are both zero.
            outcome.completeness = Completeness::Truncated {
                reason,
                candidates_tried: 0,
                candidates_skipped: 0,
            };
            if let Some(b) = p1_events.as_mut() {
                b.push(EventKind::Truncated {
                    reason,
                    candidates_tried: 0,
                    candidates_skipped: 0,
                });
            }
        }
        if let (Some(m), Some(g)) = (metrics.as_mut(), governor.as_ref()) {
            record_budget_metrics(m, g, &outcome.completeness);
        }
        if let Some(b) = p1_events {
            outcome.events = Some(EventJournal::merge(vec![b]));
        }
        outcome.metrics = metrics;
        return outcome;
    };

    // ---- Phase II ----
    let runner = Phase2Runner::new(&s, &prepared.compiled, &pattern_nl, main_nl, options);
    let Some(base) = runner.base_state() else {
        // A pattern global has no counterpart in the main circuit.
        outcome.phase1.proven_empty = true;
        if let (Some(m), Some(g)) = (metrics.as_mut(), governor.as_ref()) {
            record_budget_metrics(m, g, &outcome.completeness);
        }
        if let Some(mut b) = p1_events {
            b.push(EventKind::PrematchFail);
            outcome.events = Some(EventJournal::merge(vec![b]));
        }
        outcome.metrics = metrics;
        return outcome;
    };
    // Optional parallel pre-pass: candidates are independent, so their
    // verification can run on worker threads — each worker materializes
    // one reusable search state and drains its candidate chunk through
    // it. The merge below consumes the precomputed per-candidate
    // results in candidate-vector order, so instances are identical to
    // a serial run (tracing forces the serial path; effort counters may
    // include candidates a serial run would have skipped after a claim).
    let worker_count = match options.threads {
        0 => std::thread::available_parallelism().map_or(1, usize::from),
        n => n,
    };
    let phase2_timer = collect.then(PhaseTimer::start);
    // Worker-side observability payloads harvested after the pre-pass.
    struct WorkerPart {
        stats: crate::instance::Phase2Stats,
        timing: Option<CandidateTiming>,
        events: Option<EventBuffer>,
        backtrack_hist: Option<Histogram>,
        reject_tally: Option<RejectTally>,
    }
    let mut event_buffers: Vec<EventBuffer> = Vec::new();
    let mut reject_tally = RejectTally::default();
    // One precomputed candidate. `done` distinguishes "verified, no
    // match" from "never ran" (worker stopped on the shared governor's
    // broadcast, or was killed by a failpoint): the merge recomputes
    // undone slots serially, so results never depend on where workers
    // happened to stop. `effort` is the candidate's deterministic cost,
    // recorded so the merge can charge the authoritative ledger in
    // candidate-vector order.
    struct Slot {
        result: Option<crate::instance::SubMatch>,
        effort: u64,
        done: bool,
    }
    let precomputed: Option<Vec<Slot>> =
        if !options.record_trace && worker_count > 1 && p1.candidates.len() > 1 {
            let n = p1.candidates.len();
            let mut results: Vec<Slot> = Vec::new();
            results.resize_with(n, || Slot {
                result: None,
                effort: 0,
                done: false,
            });
            let chunk = n.div_ceil(worker_count.min(n));
            let stats_parts = std::sync::Mutex::new(Vec::<WorkerPart>::new());
            let mut workers_used = 0usize;
            // Broadcast view of the governor: workers poll it before
            // each candidate and feed finished candidates' effort back,
            // so exhaustion stops every worker within one candidate.
            let shared = governor.as_ref().map(Governor::shared);
            std::thread::scope(|scope| {
                for (ci, (slot_chunk, cand_chunk)) in results
                    .chunks_mut(chunk)
                    .zip(p1.candidates.chunks(chunk))
                    .enumerate()
                {
                    workers_used += 1;
                    let runner = &runner;
                    let base = &base;
                    let stats_parts = &stats_parts;
                    let shared = shared.as_ref();
                    // Global candidate rank of this chunk's first slot:
                    // journal scopes depend on the candidate's position
                    // in the CV, never on the worker that ran it.
                    let rank0 = ci * chunk;
                    scope.spawn(move || {
                        use crate::budget::failpoint;
                        if let Some(failpoint::Action::KillWorker) = failpoint::get("phase2.worker")
                        {
                            return; // simulated worker death
                        }
                        failpoint::stall("phase2.worker");
                        let mut search = runner.make_state(base);
                        let mut stats = crate::instance::Phase2Stats::default();
                        let mut timing = collect.then(CandidateTiming::default);
                        for (j, (slot, &c)) in slot_chunk.iter_mut().zip(cand_chunk).enumerate() {
                            if shared.is_some_and(|s| s.should_stop()) {
                                break;
                            }
                            let before = effort_of(&stats);
                            slot.result = runner
                                .run_candidate_timed(
                                    &mut search,
                                    key,
                                    c,
                                    (rank0 + j) as u32,
                                    &mut stats,
                                    false,
                                    timing.as_mut(),
                                )
                                .map(|(m, _)| m);
                            slot.effort = 1 + (effort_of(&stats) - before);
                            slot.done = true;
                            if let Some(s) = shared {
                                s.charge(slot.effort);
                            }
                        }
                        stats_parts
                            .lock()
                            .expect("no panics while holding the lock")
                            .push(WorkerPart {
                                stats,
                                timing,
                                events: search.take_events(),
                                backtrack_hist: search.take_backtrack_hist(),
                                reject_tally: search.take_reject_tally(),
                            });
                    });
                }
            });
            for part in stats_parts.into_inner().expect("threads joined") {
                outcome.phase2.candidates_tried += part.stats.candidates_tried;
                outcome.phase2.false_candidates += part.stats.false_candidates;
                outcome.phase2.passes += part.stats.passes;
                outcome.phase2.guesses += part.stats.guesses;
                outcome.phase2.backtracks += part.stats.backtracks;
                if let Some(t) = part.reject_tally {
                    reject_tally.merge(&t);
                }
                if let Some(b) = part.events {
                    event_buffers.push(b);
                }
                if let Some(m) = metrics.as_mut() {
                    if let Some(t) = part.timing {
                        m.worker_busy_ns.push(t.sum_ns);
                        m.phase2_verify_ns += t.sum_ns;
                        m.phase2_max_candidate_ns = m.phase2_max_candidate_ns.max(t.max_ns);
                        m.verify_ns_hist.merge(&t.hist);
                    }
                    if let Some(h) = part.backtrack_hist {
                        m.backtrack_depth_hist.merge(&h);
                    }
                }
            }
            if let Some(m) = metrics.as_mut() {
                m.threads_used = workers_used;
            }
            Some(results)
        } else {
            None
        };

    let mut serial_search = precomputed.is_none().then(|| runner.make_state(&base));
    let mut claimed: HashSet<DeviceId> = HashSet::new();
    let mut seen_sets: HashSet<Vec<DeviceId>> = HashSet::new();
    let mut p2_trace: Option<Phase2Trace> = None;
    let mut serial_timing = (collect && precomputed.is_none()).then(CandidateTiming::default);
    let mut checked = 0u64;
    let mut matched = 0u64;
    let mut dedup_dropped = 0u64;
    // Where (and why) the governor stopped the merge. The decision is
    // taken *only* here, in candidate-vector order, from effort charged
    // at candidate granularity — so the truncation point is identical
    // for every thread count.
    let mut truncation: Option<TruncationReason> = None;
    let mut stop_index = 0usize;
    let total = p1.candidates.len();
    for (i, &c) in p1.candidates.iter().enumerate() {
        if options.max_instances > 0 && outcome.instances.len() >= options.max_instances {
            break; // a requested limit, not a truncation
        }
        if let Some(reason) = governor.as_ref().and_then(Governor::should_stop) {
            truncation = Some(reason);
            stop_index = i;
            break;
        }
        // Claimed key images cannot start a new instance.
        if options.overlap == OverlapPolicy::ClaimDevices {
            if let Some(d) = c.as_device() {
                if claimed.contains(&d) {
                    continue;
                }
            }
        }
        let want_trace = options.record_trace && p2_trace.is_none();
        let verified = match &precomputed {
            Some(slots) if slots[i].done => {
                if let Some(g) = governor.as_mut() {
                    g.charge(slots[i].effort);
                }
                slots[i].result.clone().map(|m| (m, None))
            }
            maybe_slots => {
                // Serial path — or a slot its worker never reached
                // (stopped on the broadcast, or killed by a failpoint):
                // verify it here. `run_candidate` rolls back to the
                // base state, so recomputation is deterministic.
                let search = match maybe_slots {
                    None => serial_search.as_mut().expect("serial path has a state"),
                    Some(_) => serial_search.get_or_insert_with(|| runner.make_state(&base)),
                };
                let before = effort_of(&outcome.phase2);
                let verified = runner.run_candidate_timed(
                    search,
                    key,
                    c,
                    i as u32,
                    &mut outcome.phase2,
                    want_trace,
                    serial_timing.as_mut(),
                );
                if let Some(g) = governor.as_mut() {
                    g.charge(1 + (effort_of(&outcome.phase2) - before));
                }
                verified
            }
        };
        checked += 1;
        if let Some(hook) = progress {
            hook.call(&ProgressEvent::CandidateChecked {
                index: i,
                total,
                matched: verified.is_some(),
            });
        }
        let Some((m, t)) = verified else {
            continue;
        };
        matched += 1;
        let set = m.device_set();
        if seen_sets.contains(&set) {
            dedup_dropped += 1;
            continue; // same instance reached through another candidate
        }
        let overlaps = options.overlap == OverlapPolicy::ClaimDevices
            && set.iter().any(|d| claimed.contains(d));
        if options.overlap == OverlapPolicy::ClaimDevices && !overlaps {
            claimed.extend(set.iter().copied());
        }
        seen_sets.insert(set); // move, not clone — the set is consumed here
        if overlaps {
            outcome.phase2.overlap_dropped += 1;
            continue;
        }
        if want_trace {
            p2_trace = t;
        }
        outcome.instances.push(m);
        if let Some(hook) = progress {
            hook.call(&ProgressEvent::InstanceFound {
                count: outcome.instances.len(),
            });
        }
    }
    if let Some(reason) = truncation {
        let candidates_skipped = total - stop_index;
        outcome.completeness = Completeness::Truncated {
            reason,
            candidates_tried: checked as usize,
            candidates_skipped,
        };
        if let Some(b) = p1_events.as_mut() {
            b.push(EventKind::Truncated {
                reason,
                candidates_tried: checked as u32,
                candidates_skipped: candidates_skipped as u32,
            });
        }
    }
    outcome.instances.sort_by_key(|a| a.device_set());
    outcome.trace = p2_trace;
    if let Some(search) = serial_search.as_mut() {
        if let Some(t) = search.take_reject_tally() {
            reject_tally.merge(&t);
        }
        if let Some(b) = search.take_events() {
            event_buffers.push(b);
        }
        if let Some(h) = search.take_backtrack_hist() {
            if let Some(m) = metrics.as_mut() {
                m.backtrack_depth_hist.merge(&h);
            }
        }
    }
    if let Some(m) = metrics.as_mut() {
        if let Some(t) = serial_timing {
            m.worker_busy_ns.push(t.sum_ns);
            m.phase2_verify_ns += t.sum_ns;
            m.phase2_max_candidate_ns = m.phase2_max_candidate_ns.max(t.max_ns);
            m.verify_ns_hist.merge(&t.hist);
        }
        if let Some(t) = &phase2_timer {
            m.phase2_wall_ns = t.elapsed_ns();
        }
        m.counters.bump("candidates.checked", checked);
        m.counters.bump("candidates.matched", matched);
        m.counters
            .bump("instances.reported", outcome.instances.len() as u64);
        m.counters.bump("instances.dedup_dropped", dedup_dropped);
        m.counters.bump(
            "instances.claim_dropped",
            outcome.phase2.overlap_dropped as u64,
        );
        // Reject reasons land as counters in first-bump order;
        // `nonzero()` yields them in the closed `ALL` order.
        for (r, v) in reject_tally.nonzero() {
            m.counters.bump(r.counter_name(), v);
        }
        if let Some(g) = governor.as_ref() {
            record_budget_metrics(m, g, &outcome.completeness);
        }
    }
    if options.trace_events {
        let mut buffers = Vec::with_capacity(event_buffers.len() + 1);
        if let Some(b) = p1_events {
            buffers.push(b);
        }
        buffers.append(&mut event_buffers);
        outcome.events = Some(EventJournal::merge(buffers));
    }
    outcome.metrics = metrics;
    outcome
}
