//! The high-level matching API tying Phase I and Phase II together.
//!
//! The main circuit is compiled to a [`CompiledCircuit`] exactly once
//! per search — and exactly once *total* for a multi-pattern search
//! ([`find_all_many`]), where one Phase I label trace and one compiled
//! `G` are shared by every pattern.

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use subgemini_netlist::{CompiledCircuit, DeviceId, FingerprintIndex, Netlist};

use crate::budget::{effort_of, Completeness, Governor, SharedGovernor, TruncationReason};
use crate::events::{EventBuffer, EventJournal, EventKind, RejectTally};
use crate::instance::{MatchOutcome, SubMatch};
use crate::metrics::{Histogram, MetricsReport, PhaseTimer, ProgressEvent};
use crate::options::{MatchOptions, OverlapPolicy, Phase2Scheduler, PrunePolicy};
use crate::phase1;
use crate::phase2::{CandidateTiming, Phase2Runner};
use crate::scheduler::{Claim, ClaimBoard, StealQueue, WorkerStats};
use crate::shard::ShardPlan;
use crate::trace::Phase2Trace;

/// A configured subcircuit search: find instances of `pattern` inside
/// `main`.
///
/// # Examples
///
/// ```
/// use subgemini::Matcher;
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// // Pattern: CMOS inverter. Main: two chained inverters.
/// let mut inv = Netlist::new("inv");
/// let mos = inv.add_mos_types();
/// let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
/// inv.mark_port(a);
/// inv.mark_port(y);
/// inv.mark_global(vdd);
/// inv.mark_global(gnd);
/// inv.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// inv.add_device("mn", mos.nmos, &[a, gnd, y])?;
///
/// let mut chip = Netlist::new("chip");
/// let (i, m, o) = (chip.net("in"), chip.net("mid"), chip.net("out"));
/// subgemini_netlist::instantiate(&mut chip, &inv, "u1", &[i, m])?;
/// subgemini_netlist::instantiate(&mut chip, &inv, "u2", &[m, o])?;
///
/// let outcome = Matcher::new(&inv, &chip).find_all();
/// assert_eq!(outcome.count(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Matcher<'a> {
    pattern: &'a Netlist,
    main: &'a Netlist,
    options: MatchOptions,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher with default options.
    pub fn new(pattern: &'a Netlist, main: &'a Netlist) -> Self {
        Self {
            pattern,
            main,
            options: MatchOptions::default(),
        }
    }

    /// Replaces the options (builder style).
    pub fn options(mut self, options: MatchOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs the full two-phase search and returns every verified
    /// instance plus statistics.
    ///
    /// # Panics
    ///
    /// Panics if the pattern contains a net not connected to any device
    /// (such a net cannot be anchored by either phase).
    pub fn find_all(&self) -> MatchOutcome {
        find_all(self.pattern, self.main, &self.options)
    }

    /// Returns the first verified instance, if any.
    pub fn find_first(&self) -> Option<SubMatch> {
        let opts = MatchOptions {
            max_instances: 1,
            ..self.options.clone()
        };
        find_all(self.pattern, self.main, &opts)
            .instances
            .into_iter()
            .next()
    }
}

/// The main circuit, prepared once: de-globaled if requested, compiled
/// to CSR (or adopted from a warm-start artifact), with the
/// compilation cost and fingerprint index recorded for metrics and
/// pruning.
pub(crate) struct PreparedMain<'a> {
    pub(crate) netlist: Cow<'a, Netlist>,
    pub(crate) compiled: Arc<CompiledCircuit>,
    pub(crate) compile_ns: u64,
    /// Fingerprint index for candidate pruning: the warm handle's, or
    /// freshly built under [`PrunePolicy::Always`].
    pub(crate) index: Option<Arc<FingerprintIndex>>,
    /// Whether compilation was skipped via a warm-start hit.
    pub(crate) warm: bool,
    /// Artifact load cost to report on a warm hit.
    pub(crate) load_ns: u64,
    /// Index build cost when built fresh (0 when warm or absent).
    pub(crate) index_build_ns: u64,
}

/// De-globals a netlist copy. A pattern's power rails become *external*
/// nets (their images may have any fanout), matching the baseline
/// matcher's semantics when `respect_globals` is off.
pub(crate) fn strip_globals(nl: &Netlist, as_ports: bool) -> Netlist {
    let mut c = nl.clone();
    let globals: Vec<_> = c.global_nets().collect();
    for g in globals {
        if as_ports {
            c.mark_port(g);
        }
        c.clear_global(g);
    }
    c
}

pub(crate) fn prepare_main<'a>(main: &'a Netlist, options: &MatchOptions) -> PreparedMain<'a> {
    // Warm start: adopt the handle's snapshot and index when globals
    // are respected (stripping rewrites the circuit) and the source
    // digest ties the artifact to this exact netlist. The digest check
    // is O(pins) — the cost compilation is being saved from.
    if options.respect_globals {
        if let Some(w) = options.warm_main.as_ref() {
            if w.source_digest() == subgemini_netlist::structural_digest(main) {
                return PreparedMain {
                    netlist: Cow::Borrowed(main),
                    compiled: Arc::clone(w.compiled()),
                    compile_ns: 0,
                    index: Some(Arc::clone(w.index())),
                    warm: true,
                    load_ns: w.load_ns(),
                    index_build_ns: 0,
                };
            }
        }
    }
    let timer = options.collect_metrics.then(PhaseTimer::start);
    let netlist: Cow<'a, Netlist> = if options.respect_globals {
        Cow::Borrowed(main)
    } else {
        Cow::Owned(strip_globals(main, false))
    };
    let compiled = Arc::new(CompiledCircuit::compile(&netlist));
    let compile_ns = timer.map_or(0, |t| t.elapsed_ns());
    // `Always` wants pruning even on a cold start: build the index
    // here, once per prepared main, so a pattern library shares it.
    let (index, index_build_ns) = if options.prune == PrunePolicy::Always {
        let t = options.collect_metrics.then(PhaseTimer::start);
        let idx = Arc::new(FingerprintIndex::build(&compiled));
        (Some(idx), t.map_or(0, |t| t.elapsed_ns()))
    } else {
        (None, 0)
    };
    PreparedMain {
        netlist,
        compiled,
        compile_ns,
        index,
        warm: false,
        load_ns: 0,
        index_build_ns,
    }
}

pub(crate) fn assert_no_isolated_nets(pattern: &Netlist) {
    for n in pattern.net_ids() {
        assert!(
            pattern.net_ref(n).degree() > 0,
            "pattern net `{}` is isolated; patterns must be fully connected to devices",
            pattern.net_ref(n).name()
        );
    }
}

/// Free-function form of [`Matcher::find_all`].
///
/// # Panics
///
/// Panics if the pattern has no devices attached to one of its nets
/// (see [`Matcher::find_all`]).
pub fn find_all(pattern: &Netlist, main: &Netlist, options: &MatchOptions) -> MatchOutcome {
    assert_no_isolated_nets(pattern);
    let total_timer = options.collect_metrics.then(PhaseTimer::start);
    let mut outcome = if pattern.device_count() == 0 {
        MatchOutcome::default()
    } else {
        let prepared = prepare_main(main, options);
        let mut trace = phase1::GTrace::new(Arc::clone(&prepared.compiled));
        // Shard-tier graphs get chunk-parallel Jacobi relabeling: each
        // output element is a pure function of the previous snapshot,
        // so chunking is bit-identical to the serial pass. Gated on
        // sharding so unsharded runs keep the untouched serial path.
        if options
            .shards
            .resolve(prepared.compiled.device_count())
            .is_some()
        {
            trace.set_relabel_workers(options.resolved_threads());
        }
        find_all_compiled(
            pattern,
            &prepared,
            &mut trace,
            options,
            prepared.compile_ns,
            false,
        )
    };
    if let Some(t) = total_timer {
        // Only the zero-device-pattern early return reaches the
        // insert; it reports the same thread fields (requested,
        // resolved, used) as a full run so consumers never see a
        // partially-filled report shape.
        let m = outcome.metrics.get_or_insert_with(|| MetricsReport {
            threads_requested: options.threads,
            threads_resolved: options.resolved_threads(),
            threads_used: 1,
            ..MetricsReport::default()
        });
        m.total_ns = t.elapsed_ns();
    }
    outcome.request_id = options.request_id;
    outcome
}

/// Searches for every pattern of a library inside one main circuit,
/// compiling (and Phase-I-relabeling) the main circuit **exactly
/// once**: the compiled CSR and the label trace are shared across
/// patterns, so per-pattern cost is proportional to the pattern, not
/// the chip. Outcomes are identical to calling [`find_all`] per
/// pattern.
///
/// # Panics
///
/// Panics if any pattern has an isolated net (see
/// [`Matcher::find_all`]).
pub fn find_all_many(
    patterns: &[&Netlist],
    main: &Netlist,
    options: &MatchOptions,
) -> Vec<MatchOutcome> {
    for p in patterns {
        assert_no_isolated_nets(p);
    }
    let prepared = prepare_main(main, options);
    let mut trace = phase1::GTrace::new(Arc::clone(&prepared.compiled));
    if options
        .shards
        .resolve(prepared.compiled.device_count())
        .is_some()
    {
        trace.set_relabel_workers(options.resolved_threads());
    }
    patterns
        .iter()
        .enumerate()
        .map(|(i, pattern)| {
            let total_timer = options.collect_metrics.then(PhaseTimer::start);
            let mut outcome = if pattern.device_count() == 0 {
                MatchOutcome::default()
            } else {
                // Only the first pattern pays (and reports) the main
                // compile; later ones count a cache hit.
                let main_ns = if i == 0 { prepared.compile_ns } else { 0 };
                find_all_compiled(pattern, &prepared, &mut trace, options, main_ns, i > 0)
            };
            if let Some(t) = total_timer {
                let m = outcome.metrics.get_or_insert_with(|| MetricsReport {
                    threads_requested: options.threads,
                    threads_resolved: options.resolved_threads(),
                    threads_used: 1,
                    ..MetricsReport::default()
                });
                m.total_ns = t.elapsed_ns();
            }
            outcome.request_id = options.request_id;
            outcome
        })
        .collect()
}

/// Budget bookkeeping on a metrics report. Called only when a governor
/// exists, so ungoverned runs report byte-identical metrics.
fn record_budget_metrics(m: &mut MetricsReport, g: &Governor, completeness: &Completeness) {
    m.effort_spent = g.spent();
    m.effort_limit = g.limit().unwrap_or(0);
    m.counters.bump("budget.effort_spent", g.spent());
    if let Completeness::Truncated {
        candidates_skipped, ..
    } = completeness
    {
        m.counters.bump("budget.truncations", 1);
        m.counters
            .bump("budget.candidates_skipped", *candidates_skipped as u64);
    }
}

/// The two-phase search against an already-prepared main circuit and a
/// shared Phase I label trace. `main_compile_ns` is the compilation
/// cost to attribute to this outcome's metrics; `main_cached` marks a
/// reused compilation (counted, not re-measured).
pub(crate) fn find_all_compiled(
    pattern: &Netlist,
    prepared: &PreparedMain<'_>,
    trace: &mut phase1::GTrace,
    options: &MatchOptions,
    main_compile_ns: u64,
    main_cached: bool,
) -> MatchOutcome {
    let mut outcome = MatchOutcome::default();
    // The search governor exists only when a budget or cancel token is
    // configured; `None` keeps every path below byte-identical to an
    // ungoverned build.
    let mut governor = Governor::from_options(options);
    let collect = options.collect_metrics;
    let progress = options.on_progress.as_ref();
    let main_nl: &Netlist = &prepared.netlist;

    // The pattern is compiled once per search (it is tiny next to G).
    let compile_timer = collect.then(PhaseTimer::start);
    let pattern_nl: Cow<'_, Netlist> = if options.respect_globals {
        Cow::Borrowed(pattern)
    } else {
        Cow::Owned(strip_globals(pattern, true))
    };
    let s = CompiledCircuit::compile(&pattern_nl);
    let pattern_compile_ns = compile_timer.map_or(0, |t| t.elapsed_ns());

    // ---- Phase I ----
    if let Some(hook) = progress {
        hook.call(&ProgressEvent::Phase1Started {
            pattern_devices: pattern_nl.device_count(),
            main_devices: main_nl.device_count(),
        });
    }
    // One serial buffer for Phase I / pre-match events; worker buffers
    // are created inside their search states and merged at the end.
    let mut p1_events = options
        .trace_events
        .then(|| EventBuffer::new(options.trace_events_cap));
    let (p1, p1_timing) = phase1::run_governed(
        &s,
        trace,
        options.key_policy,
        collect,
        p1_events.as_mut(),
        governor.as_ref(),
    );
    // Phase I effort: one unit per refinement iteration, charged on the
    // serial ledger (and inherited by the workers' shared view below).
    if let Some(g) = governor.as_mut() {
        g.charge(p1.stats.iterations as u64);
    }
    // Auto-threading (`threads: 0`) is resolved exactly once per
    // search; every report path below sees the same resolved count.
    let worker_count = options.resolved_threads();
    let mut metrics = collect.then(|| MetricsReport {
        compile_ns: main_compile_ns + pattern_compile_ns,
        phase1_refine_ns: p1_timing.refine_ns,
        phase1_select_ns: p1_timing.select_ns,
        threads_requested: options.threads,
        threads_resolved: worker_count,
        threads_used: 1,
        ..MetricsReport::default()
    });
    if main_cached {
        if let Some(m) = metrics.as_mut() {
            m.counters.bump("compile.main_cache_hits", 1);
        }
    } else if let Some(m) = metrics.as_mut() {
        // Artifact accounting rides with the compile attribution: the
        // first pattern of a library reports the hit (or miss) exactly
        // once, like `compile_ns` itself.
        if prepared.warm {
            m.counters.bump("artifact.warm_hits", 1);
            m.counters.bump("artifact.load_ns", prepared.load_ns);
        } else if options.warm_main.is_some() {
            m.counters.bump("artifact.warm_misses", 1);
        }
        if prepared.index_build_ns > 0 {
            m.counters.bump("index.build_ns", prepared.index_build_ns);
        }
    }
    outcome.phase1 = p1.stats;
    outcome.key = p1.key;
    if let Some(hook) = progress {
        hook.call(&ProgressEvent::Phase1Finished {
            iterations: outcome.phase1.iterations,
            cv_size: outcome.phase1.cv_size,
        });
    }
    let Some(key) = p1.key else {
        if let Some(reason) = p1.interrupted {
            // Refinement itself was cut short: no candidate was ever
            // considered, so tried and skipped are both zero.
            outcome.completeness = Completeness::Truncated {
                reason,
                candidates_tried: 0,
                candidates_skipped: 0,
            };
            if let Some(b) = p1_events.as_mut() {
                b.push(EventKind::Truncated {
                    reason,
                    candidates_tried: 0,
                    candidates_skipped: 0,
                });
            }
        }
        if let (Some(m), Some(g)) = (metrics.as_mut(), governor.as_ref()) {
            record_budget_metrics(m, g, &outcome.completeness);
        }
        if let Some(b) = p1_events {
            outcome.events = Some(EventJournal::merge(vec![b]));
        }
        outcome.metrics = metrics;
        return outcome;
    };

    // ---- Fingerprint pruning ----
    //
    // A sound serial pre-filter on the candidate vector: when the key
    // is a device and an index is available (warm start, or built under
    // `PrunePolicy::Always`), candidates whose fingerprint cannot cover
    // the pattern-derived mask are marked pruned — a fingerprint
    // mismatch proves no isomorphism (DESIGN.md §3f). Workers and the
    // merge both skip marked candidates the same way claim-skips work:
    // no slot is ever written or awaited for them. The mask is computed
    // before any worker spawns, so pruning — like everything the merge
    // consumes — is identical for every thread count and scheduler.
    let pruned_mask: Option<Vec<bool>> = {
        let prune_index = match options.prune {
            PrunePolicy::Never => None,
            PrunePolicy::Auto | PrunePolicy::Always => prepared.index.as_deref(),
        };
        match (prune_index, key.as_device()) {
            (Some(idx), Some(kd)) => {
                let mask = FingerprintIndex::pattern_mask(&s, kd);
                let mut pruned = vec![false; p1.candidates.len()];
                let mut pruned_count = 0u64;
                for (i, c) in p1.candidates.iter().enumerate() {
                    if let Some(d) = c.as_device() {
                        if !idx.admits(d, mask) {
                            pruned[i] = true;
                            pruned_count += 1;
                        }
                    }
                }
                let admitted = p1.candidates.len() as u64 - pruned_count;
                if let Some(m) = metrics.as_mut() {
                    m.counters.bump("index.pruned_candidates", pruned_count);
                    m.counters.bump("index.admitted_candidates", admitted);
                }
                if let Some(b) = p1_events.as_mut() {
                    b.push(EventKind::CvPruned {
                        pruned: pruned_count,
                        admitted,
                    });
                }
                Some(pruned)
            }
            _ => None,
        }
    };
    let pruned_at = |i: usize| pruned_mask.as_ref().is_some_and(|m| m[i]);

    // ---- Phase II ----
    let runner = Phase2Runner::new(&s, &prepared.compiled, &pattern_nl, main_nl, options);
    let Some(base) = runner.base_state() else {
        // A pattern global has no counterpart in the main circuit.
        outcome.phase1.proven_empty = true;
        if let (Some(m), Some(g)) = (metrics.as_mut(), governor.as_ref()) {
            record_budget_metrics(m, g, &outcome.completeness);
        }
        if let Some(mut b) = p1_events {
            b.push(EventKind::PrematchFail);
            outcome.events = Some(EventJournal::merge(vec![b]));
        }
        outcome.metrics = metrics;
        return outcome;
    };
    // ---- Shard plan (DESIGN.md §3i) ----
    //
    // Sharding partitions the *candidate vector* by anchor ownership:
    // the main graph's compiled device order is cut into contiguous
    // core ranges (plus pattern-diameter halos, the containment
    // contract), and every candidate is owned by exactly one shard.
    // Workers claim whole shards instead of single candidates, which
    // localizes their reads; everything downstream of the slots — the
    // serial CV-ordered merge — is untouched, so sharded results are
    // byte-identical to unsharded ones by construction. Tracing forces
    // the serial path, exactly as it disables parallel dispatch.
    let n = p1.candidates.len();
    let plan_timer = collect.then(PhaseTimer::start);
    let shard_plan: Option<ShardPlan> = if options.record_trace || n <= 1 {
        None
    } else {
        options
            .shards
            .resolve(prepared.compiled.device_count())
            .map(|k| {
                let diameter = crate::shard::pattern_diameter(&s);
                ShardPlan::build(&prepared.compiled, k, diameter)
            })
    };
    let plan_ns = plan_timer.map_or(0, |t| t.elapsed_ns());
    // Per-shard candidate lists (CV indices in CV order) and the
    // owner-shard of every candidate — the merge uses owners to tell a
    // cross-shard halo duplicate from an ordinary one.
    let (shard_lists, owners): (Option<Vec<Vec<usize>>>, Option<Vec<u32>>) =
        match shard_plan.as_ref() {
            Some(plan) => {
                let mut lists: Vec<Vec<usize>> = vec![Vec::new(); plan.shard_count()];
                let mut owners: Vec<u32> = Vec::with_capacity(n);
                for (i, c) in p1.candidates.iter().enumerate() {
                    let o = plan.owner_of(&prepared.compiled, *c);
                    owners.push(o as u32);
                    lists[o].push(i);
                }
                (Some(lists), Some(owners))
            }
            None => (None, None),
        };
    let sharded = shard_lists.is_some();

    // ---- Phase II candidate stage ----
    //
    // Parallel runs stream: workers claim candidates — one at a time
    // from a shared atomic cursor (work stealing, the default) or as
    // preassigned contiguous chunks — verify them into per-candidate
    // slots, and the serial merge below consumes those slots in
    // candidate-vector order *concurrently*, behind a bounded reorder
    // window. The merge is the sole determinism authority: it charges
    // the governor, decides truncation, claims devices, and absorbs
    // stats/events/tallies from exactly the candidates it consumes —
    // so instances, stats, the journal, and the truncation point are
    // identical for every thread count and both schedulers (tracing
    // forces the serial path). See DESIGN.md §3e.
    //
    // Shard mode rides the same machinery — slots, shared governor,
    // merge — but workers claim whole shards from an atomic cursor, so
    // it always uses the slot path (even at one thread) and ignores
    // the scheduler knob and the claim board (the merge's own claim
    // check is authoritative either way).
    let par_enabled = !options.record_trace && n > 1 && (worker_count > 1 || sharded);
    let spawn_count = match shard_lists.as_ref() {
        Some(lists) => worker_count.min(lists.len()).min(n),
        None => worker_count.min(n),
    };
    let stealing = par_enabled && !sharded && options.scheduler == Phase2Scheduler::WorkStealing;
    let phase2_timer = collect.then(PhaseTimer::start);
    // Worker-side observability payloads harvested after the scope.
    struct WorkerPart {
        timing: Option<CandidateTiming>,
        backtrack_hist: Option<Histogram>,
        sched: WorkerStats,
    }
    // One candidate's complete verification product. Stats, events,
    // and tallies live here — per candidate, not per worker — so the
    // merge can absorb exactly the candidates it consumes, making the
    // outcome's accounting independent of how candidates were
    // distributed over workers. `done: false` marks an abandoned claim
    // (injected worker death): empty payload, the merge recomputes.
    struct SlotData {
        result: Option<crate::instance::SubMatch>,
        stats: crate::instance::Phase2Stats,
        effort: u64,
        events: Option<EventBuffer>,
        tally: Option<RejectTally>,
        done: bool,
    }
    impl SlotData {
        fn abandoned() -> Self {
            SlotData {
                result: None,
                stats: crate::instance::Phase2Stats::default(),
                effort: 0,
                events: None,
                tally: None,
                done: false,
            }
        }
    }
    let mut event_buffers: Vec<EventBuffer> = Vec::new();
    let mut reject_tally = RejectTally::default();
    // Shared scheduler state. `OnceLock` gives lock-free one-shot
    // publication per slot; the queue carries the claim cursor, the
    // merge position (reorder window anchor), and the live-worker
    // count the merge uses to tell "in flight" from "never coming".
    let mut slots: Vec<OnceLock<SlotData>> = Vec::new();
    if par_enabled {
        slots.resize_with(n, OnceLock::new);
    }
    let mut consumed = vec![false; slots.len()];
    let queue = StealQueue::new(n, spawn_count);
    // Broadcast face of the governor: workers poll it before each
    // claim and feed finished candidates' effort back, so exhaustion
    // stops every worker within one candidate; the merge rides its
    // halt and claim-epoch signals on the same object.
    let shared = governor
        .as_ref()
        .map_or_else(SharedGovernor::unlimited, Governor::shared);
    // Claim board: under ClaimDevices, stealing workers skip
    // candidates whose key image a merged instance already claimed.
    // Claims only grow, and only the merge publishes them, so any bit
    // a worker observes belongs to a merged prefix — the merge's own
    // claim check skips the same candidate, never waiting on the
    // worker's unwritten slot.
    let board = (stealing && options.overlap == OverlapPolicy::ClaimDevices)
        .then(|| ClaimBoard::new(main_nl.device_count()));
    let chunk = if par_enabled {
        n.div_ceil(spawn_count)
    } else {
        1
    };
    let parts = std::sync::Mutex::new(Vec::<WorkerPart>::new());
    // Shard claim cursor: workers take whole shards, in shard order.
    // Claim order affects locality and wall-clock only — every slot a
    // worker fills is consumed by the merge in CV order regardless.
    let shard_cursor = AtomicUsize::new(0);
    let worker = |w: usize| {
        use crate::budget::failpoint;
        let mut part = WorkerPart {
            timing: collect.then(CandidateTiming::default),
            backtrack_hist: None,
            sched: WorkerStats::default(),
        };
        let push_part = |part: WorkerPart| {
            parts
                .lock()
                .expect("no panics while holding the lock")
                .push(part);
        };
        if let Some(failpoint::Action::KillWorker) = failpoint::get("phase2.worker") {
            // Simulated worker death at startup: its candidates become
            // holes the merge recomputes serially.
            queue.worker_done();
            push_part(part);
            return;
        }
        failpoint::stall("phase2.worker");
        let mut search = runner.make_state(&base);
        if let Some(lists) = shard_lists.as_ref() {
            // Sharded dispatch: claim a shard, verify its candidates in
            // CV order into the shared per-candidate slots, repeat. The
            // governor broadcast is checked per candidate, so
            // exhaustion stops a worker mid-shard; the merge recomputes
            // any hole serially, keeping results byte-identical.
            'shards: loop {
                if shared.halted() || shared.should_stop() {
                    break;
                }
                let sidx = shard_cursor.fetch_add(1, Ordering::Relaxed);
                let Some(list) = lists.get(sidx) else {
                    break;
                };
                for &i in list {
                    if shared.halted() || shared.should_stop() {
                        break 'shards;
                    }
                    if pruned_at(i) {
                        continue;
                    }
                    part.sched.claimed += 1;
                    let mut stats = crate::instance::Phase2Stats::default();
                    let result = runner
                        .run_candidate_timed(
                            &mut search,
                            key,
                            p1.candidates[i],
                            i as u32,
                            &mut stats,
                            false,
                            part.timing.as_mut(),
                        )
                        .map(|(m, _)| m);
                    let effort = 1 + effort_of(&stats);
                    let _ = slots[i].set(SlotData {
                        result,
                        stats,
                        effort,
                        events: search.drain_events(),
                        tally: search.drain_reject_tally(),
                        done: true,
                    });
                    shared.charge(effort);
                }
            }
            queue.worker_done();
            part.backtrack_hist = search.take_backtrack_hist();
            push_part(part);
            return;
        }
        // The worker's home range under static chunking — also what
        // defines a "steal": a claim outside it is work this worker
        // would have idled through with static chunks.
        let home = (w * chunk)..(((w + 1) * chunk).min(n));
        let mut next_static = home.start;
        loop {
            if shared.halted() || shared.should_stop() {
                break;
            }
            let i = if stealing {
                if let Some(failpoint::Action::KillWorker) = failpoint::get("phase2.steal") {
                    // Death *after* claiming: abandon the candidate so
                    // the merge's hole recovery has to repair it.
                    if let Claim::Got(i) = queue.try_claim() {
                        let _ = slots[i].set(SlotData::abandoned());
                    }
                    break;
                }
                failpoint::stall("phase2.steal");
                match queue.try_claim() {
                    Claim::Got(i) => i,
                    Claim::Blocked => {
                        part.sched.window_stalls += 1;
                        std::thread::yield_now();
                        continue;
                    }
                    Claim::Drained => break,
                }
            } else {
                if next_static >= home.end {
                    break;
                }
                let i = next_static;
                next_static += 1;
                i
            };
            if pruned_at(i) {
                // Fingerprint-pruned: like a claim-skip, no slot is
                // written and the merge's own check never waits on one.
                continue;
            }
            part.sched.claimed += 1;
            if stealing && !home.contains(&i) {
                part.sched.steals += 1;
            }
            let c = p1.candidates[i];
            if let (Some(b), Some(d)) = (board.as_ref(), c.as_device()) {
                if shared.claim_epoch() > 0 && b.is_claimed(d.index()) {
                    part.sched.claim_skips += 1;
                    continue;
                }
            }
            let mut stats = crate::instance::Phase2Stats::default();
            let result = runner
                .run_candidate_timed(
                    &mut search,
                    key,
                    c,
                    i as u32,
                    &mut stats,
                    false,
                    part.timing.as_mut(),
                )
                .map(|(m, _)| m);
            let effort = 1 + effort_of(&stats);
            let _ = slots[i].set(SlotData {
                result,
                stats,
                effort,
                events: search.drain_events(),
                tally: search.drain_reject_tally(),
                done: true,
            });
            shared.charge(effort);
        }
        queue.worker_done();
        part.backtrack_hist = search.take_backtrack_hist();
        push_part(part);
    };

    let mut serial_search = (!par_enabled).then(|| runner.make_state(&base));
    let mut claimed: HashSet<DeviceId> = HashSet::new();
    // Canonical device-set → owner shard of the candidate that first
    // produced it (0 when unsharded). The dedup check is what it always
    // was; the owner lets shard mode count cross-shard halo duplicates
    // separately (`shard.dedup_dropped`).
    let mut seen_sets: HashMap<Vec<DeviceId>, u32> = HashMap::new();
    let mut shard_dedup_dropped = 0u64;
    let mut p2_trace: Option<Phase2Trace> = None;
    let mut serial_timing = (collect && !par_enabled).then(CandidateTiming::default);
    let mut checked = 0u64;
    let mut matched = 0u64;
    let mut dedup_dropped = 0u64;
    let mut merge_stalls = 0u64;
    let mut recomputed = 0u64;
    // Where (and why) the governor stopped the merge. The decision is
    // taken *only* here, in candidate-vector order, from effort charged
    // at candidate granularity — so the truncation point is identical
    // for every thread count.
    let mut truncation: Option<TruncationReason> = None;
    let mut stop_index = 0usize;
    // How many yields the merge waits on an empty-but-claimed slot
    // before recomputing it anyway. Normally unhit: holes are found
    // via the worker count reaching zero. This is the self-healing
    // bound — recomputation is always safe (a late slot write is
    // simply never consumed), so a stuck claim costs duplicated work,
    // never a hang or a result change.
    const MERGE_PATIENCE: u64 = 200_000;
    let mut run_merge = |serial_search: &mut Option<crate::phase2::SearchState>| {
        for (i, &c) in p1.candidates.iter().enumerate() {
            if par_enabled {
                queue.advance_merge(i);
            }
            if options.max_instances > 0 && outcome.instances.len() >= options.max_instances {
                break; // a requested limit, not a truncation
            }
            if let Some(reason) = governor.as_ref().and_then(Governor::should_stop) {
                truncation = Some(reason);
                stop_index = i;
                break;
            }
            if pruned_at(i) {
                continue; // fingerprint-pruned: provably no isomorphism
            }
            // Claimed key images cannot start a new instance. This
            // runs *before* the slot wait: a candidate a worker
            // claim-skipped never gets a slot, and this same check is
            // what guarantees the merge won't wait for one.
            if options.overlap == OverlapPolicy::ClaimDevices {
                if let Some(d) = c.as_device() {
                    if claimed.contains(&d) {
                        continue;
                    }
                }
            }
            let want_trace = options.record_trace && p2_trace.is_none();
            // Streaming consume: wait for the candidate's slot while
            // any worker is still alive to fill it (brief spin, then
            // yield). Once workers are gone — or patience runs out on
            // an abandoned claim — fall through to serial recompute.
            let slot = if par_enabled {
                let mut spins = 0u64;
                loop {
                    if let Some(s) = slots[i].get() {
                        break Some(s);
                    }
                    if !queue.workers_active() {
                        // Workers exited between the failed get and
                        // this check: one final look, then recompute.
                        break slots[i].get();
                    }
                    if spins >= MERGE_PATIENCE {
                        break None;
                    }
                    if spins < 64 {
                        std::hint::spin_loop();
                    } else {
                        merge_stalls += 1;
                        std::thread::yield_now();
                    }
                    spins += 1;
                }
            } else {
                None
            };
            let verified = match slot {
                Some(s) if s.done => {
                    if let Some(g) = governor.as_mut() {
                        g.charge(s.effort);
                    }
                    outcome.phase2.absorb(&s.stats);
                    consumed[i] = true;
                    s.result.clone().map(|m| (m, None))
                }
                _ => {
                    // Serial path — or a hole (worker stopped on the
                    // broadcast, or abandoned its claim): verify here.
                    // `run_candidate` rolls back to the base state, so
                    // recomputation is deterministic, and a racing
                    // worker's late slot write is never consumed.
                    if par_enabled {
                        recomputed += 1;
                    }
                    let search = serial_search.get_or_insert_with(|| runner.make_state(&base));
                    let before = effort_of(&outcome.phase2);
                    let verified = runner.run_candidate_timed(
                        search,
                        key,
                        c,
                        i as u32,
                        &mut outcome.phase2,
                        want_trace,
                        serial_timing.as_mut(),
                    );
                    if let Some(g) = governor.as_mut() {
                        g.charge(1 + (effort_of(&outcome.phase2) - before));
                    }
                    verified
                }
            };
            checked += 1;
            if let Some(hook) = progress {
                hook.call(&ProgressEvent::CandidateChecked {
                    index: i,
                    total: n,
                    matched: verified.is_some(),
                });
            }
            let Some((m, t)) = verified else {
                continue;
            };
            matched += 1;
            let set = m.device_set();
            let owner = owners.as_ref().map_or(0, |o| o[i]);
            if let Some(&first_owner) = seen_sets.get(&set) {
                dedup_dropped += 1;
                if owners.is_some() && first_owner != owner {
                    // The halo-duplicated case: the same instance was
                    // reached from anchors owned by two shards.
                    shard_dedup_dropped += 1;
                }
                continue; // same instance reached through another candidate
            }
            let overlaps = options.overlap == OverlapPolicy::ClaimDevices
                && set.iter().any(|d| claimed.contains(d));
            if options.overlap == OverlapPolicy::ClaimDevices && !overlaps {
                if let Some(b) = board.as_ref() {
                    for d in &set {
                        b.publish(d.index());
                    }
                    // Epoch after bits: a worker that sees the epoch
                    // sees the bits.
                    shared.bump_claim_epoch();
                }
                claimed.extend(set.iter().copied());
            }
            seen_sets.insert(set, owner); // move, not clone — the set is consumed here
            if overlaps {
                outcome.phase2.overlap_dropped += 1;
                continue;
            }
            if want_trace {
                p2_trace = t;
            }
            outcome.instances.push(m);
            if let Some(hook) = progress {
                hook.call(&ProgressEvent::InstanceFound {
                    count: outcome.instances.len(),
                });
            }
        }
    };
    let mut merge_ns = 0u64;
    if par_enabled {
        std::thread::scope(|scope| {
            for w in 0..spawn_count {
                let worker = &worker;
                scope.spawn(move || worker(w));
            }
            let merge_timer = (collect && sharded).then(PhaseTimer::start);
            run_merge(&mut serial_search);
            merge_ns = merge_timer.map_or(0, |t| t.elapsed_ns());
            // Raised on every merge exit path (completion, a limit, a
            // stop): workers — including ones parked on the reorder
            // window — drain promptly instead of finishing the vector.
            shared.halt();
        });
    } else {
        run_merge(&mut serial_search);
    }
    if let Some(reason) = truncation {
        let candidates_skipped = n - stop_index;
        outcome.completeness = Completeness::Truncated {
            reason,
            candidates_tried: checked as usize,
            candidates_skipped,
        };
        if let Some(b) = p1_events.as_mut() {
            b.push(EventKind::Truncated {
                reason,
                candidates_tried: checked,
                candidates_skipped: candidates_skipped as u64,
            });
        }
    }
    // `sort_by_cached_key`: one device-set materialization per
    // instance, not one per comparison.
    outcome.instances.sort_by_cached_key(SubMatch::device_set);
    outcome.trace = p2_trace;
    if let Some(search) = serial_search.as_mut() {
        if let Some(t) = search.take_reject_tally() {
            reject_tally.merge(&t);
        }
        if let Some(b) = search.take_events() {
            event_buffers.push(b);
        }
        if let Some(h) = search.take_backtrack_hist() {
            if let Some(m) = metrics.as_mut() {
                m.backtrack_depth_hist.merge(&h);
            }
        }
    }
    // Harvest the slots: only *consumed* candidates contribute events
    // and tallies (per-candidate, so the journal and reject accounting
    // are byte-identical across thread counts); slots the merge never
    // consumed — computed past a truncation point, or superseded by a
    // recompute — are dropped and counted.
    let mut sched = WorkerStats::default();
    let mut unconsumed = 0u64;
    for (i, s) in slots.into_iter().enumerate() {
        let Some(d) = s.into_inner() else { continue };
        if consumed[i] {
            if let Some(t) = d.tally {
                reject_tally.merge(&t);
            }
            if let Some(b) = d.events {
                event_buffers.push(b);
            }
        } else if d.done {
            unconsumed += 1;
        }
    }
    for part in parts.into_inner().expect("threads joined") {
        sched.absorb(&part.sched);
        if let Some(m) = metrics.as_mut() {
            if let Some(t) = part.timing {
                m.worker_busy_ns.push(t.sum_ns);
                m.phase2_verify_ns += t.sum_ns;
                m.phase2_max_candidate_ns = m.phase2_max_candidate_ns.max(t.max_ns);
                m.verify_ns_hist.merge(&t.hist);
            }
            if let Some(h) = part.backtrack_hist {
                m.backtrack_depth_hist.merge(&h);
            }
        }
    }
    if let Some(m) = metrics.as_mut() {
        if par_enabled {
            m.threads_used = spawn_count;
        }
        if let Some(t) = serial_timing {
            m.worker_busy_ns.push(t.sum_ns);
            m.phase2_verify_ns += t.sum_ns;
            m.phase2_max_candidate_ns = m.phase2_max_candidate_ns.max(t.max_ns);
            m.verify_ns_hist.merge(&t.hist);
        }
        if let Some(t) = &phase2_timer {
            m.phase2_wall_ns = t.elapsed_ns();
        }
        m.counters.bump("candidates.checked", checked);
        m.counters.bump("candidates.matched", matched);
        m.counters
            .bump("instances.reported", outcome.instances.len() as u64);
        m.counters.bump("instances.dedup_dropped", dedup_dropped);
        m.counters.bump(
            "instances.claim_dropped",
            outcome.phase2.overlap_dropped as u64,
        );
        if par_enabled {
            // Scheduler telemetry. Work counts (claims, steals,
            // skips) depend on runtime interleaving — unlike results,
            // which never do.
            m.counters.bump("scheduler.claims", sched.claimed);
            m.counters.bump("scheduler.steals", sched.steals);
            m.counters.bump("scheduler.claim_skips", sched.claim_skips);
            m.counters
                .bump("scheduler.window_stalls", sched.window_stalls);
            m.counters.bump("scheduler.merge_stalls", merge_stalls);
            m.counters.bump("scheduler.recomputed", recomputed);
            m.counters.bump("scheduler.unconsumed", unconsumed);
        }
        if let Some(plan) = shard_plan.as_ref() {
            // Shard telemetry (schema v1 additive): plan shape plus the
            // overlap and merge costs the sharding pays for.
            m.counters.bump("shard.count", plan.shard_count() as u64);
            m.counters.bump("shard.halo_devices", plan.halo_devices());
            m.counters.bump("shard.dedup_dropped", shard_dedup_dropped);
            m.counters.bump("shard.plan_ns", plan_ns);
            m.counters.bump("shard.merge_ns", merge_ns);
        }
        // Reject reasons land as counters in first-bump order;
        // `nonzero()` yields them in the closed `ALL` order.
        for (r, v) in reject_tally.nonzero() {
            m.counters.bump(r.counter_name(), v);
        }
        if let Some(g) = governor.as_ref() {
            record_budget_metrics(m, g, &outcome.completeness);
        }
    }
    if options.trace_events {
        let mut buffers = Vec::with_capacity(event_buffers.len() + 1);
        if let Some(b) = p1_events {
            buffers.push(b);
        }
        buffers.append(&mut event_buffers);
        outcome.events = Some(EventJournal::merge(buffers));
    }
    outcome.metrics = metrics;
    outcome
}
