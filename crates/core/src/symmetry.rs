//! Port-symmetry inference for composite device types.
//!
//! When extraction replaces a matched subcircuit with a single composite
//! device, the new device type needs terminal equivalence classes: a
//! NAND2's two inputs are interchangeable exactly like a transistor's
//! source and drain. We infer the classes from the cell itself: ports
//! `p` and `q` are interchangeable iff some automorphism of the cell
//! maps `p` to `q`, which we decide by attaching a marker device to one
//! port at a time and asking Gemini whether the two marked variants are
//! isomorphic.

use subgemini_gemini::are_isomorphic;
use subgemini_netlist::{DeviceType, Netlist, TerminalSpec};

/// Clones `cell` with a one-off marker device attached to port `p`.
fn marked(cell: &Netlist, p: usize) -> Netlist {
    let mut c = cell.clone();
    let marker = c
        .add_type(DeviceType::new(
            "__portmark",
            vec![TerminalSpec::new("t", "t")],
        ))
        .expect("marker type is fresh");
    let net = c.ports()[p];
    c.add_device("__mark", marker, &[net])
        .expect("marker name is fresh");
    c
}

/// Groups the ports of `cell` into interchangeability classes.
///
/// Returns groups of port indices (into `cell.ports()`); every port
/// appears in exactly one group, and groups preserve first-port order.
/// Ports are grouped when an automorphism of the cell exchanges them —
/// the correct notion of terminal equivalence for the composite device
/// type built from the cell.
///
/// Note: orbits of the automorphism group are used as classes. For
/// nearly all standard cells (NAND/NOR/XOR/MUX inputs) orbit membership
/// coincides with free interchangeability; pathological cells where the
/// group acts transitively but not symmetrically would be over-merged,
/// which can only make later matching *more* permissive, never unsound
/// (final mappings are always verified structurally).
///
/// Note this is *structural* symmetry: a static CMOS NAND2 is
/// functionally input-symmetric but not structurally (one series NMOS
/// sits nearer the output), so its inputs correctly land in distinct
/// classes. A parallel pull-down pair, by contrast, is symmetric:
///
/// # Examples
///
/// ```
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// // Pseudo-NMOS NOR pull-down: inputs a/b symmetric, output y alone.
/// let mut nor = Netlist::new("pd_nor2");
/// let mos = nor.add_mos_types();
/// let (a, b, y, gnd) = (nor.net("a"), nor.net("b"), nor.net("y"), nor.net("gnd"));
/// nor.mark_port(a);
/// nor.mark_port(b);
/// nor.mark_port(y);
/// nor.mark_global(gnd);
/// nor.add_device("n1", mos.nmos, &[a, gnd, y])?;
/// nor.add_device("n2", mos.nmos, &[b, gnd, y])?;
/// let groups = subgemini::port_symmetry_classes(&nor);
/// assert_eq!(groups, vec![vec![0, 1], vec![2]]);
/// # Ok(())
/// # }
/// ```
pub fn port_symmetry_classes(cell: &Netlist) -> Vec<Vec<usize>> {
    let n = cell.ports().len();
    let mut assigned = vec![false; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    let marks: Vec<Netlist> = (0..n).map(|p| marked(cell, p)).collect();
    for p in 0..n {
        if assigned[p] {
            continue;
        }
        let mut group = vec![p];
        assigned[p] = true;
        for q in (p + 1)..n {
            if assigned[q] {
                continue;
            }
            if are_isomorphic(&marks[p], &marks[q]) {
                group.push(q);
                assigned[q] = true;
            }
        }
        groups.push(group);
    }
    groups
}

/// Builds the composite [`DeviceType`] for a cell: one terminal per
/// port (named after the port's net), classed by
/// [`port_symmetry_classes`].
pub(crate) fn composite_type(cell: &Netlist) -> DeviceType {
    let groups = port_symmetry_classes(cell);
    let mut class_of = vec![0usize; cell.ports().len()];
    for (gi, group) in groups.iter().enumerate() {
        for &p in group {
            class_of[p] = gi;
        }
    }
    let terms: Vec<TerminalSpec> = cell
        .ports()
        .iter()
        .enumerate()
        .map(|(i, &net)| {
            TerminalSpec::new(
                cell.net_ref(net).name().to_string(),
                format!("c{}", class_of[i]),
            )
        })
        .collect();
    DeviceType::new(cell.name().to_string(), terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> Netlist {
        let mut inv = Netlist::new("inv");
        let mos = inv.add_mos_types();
        let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
        inv.mark_port(a);
        inv.mark_port(y);
        inv.mark_global(vdd);
        inv.mark_global(gnd);
        inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        inv
    }

    #[test]
    fn inverter_ports_are_asymmetric() {
        let groups = port_symmetry_classes(&inverter());
        assert_eq!(groups, vec![vec![0], vec![1]]);
    }

    #[test]
    fn parallel_resistors_have_symmetric_ends() {
        let mut cell = Netlist::new("rr");
        let res = cell.add_type(DeviceType::two_terminal("res")).unwrap();
        let (a, b) = (cell.net("a"), cell.net("b"));
        cell.mark_port(a);
        cell.mark_port(b);
        cell.add_device("r1", res, &[a, b]).unwrap();
        cell.add_device("r2", res, &[a, b]).unwrap();
        let groups = port_symmetry_classes(&cell);
        assert_eq!(groups, vec![vec![0, 1]]);
    }

    #[test]
    fn composite_type_carries_port_names_and_classes() {
        let ty = composite_type(&inverter());
        assert_eq!(ty.name(), "inv");
        assert_eq!(ty.terminal_count(), 2);
        assert_eq!(ty.terminal(0).name(), "a");
        assert_eq!(ty.terminal(1).name(), "y");
        assert!(!ty.same_class(0, 1));
    }

    #[test]
    fn no_ports_yields_empty_groups() {
        let mut cell = Netlist::new("closed");
        let mos = cell.add_mos_types();
        let x = cell.net("x");
        cell.add_device("m", mos.nmos, &[x, x, x]).unwrap();
        assert!(port_symmetry_classes(&cell).is_empty());
    }
}
