//! Scenario tests for the two-phase matcher.

use subgemini::{MatchOptions, Matcher, OverlapPolicy};
use subgemini_netlist::{instantiate, DeviceType, Netlist, Vertex};

fn inverter_cell() -> Netlist {
    let mut inv = Netlist::new("inv");
    let mos = inv.add_mos_types();
    let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
    inv.mark_port(a);
    inv.mark_port(y);
    inv.mark_global(vdd);
    inv.mark_global(gnd);
    inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
    inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
    inv
}

fn nand2_cell() -> Netlist {
    let mut nand = Netlist::new("nand2");
    let mos = nand.add_mos_types();
    let (a, b, y, mid) = (nand.net("a"), nand.net("b"), nand.net("y"), nand.net("mid"));
    let (vdd, gnd) = (nand.net("vdd"), nand.net("gnd"));
    nand.mark_port(a);
    nand.mark_port(b);
    nand.mark_port(y);
    nand.mark_global(vdd);
    nand.mark_global(gnd);
    nand.add_device("p1", mos.pmos, &[a, vdd, y]).unwrap();
    nand.add_device("p2", mos.pmos, &[b, vdd, y]).unwrap();
    nand.add_device("n1", mos.nmos, &[a, y, mid]).unwrap();
    nand.add_device("n2", mos.nmos, &[b, mid, gnd]).unwrap();
    nand
}

fn dff_like_cell() -> Netlist {
    // A larger cell: two back-to-back inverters plus pass transistors —
    // 6 devices, with internal nets.
    let mut c = Netlist::new("latch");
    let mos = c.add_mos_types();
    let (d, q, clk) = (c.net("d"), c.net("q"), c.net("clk"));
    let (x, qb) = (c.net("x"), c.net("qb"));
    let (vdd, gnd) = (c.net("vdd"), c.net("gnd"));
    c.mark_port(d);
    c.mark_port(q);
    c.mark_port(clk);
    c.mark_global(vdd);
    c.mark_global(gnd);
    c.add_device("pass", mos.nmos, &[clk, d, x]).unwrap();
    c.add_device("i1p", mos.pmos, &[x, vdd, qb]).unwrap();
    c.add_device("i1n", mos.nmos, &[x, gnd, qb]).unwrap();
    c.add_device("i2p", mos.pmos, &[qb, vdd, q]).unwrap();
    c.add_device("i2n", mos.nmos, &[qb, gnd, q]).unwrap();
    c.add_device("fb", mos.nmos, &[clk, q, x]).unwrap();
    c
}

/// A chip with known planted content.
fn mixed_chip(invs: usize, nands: usize, latches: usize) -> Netlist {
    let inv = inverter_cell();
    let nand = nand2_cell();
    let latch = dff_like_cell();
    let mut chip = Netlist::new("chip");
    let mut prev = chip.net("w_in");
    for i in 0..invs {
        let next = chip.net(format!("wi{i}"));
        instantiate(&mut chip, &inv, &format!("inv{i}"), &[prev, next]).unwrap();
        prev = next;
    }
    for i in 0..nands {
        let a = prev;
        let b = chip.net(format!("nb{i}"));
        let y = chip.net(format!("ny{i}"));
        instantiate(&mut chip, &nand, &format!("nand{i}"), &[a, b, y]).unwrap();
        prev = y;
    }
    for i in 0..latches {
        let d = prev;
        let q = chip.net(format!("lq{i}"));
        let clk = chip.net("clk");
        instantiate(&mut chip, &latch, &format!("lat{i}"), &[d, q, clk]).unwrap();
        prev = q;
    }
    chip
}

#[test]
fn finds_exact_counts_of_each_cell() {
    let chip = mixed_chip(7, 3, 2);
    let inv = Matcher::new(&inverter_cell(), &chip).find_all();
    // Each latch contains two structural inverters as well.
    assert_eq!(inv.count(), 7 + 2 * 2, "inverters: {:?}", inv.phase1);
    let nand = Matcher::new(&nand2_cell(), &chip).find_all();
    assert_eq!(nand.count(), 3);
    let latch = Matcher::new(&dff_like_cell(), &chip).find_all();
    assert_eq!(latch.count(), 2);
}

#[test]
fn no_instances_in_foreign_circuit() {
    let chip = mixed_chip(5, 0, 0);
    let outcome = Matcher::new(&nand2_cell(), &chip).find_all();
    assert_eq!(outcome.count(), 0);
}

#[test]
fn phase1_filter_is_complete() {
    // Every true instance's key image must be in the candidate vector.
    let chip = mixed_chip(4, 4, 0);
    let nand = nand2_cell();
    let cv = subgemini::candidates::generate(&nand, &chip);
    assert!(cv.candidates.len() >= 4);
    let outcome = Matcher::new(&nand, &chip).find_all();
    assert_eq!(outcome.count(), 4);
    for img in outcome.key_images() {
        assert!(cv.candidates.contains(&img));
    }
}

#[test]
fn fig7_inverter_in_nand_depends_on_special_nets() {
    let nand = nand2_cell();
    let inv = inverter_cell();
    let with = Matcher::new(&inv, &nand).find_all();
    assert_eq!(with.count(), 0, "specials respected: no inverter");
    let without = Matcher::new(&inv, &nand)
        .options(MatchOptions::ignore_globals())
        .find_all();
    assert_eq!(without.count(), 1, "specials ignored: Fig. 7 false gate");
}

#[test]
fn fig5_symmetry_needs_guess_but_no_backtracking() {
    // Two parallel transistors between the same nets: matching requires
    // one guess; either choice succeeds, so no backtracking.
    let build = |name: &str| {
        let mut nl = Netlist::new(name);
        let mos = nl.add_mos_types();
        let (g, s, d) = (nl.net("g"), nl.net("s"), nl.net("d"));
        nl.mark_port(g);
        nl.mark_port(s);
        nl.mark_port(d);
        nl.add_device("a", mos.nmos, &[g, s, d]).unwrap();
        nl.add_device("b", mos.nmos, &[g, s, d]).unwrap();
        nl
    };
    let outcome = Matcher::new(&build("pat"), &build("main")).find_all();
    assert_eq!(outcome.count(), 1);
    assert!(outcome.phase2.guesses >= 1, "stats: {:?}", outcome.phase2);
    assert_eq!(outcome.phase2.backtracks, 0, "stats: {:?}", outcome.phase2);
}

#[test]
fn overlap_policy_claims_devices() {
    // Overlapping matches: pattern = single NMOS with all-port nets;
    // a 2-high stack has 2 instances sharing the mid net but not devices,
    // so both policies agree here. Instead make the pattern a 2-chain and
    // main a 3-chain: the two chain instances overlap on the middle device.
    let mut pat = Netlist::new("chain2");
    let mos = pat.add_mos_types();
    let (a, m, b) = (pat.net("a"), pat.net("m"), pat.net("b"));
    let g = pat.net("g");
    pat.mark_port(a);
    pat.mark_port(b);
    pat.mark_port(g);
    pat.add_device("m1", mos.nmos, &[g, a, m]).unwrap();
    pat.add_device("m2", mos.nmos, &[g, m, b]).unwrap();

    let mut main = Netlist::new("chain3");
    let mos2 = main.add_mos_types();
    let (x0, x1, x2, x3) = (
        main.net("x0"),
        main.net("x1"),
        main.net("x2"),
        main.net("x3"),
    );
    let gg = main.net("gg");
    main.add_device("t1", mos2.nmos, &[gg, x0, x1]).unwrap();
    main.add_device("t2", mos2.nmos, &[gg, x1, x2]).unwrap();
    main.add_device("t3", mos2.nmos, &[gg, x2, x3]).unwrap();

    let both = Matcher::new(&pat, &main).find_all();
    assert_eq!(both.count(), 2, "overlapping instances allowed");
    let claimed = Matcher::new(&pat, &main)
        .options(MatchOptions {
            overlap: OverlapPolicy::ClaimDevices,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(claimed.count(), 1, "claiming drops the overlap");
    assert!(claimed.phase2.overlap_dropped >= 1 || claimed.phase2.candidates_tried >= 1);
}

#[test]
fn max_instances_short_circuits() {
    let chip = mixed_chip(9, 0, 0);
    let outcome = Matcher::new(&inverter_cell(), &chip)
        .options(MatchOptions {
            max_instances: 3,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(outcome.count(), 3);
}

#[test]
fn missing_global_counterpart_is_empty() {
    // Pattern references global `vbias`; chip has no such net.
    let mut pat = Netlist::new("biased");
    let mos = pat.add_mos_types();
    let (g, d, vbias) = (pat.net("g"), pat.net("d"), pat.net("vbias"));
    pat.mark_port(g);
    pat.mark_port(d);
    pat.mark_global(vbias);
    pat.add_device("m", mos.nmos, &[g, vbias, d]).unwrap();
    let chip = mixed_chip(3, 0, 0);
    let outcome = Matcher::new(&pat, &chip).find_all();
    assert_eq!(outcome.count(), 0);
}

#[test]
fn deterministic_across_runs() {
    let chip = mixed_chip(5, 2, 1);
    let nand = nand2_cell();
    let a = Matcher::new(&nand, &chip).find_all();
    let b = Matcher::new(&nand, &chip).find_all();
    assert_eq!(a.instances, b.instances);
    assert_eq!(a.phase1, b.phase1);
    assert_eq!(a.phase2, b.phase2);
}

#[test]
fn trace_records_passes_for_successful_candidate() {
    let chip = mixed_chip(2, 1, 0);
    let outcome = Matcher::new(&nand2_cell(), &chip)
        .options(MatchOptions {
            record_trace: true,
            ..MatchOptions::default()
        })
        .find_all();
    assert_eq!(outcome.count(), 1);
    let trace = outcome.trace.expect("trace recorded");
    assert!(trace.pass_count() >= 1);
    // The final snapshot must show every pattern vertex matched.
    let last = trace.passes.last().unwrap();
    assert!(last.s_devices.iter().all(|c| c.matched));
    assert!(last.s_nets.iter().all(|c| c.matched));
}

#[test]
fn source_drain_listed_either_way_matches() {
    let inv = inverter_cell();
    // Rebuild an inverter instance with swapped s/d pin order in main.
    let mut chip = Netlist::new("chip");
    let mos = chip.add_mos_types();
    let (a, y, vdd, gnd) = (
        chip.net("a"),
        chip.net("y"),
        chip.net("vdd"),
        chip.net("gnd"),
    );
    chip.mark_global(vdd);
    chip.mark_global(gnd);
    chip.add_device("mp", mos.pmos, &[a, y, vdd]).unwrap(); // s<->d swapped
    chip.add_device("mn", mos.nmos, &[a, y, gnd]).unwrap();
    let outcome = Matcher::new(&inv, &chip).find_all();
    assert_eq!(outcome.count(), 1);
}

#[test]
fn multi_type_pattern_with_passives() {
    // Pattern: RC-loaded inverter (4 devices, 3 types).
    let mut pat = Netlist::new("rcinv");
    let mos = pat.add_mos_types();
    let res = pat.add_type(DeviceType::two_terminal("res")).unwrap();
    let cap = pat.add_type(DeviceType::two_terminal("cap")).unwrap();
    let (a, y, o) = (pat.net("a"), pat.net("y"), pat.net("o"));
    let (vdd, gnd) = (pat.net("vdd"), pat.net("gnd"));
    pat.mark_port(a);
    pat.mark_port(o);
    pat.mark_global(vdd);
    pat.mark_global(gnd);
    pat.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
    pat.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
    pat.add_device("r", res, &[y, o]).unwrap();
    pat.add_device("c", cap, &[o, gnd]).unwrap();

    let mut chip = Netlist::new("chip");
    for i in 0..3 {
        let a = chip.net(format!("in{i}"));
        let o = chip.net(format!("out{i}"));
        instantiate(&mut chip, &pat, &format!("u{i}"), &[a, o]).unwrap();
    }
    let outcome = Matcher::new(&pat, &chip).find_all();
    assert_eq!(outcome.count(), 3);
    // The resistor partitions the candidate space hard: the CV should
    // be exactly the 3 instances (perfect filter).
    assert!(outcome.phase1.cv_size <= 6, "{:?}", outcome.phase1);
}

#[test]
fn key_vertex_is_reported() {
    let chip = mixed_chip(2, 1, 0);
    let outcome = Matcher::new(&nand2_cell(), &chip).find_all();
    match outcome.key {
        Some(Vertex::Device(_)) | Some(Vertex::Net(_)) => {}
        None => panic!("key must be chosen when instances exist"),
    }
}

#[test]
fn empty_pattern_finds_nothing() {
    let chip = mixed_chip(1, 0, 0);
    let pat = Netlist::new("empty");
    let outcome = Matcher::new(&pat, &chip).find_all();
    assert_eq!(outcome.count(), 0);
}

#[test]
fn find_first_returns_one() {
    let chip = mixed_chip(5, 0, 0);
    let m = Matcher::new(&inverter_cell(), &chip).find_first();
    assert!(m.is_some());
}

#[test]
fn key_policy_never_changes_results() {
    use subgemini::KeyPolicy;
    let chip = mixed_chip(5, 3, 2);
    for cell in [inverter_cell(), nand2_cell(), dff_like_cell()] {
        let reference = Matcher::new(&cell, &chip).find_all();
        for policy in [KeyPolicy::FirstValid, KeyPolicy::LargestPartition] {
            let alt = Matcher::new(&cell, &chip)
                .options(MatchOptions {
                    key_policy: policy,
                    ..MatchOptions::default()
                })
                .find_all();
            let sets = |o: &subgemini::MatchOutcome| {
                let mut v: Vec<_> = o.instances.iter().map(|m| m.device_set()).collect();
                v.sort();
                v
            };
            assert_eq!(
                sets(&reference),
                sets(&alt),
                "{}: policy {policy:?} changed the result",
                cell.name()
            );
        }
    }
}

#[test]
fn port_spreading_mode_never_changes_results() {
    let chip = mixed_chip(4, 2, 2);
    for cell in [inverter_cell(), nand2_cell(), dff_like_cell()] {
        let suppressed = Matcher::new(&cell, &chip).find_all();
        let literal = Matcher::new(&cell, &chip)
            .options(MatchOptions {
                spread_from_port_images: true,
                ..MatchOptions::default()
            })
            .find_all();
        let sets = |o: &subgemini::MatchOutcome| {
            let mut v: Vec<_> = o.instances.iter().map(|m| m.device_set()).collect();
            v.sort();
            v
        };
        assert_eq!(sets(&suppressed), sets(&literal), "{}", cell.name());
    }
}

#[test]
fn generate_many_agrees_with_individual_runs() {
    let chip = mixed_chip(4, 3, 2);
    let patterns = [inverter_cell(), nand2_cell(), dff_like_cell()];
    let refs: Vec<&Netlist> = patterns.iter().collect();
    let shared = subgemini::candidates::generate_many(&refs, &chip);
    assert_eq!(shared.len(), patterns.len());
    for (pattern, cv_shared) in patterns.iter().zip(&shared) {
        let solo = subgemini::candidates::generate(pattern, &chip);
        assert_eq!(cv_shared.key, solo.key, "{}", pattern.name());
        assert_eq!(cv_shared.candidates, solo.candidates, "{}", pattern.name());
        assert_eq!(
            cv_shared.stats.iterations,
            solo.stats.iterations,
            "{}",
            pattern.name()
        );
    }
}

#[test]
fn pattern_larger_than_main_is_empty_fast() {
    let chip = mixed_chip(1, 0, 0);
    let outcome = Matcher::new(&dff_like_cell(), &chip).find_all();
    assert_eq!(outcome.count(), 0);
    assert!(outcome.phase1.proven_empty);
}

#[test]
fn parallel_matches_serial_results() {
    let chip = mixed_chip(8, 4, 3);
    for cell in [inverter_cell(), nand2_cell(), dff_like_cell()] {
        let serial = Matcher::new(&cell, &chip).find_all();
        for threads in [0usize, 2, 8] {
            let par = Matcher::new(&cell, &chip)
                .options(MatchOptions {
                    threads,
                    ..MatchOptions::default()
                })
                .find_all();
            assert_eq!(
                serial.instances,
                par.instances,
                "{} with {threads} threads",
                cell.name()
            );
        }
        // Claiming policy also merges identically.
        let serial = Matcher::new(&cell, &chip)
            .options(MatchOptions::extraction())
            .find_all();
        let par = Matcher::new(&cell, &chip)
            .options(MatchOptions {
                threads: 4,
                ..MatchOptions::extraction()
            })
            .find_all();
        assert_eq!(serial.instances, par.instances, "{} claimed", cell.name());
    }
}
