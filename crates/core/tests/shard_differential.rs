//! Differential battery for sharded Phase II dispatch (DESIGN.md §3i):
//! a sharded run must be byte-identical to the unsharded run —
//! instances, key image, Phase I/II statistics, completeness (including
//! budget truncation points), the merged event journal, and the
//! `reject.*` tallies — across shard counts 2/4/8, thread counts 1/2/8,
//! and both Phase II schedulers.

use subgemini::{MatchOptions, MatchOutcome, Matcher, Phase2Scheduler, ShardPolicy, WorkBudget};
use subgemini_netlist::Netlist;
use subgemini_workloads::gen;
use subgemini_workloads::{analog, cells};

fn run(
    pattern: &Netlist,
    main: &Netlist,
    shards: ShardPolicy,
    threads: usize,
    scheduler: Phase2Scheduler,
    budget: Option<WorkBudget>,
) -> MatchOutcome {
    Matcher::new(pattern, main)
        .options(MatchOptions {
            shards,
            threads,
            scheduler,
            budget,
            collect_metrics: true,
            trace_events: true,
            ..MatchOptions::default()
        })
        .find_all()
}

/// The deterministic subset of the metrics counters: Phase II reject
/// tallies (scheduler.* and shard.* counters legitimately differ
/// between dispatch modes; timings differ between any two runs).
fn reject_tallies(outcome: &MatchOutcome) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = outcome
        .metrics
        .as_ref()
        .expect("metrics requested")
        .counters
        .iter()
        .filter(|(name, _)| name.starts_with("reject."))
        .map(|(name, value)| (name.to_string(), value))
        .collect();
    v.sort();
    v
}

#[track_caller]
fn assert_equivalent(base: &MatchOutcome, got: &MatchOutcome, ctx: &str) {
    assert_eq!(base.instances, got.instances, "{ctx}: instances");
    assert_eq!(base.key, got.key, "{ctx}: key image");
    assert_eq!(base.phase1, got.phase1, "{ctx}: phase1 stats");
    assert_eq!(base.phase2, got.phase2, "{ctx}: phase2 stats");
    assert_eq!(base.completeness, got.completeness, "{ctx}: completeness");
    assert_eq!(base.events, got.events, "{ctx}: event journal");
    assert_eq!(
        reject_tallies(base),
        reject_tallies(got),
        "{ctx}: reject tallies"
    );
}

/// The full matrix on a mixed chip: shards 2/4/8 × threads 1/2/8 ×
/// both schedulers, all compared against the serial unsharded baseline.
#[test]
fn sharded_matches_unsharded_across_threads_and_schedulers() {
    let chip = gen::tiled_chip(5, 4_000);
    for pattern in [cells::full_adder(), analog::two_stage_opamp()] {
        let base = run(
            &pattern,
            &chip.netlist,
            ShardPolicy::Off,
            1,
            Phase2Scheduler::default(),
            None,
        );
        assert_eq!(
            base.count(),
            chip.planted_count(pattern.name()),
            "{}: ground truth",
            pattern.name()
        );
        for shards in [2u32, 4, 8] {
            for threads in [1usize, 2, 8] {
                for scheduler in [Phase2Scheduler::WorkStealing, Phase2Scheduler::StaticChunks] {
                    let got = run(
                        &pattern,
                        &chip.netlist,
                        ShardPolicy::Count(shards),
                        threads,
                        scheduler,
                        None,
                    );
                    assert_equivalent(
                        &base,
                        &got,
                        &format!(
                            "{} shards={shards} threads={threads} {scheduler:?}",
                            pattern.name()
                        ),
                    );
                }
            }
        }
    }
}

/// Budget-truncated runs stop at the same candidate regardless of
/// sharding: the serial CV-ordered merge is the only place the governor
/// decides truncation, so the truncation point, the instance prefix,
/// and the skip counts are identical.
#[test]
fn budget_truncation_point_is_shard_invariant() {
    let cell = cells::nand2();
    let field = gen::skewed_trap_field(&cell, 16, 24);
    for max_effort in [50u64, 200, 1000, 5000] {
        let budget = Some(WorkBudget {
            max_effort: Some(max_effort),
            ..WorkBudget::default()
        });
        let base = run(
            &cell,
            &field.netlist,
            ShardPolicy::Off,
            1,
            Phase2Scheduler::default(),
            budget.clone(),
        );
        for shards in [2u32, 4, 8] {
            for threads in [1usize, 2, 8] {
                for scheduler in [Phase2Scheduler::WorkStealing, Phase2Scheduler::StaticChunks] {
                    let got = run(
                        &cell,
                        &field.netlist,
                        ShardPolicy::Count(shards),
                        threads,
                        scheduler,
                        budget.clone(),
                    );
                    assert_equivalent(
                        &base,
                        &got,
                        &format!(
                            "effort={max_effort} shards={shards} threads={threads} {scheduler:?}"
                        ),
                    );
                }
            }
        }
    }
}

/// Halo-dedup regression: planted instances straddle every shard cut
/// (a ripple-carry chain is one long connected run of full adders, and
/// a trap blob spans the cut of a 2-shard split), yet the sharded run
/// still reports each instance exactly once and byte-identically.
#[test]
fn instances_straddling_shard_cuts_survive_dedup() {
    // 24 chained FAs = 672 devices; Count(8) cuts every 84 devices,
    // i.e. inside every third adder.
    let adder = gen::ripple_adder(24);
    let fa = cells::full_adder();
    let base = run(
        &fa,
        &adder.netlist,
        ShardPolicy::Off,
        1,
        Phase2Scheduler::default(),
        None,
    );
    assert_eq!(base.count(), 24);
    for shards in [2u32, 4, 8] {
        let got = run(
            &fa,
            &adder.netlist,
            ShardPolicy::Count(shards),
            8,
            Phase2Scheduler::WorkStealing,
            None,
        );
        assert_equivalent(&base, &got, &format!("ripple shards={shards}"));
    }

    // Symmetric trap blob (16 superposed nand2 copies on shared nets)
    // followed by easy instances: the 2-shard cut lands inside the
    // blob, the classic duplicate-producing geometry.
    let cell = cells::nand2();
    let field = gen::skewed_trap_field(&cell, 16, 4);
    let base = run(
        &cell,
        &field.netlist,
        ShardPolicy::Off,
        1,
        Phase2Scheduler::default(),
        None,
    );
    assert_eq!(base.count(), 20);
    for shards in [2u32, 4] {
        let got = run(
            &cell,
            &field.netlist,
            ShardPolicy::Count(shards),
            8,
            Phase2Scheduler::WorkStealing,
            None,
        );
        assert_equivalent(&base, &got, &format!("trap shards={shards}"));
    }
}

/// Auto policy on a small circuit degenerates to off and stays
/// byte-identical (it *is* the unsharded path).
#[test]
fn auto_policy_degenerates_to_off_on_small_circuits() {
    let chip = analog::mixed_signal_chip(3, 8);
    let pattern = analog::two_stage_opamp();
    let base = run(
        &pattern,
        &chip.netlist,
        ShardPolicy::Off,
        2,
        Phase2Scheduler::default(),
        None,
    );
    let got = run(
        &pattern,
        &chip.netlist,
        ShardPolicy::Auto,
        2,
        Phase2Scheduler::default(),
        None,
    );
    assert_equivalent(&base, &got, "auto-off");
    assert_eq!(
        got.metrics.as_ref().unwrap().counters.get("shard.count"),
        0,
        "auto below threshold must not shard"
    );
}

/// The acceptance pin: a 10^6-device tiled chip, `--shards 8` vs
/// `--shards off`, byte-identical outcomes and exact planted counts.
/// Chip-scale: run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "chip-scale (10^6 devices): run with --release -- --ignored"]
fn million_device_tiled_chip_sharded_equals_unsharded() {
    let chip = gen::tiled_chip(1, 1_000_000);
    assert!(chip.netlist.device_count() >= 1_000_000);
    let fa = cells::full_adder();
    let base = run(
        &fa,
        &chip.netlist,
        ShardPolicy::Off,
        8,
        Phase2Scheduler::WorkStealing,
        None,
    );
    assert_eq!(base.count(), chip.planted_count("full_adder"));
    let got = run(
        &fa,
        &chip.netlist,
        ShardPolicy::Count(8),
        8,
        Phase2Scheduler::WorkStealing,
        None,
    );
    assert_equivalent(&base, &got, "million-device pin");
    let m = got.metrics.as_ref().unwrap();
    assert_eq!(m.counters.get("shard.count"), 8);
    assert!(m.counters.get("shard.halo_devices") > 0);
}
