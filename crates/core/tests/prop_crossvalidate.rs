//! Property tests: SubGemini agrees with the exhaustive DFS baseline on
//! randomized circuits, and behaves invariantly under renaming/pin
//! permutation. Cases come from a seeded internal PRNG so every run is
//! reproducible.

use subgemini::{MatchOptions, Matcher};
use subgemini_baseline::{find_all as dfs_find_all, DfsOptions};
use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{instantiate, DeviceId, NetId, Netlist, Vertex};

/// Small library of pattern cells used by the generators.
fn inverter_cell() -> Netlist {
    let mut inv = Netlist::new("inv");
    let mos = inv.add_mos_types();
    let (a, y, vdd, gnd) = (inv.net("a"), inv.net("y"), inv.net("vdd"), inv.net("gnd"));
    inv.mark_port(a);
    inv.mark_port(y);
    inv.mark_global(vdd);
    inv.mark_global(gnd);
    inv.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
    inv.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
    inv
}

fn nand2_cell() -> Netlist {
    let mut nand = Netlist::new("nand2");
    let mos = nand.add_mos_types();
    let (a, b, y, mid) = (nand.net("a"), nand.net("b"), nand.net("y"), nand.net("mid"));
    let (vdd, gnd) = (nand.net("vdd"), nand.net("gnd"));
    nand.mark_port(a);
    nand.mark_port(b);
    nand.mark_port(y);
    nand.mark_global(vdd);
    nand.mark_global(gnd);
    nand.add_device("p1", mos.pmos, &[a, vdd, y]).unwrap();
    nand.add_device("p2", mos.pmos, &[b, vdd, y]).unwrap();
    nand.add_device("n1", mos.nmos, &[a, y, mid]).unwrap();
    nand.add_device("n2", mos.nmos, &[b, mid, gnd]).unwrap();
    nand
}

/// Builds a random soup: `plants` pattern instances on random nets plus
/// `noise` random transistors, all over a shared pool of wires.
fn random_chip(
    pattern: &Netlist,
    plants: usize,
    noise: usize,
    wires: usize,
    picks: &[usize],
) -> Netlist {
    let mut chip = Netlist::new("soup");
    let mos = chip.add_mos_types();
    let nets: Vec<NetId> = (0..wires.max(2))
        .map(|i| chip.net(format!("w{i}")))
        .collect();
    let vdd = chip.net("vdd");
    let gnd = chip.net("gnd");
    chip.mark_global(vdd);
    chip.mark_global(gnd);
    let mut k = 0usize;
    let mut pick = |m: usize| {
        let v = picks[k % picks.len()] % m;
        k += 1;
        v
    };
    for i in 0..plants {
        let bindings: Vec<NetId> = (0..pattern.ports().len())
            .map(|_| nets[pick(nets.len())])
            .collect();
        instantiate(&mut chip, pattern, &format!("u{i}"), &bindings).unwrap();
    }
    for i in 0..noise {
        let ty = if pick(2) == 0 { mos.nmos } else { mos.pmos };
        let g = nets[pick(nets.len())];
        let rail = match pick(3) {
            0 => vdd,
            1 => gnd,
            _ => nets[pick(nets.len())],
        };
        let d = nets[pick(nets.len())];
        chip.add_device(format!("x{i}"), ty, &[g, rail, d]).unwrap();
    }
    chip
}

fn draw_picks(rng: &mut Rng64) -> Vec<usize> {
    (0..32).map(|_| rng.range(0, 997)).collect()
}

/// Key-image sets from both engines must agree.
fn key_images_agree(pattern: &Netlist, chip: &Netlist, respect_globals: bool) {
    let opts = MatchOptions {
        respect_globals,
        ..MatchOptions::default()
    };
    let sub = Matcher::new(pattern, chip).options(opts).find_all();
    let Some(key) = sub.key else {
        // Phase I proved emptiness: the baseline must agree.
        let dfs = dfs_find_all(
            pattern,
            chip,
            &DfsOptions {
                respect_globals,
                ..DfsOptions::default()
            },
        );
        assert!(
            dfs.instances.is_empty(),
            "subgemini found nothing but baseline found {}",
            dfs.instances.len()
        );
        return;
    };
    let dfs = dfs_find_all(
        pattern,
        chip,
        &DfsOptions {
            respect_globals,
            ..DfsOptions::default()
        },
    );
    assert!(!dfs.budget_exhausted, "baseline budget too small for test");
    let dfs_images: Vec<Vertex> = match key {
        Vertex::Device(d) => dfs
            .images_of_device(d)
            .into_iter()
            .map(Vertex::Device)
            .collect(),
        Vertex::Net(n) => dfs.images_of_net(n).into_iter().map(Vertex::Net).collect(),
    };
    let sub_images = sub.key_images();
    assert_eq!(
        sub_images,
        dfs_images,
        "key-image sets diverge for key {key:?} (sub={} dfs={})",
        sub_images.len(),
        dfs_images.len()
    );
}

/// Phase I completeness: the candidate vector must contain every true
/// key image the oracle finds.
fn phase1_is_complete(pattern: &Netlist, chip: &Netlist) {
    let cv = subgemini::candidates::generate(pattern, chip);
    let dfs = dfs_find_all(pattern, chip, &DfsOptions::default());
    let Some(key) = cv.key else {
        assert!(
            dfs.instances.is_empty(),
            "phase 1 found no key but instances exist"
        );
        return;
    };
    let images: Vec<Vertex> = match key {
        Vertex::Device(d) => dfs
            .images_of_device(d)
            .into_iter()
            .map(Vertex::Device)
            .collect(),
        Vertex::Net(n) => dfs.images_of_net(n).into_iter().map(Vertex::Net).collect(),
    };
    for img in images {
        assert!(
            cv.candidates.contains(&img),
            "true image {img:?} missing from CV (|CV|={})",
            cv.candidates.len()
        );
    }
}

#[test]
fn phase1_candidate_vector_is_complete() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xc0de_1000 + case);
        let plants = rng.range(0, 4);
        let noise = rng.range(0, 10);
        let wires = rng.range(2, 8);
        let picks = draw_picks(&mut rng);
        let pat = nand2_cell();
        let chip = random_chip(&pat, plants, noise, wires, &picks);
        phase1_is_complete(&pat, &chip);
        let pat = inverter_cell();
        phase1_is_complete(&pat, &chip);
    }
}

#[test]
fn subgemini_matches_dfs_on_inverters() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xc0de_2000 + case);
        let plants = rng.range(0, 5);
        let noise = rng.range(0, 12);
        let wires = rng.range(2, 8);
        let picks = draw_picks(&mut rng);
        let pat = inverter_cell();
        let chip = random_chip(&pat, plants, noise, wires, &picks);
        key_images_agree(&pat, &chip, true);
    }
}

#[test]
fn subgemini_matches_dfs_on_nands() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xc0de_3000 + case);
        let plants = rng.range(0, 4);
        let noise = rng.range(0, 10);
        let wires = rng.range(3, 9);
        let picks = draw_picks(&mut rng);
        let pat = nand2_cell();
        let chip = random_chip(&pat, plants, noise, wires, &picks);
        key_images_agree(&pat, &chip, true);
    }
}

#[test]
fn subgemini_matches_dfs_ignoring_globals() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xc0de_4000 + case);
        let plants = rng.range(0, 3);
        let noise = rng.range(0, 8);
        let wires = rng.range(2, 7);
        let picks = draw_picks(&mut rng);
        let pat = inverter_cell();
        let chip = random_chip(&pat, plants, noise, wires, &picks);
        key_images_agree(&pat, &chip, false);
    }
}

#[test]
fn planted_instances_are_always_found() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xc0de_5000 + case);
        let plants = rng.range(1, 6);
        // Distinct wires per instance so plants never merge or overlap.
        let pat = nand2_cell();
        let mut chip = Netlist::new("grid");
        let vdd = chip.net("vdd");
        let gnd = chip.net("gnd");
        chip.mark_global(vdd);
        chip.mark_global(gnd);
        for i in 0..plants {
            let a = chip.net(format!("a{i}"));
            let b = chip.net(format!("b{i}"));
            let y = chip.net(format!("y{i}"));
            instantiate(&mut chip, &pat, &format!("u{i}"), &[a, b, y]).unwrap();
        }
        let outcome = Matcher::new(&pat, &chip).find_all();
        assert_eq!(outcome.count(), plants, "case {case}");
        // Every reported instance survives independent verification.
        for m in &outcome.instances {
            subgemini::verify_instance(&pat, &chip, m, true)
                .unwrap_or_else(|e| panic!("case {case}: bad instance: {e}"));
        }
    }
}

#[test]
fn device_renumbering_is_invisible() {
    for case in 0..48u64 {
        let mut rng = Rng64::new(0xc0de_6000 + case);
        let plants = rng.range(1, 4);
        let pat = inverter_cell();
        // Build the same chip with two device insertion orders.
        let build = |reverse: bool| {
            let mut chip = Netlist::new("chip");
            let idx: Vec<usize> = if reverse {
                (0..plants).rev().collect()
            } else {
                (0..plants).collect()
            };
            for i in idx {
                let a = chip.net(format!("a{i}"));
                let y = chip.net(format!("y{i}"));
                instantiate(&mut chip, &pat, &format!("u{i}"), &[a, y]).unwrap();
            }
            chip
        };
        let c1 = build(false);
        let c2 = build(true);
        let o1 = Matcher::new(&pat, &c1).find_all();
        let o2 = Matcher::new(&pat, &c2).find_all();
        assert_eq!(o1.count(), o2.count(), "case {case}");
        // Instance *names* must agree as sets.
        let names = |chip: &Netlist, o: &subgemini::MatchOutcome| {
            let mut v: Vec<String> = o
                .instances
                .iter()
                .flat_map(|m| {
                    m.device_set()
                        .into_iter()
                        .map(|d: DeviceId| chip.device(d).name().to_string())
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(names(&c1, &o1), names(&c2, &o2), "case {case}");
    }
}
