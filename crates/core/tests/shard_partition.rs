//! Property tests for the shard partitioner (DESIGN.md §3i): cores
//! partition the device order, halos equal the BFS pattern-diameter
//! neighborhood of their core (checked against an independent oracle),
//! and shard boundaries depend on the circuit alone — never on the
//! thread count.

use std::collections::HashSet;

use subgemini::shard::pattern_diameter;
use subgemini::{MatchOptions, Matcher, ShardPlan, ShardPolicy};
use subgemini_netlist::rng::Rng64;
use subgemini_netlist::{CompiledCircuit, DeviceId, Netlist};
use subgemini_workloads::gen;
use subgemini_workloads::{analog, cells};

/// Independent halo oracle: plain BFS from the core, `k` device-hops
/// through non-global nets, written without any of `ShardPlan`'s
/// stamp/frontier machinery.
fn bfs_halo_oracle(g: &CompiledCircuit, core: std::ops::Range<usize>, k: usize) -> Vec<u32> {
    let mut dist = vec![usize::MAX; g.device_count()];
    let mut queue = std::collections::VecDeque::new();
    for d in core.clone() {
        dist[d] = 0;
        queue.push_back(d);
    }
    while let Some(d) = queue.pop_front() {
        if dist[d] == k {
            continue;
        }
        for (n, _) in g.device_neighbors(DeviceId::new(d as u32)) {
            if g.is_global(n) {
                continue;
            }
            for (d2, _) in g.net_neighbors(n) {
                if dist[d2.index()] == usize::MAX {
                    dist[d2.index()] = dist[d] + 1;
                    queue.push_back(d2.index());
                }
            }
        }
    }
    let mut halo: Vec<u32> = (0..g.device_count())
        .filter(|&d| dist[d] != usize::MAX && !core.contains(&d))
        .map(|d| d as u32)
        .collect();
    halo.sort_unstable();
    halo
}

/// One of the generator workloads, cycled by case index.
fn workload(case: usize, rng: &mut Rng64) -> Netlist {
    let seed = rng.next_u64();
    match case % 6 {
        0 => gen::random_soup(seed, 40 + (seed % 60) as usize).netlist,
        1 => analog::mixed_signal_chip(seed, 4 + (seed % 6) as usize).netlist,
        2 => gen::near_miss_field(&cells::nand2(), 12 + (seed % 10) as usize, seed).netlist,
        3 => gen::sram_array(4 + (seed % 5) as usize, 8).netlist,
        4 => gen::ripple_adder(4 + (seed % 8) as usize).netlist,
        _ => gen::tiled_chip(seed, 1_500).netlist,
    }
}

#[test]
fn cores_partition_and_halos_match_bfs_oracle_64_cases() {
    let mut rng = Rng64::new(0x5aa4_d0b3_0001_0203);
    for case in 0..64usize {
        let main = workload(case, &mut rng);
        let g = CompiledCircuit::compile(&main);
        let devices = g.device_count();
        let shards = 2 + (rng.next_u64() % 7) as usize;
        let Some(shards) = ShardPolicy::Count(shards as u32).resolve(devices) else {
            continue;
        };
        let k = (rng.next_u64() % 4) as usize;
        let plan = ShardPlan::build(&g, shards, Some(k));

        // Every core device lies in exactly one shard, and owner lookup
        // agrees with the ranges.
        let mut covered = vec![0u32; devices];
        for s in 0..shards {
            for d in plan.core(s) {
                covered[d] += 1;
                assert_eq!(plan.owner_of_device(d), s, "case {case}");
            }
        }
        assert!(
            covered.iter().all(|&c| c == 1),
            "case {case}: cores must partition {devices} devices into {shards} shards"
        );

        // Every halo equals the k-hop BFS neighborhood of its core.
        for s in 0..shards {
            let oracle = bfs_halo_oracle(&g, plan.core(s), k);
            assert_eq!(
                plan.halo(s),
                oracle.as_slice(),
                "case {case} shard {s}: halo must be the exact {k}-hop neighborhood"
            );
            // And halos never intersect their own core.
            let core: HashSet<usize> = plan.core(s).collect();
            assert!(plan.halo(s).iter().all(|&d| !core.contains(&(d as usize))));
        }
    }
}

#[test]
fn degenerate_diameter_halo_covers_the_rest_of_the_graph() {
    let g = CompiledCircuit::compile(&gen::random_soup(3, 40).netlist);
    let plan = ShardPlan::build(&g, 3, None);
    for s in 0..3 {
        let core: HashSet<usize> = plan.core(s).collect();
        let expect: Vec<u32> = (0..g.device_count() as u32)
            .filter(|&d| !core.contains(&(d as usize)))
            .collect();
        assert_eq!(plan.halo(s), expect.as_slice());
    }
}

#[test]
fn pattern_diameter_matches_hand_counts() {
    // two_stage_opamp: 8 devices around a handful of shared nets.
    let s = CompiledCircuit::compile(&analog::two_stage_opamp());
    let d = pattern_diameter(&s).expect("opamp is connected");
    assert!((1..=7).contains(&d), "implausible diameter {d}");
    // An inverter's two devices share a/y: diameter 1.
    assert_eq!(
        pattern_diameter(&CompiledCircuit::compile(&cells::inv())),
        Some(1)
    );
}

/// Shard boundaries are a pure function of the circuit: resolving the
/// policy and building the plan never consults the thread count, so
/// searches at 1, 2, and 8 threads report identical shard geometry.
#[test]
fn shard_boundaries_are_thread_count_invariant() {
    let chip = gen::tiled_chip(9, 2_500);
    let pattern = cells::full_adder();
    let mut metrics = Vec::new();
    for threads in [1usize, 2, 8] {
        let outcome = Matcher::new(&pattern, &chip.netlist)
            .options(MatchOptions {
                threads,
                shards: ShardPolicy::Count(4),
                collect_metrics: true,
                ..MatchOptions::default()
            })
            .find_all();
        let m = outcome.metrics.as_ref().expect("metrics requested");
        metrics.push((
            m.counters.get("shard.count"),
            m.counters.get("shard.halo_devices"),
            outcome.count(),
        ));
    }
    assert_eq!(metrics[0], metrics[1]);
    assert_eq!(metrics[0], metrics[2]);
    assert_eq!(metrics[0].0, 4, "Count(4) resolves to 4 shards");
    assert_eq!(
        metrics[0].2,
        chip.planted_count("full_adder"),
        "exact ground truth"
    );

    // The plan itself is deterministic across rebuilds too.
    let g = CompiledCircuit::compile(&chip.netlist);
    let d = pattern_diameter(&CompiledCircuit::compile(&pattern));
    let a = ShardPlan::build(&g, 4, d);
    let b = ShardPlan::build(&g, 4, d);
    for s in 0..4 {
        assert_eq!(a.core(s), b.core(s));
        assert_eq!(a.halo(s), b.halo(s));
    }
}
