//! Error type for netlist construction and validation.

use std::error::Error;
use std::fmt;

/// Errors produced while building or validating a [`Netlist`](crate::Netlist).
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{Netlist, NetlistError};
///
/// let mut nl = Netlist::new("chip");
/// let ty = nl.add_mos_types();
/// let a = nl.net("a");
/// // An NMOS has exactly three terminals (g, s, d); two pins is an error.
/// let err = nl.add_device("m1", ty.nmos, &[a, a]).unwrap_err();
/// assert!(matches!(err, NetlistError::PinCountMismatch { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetlistError {
    /// A device with the same name already exists.
    DuplicateDevice {
        /// The offending device name.
        name: String,
    },
    /// A device type with the same name already exists.
    DuplicateType {
        /// The offending type name.
        name: String,
    },
    /// A referenced device type id is not in this netlist's type table.
    UnknownType {
        /// The offending type name or id rendering.
        name: String,
    },
    /// A referenced net does not exist.
    UnknownNet {
        /// The offending net name.
        name: String,
    },
    /// The number of pins supplied does not match the device type's
    /// terminal count.
    PinCountMismatch {
        /// Device being added.
        device: String,
        /// Terminals declared by the device type.
        expected: usize,
        /// Pins supplied by the caller.
        got: usize,
    },
    /// A device type must declare at least one terminal.
    EmptyType {
        /// The offending type name.
        name: String,
    },
    /// Structural validation found an inconsistency (message explains).
    Inconsistent {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateDevice { name } => {
                write!(f, "duplicate device name `{name}`")
            }
            NetlistError::DuplicateType { name } => {
                write!(f, "duplicate device type `{name}`")
            }
            NetlistError::UnknownType { name } => {
                write!(f, "unknown device type `{name}`")
            }
            NetlistError::UnknownNet { name } => write!(f, "unknown net `{name}`"),
            NetlistError::PinCountMismatch {
                device,
                expected,
                got,
            } => write!(
                f,
                "device `{device}` supplies {got} pins but its type declares {expected} terminals"
            ),
            NetlistError::EmptyType { name } => {
                write!(f, "device type `{name}` declares no terminals")
            }
            NetlistError::Inconsistent { detail } => {
                write!(f, "inconsistent netlist: {detail}")
            }
        }
    }
}

impl Error for NetlistError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = NetlistError::UnknownNet { name: "vdd".into() };
        let msg = e.to_string();
        assert!(msg.starts_with("unknown net"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn error_trait_object_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<NetlistError>();
    }

    #[test]
    fn pin_count_message_mentions_both_counts() {
        let e = NetlistError::PinCountMismatch {
            device: "m1".into(),
            expected: 3,
            got: 2,
        };
        let msg = e.to_string();
        assert!(msg.contains('3') && msg.contains('2') && msg.contains("m1"));
    }
}
