//! The [`Netlist`]: a flat circuit as interconnected devices and nets.

use std::collections::HashMap;
use std::fmt;

use crate::error::NetlistError;
use crate::id::{DeviceId, DeviceTypeId, NetId};
use crate::types::DeviceType;

/// One pin: a (device, terminal-index) pair attached to a net.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Pin {
    /// The device the pin belongs to.
    pub device: DeviceId,
    /// Index into the device type's terminal list.
    pub terminal: u16,
}

/// A device instance: a named occurrence of a [`DeviceType`] with one net
/// per terminal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Device {
    name: String,
    ty: DeviceTypeId,
    pins: Vec<NetId>,
}

impl Device {
    /// The instance name (unique within the netlist).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The device type id.
    pub fn type_id(&self) -> DeviceTypeId {
        self.ty
    }

    /// The net attached to each terminal, in terminal order.
    pub fn pins(&self) -> &[NetId] {
        &self.pins
    }

    /// The net attached to terminal `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds for the device type.
    pub fn pin(&self, i: usize) -> NetId {
        self.pins[i]
    }
}

/// A net (wire) connecting device terminals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Net {
    name: String,
    pins: Vec<Pin>,
    is_port: bool,
    is_global: bool,
}

impl Net {
    /// The net name (unique within the netlist).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All pins attached to this net.
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Number of device terminals on this net (the paper's `degree(n)`).
    pub fn degree(&self) -> usize {
        self.pins.len()
    }

    /// Whether the net is an external port of the (sub)circuit.
    ///
    /// In a pattern netlist, ports are the *external nets* of §II: their
    /// images in the main circuit may have additional connections, so
    /// Phase I marks their labels corrupt from the start.
    pub fn is_port(&self) -> bool {
        self.is_port
    }

    /// Whether the net is a special global signal (e.g. `Vdd`, `GND`).
    ///
    /// Global nets are matched by name and carry a fixed label (§IV.A).
    pub fn is_global(&self) -> bool {
        self.is_global
    }
}

/// Ids of the standard CMOS transistor types registered by
/// [`Netlist::add_mos_types`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MosTypes {
    /// The N-channel MOSFET type (`nmos`).
    pub nmos: DeviceTypeId,
    /// The P-channel MOSFET type (`pmos`).
    pub pmos: DeviceTypeId,
}

/// A flat circuit netlist: device types, devices, and nets.
///
/// This is the substrate data structure of the whole reproduction. It is
/// deliberately technology-independent: a "device" may be a transistor,
/// a resistor, or a composite cell produced by extraction — anything with
/// a named type and classed terminals.
///
/// # Examples
///
/// Build the CMOS inverter of paper Fig. 7:
///
/// ```
/// use subgemini_netlist::Netlist;
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut nl = Netlist::new("inverter");
/// let mos = nl.add_mos_types();
/// let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
/// let (a, y) = (nl.net("a"), nl.net("y"));
/// nl.mark_global(vdd);
/// nl.mark_global(gnd);
/// nl.mark_port(a);
/// nl.mark_port(y);
/// nl.add_device("mp", mos.pmos, &[a, vdd, y])?; // g, s, d
/// nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// assert_eq!(nl.device_count(), 2);
/// assert_eq!(nl.net_count(), 4);
/// assert_eq!(nl.net_ref(y).degree(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Netlist {
    name: String,
    types: Vec<DeviceType>,
    type_ids: HashMap<String, DeviceTypeId>,
    devices: Vec<Device>,
    device_ids: HashMap<String, DeviceId>,
    nets: Vec<Net>,
    net_ids: HashMap<String, NetId>,
    ports: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// The netlist (circuit) name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the netlist.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    /// Registers a device type, or returns the existing id if an
    /// identical type with the same name is already present.
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::DuplicateType`] if a *different* type with
    /// the same name exists, and [`NetlistError::EmptyType`] if the type
    /// has no terminals.
    pub fn add_type(&mut self, ty: DeviceType) -> Result<DeviceTypeId, NetlistError> {
        if ty.terminal_count() == 0 {
            return Err(NetlistError::EmptyType {
                name: ty.name().to_string(),
            });
        }
        if let Some(&id) = self.type_ids.get(ty.name()) {
            if self.types[id.index()] == ty {
                return Ok(id);
            }
            return Err(NetlistError::DuplicateType {
                name: ty.name().to_string(),
            });
        }
        let id = DeviceTypeId::new(self.types.len() as u32);
        self.type_ids.insert(ty.name().to_string(), id);
        self.types.push(ty);
        Ok(id)
    }

    /// Registers (or fetches) the standard `nmos`/`pmos` transistor
    /// types.
    pub fn add_mos_types(&mut self) -> MosTypes {
        let nmos = self
            .add_type(DeviceType::mos("nmos"))
            .expect("builtin nmos type is valid");
        let pmos = self
            .add_type(DeviceType::mos("pmos"))
            .expect("builtin pmos type is valid");
        MosTypes { nmos, pmos }
    }

    /// Looks up a type id by name.
    pub fn type_id(&self, name: &str) -> Option<DeviceTypeId> {
        self.type_ids.get(name).copied()
    }

    /// The type table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this netlist.
    pub fn device_type(&self, id: DeviceTypeId) -> &DeviceType {
        &self.types[id.index()]
    }

    /// All registered device types.
    pub fn device_types(&self) -> &[DeviceType] {
        &self.types
    }

    // ------------------------------------------------------------------
    // Nets
    // ------------------------------------------------------------------

    /// Returns the net named `name`, creating it if necessary.
    pub fn net(&mut self, name: impl AsRef<str>) -> NetId {
        let name = name.as_ref();
        if let Some(&id) = self.net_ids.get(name) {
            return id;
        }
        let id = NetId::new(self.nets.len() as u32);
        self.net_ids.insert(name.to_string(), id);
        self.nets.push(Net {
            name: name.to_string(),
            pins: Vec::new(),
            is_port: false,
            is_global: false,
        });
        id
    }

    /// Looks up an existing net by name without creating it.
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.net_ids.get(name).copied()
    }

    /// The net record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this netlist.
    #[inline]
    pub fn net_ref(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// Alias for [`Netlist::net_ref`], reads better at call sites that
    /// already hold an id.
    #[inline]
    pub fn net_by_id(&self, id: NetId) -> &Net {
        self.net_ref(id)
    }

    /// Marks a net as an external port (appends to the ordered port
    /// list; idempotent).
    pub fn mark_port(&mut self, id: NetId) {
        let net = &mut self.nets[id.index()];
        if !net.is_port {
            net.is_port = true;
            self.ports.push(id);
        }
    }

    /// Marks a net as a special global signal (`Vdd`/`GND`-like).
    pub fn mark_global(&mut self, id: NetId) {
        self.nets[id.index()].is_global = true;
    }

    /// Clears the global flag on a net (used by ablation experiments that
    /// deliberately ignore special signals).
    pub fn clear_global(&mut self, id: NetId) {
        self.nets[id.index()].is_global = false;
    }

    /// The ordered list of port nets.
    pub fn ports(&self) -> &[NetId] {
        &self.ports
    }

    /// All global (special) nets.
    pub fn global_nets(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len() as u32)
            .map(NetId::new)
            .filter(|&n| self.nets[n.index()].is_global)
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl ExactSizeIterator<Item = NetId> {
        (0..self.nets.len() as u32).map(NetId::new)
    }

    // ------------------------------------------------------------------
    // Devices
    // ------------------------------------------------------------------

    /// Adds a device instance of type `ty` with one net per terminal (in
    /// the type's terminal order).
    ///
    /// # Errors
    ///
    /// * [`NetlistError::DuplicateDevice`] if the name is taken.
    /// * [`NetlistError::UnknownType`] if `ty` is not in the type table.
    /// * [`NetlistError::PinCountMismatch`] if `pins.len()` differs from
    ///   the type's terminal count.
    pub fn add_device(
        &mut self,
        name: impl Into<String>,
        ty: DeviceTypeId,
        pins: &[NetId],
    ) -> Result<DeviceId, NetlistError> {
        let name = name.into();
        if self.device_ids.contains_key(&name) {
            return Err(NetlistError::DuplicateDevice { name });
        }
        let Some(tyref) = self.types.get(ty.index()) else {
            return Err(NetlistError::UnknownType {
                name: format!("{ty}"),
            });
        };
        if pins.len() != tyref.terminal_count() {
            return Err(NetlistError::PinCountMismatch {
                device: name,
                expected: tyref.terminal_count(),
                got: pins.len(),
            });
        }
        for &n in pins {
            if n.index() >= self.nets.len() {
                return Err(NetlistError::UnknownNet {
                    name: format!("{n}"),
                });
            }
        }
        let id = DeviceId::new(self.devices.len() as u32);
        for (i, &n) in pins.iter().enumerate() {
            self.nets[n.index()].pins.push(Pin {
                device: id,
                terminal: i as u16,
            });
        }
        self.device_ids.insert(name.clone(), id);
        self.devices.push(Device {
            name,
            ty,
            pins: pins.to_vec(),
        });
        Ok(id)
    }

    /// Looks up a device by name.
    pub fn find_device(&self, name: &str) -> Option<DeviceId> {
        self.device_ids.get(name).copied()
    }

    /// The device record for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this netlist.
    #[inline]
    pub fn device(&self, id: DeviceId) -> &Device {
        &self.devices[id.index()]
    }

    /// The device type of device `id`.
    #[inline]
    pub fn device_type_of(&self, id: DeviceId) -> &DeviceType {
        &self.types[self.devices[id.index()].ty.index()]
    }

    /// Number of devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Iterates over all device ids.
    pub fn device_ids(&self) -> impl ExactSizeIterator<Item = DeviceId> {
        (0..self.devices.len() as u32).map(DeviceId::new)
    }

    /// Total number of pins (graph edges).
    pub fn pin_count(&self) -> usize {
        self.devices.iter().map(|d| d.pins.len()).sum()
    }

    /// Carves the induced subcircuit over `devices` out as a standalone
    /// pattern netlist: nets whose every pin lies inside the selection
    /// become internal, nets with outside connections become ports, and
    /// global nets stay global. The result is directly usable as a
    /// SubGemini pattern — by construction the original circuit
    /// contains at least one instance of it.
    ///
    /// Devices keep their names; duplicate selections are ignored.
    ///
    /// # Panics
    ///
    /// Panics if any id was not issued by this netlist.
    ///
    /// # Examples
    ///
    /// ```
    /// use subgemini_netlist::Netlist;
    ///
    /// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
    /// let mut nl = Netlist::new("chip");
    /// let mos = nl.add_mos_types();
    /// let (a, m, b) = (nl.net("a"), nl.net("m"), nl.net("b"));
    /// let d0 = nl.add_device("t0", mos.nmos, &[a, a, m])?;
    /// let d1 = nl.add_device("t1", mos.nmos, &[b, m, b])?;
    /// nl.add_device("t2", mos.nmos, &[m, b, a])?; // outside the carve
    /// let pat = nl.subnetlist("pair", &[d0, d1]);
    /// assert_eq!(pat.device_count(), 2);
    /// // `m` has an outside pin (t2's gate), so it is a port.
    /// let m_p = pat.find_net("m").unwrap();
    /// assert!(pat.net_ref(m_p).is_port());
    /// # Ok(())
    /// # }
    /// ```
    pub fn subnetlist(&self, name: &str, devices: &[DeviceId]) -> Netlist {
        let mut selected = vec![false; self.devices.len()];
        for &d in devices {
            selected[d.index()] = true;
        }
        let mut out = Netlist::new(name);
        for ty in &self.types {
            out.add_type(ty.clone()).expect("types are valid");
        }
        // First pass: create nets with the right flags.
        let mut net_map: Vec<Option<NetId>> = vec![None; self.nets.len()];
        for (ni, net) in self.nets.iter().enumerate() {
            let touched = net.pins.iter().any(|p| selected[p.device.index()]);
            if !touched {
                continue;
            }
            let id = out.net(&net.name);
            if net.is_global {
                out.mark_global(id);
            } else {
                let fully_inside = net.pins.iter().all(|p| selected[p.device.index()]);
                if !fully_inside || net.is_port {
                    out.mark_port(id);
                }
            }
            net_map[ni] = Some(id);
        }
        for (di, dev) in self.devices.iter().enumerate() {
            if !selected[di] {
                continue;
            }
            let pins: Vec<NetId> = dev
                .pins
                .iter()
                .map(|&n| net_map[n.index()].expect("selected pins were mapped"))
                .collect();
            out.add_device(dev.name.clone(), dev.ty, &pins)
                .expect("carving preserves validity");
        }
        out
    }

    /// Returns a copy with all isolated (degree-0) nets removed and net
    /// ids renumbered densely.
    ///
    /// Isolated nets carry no structure: matchers reject them in
    /// patterns and text formats like SPICE cannot represent them, so
    /// generators and parsers use this to normalize.
    ///
    /// # Examples
    ///
    /// ```
    /// use subgemini_netlist::Netlist;
    /// let mut nl = Netlist::new("x");
    /// nl.net("floating");
    /// let compacted = nl.compact();
    /// assert_eq!(compacted.net_count(), 0);
    /// ```
    pub fn compact(&self) -> Netlist {
        let mut out = Netlist::new(self.name.clone());
        for ty in &self.types {
            out.add_type(ty.clone()).expect("types are valid");
        }
        for n in self.net_ids() {
            let net = self.net_ref(n);
            if net.degree() == 0 {
                continue;
            }
            let id = out.net(net.name());
            if net.is_global() {
                out.mark_global(id);
            }
        }
        for &p in &self.ports {
            if self.net_ref(p).degree() > 0 {
                let id = out.net(self.net_ref(p).name());
                out.mark_port(id);
            }
        }
        for d in self.device_ids() {
            let dev = self.device(d);
            let pins: Vec<NetId> = dev
                .pins()
                .iter()
                .map(|&n| out.net(self.net_ref(n).name()))
                .collect();
            out.add_device(dev.name().to_string(), dev.type_id(), &pins)
                .expect("copying preserves validity");
        }
        out
    }

    // ------------------------------------------------------------------
    // Validation
    // ------------------------------------------------------------------

    /// Checks internal consistency: every device pin is mirrored by a net
    /// pin and vice versa, and pin counts match terminal counts.
    ///
    /// Construction through the public API maintains these invariants;
    /// this is a guard for code that assembles netlists programmatically
    /// (parsers, generators, extraction).
    ///
    /// # Errors
    ///
    /// Returns [`NetlistError::Inconsistent`] describing the first
    /// violation found.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (di, dev) in self.devices.iter().enumerate() {
            let ty = &self.types[dev.ty.index()];
            if dev.pins.len() != ty.terminal_count() {
                return Err(NetlistError::Inconsistent {
                    detail: format!(
                        "device `{}` has {} pins, type `{}` has {} terminals",
                        dev.name,
                        dev.pins.len(),
                        ty.name(),
                        ty.terminal_count()
                    ),
                });
            }
            for (ti, &net) in dev.pins.iter().enumerate() {
                let Some(netrec) = self.nets.get(net.index()) else {
                    return Err(NetlistError::Inconsistent {
                        detail: format!("device `{}` pin {ti} references missing {net}", dev.name),
                    });
                };
                let back = Pin {
                    device: DeviceId::new(di as u32),
                    terminal: ti as u16,
                };
                if !netrec.pins.contains(&back) {
                    return Err(NetlistError::Inconsistent {
                        detail: format!(
                            "net `{}` lacks back-reference to device `{}` terminal {ti}",
                            netrec.name, dev.name
                        ),
                    });
                }
            }
        }
        for net in &self.nets {
            for pin in &net.pins {
                let Some(dev) = self.devices.get(pin.device.index()) else {
                    return Err(NetlistError::Inconsistent {
                        detail: format!("net `{}` references missing {}", net.name, pin.device),
                    });
                };
                if dev.pins.get(pin.terminal as usize).copied()
                    != self.net_ids.get(&net.name).copied()
                {
                    return Err(NetlistError::Inconsistent {
                        detail: format!(
                            "net `{}` pin back-reference mismatch on device `{}`",
                            net.name, dev.name
                        ),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Netlist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "netlist `{}`: {} devices, {} nets, {} ports",
            self.name,
            self.devices.len(),
            self.nets.len(),
            self.ports.len()
        )?;
        for dev in &self.devices {
            let ty = &self.types[dev.ty.index()];
            write!(f, "  {} {}(", dev.name, ty.name())?;
            for (i, &n) in dev.pins.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}={}", ty.terminal(i).name(), self.nets[n.index()].name)?;
            }
            writeln!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inverter() -> (Netlist, MosTypes) {
        let mut nl = Netlist::new("inv");
        let mos = nl.add_mos_types();
        let (vdd, gnd) = (nl.net("vdd"), nl.net("gnd"));
        let (a, y) = (nl.net("a"), nl.net("y"));
        nl.mark_global(vdd);
        nl.mark_global(gnd);
        nl.mark_port(a);
        nl.mark_port(y);
        nl.add_device("mp", mos.pmos, &[a, vdd, y]).unwrap();
        nl.add_device("mn", mos.nmos, &[a, gnd, y]).unwrap();
        (nl, mos)
    }

    #[test]
    fn build_and_query_inverter() {
        let (nl, _) = inverter();
        assert_eq!(nl.device_count(), 2);
        assert_eq!(nl.net_count(), 4);
        assert_eq!(nl.pin_count(), 6);
        let y = nl.find_net("y").unwrap();
        assert_eq!(nl.net_ref(y).degree(), 2);
        assert!(nl.net_ref(nl.find_net("vdd").unwrap()).is_global());
        assert!(nl.net_ref(y).is_port());
        assert_eq!(nl.ports().len(), 2);
        assert_eq!(nl.global_nets().count(), 2);
        nl.validate().unwrap();
    }

    #[test]
    fn net_get_or_create_is_idempotent() {
        let mut nl = Netlist::new("x");
        let a1 = nl.net("a");
        let a2 = nl.net("a");
        assert_eq!(a1, a2);
        assert_eq!(nl.net_count(), 1);
        assert_eq!(nl.find_net("b"), None);
    }

    #[test]
    fn duplicate_device_rejected() {
        let (mut nl, mos) = inverter();
        let a = nl.net("a");
        let err = nl.add_device("mp", mos.nmos, &[a, a, a]).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateDevice { .. }));
    }

    #[test]
    fn pin_count_mismatch_rejected() {
        let (mut nl, mos) = inverter();
        let a = nl.net("a");
        let err = nl.add_device("m9", mos.nmos, &[a]).unwrap_err();
        assert!(matches!(
            err,
            NetlistError::PinCountMismatch {
                expected: 3,
                got: 1,
                ..
            }
        ));
    }

    #[test]
    fn unknown_net_rejected() {
        let (mut nl, mos) = inverter();
        let bogus = NetId::new(999);
        let a = nl.net("a");
        let err = nl.add_device("m9", mos.nmos, &[a, a, bogus]).unwrap_err();
        assert!(matches!(err, NetlistError::UnknownNet { .. }));
    }

    #[test]
    fn add_type_idempotent_for_identical_types() {
        let mut nl = Netlist::new("x");
        let t1 = nl.add_type(DeviceType::mos("nmos")).unwrap();
        let t2 = nl.add_type(DeviceType::mos("nmos")).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(nl.device_types().len(), 1);
    }

    #[test]
    fn add_type_rejects_conflicting_redefinition() {
        let mut nl = Netlist::new("x");
        nl.add_type(DeviceType::mos("q")).unwrap();
        let err = nl.add_type(DeviceType::two_terminal("q")).unwrap_err();
        assert!(matches!(err, NetlistError::DuplicateType { .. }));
    }

    #[test]
    fn mark_port_is_idempotent_and_ordered() {
        let mut nl = Netlist::new("x");
        let a = nl.net("a");
        let b = nl.net("b");
        nl.mark_port(b);
        nl.mark_port(a);
        nl.mark_port(b);
        assert_eq!(nl.ports(), &[b, a]);
    }

    #[test]
    fn net_pins_record_terminals() {
        let (nl, _) = inverter();
        let y = nl.find_net("y").unwrap();
        let pins = nl.net_ref(y).pins();
        assert_eq!(pins.len(), 2);
        // Both connections are through the `d` terminal (index 2).
        assert!(pins.iter().all(|p| p.terminal == 2));
    }

    #[test]
    fn display_mentions_every_device() {
        let (nl, _) = inverter();
        let s = nl.to_string();
        assert!(s.contains("mp") && s.contains("mn") && s.contains("pmos"));
        assert!(s.contains("g=a"));
    }

    #[test]
    fn clear_global_unsets_flag() {
        let (mut nl, _) = inverter();
        let vdd = nl.find_net("vdd").unwrap();
        nl.clear_global(vdd);
        assert!(!nl.net_ref(vdd).is_global());
        assert_eq!(nl.global_nets().count(), 1);
    }

    #[test]
    fn subnetlist_carves_with_port_detection() {
        let mut nl = Netlist::new("chip");
        let mos = nl.add_mos_types();
        let (a, m, b, vdd) = (nl.net("a"), nl.net("m"), nl.net("b"), nl.net("vdd"));
        nl.mark_global(vdd);
        let d0 = nl.add_device("t0", mos.pmos, &[a, vdd, m]).unwrap();
        let d1 = nl.add_device("t1", mos.nmos, &[m, a, b]).unwrap();
        nl.add_device("t2", mos.nmos, &[b, m, a]).unwrap();
        let pat = nl.subnetlist("carved", &[d0, d1]);
        pat.validate().unwrap();
        assert_eq!(pat.device_count(), 2);
        // vdd stays global, not a port.
        let vdd_p = pat.find_net("vdd").unwrap();
        assert!(pat.net_ref(vdd_p).is_global());
        assert!(!pat.net_ref(vdd_p).is_port());
        // a, m, b all have outside pins (t2) -> ports.
        for name in ["a", "m", "b"] {
            let n = pat.find_net(name).unwrap();
            assert!(pat.net_ref(n).is_port(), "{name}");
        }
    }

    #[test]
    fn subnetlist_internal_nets_stay_internal() {
        let mut nl = Netlist::new("chip");
        let mos = nl.add_mos_types();
        let (a, m, b) = (nl.net("a"), nl.net("m"), nl.net("b"));
        let d0 = nl.add_device("t0", mos.nmos, &[a, a, m]).unwrap();
        let d1 = nl.add_device("t1", mos.nmos, &[b, m, b]).unwrap();
        // Whole circuit carved: everything internal.
        let pat = nl.subnetlist("all", &[d0, d1]);
        assert_eq!(pat.ports().len(), 0);
        let m_p = pat.find_net("m").unwrap();
        assert!(!pat.net_ref(m_p).is_port());
    }

    #[test]
    fn subnetlist_duplicate_selection_ignored() {
        let mut nl = Netlist::new("chip");
        let mos = nl.add_mos_types();
        let (a, b) = (nl.net("a"), nl.net("b"));
        let d0 = nl.add_device("t0", mos.nmos, &[a, b, b]).unwrap();
        let pat = nl.subnetlist("one", &[d0, d0, d0]);
        assert_eq!(pat.device_count(), 1);
    }

    #[test]
    fn validate_detects_tampering() {
        // Build a netlist and then corrupt it through a private-field
        // clone to ensure validate() actually checks cross-references.
        let (nl, _) = inverter();
        let mut bad = nl.clone();
        bad.nets[0].pins.clear(); // drop back-references on net 0
        assert!(bad.validate().is_err());
    }
}
