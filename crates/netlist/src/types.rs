//! Device types and terminal equivalence classes.
//!
//! Each device has a *type* (`nmos`, `pmos`, `res`, a composite cell name,
//! …) and a fixed set of named *terminals*. Terminals are grouped into
//! *equivalence classes*: nets attached to terminals of the same class may
//! be interchanged without changing the circuit's function. The canonical
//! example from the paper is the MOS transistor, whose `s` and `d`
//! terminals share the `sd` class while `g` is alone in its own class.
//!
//! Terminal classes drive the labeling function (Fig. 3 of the paper): the
//! contribution of a neighbor is weighted by a per-class multiplier, so
//! swapping source and drain leaves every label unchanged while swapping
//! gate and source does not.

use crate::hashing;

/// A single terminal declaration of a [`DeviceType`].
///
/// # Examples
///
/// ```
/// use subgemini_netlist::TerminalSpec;
/// let t = TerminalSpec::new("s", "sd");
/// assert_eq!(t.name(), "s");
/// assert_eq!(t.class(), "sd");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TerminalSpec {
    name: String,
    class: String,
}

impl TerminalSpec {
    /// Creates a terminal named `name` belonging to equivalence class
    /// `class`.
    ///
    /// Terminals that must not be interchangeable should use distinct
    /// class names; the common idiom for a fully asymmetric device is
    /// `TerminalSpec::new(n, n)` for each terminal `n`.
    pub fn new(name: impl Into<String>, class: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            class: class.into(),
        }
    }

    /// The terminal's name (unique within its device type).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The terminal's equivalence class name.
    pub fn class(&self) -> &str {
        &self.class
    }
}

/// A device type: a name plus an ordered list of terminals.
///
/// Two netlists agree on a device type purely by *name* (and terminal
/// list): the labeling engine derives all hash material from the names, so
/// a pattern netlist and a main netlist built independently still label
/// identically. This is what makes the algorithm technology-independent —
/// any "device" is just a named vertex with classed terminals.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::DeviceType;
/// let nmos = DeviceType::mos("nmos");
/// assert_eq!(nmos.terminal_count(), 3);
/// assert_eq!(nmos.terminal(0).name(), "g");
/// // Source and drain share a class; gate does not.
/// assert_eq!(nmos.terminal(1).class(), nmos.terminal(2).class());
/// assert_ne!(nmos.terminal(0).class(), nmos.terminal(1).class());
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceType {
    name: String,
    terminals: Vec<TerminalSpec>,
    /// Cached per-terminal class multipliers used by the labeling engine.
    class_mults: Vec<u64>,
    /// Cached initial device label (a hash of the type name).
    init_label: u64,
}

impl DeviceType {
    /// Creates a device type with the given terminals.
    ///
    /// # Panics
    ///
    /// Panics if `terminals` is empty or contains duplicate terminal
    /// names; use [`DeviceType::try_new`] for a fallible variant.
    pub fn new(name: impl Into<String>, terminals: Vec<TerminalSpec>) -> Self {
        Self::try_new(name, terminals).expect("invalid device type")
    }

    /// Fallible constructor; see [`DeviceType::new`].
    ///
    /// # Errors
    ///
    /// Returns a message if `terminals` is empty or has duplicate names.
    pub fn try_new(name: impl Into<String>, terminals: Vec<TerminalSpec>) -> Result<Self, String> {
        let name = name.into();
        if terminals.is_empty() {
            return Err(format!("device type `{name}` declares no terminals"));
        }
        for (i, t) in terminals.iter().enumerate() {
            if terminals[..i].iter().any(|u| u.name == t.name) {
                return Err(format!(
                    "device type `{name}` declares terminal `{}` twice",
                    t.name
                ));
            }
        }
        let init_label = hashing::mix(hashing::fnv1a("type:") ^ hashing::fnv1a(&name));
        let class_mults = terminals
            .iter()
            .map(|t| hashing::class_multiplier(&name, &t.class))
            .collect();
        Ok(Self {
            name,
            terminals,
            class_mults,
            init_label,
        })
    }

    /// Standard 3-terminal MOS transistor: `g` (class `g`), `s` and `d`
    /// (shared class `sd`).
    pub fn mos(name: impl Into<String>) -> Self {
        Self::new(
            name,
            vec![
                TerminalSpec::new("g", "g"),
                TerminalSpec::new("s", "sd"),
                TerminalSpec::new("d", "sd"),
            ],
        )
    }

    /// Symmetric two-terminal device (resistor, capacitor, inductor,
    /// fuse): both terminals share one class.
    pub fn two_terminal(name: impl Into<String>) -> Self {
        Self::new(
            name,
            vec![TerminalSpec::new("a", "ab"), TerminalSpec::new("b", "ab")],
        )
    }

    /// Polarized two-terminal device (diode): terminals in distinct
    /// classes.
    pub fn polarized(name: impl Into<String>) -> Self {
        Self::new(
            name,
            vec![TerminalSpec::new("p", "p"), TerminalSpec::new("n", "n")],
        )
    }

    /// Bipolar transistor: collector/base/emitter, all distinct classes.
    pub fn bjt(name: impl Into<String>) -> Self {
        Self::new(
            name,
            vec![
                TerminalSpec::new("c", "c"),
                TerminalSpec::new("b", "b"),
                TerminalSpec::new("e", "e"),
            ],
        )
    }

    /// The type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of terminals.
    pub fn terminal_count(&self) -> usize {
        self.terminals.len()
    }

    /// The `i`-th terminal declaration.
    ///
    /// # Panics
    ///
    /// Panics if `i >= terminal_count()`.
    pub fn terminal(&self, i: usize) -> &TerminalSpec {
        &self.terminals[i]
    }

    /// All terminals in declaration order.
    pub fn terminals(&self) -> &[TerminalSpec] {
        &self.terminals
    }

    /// Index of the terminal named `name`, if any.
    pub fn terminal_index(&self, name: &str) -> Option<usize> {
        self.terminals.iter().position(|t| t.name == name)
    }

    /// The labeling multiplier for terminal `i`'s equivalence class.
    ///
    /// Multipliers depend only on `(type name, class name)`, so two
    /// independently built netlists agree on them.
    #[inline]
    pub fn class_multiplier(&self, i: usize) -> u64 {
        self.class_mults[i]
    }

    /// The initial (invariant-based) label for devices of this type.
    #[inline]
    pub fn initial_label(&self) -> u64 {
        self.init_label
    }

    /// Returns `true` if terminals `i` and `j` are interchangeable (same
    /// equivalence class).
    pub fn same_class(&self, i: usize, j: usize) -> bool {
        self.terminals[i].class == self.terminals[j].class
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mos_class_structure() {
        let m = DeviceType::mos("nmos");
        assert!(m.same_class(1, 2));
        assert!(!m.same_class(0, 1));
        assert_eq!(m.class_multiplier(1), m.class_multiplier(2));
        assert_ne!(m.class_multiplier(0), m.class_multiplier(1));
    }

    #[test]
    fn multipliers_depend_on_type_name() {
        let n = DeviceType::mos("nmos");
        let p = DeviceType::mos("pmos");
        // Same class names, different type names: multipliers differ, so a
        // net touching an NMOS gate labels differently from one touching a
        // PMOS gate.
        assert_ne!(n.class_multiplier(0), p.class_multiplier(0));
        assert_ne!(n.initial_label(), p.initial_label());
    }

    #[test]
    fn identical_definitions_agree_across_instances() {
        let a = DeviceType::mos("nmos");
        let b = DeviceType::mos("nmos");
        assert_eq!(a.initial_label(), b.initial_label());
        assert_eq!(a.class_multiplier(2), b.class_multiplier(2));
    }

    #[test]
    fn duplicate_terminal_rejected() {
        let err = DeviceType::try_new(
            "bad",
            vec![TerminalSpec::new("a", "x"), TerminalSpec::new("a", "y")],
        )
        .unwrap_err();
        assert!(err.contains("twice"));
    }

    #[test]
    fn empty_type_rejected() {
        assert!(DeviceType::try_new("bad", vec![]).is_err());
    }

    #[test]
    fn terminal_lookup() {
        let m = DeviceType::mos("nmos");
        assert_eq!(m.terminal_index("d"), Some(2));
        assert_eq!(m.terminal_index("bulk"), None);
        assert_eq!(m.terminals().len(), 3);
    }

    #[test]
    fn helper_constructors() {
        assert_eq!(DeviceType::two_terminal("res").terminal_count(), 2);
        assert!(DeviceType::two_terminal("res").same_class(0, 1));
        assert!(!DeviceType::polarized("diode").same_class(0, 1));
        assert_eq!(DeviceType::bjt("npn").terminal_count(), 3);
    }
}
