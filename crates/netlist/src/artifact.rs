//! The `.sgc` compiled-circuit artifact: a versioned, checksummed,
//! dependency-free binary serialization of a [`CompiledCircuit`] plus
//! its [`FingerprintIndex`], for warm-starting searches across
//! processes.
//!
//! # Layout
//!
//! All integers are little-endian. The file is a 32-byte header
//! followed by an exactly-sized payload:
//!
//! ```text
//! offset  size  field
//! 0       8     magic        "SUBGSGC1"
//! 8       4     version      u32, currently 1
//! 12      4     flags        u32, must be 0
//! 16      8     payload_len  u64
//! 24      8     checksum     u64, FNV-1a of the payload, finalized
//! 32      *     payload
//! ```
//!
//! The payload is a fixed sequence of sections: the source digest (u64),
//! the fourteen [`CompiledCircuit`] arrays in declaration order (each a
//! u64 count followed by fixed-width elements; strings are u32-length-
//! prefixed UTF-8), and the fingerprint index (hop-2 cap then the
//! per-device fingerprint array).
//!
//! # Versioning and integrity contract
//!
//! * The version covers everything that affects bytes **or meaning** —
//!   including the fingerprint feature construction and `HOP2_CAP`.
//!   Changing any of those bumps the version; a loader never reinterprets
//!   bytes written under a different version.
//! * Loading never panics: every failure is a structured
//!   [`ArtifactError`].
//! * The checksum rejects accidental corruption; on top of that the
//!   decoded arrays are revalidated against every structural invariant
//!   (`CompiledCircuit::from_raw_parts`), so even a crafted payload with
//!   a matching checksum cannot produce a snapshot that disagrees with
//!   a fresh compile of some netlist.
//! * The source digest ([`structural_digest`]) ties the artifact to the
//!   netlist it was compiled from; warm-start callers compare it against
//!   the freshly parsed netlist before trusting the artifact.

use std::path::Path;
use std::sync::Arc;

use crate::compiled::{CompiledCircuit, RawParts};
use crate::fingerprint::FingerprintIndex;
use crate::hashing;
use crate::id::{DeviceId, NetId};
use crate::netlist::Netlist;

/// Magic bytes opening every `.sgc` artifact.
pub const MAGIC: [u8; 8] = *b"SUBGSGC1";

/// Current artifact format version.
pub const VERSION: u32 = 1;

const HEADER_LEN: usize = 32;

/// A structured artifact decoding failure. Loading never panics; every
/// malformed input maps to one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The input ended before the promised number of bytes.
    Truncated {
        /// Bytes required by the header or the current section.
        needed: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The first eight bytes are not the `.sgc` magic.
    BadMagic,
    /// The artifact was written by an unknown format version.
    UnsupportedVersion(u32),
    /// Reserved flag bits were set.
    UnsupportedFlags(u32),
    /// The payload checksum does not match the header.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the bytes actually present.
        found: u64,
    },
    /// The payload decoded but violates a structural invariant.
    Malformed(String),
    /// I/O failure while reading an artifact file.
    Io(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Truncated { needed, have } => {
                write!(f, "artifact truncated: need {needed} bytes, have {have}")
            }
            ArtifactError::BadMagic => write!(f, "not a .sgc artifact (bad magic)"),
            ArtifactError::UnsupportedVersion(v) => {
                write!(f, "unsupported artifact version {v} (this build reads {VERSION})")
            }
            ArtifactError::UnsupportedFlags(fl) => {
                write!(f, "unsupported artifact flags {fl:#x}")
            }
            ArtifactError::ChecksumMismatch { expected, found } => write!(
                f,
                "artifact checksum mismatch: header says {expected:#018x}, payload hashes to {found:#018x}"
            ),
            ArtifactError::Malformed(msg) => write!(f, "malformed artifact: {msg}"),
            ArtifactError::Io(msg) => write!(f, "artifact i/o error: {msg}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

/// A decoded `.sgc` artifact: the compiled snapshot, its fingerprint
/// index, and the digest of the netlist it was compiled from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Artifact {
    /// The revalidated compiled circuit.
    pub circuit: CompiledCircuit,
    /// The precomputed fingerprint index.
    pub index: FingerprintIndex,
    /// [`structural_digest`] of the source netlist at compile time.
    pub source_digest: u64,
}

impl Artifact {
    /// Compiles `netlist` and packages it with a freshly built
    /// fingerprint index and source digest.
    pub fn build(netlist: &Netlist) -> Self {
        let circuit = CompiledCircuit::compile(netlist);
        let index = FingerprintIndex::build(&circuit);
        Artifact {
            circuit,
            index,
            source_digest: structural_digest(netlist),
        }
    }

    /// Packages an already-compiled circuit.
    pub fn from_compiled(circuit: CompiledCircuit, source_digest: u64) -> Self {
        let index = FingerprintIndex::build(&circuit);
        Artifact {
            circuit,
            index,
            source_digest,
        }
    }

    /// Serializes to the `.sgc` byte format.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        let w = &mut payload;
        put_u64(w, self.source_digest);
        let p = self.circuit.raw_parts();
        put_u32_slice(w, p.dev_pin_start);
        put_u32_slice_iter(w, p.dev_pin_net.iter().map(|n| n.raw()));
        put_u64_slice(w, p.dev_pin_mult);
        put_u32_slice(w, p.net_pin_start);
        put_u32_slice_iter(w, p.net_pin_dev.iter().map(|d| d.raw()));
        put_u64_slice(w, p.net_pin_mult);
        put_u64_slice(w, p.dev_init);
        put_u64_slice(w, p.net_init);
        put_u32_slice(w, p.dev_type);
        put_u64(w, p.type_names.len() as u64);
        for name in p.type_names {
            put_str(w, name);
        }
        put_bool_slice(w, p.net_global);
        put_bool_slice(w, p.net_port);
        put_u64(w, p.globals.len() as u64);
        for (name, n) in p.globals {
            put_str(w, name);
            put_u32(w, n.raw());
        }
        put_u32_slice_iter(w, p.ports.iter().map(|n| n.raw()));
        put_u32(w, self.index.hop2_cap());
        put_u64_slice(w, self.index.fingerprints());

        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&checksum(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes and fully revalidates a `.sgc` byte stream.
    ///
    /// # Errors
    ///
    /// Every malformed input — truncated, corrupted, version-skewed, or
    /// structurally inconsistent — returns the matching
    /// [`ArtifactError`]; decoding never panics.
    pub fn decode(bytes: &[u8]) -> Result<Self, ArtifactError> {
        if bytes.len() < HEADER_LEN {
            return Err(ArtifactError::Truncated {
                needed: HEADER_LEN,
                have: bytes.len(),
            });
        }
        if bytes[..8] != MAGIC {
            return Err(ArtifactError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(ArtifactError::UnsupportedVersion(version));
        }
        let flags = u32::from_le_bytes(bytes[12..16].try_into().unwrap());
        if flags != 0 {
            return Err(ArtifactError::UnsupportedFlags(flags));
        }
        let payload_len = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        let expected = u64::from_le_bytes(bytes[24..32].try_into().unwrap());
        let Some(total) = (payload_len as usize).checked_add(HEADER_LEN) else {
            return Err(ArtifactError::Malformed("payload length overflows".into()));
        };
        if bytes.len() < total {
            return Err(ArtifactError::Truncated {
                needed: total,
                have: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(ArtifactError::Malformed(format!(
                "{} trailing bytes after the payload",
                bytes.len() - total
            )));
        }
        let payload = &bytes[HEADER_LEN..];
        let found = checksum(payload);
        if found != expected {
            return Err(ArtifactError::ChecksumMismatch { expected, found });
        }

        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let source_digest = r.u64()?;
        let dev_pin_start = r.u32_vec()?;
        let dev_pin_net = r.u32_vec()?.into_iter().map(NetId::new).collect();
        let dev_pin_mult = r.u64_vec()?;
        let net_pin_start = r.u32_vec()?;
        let net_pin_dev = r.u32_vec()?.into_iter().map(DeviceId::new).collect();
        let net_pin_mult = r.u64_vec()?;
        let dev_init = r.u64_vec()?;
        let net_init = r.u64_vec()?;
        let dev_type = r.u32_vec()?;
        let n_types = r.count()?;
        let mut type_names = Vec::with_capacity(n_types.min(1024));
        for _ in 0..n_types {
            type_names.push(r.string()?);
        }
        let net_global = r.bool_vec()?;
        let net_port = r.bool_vec()?;
        let n_globals = r.count()?;
        let mut globals = Vec::with_capacity(n_globals.min(1024));
        for _ in 0..n_globals {
            let name = r.string()?;
            globals.push((name, NetId::new(r.u32()?)));
        }
        let ports = r.u32_vec()?.into_iter().map(NetId::new).collect();
        let hop2_cap = r.u32()?;
        let dev_fp = r.u64_vec()?;
        if r.pos != r.buf.len() {
            return Err(ArtifactError::Malformed(format!(
                "{} unread bytes at the end of the payload",
                r.buf.len() - r.pos
            )));
        }

        let circuit = CompiledCircuit::from_raw_parts(RawParts {
            dev_pin_start,
            dev_pin_net,
            dev_pin_mult,
            net_pin_start,
            net_pin_dev,
            net_pin_mult,
            dev_init,
            net_init,
            dev_type,
            type_names,
            net_global,
            net_port,
            globals,
            ports,
        })
        .map_err(ArtifactError::Malformed)?;
        let index =
            FingerprintIndex::from_raw_parts(dev_fp, hop2_cap).map_err(ArtifactError::Malformed)?;
        if index.len() != circuit.device_count() {
            return Err(ArtifactError::Malformed(format!(
                "fingerprint index covers {} devices, circuit has {}",
                index.len(),
                circuit.device_count()
            )));
        }
        // The matcher prunes candidates by trusting these fingerprints,
        // so a stored index that disagrees with the (already
        // revalidated) circuit would silently drop true instances.
        // Recompute and compare — a checksum-valid but crafted payload
        // still cannot make pruning unsound.
        if index != FingerprintIndex::build(&circuit) {
            return Err(ArtifactError::Malformed(
                "fingerprint index does not match the circuit".into(),
            ));
        }
        Ok(Artifact {
            circuit,
            index,
            source_digest,
        })
    }

    /// Writes the encoded artifact to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure.
    pub fn save(&self, path: &Path) -> Result<(), ArtifactError> {
        std::fs::write(path, self.encode())
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and decodes an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Returns [`ArtifactError::Io`] on filesystem failure, or any
    /// decoding error from [`decode`](Self::decode).
    pub fn load(path: &Path) -> Result<Self, ArtifactError> {
        let bytes = std::fs::read(path)
            .map_err(|e| ArtifactError::Io(format!("{}: {e}", path.display())))?;
        Self::decode(&bytes)
    }

    /// Moves the circuit and index into [`Arc`]s for sharing.
    pub fn into_shared(self) -> (Arc<CompiledCircuit>, Arc<FingerprintIndex>, u64) {
        (
            Arc::new(self.circuit),
            Arc::new(self.index),
            self.source_digest,
        )
    }
}

/// Order-sensitive structural digest of a netlist: device types with
/// their terminal classes, every device's type and pin nets, net
/// global/port flags, global names, and the port list — everything
/// [`CompiledCircuit::compile`] reads. Two netlists with equal digests
/// compile to equal snapshots (up to hash collision, which the paper's
/// model already tolerates: a stale warm start can only waste work
/// downstream, never corrupt results, because the decoded snapshot is
/// itself revalidated).
pub fn structural_digest(netlist: &Netlist) -> u64 {
    let mut h: u64 = hashing::fnv1a("sgc-digest:v1");
    let mut put = |v: u64| h = hashing::mix(h ^ v.rotate_left(1));
    put(netlist.device_count() as u64);
    put(netlist.net_count() as u64);
    for t in netlist.device_types() {
        put(hashing::fnv1a(t.name()));
        put(t.terminal_count() as u64);
        for i in 0..t.terminal_count() {
            put(t.class_multiplier(i));
        }
    }
    for d in netlist.device_ids() {
        let dev = netlist.device(d);
        put(dev.type_id().index() as u64);
        for &n in dev.pins() {
            put(u64::from(n.raw()));
        }
    }
    for n in netlist.net_ids() {
        let net = netlist.net_ref(n);
        put(u64::from(net.is_global()) | u64::from(net.is_port()) << 1);
        if net.is_global() {
            put(hashing::fnv1a(net.name()));
        }
    }
    for &n in netlist.ports() {
        put(u64::from(n.raw()));
    }
    h
}

/// FNV-1a over raw bytes, finalized with the SplitMix64 mixer.
fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hashing::mix(h)
}

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_str(w: &mut Vec<u8>, s: &str) {
    put_u32(w, s.len() as u32);
    w.extend_from_slice(s.as_bytes());
}

fn put_u32_slice(w: &mut Vec<u8>, s: &[u32]) {
    put_u32_slice_iter(w, s.iter().copied());
}

fn put_u32_slice_iter(w: &mut Vec<u8>, s: impl ExactSizeIterator<Item = u32>) {
    put_u64(w, s.len() as u64);
    for v in s {
        put_u32(w, v);
    }
}

fn put_u64_slice(w: &mut Vec<u8>, s: &[u64]) {
    put_u64(w, s.len() as u64);
    for &v in s {
        put_u64(w, v);
    }
}

fn put_bool_slice(w: &mut Vec<u8>, s: &[bool]) {
    put_u64(w, s.len() as u64);
    for &v in s {
        w.push(u8::from(v));
    }
}

/// Bounds-checked little-endian payload reader.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ArtifactError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(ArtifactError::Malformed("section length overflows".into()))?;
        if end > self.buf.len() {
            return Err(ArtifactError::Truncated {
                needed: end,
                have: self.buf.len(),
            });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, ArtifactError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ArtifactError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// An element count, sanity-bounded by the remaining payload.
    fn count(&mut self) -> Result<usize, ArtifactError> {
        let n = self.u64()?;
        if n > self.buf.len() as u64 {
            return Err(ArtifactError::Malformed(format!(
                "section claims {n} elements in a {}-byte payload",
                self.buf.len()
            )));
        }
        Ok(n as usize)
    }

    fn string(&mut self) -> Result<String, ArtifactError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| ArtifactError::Malformed("string is not UTF-8".into()))
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>, ArtifactError> {
        let n = self.count()?;
        let bytes = self.take(
            n.checked_mul(4)
                .ok_or(ArtifactError::Malformed("section length overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u64_vec(&mut self) -> Result<Vec<u64>, ArtifactError> {
        let n = self.count()?;
        let bytes = self.take(
            n.checked_mul(8)
                .ok_or(ArtifactError::Malformed("section length overflows".into()))?,
        )?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn bool_vec(&mut self) -> Result<Vec<bool>, ArtifactError> {
        let n = self.count()?;
        let bytes = self.take(n)?;
        let mut out = Vec::with_capacity(n);
        for &b in bytes {
            match b {
                0 => out.push(false),
                1 => out.push(true),
                _ => {
                    return Err(ArtifactError::Malformed(format!(
                        "boolean byte has value {b}"
                    )))
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::MosTypes;

    fn inverter() -> Netlist {
        let mut nl = Netlist::new("inv");
        let MosTypes { nmos, pmos } = nl.add_mos_types();
        let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
        nl.mark_global(vdd);
        nl.mark_global(gnd);
        nl.mark_port(a);
        nl.mark_port(y);
        nl.add_device("mp", pmos, &[a, vdd, y]).unwrap();
        nl.add_device("mn", nmos, &[a, gnd, y]).unwrap();
        nl
    }

    #[test]
    fn encode_decode_round_trip() {
        let nl = inverter();
        let art = Artifact::build(&nl);
        let bytes = art.encode();
        let back = Artifact::decode(&bytes).unwrap();
        assert_eq!(art, back);
        assert_eq!(back.source_digest, structural_digest(&nl));
    }

    #[test]
    fn digest_tracks_structure_not_net_names() {
        let a = inverter();
        let mut b = inverter();
        assert_eq!(structural_digest(&a), structural_digest(&b));
        let w = b.net("extra");
        let _ = w;
        assert_ne!(structural_digest(&a), structural_digest(&b));
    }

    #[test]
    fn file_round_trip_and_io_error() {
        let nl = inverter();
        let art = Artifact::build(&nl);
        let path = std::env::temp_dir().join(format!("sgc_unit_{}.sgc", std::process::id()));
        art.save(&path).unwrap();
        assert_eq!(Artifact::load(&path).unwrap(), art);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(Artifact::load(&path), Err(ArtifactError::Io(_))));
    }

    #[test]
    fn header_failures_are_structured() {
        let bytes = Artifact::build(&inverter()).encode();
        assert!(matches!(
            Artifact::decode(&bytes[..10]),
            Err(ArtifactError::Truncated { .. })
        ));
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert_eq!(Artifact::decode(&bad), Err(ArtifactError::BadMagic));
        let mut bumped = bytes.clone();
        bumped[8] = 2;
        assert_eq!(
            Artifact::decode(&bumped),
            Err(ArtifactError::UnsupportedVersion(2))
        );
        let mut flagged = bytes.clone();
        flagged[12] = 1;
        assert_eq!(
            Artifact::decode(&flagged),
            Err(ArtifactError::UnsupportedFlags(1))
        );
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x01;
        assert!(matches!(
            Artifact::decode(&flipped),
            Err(ArtifactError::ChecksumMismatch { .. })
        ));
        let mut trailing = bytes;
        trailing.push(0);
        assert!(matches!(
            Artifact::decode(&trailing),
            Err(ArtifactError::Malformed(_))
        ));
    }
}
