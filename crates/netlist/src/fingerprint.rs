//! Precomputed k-hop neighborhood fingerprints for candidate pruning.
//!
//! Each device in a compiled circuit gets a 64-bit Bloom-style mask
//! whose bits encode *monotone* structural features of its k ≤ 2 hop
//! neighborhood: the interned type label, per-pin `(class multiplier,
//! net degree)` pairs, and capped 2-hop `(multiplier, multiplier, type)`
//! triples. The matcher intersects Phase I's candidate vector against a
//! pattern-derived mask before Phase II: a candidate whose fingerprint
//! lacks a bit the pattern mask sets can never be the image of the key
//! device, so dropping it is sound.
//!
//! # Soundness argument
//!
//! The pattern mask only sets bits for features that any embedding is
//! guaranteed to preserve:
//!
//! * the device's type — preserved exactly by every instance mapping;
//! * 1-hop `(m, degree)` features, restricted to **internal** pattern
//!   nets (neither port nor global). An internal net's image carries
//!   exactly the pattern's connections (only ports may gain external
//!   pins), so its degree is preserved exactly, and `m` is a class
//!   multiplier, identical for interchangeable terminals by
//!   construction;
//! * 2-hop `(m, m2, type(d2))` features through internal nets of degree
//!   at most [`HOP2_CAP`]. The cap decision is degree-based and the
//!   degree is preserved, so pattern and main agree on whether a net's
//!   2-hop features were enumerated;
//! * degree-free `(m, rail name)` features for pins on **global** nets:
//!   under globals-respecting matching (§IV.A — the only mode that uses
//!   a prebuilt index) a pattern's `vdd` pin must map to a pin on the
//!   main circuit's same-named global, with the same class multiplier,
//!   no matter the rail's fanout. These are the bits that let the index
//!   prune for shallow patterns whose Phase I refinement stops before
//!   device labels absorb any neighborhood at all.
//!
//! The main-side fingerprint sets those same bits for **every** adjacent
//! net (it cannot know which main nets are images of internal pattern
//! nets), so it is always a superset of the bits any embedded pattern
//! key could require. Extra bits only weaken pruning, never soundness.
//! Label collisions likewise only admit false candidates — which
//! Phase II rejects structurally — and never drop true ones.

use crate::compiled::CompiledCircuit;
use crate::hashing;
use crate::id::{DeviceId, NetId};

/// Degree cap above which a net's 2-hop neighborhood is not enumerated.
///
/// Applied identically on the pattern and main sides; sound because the
/// degree of an internal pattern net is preserved by embedding. Keeps
/// index construction linear in practice (globals like power rails have
/// huge degrees).
pub const HOP2_CAP: usize = 16;

// Distinct salts keep the four feature families from aliasing.
const TYPE_SALT: u64 = 0x5347_4649_3a54_5950; // "SGFI:TYP"
const HOP1_SALT: u64 = 0x5347_4649_3a48_3150; // "SGFI:H1P"
const HOP2_SALT: u64 = 0x5347_4649_3a48_3250; // "SGFI:H2P"
const RAIL_SALT: u64 = 0x5347_4649_3a52_4c31; // "SGFI:RL1"

/// Maps a feature hash to its Bloom bit.
#[inline]
fn bit(h: u64) -> u64 {
    1u64 << (h & 63)
}

/// Accumulates the fingerprint of device `d`, restricted to adjacent
/// nets accepted by `include`.
fn device_features(g: &CompiledCircuit, d: DeviceId, include: impl Fn(NetId) -> bool) -> u64 {
    let mut fp = bit(hashing::mix(TYPE_SALT ^ g.initial_device_label(d)));
    for (n, m) in g.device_neighbors(d) {
        if g.is_global(n) {
            // A global net's initial label is its name label — the rail
            // feature is fanout-independent by construction. On the main
            // side the rail additionally contributes its (harmless)
            // degree features below via `include`.
            fp |= bit(hashing::mix(RAIL_SALT ^ m ^ g.initial_net_label(n)));
        }
        if !include(n) {
            continue;
        }
        let degree = g.net_degree(n);
        fp |= bit(hashing::mix(
            HOP1_SALT ^ m ^ (degree as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        ));
        if degree <= HOP2_CAP {
            for (d2, m2) in g.net_neighbors(n) {
                fp |= bit(hashing::mix(
                    HOP2_SALT ^ m ^ m2.rotate_left(17) ^ g.initial_device_label(d2),
                ));
            }
        }
    }
    fp
}

/// Per-device 64-bit neighborhood fingerprints of a compiled circuit.
///
/// Build once per main circuit (or load from a `.sgc` artifact) and
/// test candidates with [`admits`](Self::admits) against a
/// [`pattern_mask`](Self::pattern_mask).
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{CompiledCircuit, FingerprintIndex, Netlist};
///
/// # fn main() -> Result<(), subgemini_netlist::NetlistError> {
/// let mut nl = Netlist::new("inv");
/// let mos = nl.add_mos_types();
/// let (a, y, vdd, gnd) = (nl.net("a"), nl.net("y"), nl.net("vdd"), nl.net("gnd"));
/// nl.add_device("mp", mos.pmos, &[a, vdd, y])?;
/// nl.add_device("mn", mos.nmos, &[a, gnd, y])?;
/// let g = CompiledCircuit::compile(&nl);
/// let index = FingerprintIndex::build(&g);
/// assert_eq!(index.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FingerprintIndex {
    dev_fp: Vec<u64>,
    hop2_cap: u32,
}

impl FingerprintIndex {
    /// Builds the fingerprint index for a main circuit: every adjacent
    /// net contributes, so each fingerprint is a superset of any
    /// embedded pattern's mask.
    pub fn build(g: &CompiledCircuit) -> Self {
        let dev_fp = (0..g.device_count())
            .map(|i| device_features(g, DeviceId::new(i as u32), |_| true))
            .collect();
        Self {
            dev_fp,
            hop2_cap: HOP2_CAP as u32,
        }
    }

    /// The pattern-side mask for key device `d` of compiled pattern
    /// `s`: only features guaranteed to survive embedding (see the
    /// module docs) set bits.
    pub fn pattern_mask(s: &CompiledCircuit, d: DeviceId) -> u64 {
        device_features(s, d, |n| !s.is_global(n) && !s.is_port(n))
    }

    /// Whether candidate device `d` can be the image of a key whose
    /// pattern mask is `mask`: every required bit must be present.
    #[inline]
    pub fn admits(&self, d: DeviceId, mask: u64) -> bool {
        mask & !self.dev_fp[d.index()] == 0
    }

    /// The fingerprint of device `d`.
    #[inline]
    pub fn fingerprint(&self, d: DeviceId) -> u64 {
        self.dev_fp[d.index()]
    }

    /// Number of fingerprinted devices.
    #[inline]
    pub fn len(&self) -> usize {
        self.dev_fp.len()
    }

    /// Whether the index covers no devices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dev_fp.is_empty()
    }

    /// The raw fingerprint array, for serialization.
    #[inline]
    pub fn fingerprints(&self) -> &[u64] {
        &self.dev_fp
    }

    /// The 2-hop degree cap the index was built with.
    #[inline]
    pub fn hop2_cap(&self) -> u32 {
        self.hop2_cap
    }

    /// Reassembles an index from deserialized parts.
    ///
    /// # Errors
    ///
    /// Rejects a cap that differs from [`HOP2_CAP`] (the construction
    /// parameters are part of the artifact version contract).
    pub fn from_raw_parts(dev_fp: Vec<u64>, hop2_cap: u32) -> Result<Self, String> {
        if hop2_cap as usize != HOP2_CAP {
            return Err(format!(
                "fingerprint hop2 cap {hop2_cap} does not match this build ({HOP2_CAP})"
            ));
        }
        Ok(Self { dev_fp, hop2_cap })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instantiate;
    use crate::netlist::Netlist;

    /// nand2 cell: ports a/b/y, globals vdd/gnd, one internal net.
    fn nand2() -> Netlist {
        let mut nl = Netlist::new("nand2");
        let mos = nl.add_mos_types();
        let (a, b, y) = (nl.net("a"), nl.net("b"), nl.net("y"));
        let (vdd, gnd, w) = (nl.net("vdd"), nl.net("gnd"), nl.net("w"));
        for n in [a, b, y] {
            nl.mark_port(n);
        }
        nl.mark_global(vdd);
        nl.mark_global(gnd);
        nl.add_device("mp1", mos.pmos, &[y, vdd, a]).unwrap();
        nl.add_device("mp2", mos.pmos, &[y, vdd, b]).unwrap();
        nl.add_device("mn1", mos.nmos, &[y, w, a]).unwrap();
        nl.add_device("mn2", mos.nmos, &[w, gnd, b]).unwrap();
        nl
    }

    #[test]
    fn embedded_instance_fingerprints_cover_pattern_masks() {
        let cell = nand2();
        let mut main = Netlist::new("main");
        main.add_mos_types();
        let (vdd, gnd) = (main.net("vdd"), main.net("gnd"));
        main.mark_global(vdd);
        main.mark_global(gnd);
        let nets: Vec<_> = (0..6).map(|i| main.net(format!("x{i}"))).collect();
        instantiate(&mut main, &cell, "u0", &[nets[0], nets[1], nets[2]]).unwrap();
        instantiate(&mut main, &cell, "u1", &[nets[2], nets[3], nets[4]]).unwrap();

        let s = CompiledCircuit::compile(&cell);
        let g = CompiledCircuit::compile(&main);
        let index = FingerprintIndex::build(&g);

        // Every pattern device's mask must admit its image in both
        // planted instances (device order is preserved by instantiate).
        for d in 0..s.device_count() {
            let mask = FingerprintIndex::pattern_mask(&s, DeviceId::new(d as u32));
            for inst in 0..2 {
                let image = DeviceId::new((inst * s.device_count() + d) as u32);
                assert!(
                    index.admits(image, mask),
                    "device {d} image in instance {inst} rejected"
                );
            }
        }
    }

    #[test]
    fn type_mismatch_is_always_rejected() {
        let cell = nand2();
        let s = CompiledCircuit::compile(&cell);
        let g = CompiledCircuit::compile(&cell);
        let index = FingerprintIndex::build(&g);
        let nmos_key = cell.find_device("mn2").unwrap();
        let pmos_image = cell.find_device("mp1").unwrap();
        let mask = FingerprintIndex::pattern_mask(&s, nmos_key);
        assert!(!index.admits(pmos_image, mask));
        assert!(index.admits(nmos_key, mask));
    }

    #[test]
    fn pattern_mask_is_subset_of_self_fingerprint() {
        let cell = nand2();
        let s = CompiledCircuit::compile(&cell);
        let index = FingerprintIndex::build(&s);
        for d in 0..s.device_count() {
            let d = DeviceId::new(d as u32);
            let mask = FingerprintIndex::pattern_mask(&s, d);
            assert_eq!(mask & !index.fingerprint(d), 0);
        }
    }

    #[test]
    fn rail_feature_prunes_mis_wired_same_type_device() {
        // Two pmos of identical type, both on port-only neighborhoods:
        // one sourced on the vdd rail like the pattern, one on an
        // ordinary net. The degree-free rail feature tells them apart
        // even though no internal net exists to carry hop features.
        let mut pat = Netlist::new("p");
        let mos = pat.add_mos_types();
        let (a, y, vdd) = (pat.net("a"), pat.net("y"), pat.net("vdd"));
        pat.mark_port(a);
        pat.mark_port(y);
        pat.mark_global(vdd);
        pat.add_device("mp", mos.pmos, &[y, vdd, a]).unwrap();

        let mut main = Netlist::new("g");
        let mmos = main.add_mos_types();
        let (ga, gy, gv) = (main.net("a"), main.net("y"), main.net("vdd"));
        let stray = main.net("stray");
        main.mark_global(gv);
        main.add_device("good", mmos.pmos, &[gy, gv, ga]).unwrap();
        main.add_device("bad", mmos.pmos, &[gy, stray, ga]).unwrap();

        let s = CompiledCircuit::compile(&pat);
        let g = CompiledCircuit::compile(&main);
        let idx = FingerprintIndex::build(&g);
        let mask = FingerprintIndex::pattern_mask(&s, DeviceId::new(0));
        assert!(idx.admits(DeviceId::new(0), mask), "true image admitted");
        assert!(!idx.admits(DeviceId::new(1), mask), "off-rail twin pruned");
    }

    #[test]
    fn raw_parts_round_trip_and_cap_pinning() {
        let s = CompiledCircuit::compile(&nand2());
        let index = FingerprintIndex::build(&s);
        let again =
            FingerprintIndex::from_raw_parts(index.fingerprints().to_vec(), index.hop2_cap())
                .unwrap();
        assert_eq!(index, again);
        assert!(FingerprintIndex::from_raw_parts(vec![], 3).is_err());
    }
}
