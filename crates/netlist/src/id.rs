//! Typed identifiers for the entities of a [`Netlist`](crate::Netlist).
//!
//! All identifiers are plain `u32` indices wrapped in newtypes
//! (C-NEWTYPE): a [`DeviceId`] can never be confused with a [`NetId`] at
//! compile time, and [`Vertex`] tags an index with the bipartite side it
//! belongs to.

use std::fmt;

/// Index of a device (transistor, resistor, composite cell, …) within a
/// netlist.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::DeviceId;
/// let d = DeviceId::new(3);
/// assert_eq!(d.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceId(u32);

/// Index of a net (wire) within a netlist.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::NetId;
/// let n = NetId::new(0);
/// assert_eq!(n.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NetId(u32);

/// Index of a device type within a netlist's type table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeviceTypeId(u32);

macro_rules! impl_id {
    ($t:ident, $tag:literal) => {
        impl $t {
            /// Wraps a raw index.
            #[inline]
            pub const fn new(index: u32) -> Self {
                Self(index)
            }

            /// Returns the raw index as a `usize`, suitable for slice
            /// indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw index as a `u32`.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Debug for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl fmt::Display for $t {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($tag, "{}"), self.0)
            }
        }

        impl From<$t> for usize {
            fn from(id: $t) -> usize {
                id.index()
            }
        }
    };
}

impl_id!(DeviceId, "d");
impl_id!(NetId, "n");
impl_id!(DeviceTypeId, "t");

/// A vertex of the bipartite circuit graph: either a device or a net.
///
/// SubGemini's partitioning treats the two sides separately (devices are
/// relabeled from nets and vice versa), but candidate vectors and key
/// vertices may live on either side, so a tagged union is the natural
/// representation.
///
/// # Examples
///
/// ```
/// use subgemini_netlist::{DeviceId, NetId, Vertex};
/// let v = Vertex::Device(DeviceId::new(1));
/// assert!(v.is_device());
/// assert_eq!(v.as_device(), Some(DeviceId::new(1)));
/// assert_eq!(Vertex::Net(NetId::new(0)).as_device(), None);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Vertex {
    /// A device vertex.
    Device(DeviceId),
    /// A net vertex.
    Net(NetId),
}

impl Vertex {
    /// Returns `true` if this vertex is on the device side.
    #[inline]
    pub const fn is_device(self) -> bool {
        matches!(self, Vertex::Device(_))
    }

    /// Returns `true` if this vertex is on the net side.
    #[inline]
    pub const fn is_net(self) -> bool {
        matches!(self, Vertex::Net(_))
    }

    /// Returns the device id if this is a device vertex.
    #[inline]
    pub const fn as_device(self) -> Option<DeviceId> {
        match self {
            Vertex::Device(d) => Some(d),
            Vertex::Net(_) => None,
        }
    }

    /// Returns the net id if this is a net vertex.
    #[inline]
    pub const fn as_net(self) -> Option<NetId> {
        match self {
            Vertex::Net(n) => Some(n),
            Vertex::Device(_) => None,
        }
    }
}

impl fmt::Display for Vertex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Vertex::Device(d) => write!(f, "{d}"),
            Vertex::Net(n) => write!(f, "{n}"),
        }
    }
}

impl From<DeviceId> for Vertex {
    fn from(d: DeviceId) -> Self {
        Vertex::Device(d)
    }
}

impl From<NetId> for Vertex {
    fn from(n: NetId) -> Self {
        Vertex::Net(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_roundtrip_raw_index() {
        let d = DeviceId::new(7);
        assert_eq!(d.index(), 7);
        assert_eq!(d.raw(), 7);
        assert_eq!(usize::from(d), 7);
        let n = NetId::new(u32::MAX);
        assert_eq!(n.raw(), u32::MAX);
    }

    #[test]
    fn ids_order_and_format() {
        assert!(DeviceId::new(1) < DeviceId::new(2));
        assert_eq!(format!("{}", DeviceId::new(4)), "d4");
        assert_eq!(format!("{:?}", NetId::new(9)), "n9");
        assert_eq!(format!("{}", DeviceTypeId::new(0)), "t0");
    }

    #[test]
    fn vertex_accessors() {
        let vd: Vertex = DeviceId::new(2).into();
        let vn: Vertex = NetId::new(3).into();
        assert!(vd.is_device() && !vd.is_net());
        assert!(vn.is_net() && !vn.is_device());
        assert_eq!(vd.as_device(), Some(DeviceId::new(2)));
        assert_eq!(vd.as_net(), None);
        assert_eq!(vn.as_net(), Some(NetId::new(3)));
        assert_eq!(format!("{vd}/{vn}"), "d2/n3");
    }

    #[test]
    fn vertex_ordering_is_total() {
        let mut vs = vec![
            Vertex::Net(NetId::new(0)),
            Vertex::Device(DeviceId::new(1)),
            Vertex::Device(DeviceId::new(0)),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Vertex::Device(DeviceId::new(0)),
                Vertex::Device(DeviceId::new(1)),
                Vertex::Net(NetId::new(0)),
            ]
        );
    }
}
